//! Quickstart: compress one gradient with every method the paper evaluates
//! and compare sizes, error, and the §3.3 safety properties.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::prelude::*;
use rand::rngs::StdRng;
use sketchml::core::roundtrip_error;
use sketchml::{
    GradientCompressor, KeyCompressor, QuantCompressor, RawCompressor, SketchMlCompressor,
    SparseGradient, TruncationCompressor, ZipMlCompressor,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a gradient shaped like the paper's Figure 4: 50k sparse keys
    // over a 5M-dimensional model, values concentrated near zero.
    let mut rng = StdRng::seed_from_u64(42);
    let mut cur = 0u64;
    let keys: Vec<u64> = (0..50_000)
        .map(|_| {
            cur += rng.gen_range(1..200);
            cur
        })
        .collect();
    let values: Vec<f64> = keys
        .iter()
        .map(|_| {
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            sign * rng.gen::<f64>().powi(6) * 0.35 + 1e-12
        })
        .collect();
    let grad = SparseGradient::new(5_000_000, keys, values)?;
    println!(
        "gradient: {} nonzeros over {} dims ({} bytes raw)\n",
        grad.nnz(),
        grad.dim(),
        12 * grad.nnz()
    );

    let methods: Vec<Box<dyn GradientCompressor>> = vec![
        Box::new(RawCompressor::default()),
        Box::new(KeyCompressor),
        Box::new(QuantCompressor::default()),
        Box::new(SketchMlCompressor::default()),
        Box::new(ZipMlCompressor::paper_default()),
        Box::new(TruncationCompressor::default()),
    ];
    println!(
        "{:<22} {:>10} {:>8} {:>12} {:>11} {:>10}",
        "method", "bytes", "rate", "rel l2 err", "sign flips", "pairs out"
    );
    for m in &methods {
        let stats = roundtrip_error(m.as_ref(), &grad)?;
        println!(
            "{:<22} {:>10} {:>7.2}x {:>12.5} {:>11} {:>10}",
            m.name(),
            stats.compressed_bytes,
            stats.report.compression_rate(),
            stats.squared_error.sqrt() / grad.l2_norm(),
            stats.sign_flips,
            stats.pairs_out,
        );
    }
    println!(
        "\nSketchML: keys decode exactly, signs never flip, values decay \
         slightly (the §3.3 underestimate-only guarantee)."
    );
    Ok(())
}
