//! A tour of the data-sketch substrates: quantile sketches for equi-depth
//! splits (§2.3/§3.2), Count-Min's overestimation problem (§2.4/§3.3), and
//! MinMaxSketch's underestimate-only answer to it.
//!
//! Run with: `cargo run --release --example sketches_tour`

use rand::prelude::*;
use rand::rngs::StdRng;
use sketchml::sketches::quantile::{GkSummary, MergingQuantileSketch, QuantileSketch};
use sketchml::sketches::{CountMinSketch, MinMaxSketch};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);

    // --- Quantile sketches: summarize a skewed stream in tiny space ---
    let data: Vec<f64> = (0..1_000_000)
        .map(|_| -(rng.gen::<f64>().powi(8) * 0.353) + 0.004 * rng.gen::<f64>())
        .collect();
    let mut gk = GkSummary::new(0.005)?;
    let mut mq = MergingQuantileSketch::new(128)?;
    for &v in &data {
        gk.insert(v);
        mq.insert(v);
    }
    println!("1M skewed values summarized:");
    println!("  GK summary: {} tuples (ε = 0.005)", gk.len());
    println!("  merging sketch: {} retained items", mq.retained());
    for phi in [0.05, 0.5, 0.95] {
        println!(
            "  quantile {phi:>4}: gk = {:+.5}, merging = {:+.5}",
            gk.query(phi)?,
            mq.query(phi)?
        );
    }
    let splits = mq.splits(8)?;
    println!("  8 equi-depth splits: {splits:+.4?}");

    // --- Count-Min vs MinMaxSketch on bucket indexes ---
    // Insert 10k (key, bucket-index) pairs into matched-size sketches and
    // watch the direction of the errors.
    let items: Vec<(u64, u16)> = (0..10_000u64)
        .map(|k| (k, rng.gen_range(0..256u16)))
        .collect();
    let cols = 2_000;
    let mut cm = CountMinSketch::new(2, cols, 1)?;
    let mut mm = MinMaxSketch::new(2, cols, 1)?;
    for &(k, b) in &items {
        // Count-Min can only *add* — the §3.3 motivation: storing indexes
        // additively magnifies collided bins arbitrarily.
        cm.insert_count(k, b as u64);
        mm.insert(k, b);
    }
    let (mut cm_over, mut cm_under, mut mm_over, mut mm_under) = (0u32, 0u32, 0u32, 0u32);
    for &(k, b) in &items {
        let cm_est = cm.query(k);
        match cm_est.cmp(&(b as u64)) {
            std::cmp::Ordering::Greater => cm_over += 1,
            std::cmp::Ordering::Less => cm_under += 1,
            std::cmp::Ordering::Equal => {}
        }
        let mm_est = mm.query(k).expect("inserted");
        match mm_est.cmp(&b) {
            std::cmp::Ordering::Greater => mm_over += 1,
            std::cmp::Ordering::Less => mm_under += 1,
            std::cmp::Ordering::Equal => {}
        }
    }
    println!("\n10k bucket indexes in 2x{cols} sketches:");
    println!("  Count-Min:    {cm_over} overestimates, {cm_under} underestimates");
    println!("  MinMaxSketch: {mm_over} overestimates, {mm_under} underestimates");
    println!(
        "\nCount-Min only ever overestimates (amplified gradients → divergence);\n\
         MinMaxSketch only ever underestimates (decayed gradients → §3.3's\n\
         safe, Adam-compensated convergence)."
    );
    assert_eq!(mm_over, 0);
    Ok(())
}
