//! End-to-end distributed training: ℓ2-regularized logistic regression on a
//! KDD12-like sparse dataset across ten simulated workers, comparing
//! SketchML against uncompressed Adam — the paper's §4.3 workload in
//! miniature.
//!
//! Run with: `cargo run --release --example distributed_logistic_regression`

use sketchml::{
    train_distributed, ClusterConfig, GlmLoss, GradientCompressor, RawCompressor,
    SketchMlCompressor, SparseDatasetSpec, TrainSpec,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = SparseDatasetSpec::kdd12_like().scaled(0.5);
    println!(
        "dataset: {} — {} instances, {} features",
        spec.name, spec.instances, spec.features
    );
    let (train, test) = spec.generate_split();
    let cluster = ClusterConfig::cluster2(10);
    let tspec = TrainSpec::paper(GlmLoss::Logistic, 0.02, 6);

    for compressor in [
        &SketchMlCompressor::default() as &dyn GradientCompressor,
        &RawCompressor::default(),
    ] {
        let report = train_distributed(
            &train,
            &test,
            spec.features as usize,
            &tspec,
            &cluster,
            compressor,
        )?;
        println!(
            "\n== {} ==  ({} workers, batch = {:.0}% of train)",
            report.method,
            report.workers,
            cluster.batch_ratio * 100.0
        );
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>12}",
            "epoch", "sim secs", "msg MB", "train loss", "test loss"
        );
        for e in &report.epochs {
            println!(
                "{:>6} {:>12.3} {:>12.3} {:>12.5} {:>12.5}",
                e.epoch,
                e.sim_seconds,
                e.uplink_bytes as f64 / 1e6,
                e.train_loss,
                e.test_loss
            );
        }
        println!(
            "avg epoch: {:.3}s, compression rate {:.2}x, accuracy {:.1}%",
            report.avg_epoch_seconds(),
            report.compression_rate(),
            report.accuracy.unwrap_or(0.0) * 100.0
        );
    }
    println!(
        "\nSketchML trains the same model in a fraction of the simulated \
         time by shrinking every gradient message (§4.3)."
    );
    Ok(())
}
