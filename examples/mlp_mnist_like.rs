//! Neural-network example (paper Appendix B.3): train a multilayer
//! perceptron on synthetic MNIST-like images with compressed gradient
//! exchange, demonstrating that the sketch mechanism applies beyond linear
//! models — with the §4.6 caveat that dense gradients blunt key
//! compression.
//!
//! Run with: `cargo run --release --example mlp_mnist_like`

use sketchml::cluster::mlp_trainer::{train_mlp_distributed, MlpTrainSpec};
use sketchml::ml::MlpConfig;
use sketchml::{
    AdamConfig, ClusterConfig, GradientCompressor, MnistLikeSpec, RawCompressor, SketchMlCompressor,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = MnistLikeSpec {
        side: 10,
        classes: 10,
        instances: 2_000,
        noise: 0.4,
        seed: 99,
    };
    let (train, test) = data.generate_split();
    let net = MlpConfig {
        layer_sizes: vec![data.pixels(), 48, 10],
        seed: 3,
    };
    println!(
        "MLP {}-48-10 ({} params) on {} synthetic images",
        data.pixels(),
        48 * data.pixels() + 48 + 48 * 10 + 10,
        data.instances
    );
    let spec = MlpTrainSpec {
        adam: AdamConfig::with_lr(0.01),
        opt_state: Default::default(),
        batch_ratio: 0.05,
        epochs: 6,
        seed: 5,
    };
    let cluster = ClusterConfig::cluster1(4);

    for compressor in [
        &SketchMlCompressor::default() as &dyn GradientCompressor,
        &RawCompressor::default(),
    ] {
        let report = train_mlp_distributed(&train, &test, &net, &spec, &cluster, compressor)?;
        println!("\n== {} ==", report.method);
        for e in &report.epochs {
            println!(
                "  epoch {:>2}: {:>7.3} sim s, {:>8} uplink bytes, test loss {:.4}",
                e.epoch, e.sim_seconds, e.uplink_bytes, e.test_loss
            );
        }
        println!("  final accuracy: {:.1}%", report.accuracy * 100.0);
    }
    println!(
        "\nDense MLP gradients still benefit from value compression, but the \
         gap vs raw is smaller than for sparse GLMs (§4.6 / Appendix B.3)."
    );
    Ok(())
}
