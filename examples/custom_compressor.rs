//! Implementing your own `GradientCompressor`: a Top-K + SketchML hybrid.
//!
//! The trait is the library's extension point — anything that can turn a
//! `SparseGradient` into self-describing bytes plugs into the trainer, the
//! parameter-server topology, SSP, and error feedback. This example builds
//! a hybrid: keep the top `K%` of pairs by magnitude (they carry most of
//! the L2 mass) and run *only those* through SketchML — smaller messages
//! than either technique alone, at a quality cost error feedback can repay.
//!
//! Run with: `cargo run --release --example custom_compressor`

use sketchml::core::roundtrip_error;
use sketchml::{
    CompressError, CompressedGradient, ErrorFeedback, GradientCompressor, SketchMlCompressor,
    SparseGradient,
};

/// Top-K selection followed by SketchML compression of the survivors.
struct TopKSketchMl {
    keep_ratio: f64,
    inner: SketchMlCompressor,
}

impl TopKSketchMl {
    fn new(keep_ratio: f64) -> Self {
        TopKSketchMl {
            keep_ratio,
            inner: SketchMlCompressor::default(),
        }
    }
}

impl GradientCompressor for TopKSketchMl {
    fn name(&self) -> &'static str {
        "TopK+SketchML"
    }

    fn compress(&self, grad: &SparseGradient) -> Result<CompressedGradient, CompressError> {
        let keep = ((grad.nnz() as f64 * self.keep_ratio).ceil() as usize).max(1);
        let mut mags: Vec<f64> = grad.values().iter().map(|v| v.abs()).collect();
        mags.sort_by(f64::total_cmp);
        let threshold = mags[mags.len().saturating_sub(keep)];
        let mut keys = Vec::with_capacity(keep);
        let mut values = Vec::with_capacity(keep);
        for (k, v) in grad.iter() {
            if v.abs() >= threshold && keys.len() < keep {
                keys.push(k);
                values.push(v);
            }
        }
        let survivors = SparseGradient::new(grad.dim(), keys, values)?;
        self.inner.compress(&survivors)
    }

    fn decompress(&self, payload: &[u8]) -> Result<SparseGradient, CompressError> {
        self.inner.decompress(payload)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    use rand::prelude::*;
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let mut cur = 0u64;
    let keys: Vec<u64> = (0..40_000)
        .map(|_| {
            cur += rng.gen_range(1..120);
            cur
        })
        .collect();
    let values: Vec<f64> = keys
        .iter()
        .map(|_| {
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            sign * rng.gen::<f64>().powi(6) * 0.35 + 1e-12
        })
        .collect();
    let grad = SparseGradient::new(8_000_000, keys, values)?;

    println!(
        "{:<26} {:>9} {:>8} {:>12} {:>10}",
        "compressor", "bytes", "rate", "rel l2 err", "pairs out"
    );
    let plain = SketchMlCompressor::default();
    let hybrid = TopKSketchMl::new(0.25);
    let hybrid_ef = ErrorFeedback::new(TopKSketchMl::new(0.25));
    for c in [&plain as &dyn GradientCompressor, &hybrid, &hybrid_ef] {
        let stats = roundtrip_error(c, &grad)?;
        println!(
            "{:<26} {:>9} {:>7.2}x {:>12.4} {:>10}",
            c.name(),
            stats.compressed_bytes,
            (12 * grad.nnz()) as f64 / stats.compressed_bytes as f64,
            stats.squared_error.sqrt() / grad.l2_norm(),
            stats.pairs_out
        );
    }
    println!(
        "\nTop-K keeps the heavy hitters (most of the L2 mass), SketchML \
         shrinks what remains, and ErrorFeedback re-sends the dropped tail \
         over later rounds — all through one trait."
    );
    Ok(())
}
