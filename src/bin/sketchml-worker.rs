//! `sketchml-worker` — one training worker process of the live parameter
//! server.
//!
//! Connects to a running `sketchml-serve`, fetches the session config,
//! regenerates its identical dataset shard schedule, and participates in
//! training (pull → compute gradient → compress → push) until the server
//! reports training done. A respawned worker joining mid-training first
//! validates the server's checkpoint (the crash-recovery path).
//!
//! ```text
//! sketchml-worker --addr tcp://127.0.0.1:4242 --worker 0
//! ```
//!
//! On completion prints `WORKER_DONE worker=<id> accepted=<n> stale=<n>
//! recovered=<bool>`.

use sketchml::net::run_worker;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut addr = None;
    let mut worker: Option<u32> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match (flag.as_str(), it.next()) {
            ("--addr", Some(v)) => addr = Some(v),
            ("--worker", Some(v)) => match v.parse() {
                Ok(id) => worker = Some(id),
                Err(e) => {
                    eprintln!("sketchml-worker: --worker {v}: {e}");
                    return ExitCode::from(2);
                }
            },
            (other, _) => {
                eprintln!("sketchml-worker: unknown or valueless flag {other}");
                eprintln!("usage: sketchml-worker --addr tcp://host:port --worker ID");
                return ExitCode::from(2);
            }
        }
    }
    let (Some(addr), Some(worker)) = (addr, worker) else {
        eprintln!("usage: sketchml-worker --addr tcp://host:port --worker ID");
        return ExitCode::from(2);
    };
    match run_worker(&addr, worker) {
        Ok(stats) => {
            println!(
                "WORKER_DONE worker={worker} accepted={} stale={} recovered={}",
                stats.pushes_accepted, stats.pushes_stale, stats.recovered_from_checkpoint
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("sketchml-worker: worker {worker}: {e}");
            ExitCode::FAILURE
        }
    }
}
