//! `sketchml-serve` — the driver process of the live parameter server.
//!
//! Binds a socket, serves `GetConfig`/`PullModel`/`PushGradient` to worker
//! processes and `Predict` to inference clients, trains until `--epochs`
//! complete, then prints a JSON summary and exits.
//!
//! ```text
//! sketchml-serve --addr tcp://127.0.0.1:0 --workers 4 --epochs 3
//! ```
//!
//! Readiness handshake (consumed by the integration tests and by scripts):
//! once the socket is bound the process prints exactly one line
//! `SERVE_READY addr=<resolved address>` to stdout, and after training it
//! prints `SERVE_DONE <summary json>`.

use sketchml::data::{SparseDatasetSpec, Task};
use sketchml::ml::GlmLoss;
use sketchml::net::{Listener, ServeSetup, Server};
use sketchml::TrainSpec;
use std::io::Write;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: sketchml-serve [--addr tcp://127.0.0.1:0 | unix:///path] [--workers N] \
         [--epochs N] [--instances N] [--features N] [--avg-nnz N] [--batch-ratio F] \
         [--compressor NAME] [--seed N] [--round-timeout-ms N] [--idle-timeout-ms N] \
         [--round-sleep-ms N] [--linger-ms N]"
    );
    ExitCode::from(2)
}

struct Args {
    addr: String,
    workers: usize,
    epochs: usize,
    instances: usize,
    features: u32,
    avg_nnz: usize,
    batch_ratio: f64,
    compressor: String,
    seed: u64,
    round_timeout_ms: u64,
    idle_timeout_ms: u64,
    round_sleep_ms: u64,
    /// Keep serving Predict for this long after training completes.
    linger_ms: u64,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut a = Args {
            addr: "tcp://127.0.0.1:0".into(),
            workers: 4,
            epochs: 2,
            instances: 2_000,
            features: 4_096,
            avg_nnz: 32,
            batch_ratio: 0.1,
            compressor: "sketchml".into(),
            seed: 0x7EA1,
            round_timeout_ms: 2_000,
            idle_timeout_ms: 30_000,
            round_sleep_ms: 0,
            linger_ms: 0,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut val = || it.next().ok_or_else(|| format!("{flag} needs a value"));
            match flag.as_str() {
                "--addr" => a.addr = val()?,
                "--workers" => a.workers = num(&val()?)?,
                "--epochs" => a.epochs = num(&val()?)?,
                "--instances" => a.instances = num(&val()?)?,
                "--features" => a.features = num(&val()?)? as u32,
                "--avg-nnz" => a.avg_nnz = num(&val()?)?,
                "--batch-ratio" => {
                    a.batch_ratio = val()?.parse().map_err(|e| format!("batch-ratio: {e}"))?;
                }
                "--compressor" => a.compressor = val()?,
                "--seed" => a.seed = num(&val()?)? as u64,
                "--round-timeout-ms" => a.round_timeout_ms = num(&val()?)? as u64,
                "--idle-timeout-ms" => a.idle_timeout_ms = num(&val()?)? as u64,
                "--round-sleep-ms" => a.round_sleep_ms = num(&val()?)? as u64,
                "--linger-ms" => a.linger_ms = num(&val()?)? as u64,
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(a)
    }
}

fn num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|e| format!("{s}: {e}"))
}

fn main() -> ExitCode {
    let args = match Args::parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sketchml-serve: {e}");
            return usage();
        }
    };
    let dataset = SparseDatasetSpec {
        name: "serve".into(),
        instances: args.instances,
        features: args.features,
        avg_nnz: args.avg_nnz,
        skew: 1.1,
        label_noise: 0.05,
        task: Task::Classification,
        seed: args.seed ^ 0xDA7A,
    };
    let mut spec = TrainSpec::paper(GlmLoss::Logistic, 0.05, args.epochs);
    spec.seed = args.seed;
    let mut setup = ServeSetup::new(dataset, spec, args.workers);
    setup.batch_ratio = args.batch_ratio;
    setup.compressor = args.compressor;
    setup.round_timeout_ms = args.round_timeout_ms;
    setup.idle_timeout_ms = args.idle_timeout_ms;
    setup.round_sleep_ms = args.round_sleep_ms;

    let listener = match bind(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("sketchml-serve: bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(setup, listener) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sketchml-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The readiness line carries the OS-resolved port for `--addr ...:0`.
    println!("SERVE_READY addr={}", server.addr());
    std::io::stdout().flush().ok();

    let summary = server.wait_trained();
    if args.linger_ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(args.linger_ms));
    }
    let json = serde_json::to_string(&summary).unwrap_or_else(|_| "{}".into());
    println!("SERVE_DONE {json}");
    std::io::stdout().flush().ok();
    server.shutdown();
    let summary = server.join();
    if summary.aborted {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn bind(addr: &str) -> std::io::Result<Listener> {
    if let Some(path) = addr.strip_prefix("unix://") {
        #[cfg(unix)]
        return Listener::bind_unix(path);
        #[cfg(not(unix))]
        return Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            format!("unix sockets unavailable: {path}"),
        ));
    }
    Listener::bind_tcp(addr.strip_prefix("tcp://").unwrap_or(addr))
}
