//! `sketchml-cli` — compress, decompress and inspect sparse gradients from
//! the command line.
//!
//! ```text
//! sketchml-cli methods
//! sketchml-cli compress   <method> <input.grad> <output.bin>
//! sketchml-cli decompress <method> <input.bin>  <output.grad>
//! sketchml-cli roundtrip  <method> <input.grad>
//! sketchml-cli demo
//! ```
//!
//! Gradient text format: a `dim <D>` header line, then ascending
//! `key value` lines (`#` comments allowed).

use sketchml::core::gradient_io::{read_gradient, write_gradient};
use sketchml::core::registry::{by_name, KNOWN_COMPRESSORS};
use sketchml::core::roundtrip_error;
use sketchml::SparseGradient;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sketchml-cli methods\n  sketchml-cli compress   <method> <in.grad> <out.bin>\n  \
         sketchml-cli decompress <method> <in.bin> <out.grad>\n  \
         sketchml-cli roundtrip  <method> <in.grad>\n  sketchml-cli demo"
    );
    ExitCode::from(2)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("methods") => {
            for name in KNOWN_COMPRESSORS {
                println!("{name}");
            }
        }
        Some("compress") if args.len() == 4 => {
            let compressor = by_name(&args[1])?;
            let grad = read_gradient(BufReader::new(File::open(&args[2])?))?;
            let msg = compressor.compress(&grad)?;
            let mut out = BufWriter::new(File::create(&args[3])?);
            out.write_all(&msg.payload)?;
            out.flush()?;
            println!(
                "{}: {} pairs, {} -> {} bytes ({:.2}x)",
                compressor.name(),
                grad.nnz(),
                12 * grad.nnz(),
                msg.len(),
                msg.report.compression_rate()
            );
        }
        Some("decompress") if args.len() == 4 => {
            let compressor = by_name(&args[1])?;
            let mut payload = Vec::new();
            File::open(&args[2])?.read_to_end(&mut payload)?;
            let grad = compressor.decompress(&payload)?;
            write_gradient(&grad, BufWriter::new(File::create(&args[3])?))?;
            println!(
                "{}: decoded {} pairs over {} dimensions",
                compressor.name(),
                grad.nnz(),
                grad.dim()
            );
        }
        Some("roundtrip") if args.len() == 3 => {
            let compressor = by_name(&args[1])?;
            let grad = read_gradient(BufReader::new(File::open(&args[2])?))?;
            let stats = roundtrip_error(compressor.as_ref(), &grad)?;
            println!(
                "{}: {} -> {} bytes ({:.2}x), rel l2 err {:.5}, sign flips {}",
                compressor.name(),
                12 * stats.pairs_in,
                stats.compressed_bytes,
                stats.report.compression_rate(),
                stats.squared_error.sqrt() / grad.l2_norm().max(f64::MIN_POSITIVE),
                stats.sign_flips
            );
        }
        Some("demo") => {
            // The Figure 3 running example, end to end.
            let grad = SparseGradient::new(
                1_000_000,
                vec![702, 735, 1244, 2516, 3536, 3786, 4187, 4195],
                vec![-0.01, 0.21, 0.08, -0.05, -0.12, 0.29, 0.02, -0.27],
            )?;
            println!("input (Figure 3 of the paper):");
            let mut text = Vec::new();
            write_gradient(&grad, &mut text)?;
            print!("{}", String::from_utf8_lossy(&text));
            for name in ["sketchml", "zipml", "adam"] {
                let c = by_name(name)?;
                let stats = roundtrip_error(c.as_ref(), &grad)?;
                println!(
                    "{:<10} {:>4} bytes  rel_err {:.4}  sign_flips {}",
                    c.name(),
                    stats.compressed_bytes,
                    stats.squared_error.sqrt() / grad.l2_norm(),
                    stats.sign_flips
                );
            }
        }
        _ => {
            std::process::exit(2);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let known = matches!(
        args.first().map(String::as_str),
        Some("methods") | Some("compress") | Some("decompress") | Some("roundtrip") | Some("demo")
    );
    if !known {
        return usage();
    }
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
