//! # sketchml
//!
//! A from-scratch Rust reproduction of **"SketchML: Accelerating Distributed
//! Machine Learning with Data Sketches"** (Jiang, Fu, Yang, Cui — SIGMOD
//! 2018): sketch-based compression for the sparse key-value gradients
//! exchanged by distributed SGD, together with every substrate the paper's
//! evaluation depends on.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`sketches`] — quantile sketches (Greenwald–Khanna, mergeable
//!   compactor), Count-Min, and the paper's novel **MinMaxSketch**;
//! - [`encoding`] — delta-binary key coding plus bitmap / RLE / Huffman /
//!   CSR baselines;
//! - [`core`] — the [`SketchMlCompressor`] pipeline and the Adam / ZipML /
//!   truncation baselines behind the [`GradientCompressor`] trait;
//! - [`ml`] — LR / SVM / Linear GLMs, Adam SGD, and an MLP;
//! - [`data`] — synthetic KDD10/KDD12/CTR-like datasets and libsvm IO;
//! - [`cluster`] — the driver/executor distributed-training simulator;
//! - [`collectives`] — mergeable-sketch allreduce: ring / tree / star
//!   aggregation of compressed gradient payloads;
//! - [`net`] — the live parameter server: framed wire protocol over
//!   TCP/Unix sockets, threaded server runtime with backpressure, an
//!   epoch-snapshot model store serving inference during training, and
//!   the full worker participant loop with checkpoint recovery;
//! - [`telemetry`] — opt-in pipeline/cluster counters, histograms, and
//!   stage timers behind a single relaxed atomic gate.
//!
//! ## Quickstart
//!
//! ```
//! use sketchml::{GradientCompressor, SketchMlCompressor, SparseGradient};
//!
//! // A sparse gradient: ascending keys, skewed near-zero values (Fig. 3).
//! let grad = SparseGradient::new(
//!     1_000_000,
//!     vec![702, 735, 1244, 2516, 3536, 3786, 4187, 4195],
//!     vec![-0.01, 0.21, 0.08, -0.05, -0.12, 0.29, 0.02, -0.27],
//! )?;
//!
//! let compressor = SketchMlCompressor::default();
//! let message = compressor.compress(&grad)?;
//! let decoded = compressor.decompress(&message.payload)?;
//!
//! assert_eq!(decoded.keys(), grad.keys()); // keys decode exactly (§3.4)
//! for ((_, v), (_, d)) in grad.iter().zip(decoded.iter()) {
//!     assert_eq!(v.signum(), d.signum()); // no reversed gradients (§3.3)
//! }
//! # Ok::<(), sketchml::CompressError>(())
//! ```
//!
//! See `examples/` for end-to-end training runs and DESIGN.md for the full
//! experiment index.

#![warn(missing_docs)]

pub use sketchml_cluster as cluster;
pub use sketchml_collectives as collectives;
pub use sketchml_core as core;
pub use sketchml_data as data;
pub use sketchml_encoding as encoding;
pub use sketchml_ml as ml;
pub use sketchml_net as net;
pub use sketchml_sketches as sketches;
pub use sketchml_telemetry as telemetry;

pub use sketchml_cluster::{
    train_allreduce, train_allreduce_chaos, train_allreduce_with_policy, train_distributed,
    train_distributed_chaos, train_distributed_resumable, train_mlp_distributed_chaos,
    train_parameter_server, train_parameter_server_chaos, train_ssp, train_ssp_adaptive_chaos,
    train_ssp_chaos, AdaptiveSsp, ClusterConfig, ElasticConfig, FaultPlan, FaultTrace, FaultyLink,
    ShardMap, SspConfig, TrainOutcome, TrainReport, TrainSpec,
};
pub use sketchml_collectives::{MergePolicy, MergeableCompressor, Topology};
pub use sketchml_core::{
    compressor_by_name, CompressError, CompressedGradient, CountSketchCompressor,
    CountSketchConfig, ErrorFeedback, FastSgdCompressor, GradientCompressor, KeyCompressor,
    QuantCompressor, RawCompressor, Rounding, ShardedCompressor, SketchMlCompressor,
    SketchMlConfig, SparseGradient, TruncationCompressor, ZipMlCompressor,
};
pub use sketchml_data::{MnistLikeSpec, SparseDatasetSpec};
pub use sketchml_ml::{
    AdaGrad, Adam, AdamConfig, Checkpoint, GlmLoss, GlmModel, Instance, Momentum, OptStateMode,
    OptimizerKind, OptimizerState, SketchedAdaGrad, SketchedAdam, SketchedMomentum, SparseVector,
};
