//! Aggregation topologies and their deterministic hop schedules.
//!
//! A schedule is a flat list of [`Hop`]s in the exact order the executor
//! performs them. "Simultaneous" sends of a parallel algorithm share a
//! `step`; within a step hops are ordered by sender index, which is what
//! makes whole allreduce rounds (and their fault traces) bit-reproducible.

use serde::{Deserialize, Serialize};
use sketchml_core::CompressError;
use std::ops::Range;

/// How worker gradients are combined into one aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Topology {
    /// Every worker unicasts to a central driver, which merges all
    /// contributions and broadcasts the result — the parameter-server
    /// pattern, expressed as the degenerate one-level tree. The driver's
    /// link carries all `2n` payloads.
    #[default]
    Star,
    /// Bandwidth-optimal ring allreduce: the key space is split into `n`
    /// chunks; a reduce-scatter rotates partial chunk sums around the ring
    /// for `n − 1` steps, then an allgather rotates the completed chunks.
    /// Every node's link carries only O(2 · d/n · n) = O(d) chunk payloads
    /// regardless of the cluster size.
    Ring,
    /// Binary reduce tree: pairwise merges halve the live senders each
    /// round until worker 0 holds the aggregate, which is then broadcast
    /// back down the same tree. Latency-optimal (`2⌈log₂ n⌉` rounds); each
    /// link carries whole-gradient payloads.
    Tree,
}

impl Topology {
    /// Short lowercase name used in configs, benches and reports.
    pub fn name(self) -> &'static str {
        match self {
            Topology::Star => "star",
            Topology::Ring => "ring",
            Topology::Tree => "tree",
        }
    }

    /// Parses a [`name`](Self::name) (case-insensitive).
    ///
    /// # Errors
    /// [`CompressError::InvalidConfig`] naming the unknown topology.
    pub fn parse(s: &str) -> Result<Self, CompressError> {
        match s.to_ascii_lowercase().as_str() {
            "star" => Ok(Topology::Star),
            "ring" => Ok(Topology::Ring),
            "tree" => Ok(Topology::Tree),
            other => Err(CompressError::InvalidConfig(format!(
                "unknown topology {other:?}: expected star, ring or tree"
            ))),
        }
    }

    /// Smallest worker count a *configured* group should start with. Ring
    /// and tree want a peer to exchange with; star degenerates fine at one
    /// worker.
    ///
    /// This is a configuration floor, not an executor limit: once a round
    /// is running, the executor accepts any `n ≥ 1` — a ring or tree of one
    /// has an empty schedule and reduces to the star's single merge, which
    /// is what lets an elastic group shrink below the floor mid-training
    /// instead of aborting.
    pub fn min_workers(self) -> usize {
        match self {
            Topology::Star => 1,
            Topology::Ring | Topology::Tree => 2,
        }
    }
}

/// One scheduled point-to-point transmission. Node indices `0..n` are
/// workers; for [`Topology::Star`] the driver is node `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Parallel step the hop belongs to (hops of one step are logically
    /// simultaneous; the executor performs them in sender order).
    pub step: u64,
    /// Sending node.
    pub from: usize,
    /// Receiving node.
    pub to: usize,
    /// For chunked topologies, the chunk the payload covers; the whole key
    /// space for star and tree hops.
    pub chunk: Option<usize>,
}

/// Splits `0..dim` into `n` contiguous, near-equal key ranges — the chunk
/// layout the ring schedule rotates. Deterministic: earlier chunks take the
/// remainder, matching the batch partitioner's convention.
pub fn chunk_ranges(dim: u64, n: usize) -> Vec<Range<u64>> {
    let n = n.max(1);
    let base = dim / n as u64;
    let extra = dim % n as u64;
    let mut out = Vec::with_capacity(n);
    let mut start = 0u64;
    for c in 0..n as u64 {
        let len = base + u64::from(c < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// The reduce-phase schedule: hops that fold worker contributions together.
///
/// * Star: `n` uplinks, worker `w` → driver `n`, all in step 0.
/// * Ring reduce-scatter: `n − 1` steps; in step `s` worker `i` sends its
///   partial of chunk `(i − s) mod n` to worker `(i + 1) mod n`. Afterwards
///   worker `i` owns the complete chunk `(i + 1) mod n`.
/// * Tree: `⌈log₂ n⌉` rounds; in round `r` worker `i + 2^r` folds into
///   worker `i` for every `i` divisible by `2^(r+1)`.
pub fn reduce_schedule(topology: Topology, n: usize) -> Vec<Hop> {
    let mut hops = Vec::new();
    match topology {
        Topology::Star => {
            for w in 0..n {
                hops.push(Hop {
                    step: 0,
                    from: w,
                    to: n,
                    chunk: None,
                });
            }
        }
        Topology::Ring => {
            for s in 0..n.saturating_sub(1) {
                for i in 0..n {
                    hops.push(Hop {
                        step: s as u64,
                        from: i,
                        to: (i + 1) % n,
                        chunk: Some((i + n - s % n) % n),
                    });
                }
            }
        }
        Topology::Tree => {
            let mut stride = 1usize;
            let mut step = 0u64;
            while stride < n {
                for i in (0..n).step_by(stride * 2) {
                    if i + stride < n {
                        hops.push(Hop {
                            step,
                            from: i + stride,
                            to: i,
                            chunk: None,
                        });
                    }
                }
                stride *= 2;
                step += 1;
            }
        }
    }
    hops
}

/// The distribute-phase schedule: hops that spread the finished aggregate
/// back out. Steps continue after the reduce phase's.
///
/// * Star: `n` downlinks, driver `n` → worker `w`.
/// * Ring allgather: `n − 1` steps; in step `s` worker `i` forwards the
///   completed chunk `(i + 1 − s) mod n` to worker `(i + 1) mod n`.
/// * Tree: the reduce hops mirrored (parent → child), in reverse round
///   order, so the root's result reaches every leaf.
pub fn distribute_schedule(topology: Topology, n: usize) -> Vec<Hop> {
    let reduce_steps = match topology {
        Topology::Star => 1,
        Topology::Ring => n.saturating_sub(1) as u64,
        Topology::Tree => {
            let mut rounds = 0u64;
            let mut stride = 1usize;
            while stride < n {
                rounds += 1;
                stride *= 2;
            }
            rounds
        }
    };
    let mut hops = Vec::new();
    match topology {
        Topology::Star => {
            for w in 0..n {
                hops.push(Hop {
                    step: reduce_steps,
                    from: n,
                    to: w,
                    chunk: None,
                });
            }
        }
        Topology::Ring => {
            for s in 0..n.saturating_sub(1) {
                for i in 0..n {
                    hops.push(Hop {
                        step: reduce_steps + s as u64,
                        from: i,
                        to: (i + 1) % n,
                        chunk: Some((i + 1 + n - s % n) % n),
                    });
                }
            }
        }
        Topology::Tree => {
            let mut mirrored: Vec<Hop> = reduce_schedule(Topology::Tree, n);
            mirrored.reverse();
            for h in &mirrored {
                hops.push(Hop {
                    step: reduce_steps + (reduce_steps - 1 - h.step),
                    from: h.to,
                    to: h.from,
                    chunk: None,
                });
            }
        }
    }
    hops
}

/// Checks a hop schedule against the group it will run over: every endpoint
/// must be a worker `0..n` (or the star driver `n`), and every chunk index
/// must fall inside the `chunks` chunk layout.
///
/// The executor validates its own generated schedules with this before
/// touching any per-node state, so a malformed schedule — from a future
/// hand-built topology or a corrupted reconfiguration — surfaces as a typed
/// error instead of an index panic.
///
/// # Errors
/// [`CompressError::InvalidConfig`] naming the first offending hop.
pub fn validate_schedule(hops: &[Hop], n: usize, chunks: usize) -> Result<(), CompressError> {
    for h in hops {
        if h.from > n || h.to > n || h.from == h.to {
            return Err(CompressError::InvalidConfig(format!(
                "schedule: hop {} → {} at step {} is outside the {n}-worker group",
                h.from, h.to, h.step
            )));
        }
        if let Some(c) = h.chunk {
            if c >= chunks {
                return Err(CompressError::InvalidConfig(format!(
                    "schedule: hop {} → {} at step {} names chunk {c} of {chunks}",
                    h.from, h.to, h.step
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for t in [Topology::Star, Topology::Ring, Topology::Tree] {
            assert_eq!(Topology::parse(t.name()).unwrap(), t);
        }
        assert_eq!(Topology::parse("RING").unwrap(), Topology::Ring);
        assert!(Topology::parse("mesh").is_err());
    }

    #[test]
    fn chunks_partition_the_key_space() {
        for (dim, n) in [(10u64, 3usize), (4096, 8), (7, 7), (5, 8), (0, 4)] {
            let ranges = chunk_ranges(dim, n);
            assert_eq!(ranges.len(), n);
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, dim);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            let max = ranges.iter().map(|r| r.end - r.start).max().unwrap();
            let min = ranges.iter().map(|r| r.end - r.start).min().unwrap();
            assert!(max - min <= 1, "near-equal chunks for dim {dim} n {n}");
        }
    }

    #[test]
    fn star_schedule_is_up_then_down() {
        let up = reduce_schedule(Topology::Star, 4);
        assert_eq!(up.len(), 4);
        assert!(up.iter().all(|h| h.to == 4));
        let down = distribute_schedule(Topology::Star, 4);
        assert_eq!(down.len(), 4);
        assert!(down.iter().all(|h| h.from == 4));
    }

    #[test]
    fn ring_reduce_scatter_ends_with_each_worker_owning_one_chunk() {
        // Replay the schedule over sets of contributed chunks: after the
        // reduce phase, worker i must have seen every worker's share of
        // chunk (i + 1) mod n.
        let n = 5;
        let mut have: Vec<Vec<std::collections::HashSet<usize>>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|_| std::collections::HashSet::from([i]))
                    .collect()
            })
            .collect();
        for h in reduce_schedule(Topology::Ring, n) {
            let c = h.chunk.unwrap();
            let sent = have[h.from][c].clone();
            have[h.to][c].extend(sent);
        }
        for (i, chunks) in have.iter().enumerate() {
            let owned = (i + 1) % n;
            assert_eq!(chunks[owned].len(), n, "worker {i} owns chunk {owned}");
        }
    }

    #[test]
    fn ring_allgather_spreads_every_chunk_everywhere() {
        let n = 5;
        // Start from the post-reduce state: worker i holds chunk (i+1)%n.
        let mut have: Vec<std::collections::HashSet<usize>> = (0..n)
            .map(|i| std::collections::HashSet::from([(i + 1) % n]))
            .collect();
        for h in distribute_schedule(Topology::Ring, n) {
            let c = h.chunk.unwrap();
            assert!(
                have[h.from].contains(&c),
                "worker {} forwards chunk {c} it does not hold at step {}",
                h.from,
                h.step
            );
            have[h.to].insert(c);
        }
        for (i, chunks) in have.iter().enumerate() {
            assert_eq!(chunks.len(), n, "worker {i} has every chunk");
        }
    }

    #[test]
    fn tree_reduce_reaches_root_and_broadcast_reaches_all() {
        for n in [2usize, 3, 4, 6, 8, 16] {
            let up = reduce_schedule(Topology::Tree, n);
            assert_eq!(up.len(), n - 1, "n−1 merges for n {n}");
            // Fold: every worker's contribution must reach worker 0.
            let mut have: Vec<std::collections::HashSet<usize>> = (0..n)
                .map(|i| std::collections::HashSet::from([i]))
                .collect();
            for h in &up {
                let sent = have[h.from].clone();
                have[h.to].extend(sent);
            }
            assert_eq!(have[0].len(), n, "root holds all for n {n}");

            let down = distribute_schedule(Topology::Tree, n);
            assert_eq!(down.len(), n - 1);
            let mut reached = vec![false; n];
            reached[0] = true;
            for h in &down {
                assert!(reached[h.from], "sender {} not yet reached", h.from);
                reached[h.to] = true;
            }
            assert!(reached.iter().all(|&r| r), "broadcast covers all for n {n}");
        }
    }

    #[test]
    fn hops_are_in_step_order() {
        for t in [Topology::Star, Topology::Ring, Topology::Tree] {
            for n in [2usize, 4, 7] {
                let mut all = reduce_schedule(t, n);
                all.extend(distribute_schedule(t, n));
                for w in all.windows(2) {
                    assert!(w[0].step <= w[1].step, "{t:?} n={n}");
                }
            }
        }
    }

    #[test]
    fn degenerate_single_worker_schedules_are_empty() {
        // A ring or tree of one has nobody to talk to: both phases are
        // hopless, which is what makes n=1 collapse to the star result.
        for t in [Topology::Ring, Topology::Tree] {
            assert!(reduce_schedule(t, 1).is_empty(), "{t:?}");
            assert!(distribute_schedule(t, 1).is_empty(), "{t:?}");
        }
        assert_eq!(reduce_schedule(Topology::Star, 1).len(), 1);
        assert_eq!(distribute_schedule(Topology::Star, 1).len(), 1);
    }

    #[test]
    fn generated_schedules_validate_and_malformed_ones_do_not() {
        for t in [Topology::Star, Topology::Ring, Topology::Tree] {
            for n in [1usize, 2, 3, 8] {
                let chunks = if t == Topology::Ring { n } else { 1 };
                validate_schedule(&reduce_schedule(t, n), n, chunks).unwrap();
                validate_schedule(&distribute_schedule(t, n), n, chunks).unwrap();
            }
        }
        let oob = [Hop {
            step: 0,
            from: 9,
            to: 0,
            chunk: None,
        }];
        assert!(validate_schedule(&oob, 4, 1).is_err());
        let selfsend = [Hop {
            step: 0,
            from: 2,
            to: 2,
            chunk: None,
        }];
        assert!(validate_schedule(&selfsend, 4, 1).is_err());
        let badchunk = [Hop {
            step: 0,
            from: 0,
            to: 1,
            chunk: Some(4),
        }];
        assert!(validate_schedule(&badchunk, 4, 4).is_err());
    }

    #[test]
    fn topology_serde_roundtrips() {
        for t in [Topology::Star, Topology::Ring, Topology::Tree] {
            let json = serde_json::to_string(&t).unwrap();
            let back: Topology = serde_json::from_str(&json).unwrap();
            assert_eq!(back, t);
        }
    }
}
