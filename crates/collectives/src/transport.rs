//! The link abstraction the executor moves hop payloads through.
//!
//! Collectives must not depend on the cluster simulator (the dependency
//! points the other way), so the executor is parameterized over this trait:
//! the cluster plugs in its lossy [`FaultyLink`]-backed transport and cost
//! model, tests and benches use [`PerfectTransport`].
//!
//! [`FaultyLink`]: ../../sketchml_cluster/faults/struct.FaultyLink.html

use crate::topology::Hop;

/// Moves one hop payload from sender to receiver.
pub trait Transport {
    /// Delivers `payload` along `hop`. Returns the bytes the receiver saw,
    /// or `None` when delivery failed for good (retries exhausted); the
    /// implementation accounts any wire time or retransmission cost itself.
    fn transmit(&mut self, hop: Hop, payload: &[u8]) -> Option<Vec<u8>>;
}

/// Lossless, cost-free delivery — the default for tests and byte-accounting
/// benches.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectTransport;

impl Transport for PerfectTransport {
    fn transmit(&mut self, _hop: Hop, payload: &[u8]) -> Option<Vec<u8>> {
        Some(payload.to_vec())
    }
}

impl<T: Transport + ?Sized> Transport for &mut T {
    fn transmit(&mut self, hop: Hop, payload: &[u8]) -> Option<Vec<u8>> {
        (**self).transmit(hop, payload)
    }
}

/// Rewrites the executor's *logical* node indices onto an elastic group's
/// *physical* member slots before handing each hop to the inner transport.
///
/// Schedules are always computed over `0..k` for the `k` members of the
/// current round, but fault schedules, straggler factors, and telemetry are
/// keyed by the physical worker slot a member occupies. Wrapping the real
/// transport in this adapter is the reconfiguration step: after an eviction
/// or join the caller passes the new member list and every hop lands on the
/// right physical link, with steps and chunks untouched. Logical index `k`
/// (the star driver) maps to the fixed `driver` slot.
#[derive(Debug)]
pub struct RemappedTransport<'a, T: ?Sized> {
    inner: &'a mut T,
    members: &'a [usize],
    driver: usize,
}

impl<'a, T: Transport + ?Sized> RemappedTransport<'a, T> {
    /// Wraps `inner` so logical index `i` maps to `members[i]`, and the
    /// logical driver `members.len()` maps to `driver`.
    pub fn new(inner: &'a mut T, members: &'a [usize], driver: usize) -> Self {
        RemappedTransport {
            inner,
            members,
            driver,
        }
    }

    fn physical(&self, logical: usize) -> usize {
        self.members.get(logical).copied().unwrap_or(self.driver)
    }
}

impl<T: Transport + ?Sized> Transport for RemappedTransport<'_, T> {
    fn transmit(&mut self, hop: Hop, payload: &[u8]) -> Option<Vec<u8>> {
        let mapped = Hop {
            step: hop.step,
            from: self.physical(hop.from),
            to: self.physical(hop.to),
            chunk: hop.chunk,
        };
        self.inner.transmit(mapped, payload)
    }
}
