//! The link abstraction the executor moves hop payloads through.
//!
//! Collectives must not depend on the cluster simulator (the dependency
//! points the other way), so the executor is parameterized over this trait:
//! the cluster plugs in its lossy [`FaultyLink`]-backed transport and cost
//! model, tests and benches use [`PerfectTransport`].
//!
//! [`FaultyLink`]: ../../sketchml_cluster/faults/struct.FaultyLink.html

use crate::topology::Hop;

/// Moves one hop payload from sender to receiver.
pub trait Transport {
    /// Delivers `payload` along `hop`. Returns the bytes the receiver saw,
    /// or `None` when delivery failed for good (retries exhausted); the
    /// implementation accounts any wire time or retransmission cost itself.
    fn transmit(&mut self, hop: Hop, payload: &[u8]) -> Option<Vec<u8>>;
}

/// Lossless, cost-free delivery — the default for tests and byte-accounting
/// benches.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectTransport;

impl Transport for PerfectTransport {
    fn transmit(&mut self, _hop: Hop, payload: &[u8]) -> Option<Vec<u8>> {
        Some(payload.to_vec())
    }
}

impl<T: Transport + ?Sized> Transport for &mut T {
    fn transmit(&mut self, hop: Hop, payload: &[u8]) -> Option<Vec<u8>> {
        (**self).transmit(hop, payload)
    }
}
