//! Mergeable-sketch allreduce: peer-to-peer aggregation of *compressed*
//! gradient payloads.
//!
//! The star (parameter-server) pattern funnels every worker's payload
//! through one driver link: at `n` workers the driver's NIC carries `2n`
//! full payloads per round while every other link sits idle. This crate
//! aggregates the SketchML wire format itself along ring and tree
//! topologies instead, so payloads are merged *where they meet* and no
//! single link ever carries more than a constant number of gradients'
//! worth of bytes:
//!
//! * [`Topology`] — star, ring and binary-tree hop schedules with
//!   deterministic chunking ([`chunk_ranges`], [`reduce_schedule`],
//!   [`distribute_schedule`]).
//! * [`allreduce`] — the executor: decodes, merges and re-emits real wire
//!   payloads hop by hop, accounting every byte per node.
//! * [`Transport`] — the pluggable link layer; the cluster simulator
//!   plugs in its lossy retrying links, tests use [`PerfectTransport`].
//!
//! Merging is defined by [`MergePolicy`] (re-exported from
//! `sketchml-core`): `Exact` relays f64 partial sums in AGG frames
//! (bit-faithful aggregation, ~9 B/key), `Resketch` re-compresses each
//! hop into the native sketch format (~2 B/key links, quantization
//! compounds once per merge hop but signs never flip), and `Linear`
//! merges raw Count-Sketch cell tables element-wise — sketch-of-sum
//! equals sum-of-sketches, so nothing compounds and heavy-hitter
//! extraction is deferred to the final decode (requires a compressor
//! with [`MergeableCompressor::supports_linear`], e.g. `countsketch`).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod executor;
pub mod topology;
pub mod transport;

pub use executor::{allreduce, AllreduceReport, Contribution};
pub use topology::{
    chunk_ranges, distribute_schedule, reduce_schedule, validate_schedule, Hop, Topology,
};
pub use transport::{PerfectTransport, RemappedTransport, Transport};

// Re-exported so downstream crates can name the merge vocabulary without a
// direct sketchml-core dependency.
pub use sketchml_core::{MergeAcc, MergePolicy, MergeableCompressor};
