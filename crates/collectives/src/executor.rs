//! The allreduce executor: drives a topology's hop schedule, performing the
//! real merges on real compressed payloads and accounting every byte.
//!
//! The executor is a *simulation* of a peer-to-peer collective in one
//! process: each node's partial aggregate lives in a [`MergeAcc`], hop
//! payloads are genuine wire frames ([`MergePolicy::Exact`] AGG frames,
//! natively re-compressed messages under [`MergePolicy::Resketch`], or raw
//! Count-Sketch cell tables under [`MergePolicy::Linear`] — merged
//! element-wise and extracted only at the final decode), and
//! every transmission goes through the caller's [`Transport`]. Hops are
//! performed in schedule order, so a seeded lossy transport yields
//! bit-reproducible outcomes.
//!
//! Loss semantics: a failed reduce hop drops the sender's partial from the
//! receiver's aggregate (the surviving weights are *not* renormalized — the
//! lost share of the batch is simply gone, matching the star trainer's
//! behavior). A failed distribute hop costs only accounting: the simulation
//! keeps a single authoritative model, so stale replicas diverge in time,
//! never in state.

use crate::topology::{
    chunk_ranges, distribute_schedule, reduce_schedule, validate_schedule, Hop, Topology,
};
use crate::transport::Transport;
use bytes::BytesMut;
use sketchml_core::{
    CompressError, CompressScratch, MergeAcc, MergePolicy, MergeableCompressor, SparseGradient,
};
use sketchml_telemetry as telemetry;

/// One worker's input to an allreduce round.
#[derive(Debug, Clone, Copy)]
pub struct Contribution<'a> {
    /// The worker's compressed gradient, in the compressor's native wire
    /// format.
    pub payload: &'a [u8],
    /// Weight the contribution enters the aggregate with (the worker's
    /// share of the batch; the driver trainer uses `instances / total`).
    pub weight: f64,
}

/// Outcome of one allreduce round: the aggregate plus full hop accounting.
#[derive(Debug, Clone)]
pub struct AllreduceReport {
    /// The aggregated gradient, as decoded from the payload the distribute
    /// phase actually ships (bit-exact to the merged sums under
    /// [`MergePolicy::Exact`]).
    pub gradient: SparseGradient,
    /// Scheduled hops performed (delivered or lost).
    pub hops: u64,
    /// Hop payloads merged into a partial aggregate.
    pub merges: u64,
    /// Hops whose delivery failed for good.
    pub lost_hops: u64,
    /// Payload bytes each node sent, indexed by node (for
    /// [`Topology::Star`] the driver is the extra last entry).
    pub node_sent: Vec<u64>,
    /// Payload bytes each node received (delivered hops only).
    pub node_received: Vec<u64>,
    /// Payload bytes shipped during the reduce phase — the uplink analog.
    pub reduce_bytes: u64,
    /// Payload bytes shipped during the distribute phase — the downlink
    /// analog.
    pub distribute_bytes: u64,
    /// Key-value pairs decoded (merges) or encoded (hop emissions) across
    /// the round — the codec work a cost model charges for. Workers' own
    /// initial decodes and final applies are excluded; they belong to the
    /// caller's worker-side accounting.
    pub codec_pairs: u64,
}

impl AllreduceReport {
    /// Total payload bytes put on the wire this round.
    pub fn total_bytes(&self) -> u64 {
        self.node_sent.iter().sum()
    }

    /// The busiest node's link traffic (sent + received) — the per-round
    /// bottleneck a topology is chosen to minimize. For star this is the
    /// driver's link; for ring it is uniform across workers.
    pub fn max_link_bytes(&self) -> u64 {
        self.node_sent
            .iter()
            .zip(&self.node_received)
            .map(|(s, r)| s + r)
            .max()
            .unwrap_or(0)
    }
}

/// Serializes `acc` as the next hop payload, returning the pairs encoded.
/// Empty partials always ship as (tiny) AGG frames: native compressors may
/// reject empty gradients, and an empty exact frame is smaller anyway.
fn emit(
    compressor: &dyn MergeableCompressor,
    acc: &MergeAcc,
    policy: MergePolicy,
    scratch: &mut CompressScratch,
    out: &mut BytesMut,
) -> Result<u64, CompressError> {
    if acc.is_empty() {
        acc.write_agg(out)?;
        return Ok(0);
    }
    compressor.emit_hop(acc, policy, scratch, out)?;
    Ok(acc.linear().map_or(acc.nnz() as u64, |t| t.nnz()))
}

/// Byte/hop bookkeeping shared by the three topology drivers.
struct Books {
    hops: u64,
    merges: u64,
    lost: u64,
    sent: Vec<u64>,
    received: Vec<u64>,
    reduce_bytes: u64,
    codec_pairs: u64,
}

impl Books {
    fn new(nodes: usize) -> Self {
        Books {
            hops: 0,
            merges: 0,
            lost: 0,
            sent: vec![0; nodes],
            received: vec![0; nodes],
            reduce_bytes: 0,
            codec_pairs: 0,
        }
    }

    /// Marks the reduce → distribute boundary: every byte sent so far
    /// belongs to the reduce phase.
    fn end_reduce_phase(&mut self) {
        self.reduce_bytes = self.sent.iter().sum();
    }

    fn into_report(self, gradient: SparseGradient) -> AllreduceReport {
        let total: u64 = self.sent.iter().sum();
        AllreduceReport {
            gradient,
            hops: self.hops,
            merges: self.merges,
            lost_hops: self.lost,
            reduce_bytes: self.reduce_bytes,
            distribute_bytes: total - self.reduce_bytes,
            codec_pairs: self.codec_pairs,
            node_sent: self.sent,
            node_received: self.received,
        }
    }

    /// Ships `payload` along `hop`, recording bytes and telemetry. Returns
    /// what the receiver saw.
    fn ship(&mut self, transport: &mut dyn Transport, hop: Hop, payload: &[u8]) -> Option<Vec<u8>> {
        self.hops += 1;
        self.sent[hop.from] += payload.len() as u64;
        telemetry::inc(telemetry::Counter::CollectiveHops);
        telemetry::add(telemetry::Counter::CollectiveHopBytes, payload.len() as u64);
        match transport.transmit(hop, payload) {
            Some(delivered) => {
                self.received[hop.to] += payload.len() as u64;
                Some(delivered)
            }
            None => {
                self.lost += 1;
                telemetry::inc(telemetry::Counter::CollectiveLostHops);
                None
            }
        }
    }

    /// Counts one successful merge of `pairs` key-value pairs.
    fn merged(&mut self, pairs: u64) {
        self.merges += 1;
        self.codec_pairs += pairs;
        telemetry::inc(telemetry::Counter::CollectiveMerges);
    }
}

/// Runs one allreduce round over `contributions`, returning the aggregate
/// and its accounting. `contributions.len()` defines the worker count.
///
/// Any `n ≥ 1` is accepted for every topology: a ring or tree of one has an
/// empty hop schedule and produces the star result bit for bit, which is
/// what lets an elastic group keep training after shrinking below the
/// configured [`Topology::min_workers`] floor.
///
/// # Errors
/// [`CompressError::InvalidConfig`] when there are no contributions, a
/// weight is non-finite, or the hop schedule fails [`validate_schedule`];
/// propagates decode, merge and re-encode failures.
pub fn allreduce(
    topology: Topology,
    policy: MergePolicy,
    compressor: &dyn MergeableCompressor,
    dim: u64,
    contributions: &[Contribution],
    transport: &mut dyn Transport,
) -> Result<AllreduceReport, CompressError> {
    let n = contributions.len();
    if n == 0 {
        return Err(CompressError::InvalidConfig(format!(
            "{} allreduce needs at least one contribution",
            topology.name()
        )));
    }
    for (w, c) in contributions.iter().enumerate() {
        if !c.weight.is_finite() {
            return Err(CompressError::InvalidConfig(format!(
                "allreduce: worker {w} weight {} must be finite",
                c.weight
            )));
        }
    }
    if policy == MergePolicy::Linear && !compressor.supports_linear() {
        return Err(CompressError::InvalidConfig(format!(
            "{} payloads are not linear; the {} policy needs a compressor \
             whose frames merge element-wise (e.g. countsketch)",
            compressor.name(),
            policy.name()
        )));
    }
    // Typed guard between the schedule generator and the per-node state it
    // indexes: a malformed schedule surfaces here, not as an index panic.
    let chunks = if topology == Topology::Ring { n } else { 1 };
    validate_schedule(&reduce_schedule(topology, n), n, chunks)?;
    validate_schedule(&distribute_schedule(topology, n), n, chunks)?;
    let mut scratch = CompressScratch::default();
    match topology {
        Topology::Star => star(
            policy,
            compressor,
            dim,
            contributions,
            transport,
            &mut scratch,
        ),
        Topology::Ring => ring(
            policy,
            compressor,
            dim,
            contributions,
            transport,
            &mut scratch,
        ),
        Topology::Tree => tree(
            policy,
            compressor,
            dim,
            contributions,
            transport,
            &mut scratch,
        ),
    }
}

/// Decodes the final payload a distribute phase ships — what every worker
/// actually applies to its model replica. Under [`MergePolicy::Linear`]
/// this is the single point where heavy hitters are extracted from the
/// merged cell table.
fn decode_final(
    compressor: &dyn MergeableCompressor,
    policy: MergePolicy,
    dim: u64,
    payloads: &[&[u8]],
    scratch: &mut CompressScratch,
) -> Result<SparseGradient, CompressError> {
    let mut acc = MergeAcc::new();
    acc.reset(dim);
    for p in payloads {
        compressor.accumulate_hop(&mut acc, p, 1.0, policy, scratch)?;
    }
    compressor.finish(&acc)
}

/// Chunk index of a ring hop. The ring schedule always chunks its hops, but
/// `chunk` is an `Option` at the type level, so an unchunked or out-of-range
/// hop — a malformed schedule, not an invariant of this module — degrades to
/// a typed error instead of a panic.
fn ring_chunk(hop: Hop, chunks: usize) -> Result<usize, CompressError> {
    match hop.chunk {
        Some(c) if c < chunks => Ok(c),
        _ => Err(CompressError::InvalidConfig(format!(
            "ring schedule: hop {} → {} at step {} must name a chunk below {chunks}, got {:?}",
            hop.from, hop.to, hop.step, hop.chunk
        ))),
    }
}

fn star(
    policy: MergePolicy,
    compressor: &dyn MergeableCompressor,
    dim: u64,
    contributions: &[Contribution],
    transport: &mut dyn Transport,
    scratch: &mut CompressScratch,
) -> Result<AllreduceReport, CompressError> {
    let n = contributions.len();
    let mut books = Books::new(n + 1); // workers 0..n, driver = n
    let mut acc = MergeAcc::new();
    acc.reset(dim);
    for hop in reduce_schedule(Topology::Star, n) {
        let c = &contributions[hop.from];
        if let Some(delivered) = books.ship(transport, hop, c.payload) {
            let _t = telemetry::time(telemetry::Stage::CollectiveMerge);
            let pairs =
                compressor.accumulate_hop(&mut acc, &delivered, c.weight, policy, scratch)?;
            books.merged(pairs);
        }
    }
    books.end_reduce_phase();
    let mut down = BytesMut::new();
    books.codec_pairs += emit(compressor, &acc, policy, scratch, &mut down)?;
    for hop in distribute_schedule(Topology::Star, n) {
        books.ship(transport, hop, &down);
    }
    let gradient = decode_final(compressor, policy, dim, &[&down], scratch)?;
    Ok(books.into_report(gradient))
}

fn ring(
    policy: MergePolicy,
    compressor: &dyn MergeableCompressor,
    dim: u64,
    contributions: &[Contribution],
    transport: &mut dyn Transport,
    scratch: &mut CompressScratch,
) -> Result<AllreduceReport, CompressError> {
    let n = contributions.len();
    let ranges = chunk_ranges(dim, n);
    let mut books = Books::new(n);

    // Each worker decodes its own contribution and splits it into one
    // partial accumulator per chunk: key ranges for pair aggregates, cell
    // ranges of the sketch table under [`MergePolicy::Linear`] (the table
    // is the payload, so the reduce-scatter shards *cells*, not keys).
    let mut accs: Vec<Vec<MergeAcc>> = Vec::with_capacity(n);
    let mut full = MergeAcc::new();
    for c in contributions {
        full.reset(dim);
        compressor.accumulate_hop(&mut full, c.payload, c.weight, policy, scratch)?;
        let mut per_chunk = Vec::with_capacity(n);
        if let Some(table) = full.linear() {
            for r in chunk_ranges(table.table_len(), n) {
                let mut acc = MergeAcc::new();
                acc.reset(dim);
                if r.end > r.start {
                    acc.fold_linear_slice(table, r.start, r.end - r.start)?;
                }
                per_chunk.push(acc);
            }
        } else {
            for r in &ranges {
                let lo = full.keys().partition_point(|&k| k < r.start);
                let hi = full.keys().partition_point(|&k| k < r.end);
                let mut acc = MergeAcc::new();
                acc.reset(dim);
                acc.accumulate_pairs(&full.keys()[lo..hi], &full.sums()[lo..hi], 1.0)?;
                per_chunk.push(acc);
            }
        }
        accs.push(per_chunk);
    }

    // Reduce-scatter: rotate partial chunk sums n − 1 steps; a lost hop
    // leaves the receiver's partial missing the sender's share.
    let mut out = BytesMut::new();
    for hop in reduce_schedule(Topology::Ring, n) {
        let c = ring_chunk(hop, n)?;
        books.codec_pairs += emit(compressor, &accs[hop.from][c], policy, scratch, &mut out)?;
        if let Some(delivered) = books.ship(transport, hop, &out) {
            let _t = telemetry::time(telemetry::Stage::CollectiveMerge);
            let pairs = compressor.accumulate_hop(
                &mut accs[hop.to][c],
                &delivered,
                1.0,
                policy,
                scratch,
            )?;
            books.merged(pairs);
        }
    }
    books.end_reduce_phase();

    // Allgather: each completed chunk travels the ring from its owner,
    // store-and-forward. `held[i][c]` is worker i's received copy.
    let mut held: Vec<Vec<Option<Vec<u8>>>> = vec![vec![None; n]; n];
    let mut owner_payload: Vec<Vec<u8>> = Vec::with_capacity(n);
    for c in 0..n {
        let owner = (c + n - 1) % n;
        books.codec_pairs += emit(compressor, &accs[owner][c], policy, scratch, &mut out)?;
        let bytes = out[..].to_vec();
        held[owner][c] = Some(bytes.clone());
        owner_payload.push(bytes);
    }
    for hop in distribute_schedule(Topology::Ring, n) {
        let c = ring_chunk(hop, n)?;
        let payload = match held[hop.from][c].take() {
            Some(p) => p,
            // The forwarder never received this chunk (an upstream hop was
            // lost); it forwards its stale partial — accounted, not merged.
            None => {
                emit(compressor, &accs[hop.from][c], policy, scratch, &mut out)?;
                out[..].to_vec()
            }
        };
        if let Some(delivered) = books.ship(transport, hop, &payload) {
            held[hop.to][c] = Some(delivered);
        }
        held[hop.from][c] = Some(payload);
    }

    // The authoritative aggregate: every chunk as its owner shipped it
    // (identical to every delivered copy — allgather forwards unchanged).
    let refs: Vec<&[u8]> = owner_payload.iter().map(Vec::as_slice).collect();
    let gradient = decode_final(compressor, policy, dim, &refs, scratch)?;
    Ok(books.into_report(gradient))
}

fn tree(
    policy: MergePolicy,
    compressor: &dyn MergeableCompressor,
    dim: u64,
    contributions: &[Contribution],
    transport: &mut dyn Transport,
    scratch: &mut CompressScratch,
) -> Result<AllreduceReport, CompressError> {
    let n = contributions.len();
    let mut books = Books::new(n);
    let mut accs: Vec<MergeAcc> = Vec::with_capacity(n);
    for c in contributions {
        let mut acc = MergeAcc::new();
        acc.reset(dim);
        compressor.accumulate_hop(&mut acc, c.payload, c.weight, policy, scratch)?;
        accs.push(acc);
    }

    // Pairwise reduce up to the root (worker 0). A lost hop drops the
    // sender's whole subtree from the aggregate.
    let mut out = BytesMut::new();
    for hop in reduce_schedule(Topology::Tree, n) {
        books.codec_pairs += emit(compressor, &accs[hop.from], policy, scratch, &mut out)?;
        if let Some(delivered) = books.ship(transport, hop, &out) {
            let _t = telemetry::time(telemetry::Stage::CollectiveMerge);
            let pairs =
                compressor.accumulate_hop(&mut accs[hop.to], &delivered, 1.0, policy, scratch)?;
            books.merged(pairs);
        }
    }
    books.end_reduce_phase();

    // Broadcast the root's aggregate back down the mirrored tree,
    // store-and-forward of the same bytes.
    books.codec_pairs += emit(compressor, &accs[0], policy, scratch, &mut out)?;
    let root_payload = out[..].to_vec();
    for hop in distribute_schedule(Topology::Tree, n) {
        books.ship(transport, hop, &root_payload);
    }
    let gradient = decode_final(compressor, policy, dim, &[&root_payload], scratch)?;
    Ok(books.into_report(gradient))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::PerfectTransport;
    use sketchml_core::{GradientCompressor, RawCompressor, SketchMlCompressor};

    /// Deterministic synthetic gradients: n workers, distinct keys/values.
    fn payloads(
        compressor: &dyn MergeableCompressor,
        dim: u64,
        n: usize,
        nnz: usize,
    ) -> Vec<Vec<u8>> {
        (0..n)
            .map(|w| {
                let mut state = 0x9E37_79B9u64.wrapping_mul(w as u64 + 1);
                let mut keys: Vec<u64> = (0..nnz)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        (state >> 16) % dim
                    })
                    .chain(std::iter::once(j_fix(w)))
                    .collect();
                keys.sort_unstable();
                keys.dedup();
                let values: Vec<f64> = keys
                    .iter()
                    .enumerate()
                    .map(|(j, _)| {
                        let sign = if (j + w) % 3 == 0 { -1.0 } else { 1.0 };
                        sign * (0.01 + 0.1 * ((j % 17) as f64) + 0.001 * w as f64)
                    })
                    .collect();
                let g = SparseGradient::new(dim, keys, values).unwrap();
                compressor.compress(&g).unwrap().payload.to_vec()
            })
            .collect()
    }

    /// A key guaranteed distinct per worker so payloads differ.
    fn j_fix(w: usize) -> u64 {
        7 + 13 * w as u64
    }

    fn contributions<'a>(payloads: &'a [Vec<u8>]) -> Vec<Contribution<'a>> {
        let n = payloads.len();
        payloads
            .iter()
            .map(|p| Contribution {
                payload: p,
                weight: 1.0 / n as f64,
            })
            .collect()
    }

    /// Driver-style reference: decode each payload, scale, sum in worker
    /// order.
    fn reference(
        compressor: &dyn MergeableCompressor,
        dim: u64,
        contribs: &[Contribution],
    ) -> SparseGradient {
        let mut scratch = CompressScratch::default();
        let mut acc = MergeAcc::new();
        acc.reset(dim);
        for c in contribs {
            compressor
                .accumulate(&mut acc, c.payload, c.weight, &mut scratch)
                .unwrap();
        }
        acc.to_gradient().unwrap()
    }

    fn assert_close(a: &SparseGradient, b: &SparseGradient, tol: f64) {
        assert_eq!(a.keys(), b.keys());
        for (x, y) in a.values().iter().zip(b.values()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn ring_tree_star_agree_under_exact_policy() {
        let c = SketchMlCompressor::default();
        let dim = 8_192u64;
        for n in [2usize, 3, 4, 8] {
            let ps = payloads(&c, dim, n, 400);
            let contribs = contributions(&ps);
            let want = reference(&c, dim, &contribs);
            for t in [Topology::Star, Topology::Ring, Topology::Tree] {
                let got = allreduce(
                    t,
                    MergePolicy::Exact,
                    &c,
                    dim,
                    &contribs,
                    &mut PerfectTransport,
                )
                .unwrap();
                // Same payload decodes, same weights; only the summation
                // order differs between topologies.
                assert_close(&got.gradient, &want, 1e-12);
                assert_eq!(got.lost_hops, 0);
            }
        }
    }

    #[test]
    fn hop_counts_match_the_textbook_formulas() {
        let c = RawCompressor::default();
        let dim = 1_000u64;
        for n in [2usize, 4, 8] {
            let ps = payloads(&c, dim, n, 50);
            let contribs = contributions(&ps);
            let run = |t| {
                allreduce(
                    t,
                    MergePolicy::Exact,
                    &c,
                    dim,
                    &contribs,
                    &mut PerfectTransport,
                )
                .unwrap()
            };
            let star = run(Topology::Star);
            assert_eq!(star.hops, 2 * n as u64);
            assert_eq!(star.merges, n as u64);
            let ring = run(Topology::Ring);
            assert_eq!(ring.hops, 2 * n as u64 * (n as u64 - 1));
            assert_eq!(ring.merges, n as u64 * (n as u64 - 1));
            let tree = run(Topology::Tree);
            assert_eq!(tree.hops, 2 * (n as u64 - 1));
            assert_eq!(tree.merges, n as u64 - 1);
        }
    }

    #[test]
    fn star_concentrates_bytes_on_the_driver_ring_spreads_them() {
        let c = SketchMlCompressor::default();
        let dim = 200_000u64;
        let n = 8usize;
        let ps = payloads(&c, dim, n, 8_000);
        let contribs = contributions(&ps);
        let star = allreduce(
            Topology::Star,
            MergePolicy::Resketch,
            &c,
            dim,
            &contribs,
            &mut PerfectTransport,
        )
        .unwrap();
        let ring = allreduce(
            Topology::Ring,
            MergePolicy::Resketch,
            &c,
            dim,
            &contribs,
            &mut PerfectTransport,
        )
        .unwrap();
        // The driver handles all 2n payloads; a ring node only its 4(n−1)/n
        // chunk share.
        assert_eq!(
            star.max_link_bytes(),
            star.node_sent[n] + star.node_received[n]
        );
        assert!(
            ring.max_link_bytes() * 3 <= star.max_link_bytes(),
            "ring bottleneck {} should be ≥3× below star {}",
            ring.max_link_bytes(),
            star.max_link_bytes()
        );
    }

    #[test]
    fn resketch_hops_carry_native_payloads() {
        let c = SketchMlCompressor::default();
        let dim = 100_000u64;
        let n = 4usize;
        let ps = payloads(&c, dim, n, 4_000);
        let contribs = contributions(&ps);
        let got = allreduce(
            Topology::Ring,
            MergePolicy::Resketch,
            &c,
            dim,
            &contribs,
            &mut PerfectTransport,
        )
        .unwrap();
        // Lossy per-hop re-quantization: keys survive (they ride the
        // lossless key codec), and a key whose contributions all share one
        // sign can never flip — quantile bucketing is sign-separated, so
        // every partial sum keeps its sign through each re-encode. Keys
        // with mixed-sign contributions may cancel either way; no lossy
        // codec can promise their sum's sign, so they are exempt.
        let want = reference(&c, dim, &contribs);
        assert_eq!(got.gradient.dim(), want.dim());
        let mut sign: std::collections::HashMap<u64, (bool, bool)> = Default::default();
        let mut scratch = CompressScratch::default();
        let mut one = MergeAcc::new();
        for contrib in &contribs {
            one.reset(dim);
            c.accumulate(&mut one, contrib.payload, 1.0, &mut scratch)
                .unwrap();
            for (k, v) in one.keys().iter().zip(one.sums()) {
                let e = sign.entry(*k).or_insert((false, false));
                e.0 |= *v > 0.0;
                e.1 |= *v < 0.0;
            }
        }
        let mut consensus_keys = 0usize;
        for (k, v) in got.gradient.keys().iter().zip(got.gradient.values()) {
            let (pos, neg) = sign[k];
            if pos && neg {
                continue;
            }
            consensus_keys += 1;
            assert!(
                *v == 0.0 || (*v > 0.0) == pos,
                "sign flip at same-sign key {k}: merged {v}, contributions positive={pos}"
            );
        }
        assert!(
            consensus_keys > 100,
            "test data must exercise same-sign keys"
        );
    }

    #[test]
    fn lost_reduce_hops_drop_contributions_not_the_round() {
        let c = RawCompressor::default();
        let dim = 1_000u64;
        let n = 4usize;
        let ps = payloads(&c, dim, n, 60);
        let contribs = contributions(&ps);

        /// Drops every hop out of worker 2 during the reduce phase.
        struct DropFrom2;
        impl Transport for DropFrom2 {
            fn transmit(&mut self, hop: Hop, payload: &[u8]) -> Option<Vec<u8>> {
                if hop.from == 2 && hop.step < 3 {
                    None
                } else {
                    Some(payload.to_vec())
                }
            }
        }
        let got = allreduce(
            Topology::Tree,
            MergePolicy::Exact,
            &c,
            dim,
            &contribs,
            &mut DropFrom2,
        )
        .unwrap();
        assert!(got.lost_hops > 0);
        // Worker 2's uplink carried its whole subtree — worker 3 had
        // already folded into it at step 0 — so both unique keys are gone.
        for w in [2usize, 3] {
            assert!(!got.gradient.keys().contains(&j_fix(w)), "worker {w} lost");
        }
        // Workers 0 and 1 still reached the aggregate.
        for w in [0usize, 1] {
            assert!(got.gradient.keys().contains(&j_fix(w)), "worker {w} kept");
        }
    }

    #[test]
    fn linear_policy_requires_a_linear_compressor() {
        let c = RawCompressor::default();
        let ps = payloads(&c, 100, 2, 5);
        let contribs = contributions(&ps);
        let err = allreduce(
            Topology::Ring,
            MergePolicy::Linear,
            &c,
            100,
            &contribs,
            &mut PerfectTransport,
        )
        .unwrap_err();
        assert!(matches!(err, CompressError::InvalidConfig(_)));
        assert!(err.to_string().contains("linear"));
    }

    #[test]
    fn linear_policy_is_bit_exact_across_topologies() {
        use sketchml_core::{CountSketchCompressor, CountSketchConfig};
        let c = CountSketchCompressor::new(CountSketchConfig::default()).unwrap();
        let dim = 16_384u64;
        let n = 4usize;
        // Dyadic values and power-of-two weights: every addition along any
        // merge order is exact, so sum-of-sketches equals sketch-of-sum
        // bit for bit.
        let grads: Vec<SparseGradient> = (0..n)
            .map(|w| {
                let keys: Vec<u64> = (0..64).map(|j| (j * 97 + w as u64 * 13) % dim).collect();
                let mut keys = keys;
                keys.sort_unstable();
                keys.dedup();
                let values: Vec<f64> = keys
                    .iter()
                    .enumerate()
                    .map(|(j, _)| ((j as f64) - 31.0) / 64.0)
                    .collect();
                SparseGradient::new(dim, keys, values).unwrap()
            })
            .collect();
        let ps: Vec<Vec<u8>> = grads
            .iter()
            .map(|g| c.compress(g).unwrap().payload.to_vec())
            .collect();
        let contribs: Vec<Contribution> = ps
            .iter()
            .map(|p| Contribution {
                payload: p,
                weight: 0.25,
            })
            .collect();
        // Single-node reference: sketch the weighted sum directly, extract.
        let mut weighted = grads.clone();
        for g in &mut weighted {
            g.scale(0.25);
        }
        let sum = SparseGradient::aggregate(&weighted).unwrap();
        let want = c.decompress(&c.compress(&sum).unwrap().payload).unwrap();
        for t in [Topology::Star, Topology::Ring, Topology::Tree] {
            let got = allreduce(
                t,
                MergePolicy::Linear,
                &c,
                dim,
                &contribs,
                &mut PerfectTransport,
            )
            .unwrap();
            assert_eq!(got.gradient.keys(), want.keys(), "{t:?}");
            assert_eq!(got.gradient.values(), want.values(), "{t:?}");
            assert_eq!(got.lost_hops, 0);
        }
    }

    #[test]
    fn zero_contributions_is_a_typed_error() {
        let c = RawCompressor::default();
        for t in [Topology::Star, Topology::Ring, Topology::Tree] {
            let err =
                allreduce(t, MergePolicy::Exact, &c, 100, &[], &mut PerfectTransport).unwrap_err();
            assert!(matches!(err, CompressError::InvalidConfig(_)), "{t:?}");
        }
    }

    #[test]
    fn degenerate_groups_match_star_bit_for_bit() {
        // An elastic group can shrink to two — or one — live members; the
        // ring and tree must then produce the star aggregate exactly. At
        // n=1 the schedules are empty; at n=2 f64 commutativity makes the
        // merge order irrelevant bit for bit.
        let raw = RawCompressor::default();
        let sketch = SketchMlCompressor::default();
        let dim = 4_096u64;
        for compressor in [&raw as &dyn MergeableCompressor, &sketch] {
            for n in [1usize, 2] {
                let ps = payloads(compressor, dim, n, 200);
                let contribs = contributions(&ps);
                let run = |t| {
                    allreduce(
                        t,
                        MergePolicy::Exact,
                        compressor,
                        dim,
                        &contribs,
                        &mut PerfectTransport,
                    )
                    .unwrap()
                };
                let star = run(Topology::Star);
                for t in [Topology::Ring, Topology::Tree] {
                    let got = run(t);
                    assert_eq!(
                        got.gradient.keys(),
                        star.gradient.keys(),
                        "{} n={n} keys",
                        t.name()
                    );
                    let star_bits: Vec<u64> =
                        star.gradient.values().iter().map(|v| v.to_bits()).collect();
                    let got_bits: Vec<u64> =
                        got.gradient.values().iter().map(|v| v.to_bits()).collect();
                    assert_eq!(got_bits, star_bits, "{} n={n} values", t.name());
                    assert_eq!(got.lost_hops, 0);
                }
            }
        }
    }

    #[test]
    fn malformed_ring_chunks_are_typed_errors() {
        let hop = Hop {
            step: 0,
            from: 0,
            to: 1,
            chunk: None,
        };
        let err = ring_chunk(hop, 4).unwrap_err();
        assert!(matches!(err, CompressError::InvalidConfig(_)));
        let hop = Hop {
            step: 0,
            from: 0,
            to: 1,
            chunk: Some(4),
        };
        assert!(ring_chunk(hop, 4).is_err());
        assert_eq!(
            ring_chunk(
                Hop {
                    step: 0,
                    from: 0,
                    to: 1,
                    chunk: Some(3)
                },
                4
            )
            .unwrap(),
            3
        );
    }

    #[test]
    fn weights_scale_contributions() {
        let c = RawCompressor::default();
        let dim = 64u64;
        let g = SparseGradient::new(dim, vec![3, 9], vec![1.0, -2.0]).unwrap();
        let p = c.compress(&g).unwrap().payload.to_vec();
        let contribs = vec![
            Contribution {
                payload: &p,
                weight: 0.25,
            },
            Contribution {
                payload: &p,
                weight: 0.75,
            },
        ];
        let got = allreduce(
            Topology::Ring,
            MergePolicy::Exact,
            &c,
            dim,
            &contribs,
            &mut PerfectTransport,
        )
        .unwrap();
        assert_eq!(got.gradient.keys(), &[3, 9]);
        assert!((got.gradient.values()[0] - 1.0).abs() < 1e-15);
        assert!((got.gradient.values()[1] + 2.0).abs() < 1e-15);
        assert!(allreduce(
            Topology::Ring,
            MergePolicy::Exact,
            &c,
            dim,
            &[
                Contribution {
                    payload: &p,
                    weight: f64::NAN
                },
                Contribution {
                    payload: &p,
                    weight: 0.5
                }
            ],
            &mut PerfectTransport,
        )
        .is_err());
    }
}
