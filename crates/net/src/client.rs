//! Client side of the live parameter server: a typed request/response
//! handle plus [`run_worker`], the complete training-participant loop a
//! worker process runs (including checkpoint-based recovery after a crash).

use crate::error::{ErrorCode, NetError};
use crate::sock::Conn;
use crate::wire::{PredictInstance, PushStatus, Request, Response, PROTOCOL_VERSION};
use sketchml_cluster::network::CostModel;
use sketchml_cluster::worker::{partition, process_glm_batch, WorkerScratch};
use sketchml_core::compressor_by_name;
use sketchml_data::Batcher;
use sketchml_ml::{Checkpoint, GlmModel, Instance};
use std::io::{BufReader, BufWriter, Write};
use std::time::Duration;

use crate::server::ServeSetup;

/// A model state pulled from the server.
#[derive(Debug, Clone)]
pub struct ModelView {
    /// Rounds baked into the weights.
    pub round: u64,
    /// Epochs completed.
    pub epoch: u32,
    /// Training finished; no newer model will be published.
    pub done: bool,
    /// Dense weight vector.
    pub weights: Vec<f64>,
}

/// A connected, version-negotiated client.
pub struct Client {
    reader: BufReader<Conn>,
    writer: BufWriter<Conn>,
}

impl Client {
    /// Connects to `tcp://host:port` / `unix://path` and negotiates the
    /// protocol version.
    ///
    /// # Errors
    /// [`NetError::Io`] on connect failure, [`NetError::VersionMismatch`] /
    /// [`NetError::Remote`] if negotiation fails.
    pub fn connect(addr: &str) -> Result<Client, NetError> {
        let conn = Conn::connect(addr)?;
        let writer_conn = conn.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(conn),
            writer: BufWriter::new(writer_conn),
        };
        let resp = client.call(&Request::Hello {
            min_version: PROTOCOL_VERSION,
            max_version: PROTOCOL_VERSION,
        })?;
        match resp {
            Response::HelloAck { version } if version == PROTOCOL_VERSION => Ok(client),
            Response::HelloAck { version } => Err(NetError::VersionMismatch {
                min: version,
                max: version,
            }),
            other => Err(unexpected("HelloAck", &other)),
        }
    }

    /// One request/response exchange. `Error` responses are surfaced as
    /// [`NetError::Remote`].
    ///
    /// # Errors
    /// Any wire-level or remote failure.
    pub fn call(&mut self, req: &Request) -> Result<Response, NetError> {
        req.write_to(&mut self.writer)?;
        self.writer.flush()?;
        Response::read_from(&mut self.reader)?.into_result()
    }

    /// Fetches the serve session config (the server is the single source
    /// of truth; workers regenerate everything from this).
    ///
    /// # Errors
    /// Wire failures, or [`NetError::Protocol`] if the JSON does not parse.
    pub fn get_config(&mut self) -> Result<ServeSetup, NetError> {
        match self.call(&Request::GetConfig)? {
            Response::Config { json } => serde_json::from_str(&json)
                .map_err(|e| NetError::Protocol(format!("config does not parse: {e}"))),
            other => Err(unexpected("Config", &other)),
        }
    }

    /// Pulls the model; with `wait`, the server blocks (bounded) until its
    /// round reaches `round` or training finishes.
    ///
    /// # Errors
    /// Wire failures.
    pub fn pull_model(
        &mut self,
        worker: u32,
        round: u64,
        wait: bool,
    ) -> Result<ModelView, NetError> {
        match self.call(&Request::PullModel {
            worker,
            round,
            wait,
        })? {
            Response::Model {
                round,
                epoch,
                done,
                weights,
            } => Ok(ModelView {
                round,
                epoch,
                done,
                weights,
            }),
            other => Err(unexpected("Model", &other)),
        }
    }

    /// Pushes one compressed gradient for `round`.
    ///
    /// # Errors
    /// Wire failures.
    pub fn push_gradient(
        &mut self,
        worker: u32,
        round: u64,
        loss_sum: f64,
        instances: u64,
        payload: Vec<u8>,
    ) -> Result<(PushStatus, u64), NetError> {
        match self.call(&Request::PushGradient {
            worker,
            round,
            loss_sum,
            instances,
            payload,
        })? {
            Response::PushAck { status, round } => Ok((status, round)),
            other => Err(unexpected("PushAck", &other)),
        }
    }

    /// Scores a batch of sparse instances against the live model.
    ///
    /// # Errors
    /// Wire failures.
    pub fn predict(&mut self, instances: Vec<PredictInstance>) -> Result<Vec<f64>, NetError> {
        match self.call(&Request::Predict { instances })? {
            Response::Prediction { scores } => Ok(scores),
            other => Err(unexpected("Prediction", &other)),
        }
    }

    /// Fetches the latest end-of-epoch checkpoint blob.
    ///
    /// # Errors
    /// Wire failures; `Remote{BadState}` before the first epoch completes.
    pub fn get_checkpoint(&mut self) -> Result<(u64, Vec<u8>), NetError> {
        match self.call(&Request::GetCheckpoint)? {
            Response::CheckpointBlob { epochs_done, bytes } => Ok((epochs_done, bytes)),
            other => Err(unexpected("CheckpointBlob", &other)),
        }
    }

    /// Fetches the server's live stats document (JSON).
    ///
    /// # Errors
    /// Wire failures.
    pub fn get_stats(&mut self) -> Result<String, NetError> {
        match self.call(&Request::GetStats)? {
            Response::Stats { json } => Ok(json),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    /// Wire failures.
    pub fn shutdown(&mut self) -> Result<(), NetError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected("ShutdownAck", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> NetError {
    NetError::Protocol(format!("expected {wanted}, got {got:?}"))
}

/// What one worker process did, for logging and test assertions.
#[derive(Debug, Clone, Default)]
pub struct WorkerRunStats {
    /// Gradients accepted by the server.
    pub pushes_accepted: u64,
    /// Pushes answered `Stale` (we fast-forwarded past a missed round).
    pub pushes_stale: u64,
    /// Pushes answered `Backpressure` (retried after a short sleep).
    pub backpressure_retries: u64,
    /// True if this worker joined mid-training and validated the server's
    /// checkpoint before participating (the crash-recovery path).
    pub recovered_from_checkpoint: bool,
    /// Round the worker observed when training completed.
    pub final_round: u64,
}

/// Replays the shared batch schedule so the worker knows which instance
/// indices belong to a given round. The server and every worker construct
/// the identical [`Batcher`] (same `n`, ratio, seed), so index slices line
/// up without shipping them over the wire.
struct Schedule {
    batcher: Batcher,
    rounds_per_epoch: u64,
    epochs_consumed: u64,
    current: Vec<Vec<usize>>,
}

impl Schedule {
    fn new(n: usize, batch_ratio: f64, seed: u64) -> Self {
        let batcher = Batcher::new(n, batch_ratio, seed);
        let rounds_per_epoch = batcher.batches_per_epoch() as u64;
        Schedule {
            batcher,
            rounds_per_epoch,
            epochs_consumed: 0,
            current: Vec::new(),
        }
    }

    /// The batch (instance indices) for global `round`, advancing the
    /// shared shuffle as needed. Rounds never go backwards.
    fn batch_for(&mut self, round: u64) -> &[usize] {
        let epoch = round / self.rounds_per_epoch;
        while self.epochs_consumed <= epoch {
            self.current = self.batcher.epoch();
            self.epochs_consumed += 1;
        }
        &self.current[(round % self.rounds_per_epoch) as usize]
    }
}

/// Runs the complete worker participant loop against a live server:
/// fetch config, regenerate the dataset, recover from the server's
/// checkpoint if joining mid-training, then pull→compute→push until done.
///
/// # Errors
/// Any wire, codec, or configuration failure.
pub fn run_worker(addr: &str, worker: u32) -> Result<WorkerRunStats, NetError> {
    let mut client = Client::connect(addr)?;
    let setup = client.get_config()?;
    setup.validate()?;
    if worker as usize >= setup.workers {
        return Err(NetError::InvalidConfig(format!(
            "worker id {worker} out of range for {} workers",
            setup.workers
        )));
    }
    let spec = setup.spec;
    let dim = setup.dataset.features as usize;
    let (train, _test) = setup.dataset.generate_split();
    let compressor = compressor_by_name(&setup.compressor)?;
    let cost = CostModel::cluster1();
    let mut ws = WorkerScratch::new();
    let mut schedule = Schedule::new(train.len(), setup.batch_ratio, spec.seed);
    let mut stats = WorkerRunStats::default();

    // Joining mid-training (e.g. respawned after a crash): prove the
    // server's checkpoint loads before participating, exactly what a
    // stateful worker would restore from.
    let view = client.pull_model(worker, 0, false)?;
    let mut round = view.round;
    if view.done {
        stats.final_round = round;
        return Ok(stats);
    }
    if round > 0 {
        match client.get_checkpoint() {
            Ok((_epochs, bytes)) => {
                Checkpoint::from_bytes(&bytes)
                    .map_err(|e| NetError::InvalidConfig(format!("bad checkpoint: {e}")))?;
                stats.recovered_from_checkpoint = true;
            }
            // Joining before the first epoch finished: nothing to restore.
            Err(NetError::Remote {
                code: ErrorCode::BadState,
                ..
            }) => {}
            Err(e) => return Err(e),
        }
    }

    let mut model = GlmModel::new(dim, spec.loss, spec.l2)
        .map_err(|e| NetError::InvalidConfig(e.to_string()))?;
    loop {
        let view = client.pull_model(worker, round, true)?;
        if view.done {
            stats.final_round = view.round;
            return Ok(stats);
        }
        if view.round < round {
            // Bounded server-side wait expired before the round advanced
            // (stragglers); just pull again.
            continue;
        }
        if view.round > round {
            // We lost rounds to the straggler timeout; fast-forward.
            round = view.round;
        }
        if view.weights.len() != dim {
            return Err(NetError::Protocol(format!(
                "model has {} weights, expected {dim}",
                view.weights.len()
            )));
        }
        model.weights = view.weights;

        let batch = schedule.batch_for(round);
        let part = partition(batch, setup.workers)
            .into_iter()
            .nth(worker as usize)
            .unwrap_or_default();
        let slice: Vec<Instance> = part.iter().map(|&i| train[i].clone()).collect();
        let msg = process_glm_batch(&model, &slice, compressor.as_ref(), &cost, &mut ws)?;

        loop {
            let (status, server_round) = client.push_gradient(
                worker,
                round,
                msg.loss_sum,
                msg.instances as u64,
                msg.payload.clone(),
            )?;
            match status {
                PushStatus::Accepted => {
                    stats.pushes_accepted += 1;
                    round += 1;
                    break;
                }
                PushStatus::Stale => {
                    stats.pushes_stale += 1;
                    round = server_round;
                    break;
                }
                PushStatus::Backpressure => {
                    stats.backpressure_retries += 1;
                    std::thread::sleep(Duration::from_millis(10));
                }
                PushStatus::Done => {
                    stats.final_round = server_round;
                    return Ok(stats);
                }
            }
        }
    }
}
