//! Typed errors for the live parameter server.

use sketchml_core::CompressError;
use std::fmt;

/// Numeric error codes carried by wire-level `Error` responses, so a peer
/// can react without parsing the human-readable message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request frame was structurally invalid.
    Malformed,
    /// No protocol version overlaps between the peers.
    Version,
    /// The server's bounded push queue is full; retry after a pull.
    Backpressure,
    /// The request was valid but the server failed internally.
    Internal,
    /// The request is not valid in the server's current state.
    BadState,
}

impl ErrorCode {
    /// Wire representation.
    pub fn to_u16(self) -> u16 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::Version => 2,
            ErrorCode::Backpressure => 3,
            ErrorCode::Internal => 4,
            ErrorCode::BadState => 5,
        }
    }

    /// Parses the wire representation.
    pub fn from_u16(v: u16) -> Option<Self> {
        Some(match v {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::Version,
            3 => ErrorCode::Backpressure,
            4 => ErrorCode::Internal,
            5 => ErrorCode::BadState,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::Version => "version",
            ErrorCode::Backpressure => "backpressure",
            ErrorCode::Internal => "internal",
            ErrorCode::BadState => "bad-state",
        };
        f.write_str(name)
    }
}

/// Everything that can go wrong on the live-serving path. Frame decoding
/// returns `Protocol`/`Io` instead of panicking, including on truncated or
/// adversarial input — the partial-read test suite enforces this.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure (includes EOF mid-frame).
    Io(std::io::Error),
    /// A frame violated the wire grammar (bad magic, kind, length, or body).
    Protocol(String),
    /// Version negotiation failed: the peer supports `[min, max]`.
    VersionMismatch {
        /// Lowest protocol version the peer accepts.
        min: u16,
        /// Highest protocol version the peer accepts.
        max: u16,
    },
    /// The remote answered with a typed error response.
    Remote {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// A gradient payload failed to compress/decompress.
    Compress(CompressError),
    /// Configuration or state error local to this process.
    InvalidConfig(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Protocol(m) => write!(f, "protocol error: {m}"),
            NetError::VersionMismatch { min, max } => {
                write!(
                    f,
                    "no common protocol version (peer supports {min}..={max})"
                )
            }
            NetError::Remote { code, message } => {
                write!(f, "remote error [{code}]: {message}")
            }
            NetError::Compress(e) => write!(f, "codec error: {e}"),
            NetError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Compress(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<CompressError> for NetError {
    fn from(e: CompressError) -> Self {
        NetError::Compress(e)
    }
}
