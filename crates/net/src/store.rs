//! Concurrent read-optimized model store.
//!
//! Epoch-snapshot concurrency: the live model is an immutable
//! [`ModelSnapshot`] behind an `Arc`. Readers (the `Predict`/`PullModel`
//! handler threads) take a read lock just long enough to clone the `Arc`,
//! then score against the snapshot with no lock held — a `Predict` burst
//! never blocks behind a training update. The single trainer thread
//! publishes a new snapshot by swapping the `Arc` under the write lock
//! (an O(1) pointer store), then wakes blocked pulls via a condvar.

use sketchml_ml::GlmModel;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

/// One immutable published model state.
#[derive(Debug)]
pub struct ModelSnapshot {
    /// Global training rounds (mini-batches) baked into `model`.
    pub round: u64,
    /// Epochs completed.
    pub epoch: u32,
    /// Whether training has finished (no further snapshots will follow).
    pub done: bool,
    /// The model at this round.
    pub model: GlmModel,
}

/// Shared store: many reader threads, one writer (the trainer).
#[derive(Debug)]
pub struct ModelStore {
    current: RwLock<Arc<ModelSnapshot>>,
    // Separate wait channel so publish() wakes blocked PullModel handlers
    // without readers ever touching a mutex on the fast path.
    wait: Mutex<()>,
    advanced: Condvar,
}

impl ModelStore {
    /// Creates a store seeded with the round-0 model.
    pub fn new(model: GlmModel) -> Self {
        ModelStore {
            current: RwLock::new(Arc::new(ModelSnapshot {
                round: 0,
                epoch: 0,
                done: false,
                model,
            })),
            wait: Mutex::new(()),
            advanced: Condvar::new(),
        }
    }

    /// The live snapshot (lock-free scoring after an O(1) `Arc` clone).
    pub fn snapshot(&self) -> Arc<ModelSnapshot> {
        self.current
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Publishes a new snapshot and wakes every blocked
    /// [`wait_for_round`](Self::wait_for_round) call.
    pub fn publish(&self, snapshot: ModelSnapshot) {
        {
            let mut cur = self.current.write().unwrap_or_else(|e| e.into_inner());
            *cur = Arc::new(snapshot);
        }
        let _guard = self.wait.lock().unwrap_or_else(|e| e.into_inner());
        self.advanced.notify_all();
    }

    /// Blocks until the store holds a snapshot with `round >= round` (or a
    /// final `done` snapshot), bounded by `timeout`. Returns the qualifying
    /// snapshot, or the freshest one if the timeout expires first.
    pub fn wait_for_round(&self, round: u64, timeout: Duration) -> Arc<ModelSnapshot> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let snap = self.snapshot();
            if snap.round >= round || snap.done {
                return snap;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return snap;
            }
            let guard = self.wait.lock().unwrap_or_else(|e| e.into_inner());
            // Re-check under the wait lock: publish() swaps the snapshot
            // before taking this lock, so a snapshot observed stale here is
            // either still stale (we sleep; the publisher's notify_all
            // happens after we release the guard into wait_timeout) or
            // already fresh (we loop and return it).
            let snap = self.snapshot();
            if snap.round >= round || snap.done {
                return snap;
            }
            let remaining = deadline.saturating_duration_since(now);
            let (_g, _timed_out) = self
                .advanced
                .wait_timeout(guard, remaining.min(Duration::from_millis(50)))
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchml_ml::GlmLoss;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn model(dim: usize) -> GlmModel {
        GlmModel::new(dim, GlmLoss::Logistic, 0.01).unwrap()
    }

    #[test]
    fn snapshot_is_stable_across_publishes() {
        let store = ModelStore::new(model(4));
        let before = store.snapshot();
        let mut next = model(4);
        next.weights[2] = 7.5;
        store.publish(ModelSnapshot {
            round: 1,
            epoch: 0,
            done: false,
            model: next,
        });
        // The old snapshot is immutable: readers mid-predict see a
        // consistent model even after the swap.
        assert_eq!(before.round, 0);
        assert_eq!(before.model.weights[2], 0.0);
        let after = store.snapshot();
        assert_eq!(after.round, 1);
        assert_eq!(after.model.weights[2], 7.5);
    }

    #[test]
    fn wait_for_round_blocks_until_published() {
        let store = Arc::new(ModelStore::new(model(2)));
        let published = Arc::new(AtomicBool::new(false));
        let waiter = {
            let store = Arc::clone(&store);
            let published = Arc::clone(&published);
            std::thread::spawn(move || {
                let snap = store.wait_for_round(3, Duration::from_secs(10));
                assert!(published.load(Ordering::SeqCst), "woke before publish");
                snap.round
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        published.store(true, Ordering::SeqCst);
        store.publish(ModelSnapshot {
            round: 3,
            epoch: 1,
            done: false,
            model: model(2),
        });
        assert_eq!(waiter.join().unwrap(), 3);
    }

    #[test]
    fn wait_for_round_returns_freshest_on_timeout_and_done() {
        let store = ModelStore::new(model(2));
        let snap = store.wait_for_round(99, Duration::from_millis(20));
        assert_eq!(snap.round, 0);
        store.publish(ModelSnapshot {
            round: 5,
            epoch: 2,
            done: true,
            model: model(2),
        });
        // `done` satisfies any round.
        let snap = store.wait_for_round(99, Duration::from_secs(10));
        assert!(snap.done);
        assert_eq!(snap.round, 5);
    }
}
