//! Threaded parameter-server runtime.
//!
//! Thread anatomy:
//!
//! ```text
//! accept loop ──▶ bounded conn queue ──▶ handler pool (N threads)
//!                                            │ Predict / PullModel ──▶ ModelStore (epoch snapshots)
//!                                            │ PushGradient ──▶ bounded push queue
//!                                                                     │
//!                                            trainer thread ◀─────────┘
//!                                            (coalesce per round → aggregate → apply → publish)
//! ```
//!
//! Backpressure is bounded-queue at both seams: a full connection queue
//! refuses the socket with a typed `Backpressure` error before any protocol
//! work, and a full push queue answers `PushAck{Backpressure}` so the worker
//! retries instead of piling unbounded memory onto the server.

use crate::error::{ErrorCode, NetError};
use crate::obs;
use crate::sock::{Conn, Listener};
use crate::store::{ModelSnapshot, ModelStore};
use crate::wire::{PredictInstance, PushStatus, Request, Response, PROTOCOL_VERSION};
use serde::{Deserialize, Serialize};
use sketchml_cluster::driver::{aggregate, DriverScratch};
use sketchml_cluster::network::CostModel;
use sketchml_cluster::worker::WorkerMessage;
use sketchml_cluster::TrainSpec;
use sketchml_core::compressor_by_name;
use sketchml_data::{Batcher, SparseDatasetSpec};
use sketchml_encoding::stats::SizeReport;
use sketchml_ml::{Checkpoint, GlmModel, Instance, OptimizerState, SparseVector};
use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Everything a serve session needs; the server is the single config
/// authority, shipped to workers via `GetConfig` so a recovering worker
/// needs nothing but the address and its id.
#[derive(Debug, Clone, Serialize)]
pub struct ServeSetup {
    /// Synthetic dataset recipe; workers regenerate the identical split.
    pub dataset: SparseDatasetSpec,
    /// Training hyper-parameters (seed drives the shared batch shuffle).
    pub spec: TrainSpec,
    /// Number of training workers expected each round.
    pub workers: usize,
    /// Mini-batch fraction per round (matches `ClusterConfig::batch_ratio`).
    pub batch_ratio: f64,
    /// Registry name of the gradient compressor (e.g. `sketchml`, `adam`).
    pub compressor: String,
    /// After the first push of a round arrives, wait at most this long for
    /// the stragglers before aggregating a partial round.
    pub round_timeout_ms: u64,
    /// Abort training if no push at all arrives for this long.
    pub idle_timeout_ms: u64,
    /// Artificial delay after each round (lets tests widen kill windows).
    pub round_sleep_ms: u64,
}

// Hand-written (repo idiom): fields added later default instead of failing,
// so older clients keep parsing newer servers' configs.
impl serde::Deserialize for ServeSetup {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_obj()
            .ok_or_else(|| serde::Error::custom("ServeSetup: expected an object"))?;
        let opt_u64 = |name: &str, default: u64| -> Result<u64, serde::Error> {
            match serde::field(obj, name) {
                Ok(val) => serde::Deserialize::from_value(val),
                Err(_) => Ok(default),
            }
        };
        Ok(ServeSetup {
            dataset: serde::Deserialize::from_value(serde::field(obj, "dataset")?)?,
            spec: serde::Deserialize::from_value(serde::field(obj, "spec")?)?,
            workers: serde::Deserialize::from_value(serde::field(obj, "workers")?)?,
            batch_ratio: serde::Deserialize::from_value(serde::field(obj, "batch_ratio")?)?,
            compressor: serde::Deserialize::from_value(serde::field(obj, "compressor")?)?,
            round_timeout_ms: opt_u64("round_timeout_ms", 2_000)?,
            idle_timeout_ms: opt_u64("idle_timeout_ms", 30_000)?,
            round_sleep_ms: opt_u64("round_sleep_ms", 0)?,
        })
    }
}

impl ServeSetup {
    /// A setup with the paper's cluster1 defaults for `workers` workers.
    pub fn new(dataset: SparseDatasetSpec, spec: TrainSpec, workers: usize) -> Self {
        ServeSetup {
            dataset,
            spec,
            workers,
            batch_ratio: 0.1,
            compressor: "sketchml".into(),
            round_timeout_ms: 2_000,
            idle_timeout_ms: 30_000,
            round_sleep_ms: 0,
        }
    }

    /// Validates ranges that the trainer thread depends on.
    ///
    /// # Errors
    /// [`NetError::InvalidConfig`] naming the violated constraint.
    pub fn validate(&self) -> Result<(), NetError> {
        if self.workers == 0 {
            return Err(NetError::InvalidConfig("workers must be positive".into()));
        }
        if !(self.batch_ratio > 0.0 && self.batch_ratio <= 1.0) {
            return Err(NetError::InvalidConfig(format!(
                "batch_ratio must be in (0, 1], got {}",
                self.batch_ratio
            )));
        }
        if self.dataset.instances == 0 {
            return Err(NetError::InvalidConfig("dataset is empty".into()));
        }
        Ok(())
    }
}

/// Final figures of one serve session, also exposed via `GetStats` when
/// training completes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServeSummary {
    /// Global rounds aggregated.
    pub rounds: u64,
    /// Epochs completed.
    pub epochs_done: u64,
    /// Test loss after the final epoch.
    pub final_test_loss: f64,
    /// Best (lowest) per-epoch test loss.
    pub best_test_loss: f64,
    /// Final test accuracy (classification only).
    pub accuracy: Option<f64>,
    /// Rounds aggregated with every expected worker present.
    pub full_rounds: u64,
    /// Rounds aggregated after the straggler timeout with a partial set.
    pub partial_rounds: u64,
    /// True if the session was shut down before `max_epochs`.
    pub aborted: bool,
}

/// One accepted push, queued for the trainer thread.
struct PushEnvelope {
    worker: u32,
    round: u64,
    loss_sum: f64,
    instances: usize,
    payload: Vec<u8>,
}

/// Bounded MPSC queue: handler threads push, the trainer pops.
struct PushQueue {
    inner: Mutex<VecDeque<PushEnvelope>>,
    cap: usize,
    nonempty: Condvar,
}

impl PushQueue {
    fn new(cap: usize) -> Self {
        PushQueue {
            inner: Mutex::new(VecDeque::new()),
            cap,
            nonempty: Condvar::new(),
        }
    }

    /// `false` if the queue is full (backpressure).
    fn try_push(&self, env: PushEnvelope) -> bool {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() >= self.cap {
            return false;
        }
        q.push_back(env);
        obs::queue_depth(q.len() as u64);
        self.nonempty.notify_one();
        true
    }

    fn pop_timeout(&self, timeout: Duration) -> Option<PushEnvelope> {
        let deadline = Instant::now() + timeout;
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(env) = q.pop_front() {
                return Some(env);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .nonempty
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
    }
}

/// Live server counters (also mirrored into the global telemetry registry
/// when a session is recording).
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    predicts: AtomicU64,
    predict_instances: AtomicU64,
    pushes: AtomicU64,
    pulls: AtomicU64,
    stale_pushes: AtomicU64,
    backpressure: AtomicU64,
    refused_conns: AtomicU64,
    inflight: AtomicU64,
}

/// Shared state between the runtime threads and [`ServerHandle`].
struct Shared {
    setup: ServeSetup,
    setup_json: String,
    store: ModelStore,
    queue: PushQueue,
    counters: Counters,
    shutdown: AtomicBool,
    /// Latest end-of-epoch checkpoint: `(epochs_done, serialized bytes)`.
    checkpoint: Mutex<Option<(u64, Vec<u8>)>>,
    summary: Mutex<Option<ServeSummary>>,
    cost: CostModel,
    /// Live connections by id: shutdown closes them so handler threads
    /// blocked mid-read unblock instead of pinning `join()` forever.
    conns: Mutex<std::collections::HashMap<u64, Conn>>,
    conn_seq: AtomicU64,
    /// The bound address; shutdown self-connects to unblock `accept()`.
    addr: String,
}

impl Shared {
    fn register_conn(&self, conn: &Conn) -> Option<u64> {
        let handle = conn.try_clone().ok()?;
        let id = self.conn_seq.fetch_add(1, Ordering::Relaxed);
        self.conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, handle);
        Some(id)
    }

    fn unregister_conn(&self, id: Option<u64>) {
        if let Some(id) = id {
            self.conns
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&id);
        }
    }

    fn close_all_conns(&self) {
        for (_, conn) in self.conns.lock().unwrap_or_else(|e| e.into_inner()).drain() {
            conn.shutdown();
        }
    }
}

impl Shared {
    fn stats_json(&self) -> String {
        #[derive(Serialize)]
        struct Stats {
            round: u64,
            epoch: u32,
            done: bool,
            connections: u64,
            requests: u64,
            predicts: u64,
            predict_instances: u64,
            pushes: u64,
            pulls: u64,
            stale_pushes: u64,
            backpressure_rejects: u64,
            refused_connections: u64,
            summary: Option<ServeSummary>,
        }
        let snap = self.store.snapshot();
        let summary = self
            .summary
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let c = &self.counters;
        let stats = Stats {
            round: snap.round,
            epoch: snap.epoch,
            done: snap.done,
            connections: c.connections.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed),
            predicts: c.predicts.load(Ordering::Relaxed),
            predict_instances: c.predict_instances.load(Ordering::Relaxed),
            pushes: c.pushes.load(Ordering::Relaxed),
            pulls: c.pulls.load(Ordering::Relaxed),
            stale_pushes: c.stale_pushes.load(Ordering::Relaxed),
            backpressure_rejects: c.backpressure.load(Ordering::Relaxed),
            refused_connections: c.refused_conns.load(Ordering::Relaxed),
            summary,
        };
        serde_json::to_string(&stats).unwrap_or_else(|_| "{}".into())
    }
}

/// A running server; dropping the handle does NOT stop it — call
/// [`shutdown`](Self::shutdown) then [`join`](Self::join).
pub struct Server {
    shared: Arc<Shared>,
    addr: String,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts the full runtime (accept loop, handler pool, trainer thread)
    /// on an already-bound listener.
    ///
    /// # Errors
    /// [`NetError::InvalidConfig`] for a bad setup or unknown compressor.
    pub fn start(setup: ServeSetup, listener: Listener) -> Result<Server, NetError> {
        setup.validate()?;
        // Fail fast on an unknown compressor name (workers resolve it too).
        compressor_by_name(&setup.compressor)?;
        let dim = setup.dataset.features as usize;
        let model = GlmModel::new(dim, setup.spec.loss, setup.spec.l2)
            .map_err(|e| NetError::InvalidConfig(e.to_string()))?;
        let setup_json = serde_json::to_string(&setup)
            .map_err(|e| NetError::InvalidConfig(format!("setup does not serialize: {e}")))?;
        let addr = listener.local_desc();
        let shared = Arc::new(Shared {
            queue: PushQueue::new(setup.workers.saturating_mul(4).max(8)),
            store: ModelStore::new(model),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            checkpoint: Mutex::new(None),
            summary: Mutex::new(None),
            cost: CostModel::cluster1(),
            conns: Mutex::new(std::collections::HashMap::new()),
            conn_seq: AtomicU64::new(0),
            addr: addr.clone(),
            setup_json,
            setup,
        });

        let mut threads = Vec::new();
        // Handler pool fed by a bounded connection queue.
        let pool_size = (shared.setup.workers + 4).min(16);
        let conn_queue: Arc<(Mutex<VecDeque<Conn>>, Condvar)> =
            Arc::new((Mutex::new(VecDeque::new()), Condvar::new()));
        let conn_cap = pool_size * 4;
        for _ in 0..pool_size {
            let shared = Arc::clone(&shared);
            let cq = Arc::clone(&conn_queue);
            threads.push(std::thread::spawn(move || handler_loop(&shared, &cq)));
        }
        {
            let shared = Arc::clone(&shared);
            let cq = Arc::clone(&conn_queue);
            threads.push(std::thread::spawn(move || {
                accept_loop(&shared, &listener, &cq, conn_cap);
            }));
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || trainer_loop(&shared)));
        }
        Ok(Server {
            shared,
            addr,
            threads,
        })
    }

    /// Convenience: bind a loopback TCP listener and start.
    ///
    /// # Errors
    /// [`NetError::Io`] on bind failure, plus everything [`Self::start`]
    /// can return.
    pub fn bind_tcp(setup: ServeSetup, addr: &str) -> Result<Server, NetError> {
        Server::start(setup, Listener::bind_tcp(addr)?)
    }

    /// The bound address (`tcp://ip:port` / `unix://path`), with the
    /// OS-resolved port when bound to port 0.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The live model store (for in-process benches and tests).
    pub fn store(&self) -> &ModelStore {
        &self.shared.store
    }

    /// Current counters as JSON (same document `GetStats` serves).
    pub fn stats_json(&self) -> String {
        self.shared.stats_json()
    }

    /// Signals every runtime thread to stop.
    pub fn shutdown(&self) {
        begin_shutdown(&self.shared);
    }

    /// Blocks until the trainer finished (or the server was shut down) and
    /// all threads exited; returns the training summary.
    pub fn join(mut self) -> ServeSummary {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.shared
            .summary
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
            .unwrap_or_default()
    }

    /// Blocks until training completes (without shutting the server down —
    /// it keeps serving `Predict`), returning the summary.
    pub fn wait_trained(&self) -> ServeSummary {
        loop {
            if let Some(s) = self
                .shared
                .summary
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone()
            {
                return s;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

fn begin_shutdown(shared: &Arc<Shared>) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    // Unblock any handler parked in wait_for_round and the trainer's
    // pop_timeout (they poll the flag); unblock the accept loop with a
    // throwaway connection.
    shared.store.publish(ModelSnapshot {
        done: true,
        ..clone_snapshot(&shared.store.snapshot())
    });
    // Closing live connections unblocks handlers parked in a read; the
    // throwaway connect unblocks the accept loop itself.
    shared.close_all_conns();
    if let Ok(c) = Conn::connect(&shared.addr) {
        c.shutdown();
    }
}

fn clone_snapshot(s: &ModelSnapshot) -> ModelSnapshot {
    ModelSnapshot {
        round: s.round,
        epoch: s.epoch,
        done: s.done,
        model: s.model.clone(),
    }
}

// ---------------------------------------------------------------------------
// Accept loop + handler pool
// ---------------------------------------------------------------------------

fn accept_loop(
    shared: &Arc<Shared>,
    listener: &Listener,
    cq: &Arc<(Mutex<VecDeque<Conn>>, Condvar)>,
    cap: usize,
) {
    loop {
        let conn = match listener.accept() {
            Ok(c) => c,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        shared.counters.connections.fetch_add(1, Ordering::Relaxed);
        obs::connection();
        let (q, cv) = &**cq;
        let mut q = q.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() >= cap {
            // Bounded connection queue: refuse with a typed error before
            // doing any protocol work.
            drop(q);
            shared
                .counters
                .refused_conns
                .fetch_add(1, Ordering::Relaxed);
            let mut w = BufWriter::new(conn);
            let _ = Response::Error {
                code: ErrorCode::Backpressure,
                message: "connection queue full".into(),
            }
            .write_to(&mut w);
            continue;
        }
        q.push_back(conn);
        cv.notify_one();
    }
    // Wake every parked handler so the pool can exit.
    let (q, cv) = &**cq;
    drop(q.lock().unwrap_or_else(|e| e.into_inner()));
    cv.notify_all();
}

fn handler_loop(shared: &Arc<Shared>, cq: &Arc<(Mutex<VecDeque<Conn>>, Condvar)>) {
    loop {
        let conn = {
            let (q, cv) = &**cq;
            let mut q = q.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(c) = q.pop_front() {
                    break c;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let (guard, _) = cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        };
        // Errors on one connection only tear down that connection.
        let id = shared.register_conn(&conn);
        let _ = serve_connection(shared, conn);
        shared.unregister_conn(id);
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Serves one connection until EOF, a protocol error, or shutdown.
fn serve_connection(shared: &Arc<Shared>, conn: Conn) -> Result<(), NetError> {
    let writer_conn = conn.try_clone()?;
    let mut reader = BufReader::new(conn);
    let mut writer = BufWriter::new(writer_conn);

    // Version negotiation first: anything else on a fresh connection is a
    // protocol error.
    match Request::read_from(&mut reader)? {
        Request::Hello {
            min_version,
            max_version,
        } => {
            if min_version > PROTOCOL_VERSION || max_version < PROTOCOL_VERSION {
                Response::Error {
                    code: ErrorCode::Version,
                    message: format!("server speaks only version {PROTOCOL_VERSION}"),
                }
                .write_to(&mut writer)?;
                return Err(NetError::VersionMismatch {
                    min: min_version,
                    max: max_version,
                });
            }
            Response::HelloAck {
                version: PROTOCOL_VERSION,
            }
            .write_to(&mut writer)?;
        }
        _ => {
            Response::Error {
                code: ErrorCode::Malformed,
                message: "expected Hello as the first request".into(),
            }
            .write_to(&mut writer)?;
            return Err(NetError::Protocol("no Hello".into()));
        }
    }

    // Per-connection snapshot cache for predict coalescing: consecutive
    // Predict frames already sitting in the read buffer score against one
    // snapshot clone instead of hitting the store per request.
    let mut cached: Option<Arc<ModelSnapshot>> = None;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let req = match Request::read_from(&mut reader) {
            Ok(r) => r,
            Err(NetError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Ok(()); // clean disconnect
            }
            Err(NetError::Protocol(m)) => {
                // Answer typed, then drop the connection: after a grammar
                // violation the stream offset can no longer be trusted.
                let _ = Response::Error {
                    code: ErrorCode::Malformed,
                    message: m.clone(),
                }
                .write_to(&mut writer);
                return Err(NetError::Protocol(m));
            }
            Err(e) => return Err(e),
        };
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        let inflight = shared.counters.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        obs::request(inflight);
        let result = handle_request(shared, req, &mut cached, &mut reader, &mut writer);
        shared.counters.inflight.fetch_sub(1, Ordering::Relaxed);
        match result {
            Ok(true) => {}
            Ok(false) => return Ok(()), // shutdown requested
            Err(e) => return Err(e),
        }
    }
}

/// Handles one decoded request; `Ok(false)` ends the connection.
fn handle_request(
    shared: &Arc<Shared>,
    req: Request,
    cached: &mut Option<Arc<ModelSnapshot>>,
    reader: &mut BufReader<Conn>,
    writer: &mut BufWriter<Conn>,
) -> Result<bool, NetError> {
    match req {
        Request::Hello { .. } => {
            Response::Error {
                code: ErrorCode::BadState,
                message: "session already negotiated".into(),
            }
            .write_to(writer)?;
        }
        Request::GetConfig => {
            Response::Config {
                json: shared.setup_json.clone(),
            }
            .write_to(writer)?;
        }
        Request::PullModel {
            worker: _,
            round,
            wait,
        } => {
            shared.counters.pulls.fetch_add(1, Ordering::Relaxed);
            obs::pull();
            let snap = if wait {
                shared
                    .store
                    .wait_for_round(round, Duration::from_millis(10_000))
            } else {
                shared.store.snapshot()
            };
            Response::Model {
                round: snap.round,
                epoch: snap.epoch,
                done: snap.done,
                weights: snap.model.weights.clone(),
            }
            .write_to(writer)?;
        }
        Request::PushGradient {
            worker,
            round,
            loss_sum,
            instances,
            payload,
        } => {
            let snap = shared.store.snapshot();
            let (status, ack_round) = if snap.done {
                (PushStatus::Done, snap.round)
            } else if round < snap.round {
                shared.counters.stale_pushes.fetch_add(1, Ordering::Relaxed);
                (PushStatus::Stale, snap.round)
            } else if shared.queue.try_push(PushEnvelope {
                worker,
                round,
                loss_sum,
                instances: instances as usize,
                payload,
            }) {
                shared.counters.pushes.fetch_add(1, Ordering::Relaxed);
                obs::push();
                (PushStatus::Accepted, snap.round)
            } else {
                shared.counters.backpressure.fetch_add(1, Ordering::Relaxed);
                obs::backpressure();
                (PushStatus::Backpressure, snap.round)
            };
            Response::PushAck {
                status,
                round: ack_round,
            }
            .write_to(writer)?;
        }
        Request::Predict { instances } => {
            // Coalescing: reuse the cached snapshot while more requests are
            // already buffered on this connection; refresh once the burst
            // drains so a long-lived client still observes training updates.
            let snap = cached.take().unwrap_or_else(|| shared.store.snapshot());
            let scores = score_batch(&snap.model, &instances)?;
            shared.counters.predicts.fetch_add(1, Ordering::Relaxed);
            shared
                .counters
                .predict_instances
                .fetch_add(scores.len() as u64, Ordering::Relaxed);
            obs::predict(scores.len() as u64);
            Response::Prediction { scores }.write_to(writer)?;
            if !std::io::BufRead::fill_buf(reader)
                .map(|b| b.is_empty())
                .unwrap_or(true)
            {
                *cached = Some(snap);
            }
        }
        Request::GetCheckpoint => {
            let ck = shared
                .checkpoint
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone();
            match ck {
                Some((epochs_done, bytes)) => {
                    Response::CheckpointBlob { epochs_done, bytes }.write_to(writer)?;
                }
                None => {
                    Response::Error {
                        code: ErrorCode::BadState,
                        message: "no checkpoint captured yet".into(),
                    }
                    .write_to(writer)?;
                }
            }
        }
        Request::GetStats => {
            Response::Stats {
                json: shared.stats_json(),
            }
            .write_to(writer)?;
        }
        Request::Shutdown => {
            Response::ShutdownAck.write_to(writer)?;
            writer.flush().ok();
            // `addr` is not plumbed here; unblock accept via self-connect
            // from the shutdown initiator path instead.
            begin_shutdown(shared);
            return Ok(false);
        }
    }
    Ok(true)
}

fn score_batch(model: &GlmModel, instances: &[PredictInstance]) -> Result<Vec<f64>, NetError> {
    let mut scores = Vec::with_capacity(instances.len());
    for inst in instances {
        let features = SparseVector::new(inst.indices.clone(), inst.values.clone())
            .map_err(|e| NetError::Protocol(format!("predict instance: {e}")))?;
        scores.push(model.score(&Instance::new(features, 0.0)));
    }
    Ok(scores)
}

// ---------------------------------------------------------------------------
// Trainer thread
// ---------------------------------------------------------------------------

fn trainer_loop(shared: &Arc<Shared>) {
    let result = run_training(shared);
    let mut summary = match result {
        Ok(s) => s,
        Err(e) => {
            // Surface the abort through stats; tests read `aborted`.
            let snap = shared.store.snapshot();
            eprintln!("trainer aborted at round {}: {e}", snap.round);
            ServeSummary {
                rounds: snap.round,
                epochs_done: u64::from(snap.epoch),
                aborted: true,
                ..ServeSummary::default()
            }
        }
    };
    if shared.shutdown.load(Ordering::SeqCst) {
        summary.aborted =
            summary.aborted || summary.epochs_done < shared.setup.spec.max_epochs as u64;
    }
    // Final snapshot: mark done so blocked pulls drain.
    shared.store.publish(ModelSnapshot {
        done: true,
        ..clone_snapshot(&shared.store.snapshot())
    });
    *shared.summary.lock().unwrap_or_else(|e| e.into_inner()) = Some(summary);
}

fn run_training(shared: &Arc<Shared>) -> Result<ServeSummary, NetError> {
    let setup = &shared.setup;
    let spec = setup.spec;
    let dim = setup.dataset.features as usize;
    let (train, test) = setup.dataset.generate_split();
    let compressor = compressor_by_name(&setup.compressor)?;
    let mut model = shared.store.snapshot().model.clone();
    let mut opt = OptimizerState::build(spec.optimizer, spec.opt_state, dim)
        .map_err(|e| NetError::InvalidConfig(e.to_string()))?;
    let mut batcher = Batcher::new(train.len(), setup.batch_ratio, spec.seed);
    let mut ds = DriverScratch::new();
    let mut summary = ServeSummary {
        best_test_loss: f64::INFINITY,
        ..ServeSummary::default()
    };
    let mut round = 0u64;

    'epochs: for epoch in 1..=spec.max_epochs {
        let batches = batcher.epoch();
        for _batch in &batches {
            if shared.shutdown.load(Ordering::SeqCst) {
                break 'epochs;
            }
            let msgs = collect_round(shared, round)?;
            if msgs.len() == setup.workers {
                summary.full_rounds += 1;
                obs::coalesced_round();
            } else {
                summary.partial_rounds += 1;
            }
            if !msgs.is_empty() {
                let agg = aggregate(
                    &msgs,
                    dim as u64,
                    compressor.as_ref(),
                    &shared.cost,
                    false,
                    &mut ds,
                )?;
                model.apply_gradient(&mut opt, agg.gradient.keys(), agg.gradient.values());
            }
            round += 1;
            summary.rounds = round;
            if setup.round_sleep_ms > 0 {
                std::thread::sleep(Duration::from_millis(setup.round_sleep_ms));
            }
            shared.store.publish(ModelSnapshot {
                round,
                epoch: (epoch - 1) as u32,
                done: false,
                model: model.clone(),
            });
        }
        summary.epochs_done = epoch as u64;
        let test_loss = model.mean_loss(&test);
        summary.final_test_loss = test_loss;
        summary.best_test_loss = summary.best_test_loss.min(test_loss);
        // End-of-epoch checkpoint: real serialized bytes a kill -9'd worker
        // pulls to recover (the server proves they load before serving).
        let ck = Checkpoint::new(model.clone(), opt.clone(), epoch);
        let bytes = ck
            .to_bytes()
            .map_err(|e| NetError::InvalidConfig(format!("checkpoint: {e}")))?;
        Checkpoint::from_bytes(&bytes)
            .map_err(|e| NetError::InvalidConfig(format!("checkpoint reload: {e}")))?;
        *shared.checkpoint.lock().unwrap_or_else(|e| e.into_inner()) = Some((epoch as u64, bytes));
        // Re-publish with the completed-epoch count so pulls see progress.
        shared.store.publish(ModelSnapshot {
            round,
            epoch: epoch as u32,
            done: false,
            model: model.clone(),
        });
    }
    summary.accuracy = model.accuracy(&test);
    summary.aborted = summary.epochs_done < spec.max_epochs as u64;
    Ok(summary)
}

/// Coalesces one round's pushes: waits for the first push (idle deadline),
/// then for the stragglers (round timeout), deduplicating by worker and
/// dropping stale rounds. Returns messages ordered by worker id — the same
/// order the in-process simulator aggregates in, so the float sums match.
fn collect_round(shared: &Arc<Shared>, round: u64) -> Result<Vec<WorkerMessage>, NetError> {
    let setup = &shared.setup;
    let mut slots: Vec<Option<PushEnvelope>> = (0..setup.workers).map(|_| None).collect();
    let mut got = 0usize;
    let idle = Duration::from_millis(setup.idle_timeout_ms.max(1));
    let straggler = Duration::from_millis(setup.round_timeout_ms.max(1));
    let mut first_at: Option<Instant> = None;
    let start = Instant::now();
    while got < setup.workers {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let deadline = match first_at {
            Some(t) => t + straggler,
            None => start + idle,
        };
        let now = Instant::now();
        if now >= deadline {
            if first_at.is_none() {
                return Err(NetError::InvalidConfig(format!(
                    "no push arrived for round {round} within {}ms",
                    setup.idle_timeout_ms
                )));
            }
            break; // aggregate the partial set
        }
        let Some(env) = shared
            .queue
            .pop_timeout((deadline - now).min(Duration::from_millis(100)))
        else {
            continue;
        };
        if env.round != round || (env.worker as usize) >= setup.workers {
            // Stale (a slow worker lost the race against the straggler
            // timeout) or out-of-range; the pusher already got its ack.
            continue;
        }
        let slot = &mut slots[env.worker as usize];
        if slot.is_none() {
            *slot = Some(env);
            got += 1;
            if first_at.is_none() {
                first_at = Some(Instant::now());
            }
        }
    }
    Ok(slots
        .into_iter()
        .flatten()
        .map(|env| WorkerMessage {
            report: SizeReport {
                key_bytes: 0,
                value_bytes: 0,
                header_bytes: env.payload.len(),
                pairs: 0,
            },
            payload: env.payload,
            loss_sum: env.loss_sum,
            instances: env.instances,
            sim_compute: 0.0,
            sim_codec: 0.0,
            measured_codec: 0.0,
            measured_compute: 0.0,
        })
        .collect())
}
