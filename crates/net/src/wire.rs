//! Length-prefixed request/response wire protocol.
//!
//! Every message is one frame:
//!
//! ```text
//! magic(0xA7, 1B) | kind(1B) | body_len(u32 LE, 4B) | body(body_len B)
//! ```
//!
//! Readers use [`Read::read_exact`], so a frame split across any number of
//! socket writes — at any byte boundary — reassembles transparently; a
//! stream that ends mid-frame yields a typed [`NetError::Io`], and any
//! grammar violation a [`NetError::Protocol`]. Decoding never panics. The
//! gradient bytes inside [`Request::PushGradient`] are opaque here: they are
//! whatever the session's [`GradientCompressor`] produced (v2 CRC frames
//! included), checked by the codec on decode.
//!
//! [`GradientCompressor`]: sketchml_core::GradientCompressor

use crate::error::{ErrorCode, NetError};
use std::io::{Read, Write};

/// Single supported protocol version; `Hello` negotiates a range so future
/// versions can interoperate.
pub const PROTOCOL_VERSION: u16 = 1;

/// Frame lead-in byte; anything else is a protocol error.
pub const MAGIC: u8 = 0xA7;

/// Hard cap on one frame's body, protecting the reader from adversarial
/// length prefixes (256 MiB comfortably holds a 32M-feature dense model).
pub const MAX_BODY: usize = 256 << 20;

/// Outcome of a `PushGradient`, carried by [`Response::PushAck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushStatus {
    /// The push was queued for aggregation.
    Accepted,
    /// The round already closed; the worker should re-pull and catch up.
    Stale,
    /// Training is complete; no more pushes are needed.
    Done,
    /// The bounded push queue was full; retry after a short pause.
    Backpressure,
}

impl PushStatus {
    fn to_u8(self) -> u8 {
        match self {
            PushStatus::Accepted => 0,
            PushStatus::Stale => 1,
            PushStatus::Done => 2,
            PushStatus::Backpressure => 3,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => PushStatus::Accepted,
            1 => PushStatus::Stale,
            2 => PushStatus::Done,
            3 => PushStatus::Backpressure,
            _ => return None,
        })
    }
}

/// One sparse instance of a `Predict` request: ascending feature indices
/// plus their values.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictInstance {
    /// Strictly ascending feature indices.
    pub indices: Vec<u32>,
    /// Feature values, parallel to `indices`.
    pub values: Vec<f64>,
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens a session: the client's supported protocol version range.
    Hello {
        /// Lowest version the client speaks.
        min_version: u16,
        /// Highest version the client speaks.
        max_version: u16,
    },
    /// Asks for the serialized training setup (the server is the single
    /// config authority, so a recovering worker needs only address + id).
    GetConfig,
    /// Fetches the model snapshot for `round`; with `wait`, blocks until
    /// the store has advanced to at least that round (or training is done).
    PullModel {
        /// Requesting worker id (0-based), for logs/stats.
        worker: u32,
        /// Round whose model the worker wants.
        round: u64,
        /// Block server-side until the round is available.
        wait: bool,
    },
    /// A worker's compressed contribution for one round.
    PushGradient {
        /// Pushing worker id (0-based).
        worker: u32,
        /// Global round the gradient was computed against.
        round: u64,
        /// Sum of per-instance losses over the worker's slice.
        loss_sum: f64,
        /// Number of instances in the worker's slice.
        instances: u64,
        /// Compressed gradient bytes (opaque codec frame).
        payload: Vec<u8>,
    },
    /// Scores a batch of sparse instances against the live model.
    Predict {
        /// Instances to score.
        instances: Vec<PredictInstance>,
    },
    /// Fetches the latest end-of-epoch checkpoint (serialized bytes).
    GetCheckpoint,
    /// Fetches a JSON summary of server counters.
    GetStats,
    /// Asks the server to stop serving (used by tests and the CLI).
    Shutdown,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Accepts the session at the negotiated version.
    HelloAck {
        /// Version both sides will speak.
        version: u16,
    },
    /// The serialized [`ServeSetup`](crate::server::ServeSetup) JSON.
    Config {
        /// JSON document.
        json: String,
    },
    /// A model snapshot.
    Model {
        /// Rounds of training baked into these weights.
        round: u64,
        /// Epochs completed.
        epoch: u32,
        /// Whether training has finished.
        done: bool,
        /// Dense weight vector.
        weights: Vec<f64>,
    },
    /// Acknowledges a push.
    PushAck {
        /// What happened to the push.
        status: PushStatus,
        /// The server's current round at the time of the ack.
        round: u64,
    },
    /// Scores for a `Predict` batch, in request order.
    Prediction {
        /// Raw model scores (margins), one per instance.
        scores: Vec<f64>,
    },
    /// The latest checkpoint.
    CheckpointBlob {
        /// Epochs the checkpoint covers.
        epochs_done: u64,
        /// Serialized [`Checkpoint`](sketchml_ml::Checkpoint) bytes.
        bytes: Vec<u8>,
    },
    /// JSON counter summary.
    Stats {
        /// JSON document.
        json: String,
    },
    /// Confirms a shutdown request.
    ShutdownAck,
    /// A typed failure.
    Error {
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

// --- frame kinds -----------------------------------------------------------

const K_HELLO: u8 = 0x01;
const K_HELLO_ACK: u8 = 0x02;
const K_GET_CONFIG: u8 = 0x03;
const K_CONFIG: u8 = 0x04;
const K_PULL_MODEL: u8 = 0x05;
const K_MODEL: u8 = 0x06;
const K_PUSH_GRADIENT: u8 = 0x07;
const K_PUSH_ACK: u8 = 0x08;
const K_PREDICT: u8 = 0x09;
const K_PREDICTION: u8 = 0x0A;
const K_GET_CHECKPOINT: u8 = 0x0B;
const K_CHECKPOINT_BLOB: u8 = 0x0C;
const K_GET_STATS: u8 = 0x0D;
const K_STATS: u8 = 0x0E;
const K_SHUTDOWN: u8 = 0x0F;
const K_SHUTDOWN_ACK: u8 = 0x10;
const K_ERROR: u8 = 0x7F;

// --- body cursor -----------------------------------------------------------

/// Bounds-checked little-endian cursor over one frame body. Every accessor
/// returns a typed error on underrun — malformed bodies can never panic the
/// handler thread.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                NetError::Protocol(format!(
                    "body underrun: wanted {n} bytes at offset {} of {}",
                    self.pos,
                    self.buf.len()
                ))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, NetError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2B")))
    }

    fn u32(&mut self) -> Result<u32, NetError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4B")))
    }

    fn u64(&mut self) -> Result<u64, NetError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    fn f64(&mut self) -> Result<f64, NetError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    /// A u32-length-prefixed byte section.
    fn bytes(&mut self) -> Result<Vec<u8>, NetError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn string(&mut self) -> Result<String, NetError> {
        String::from_utf8(self.bytes()?)
            .map_err(|_| NetError::Protocol("string section is not UTF-8".into()))
    }

    /// A count of items about to be decoded, sanity-bounded so a forged
    /// count cannot trigger a huge allocation before the underrun check.
    fn count(&mut self, bytes_per_item: usize) -> Result<usize, NetError> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(bytes_per_item.max(1)) > remaining {
            return Err(NetError::Protocol(format!(
                "count {n} x {bytes_per_item}B exceeds the {remaining}B left in the body"
            )));
        }
        Ok(n)
    }

    fn finish(self) -> Result<(), NetError> {
        if self.pos != self.buf.len() {
            return Err(NetError::Protocol(format!(
                "{} trailing bytes after the message body",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

// --- framing ---------------------------------------------------------------

fn write_frame(w: &mut impl Write, kind: u8, body: &[u8]) -> Result<(), NetError> {
    if body.len() > MAX_BODY {
        return Err(NetError::Protocol(format!(
            "outgoing body of {} bytes exceeds MAX_BODY {MAX_BODY}",
            body.len()
        )));
    }
    let mut header = [0u8; 6];
    header[0] = MAGIC;
    header[1] = kind;
    header[2..6].copy_from_slice(&(body.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Reads one raw frame: `(kind, body)`. Blocks until the full frame has
/// arrived (partial reads reassemble via `read_exact`).
fn read_frame(r: &mut impl Read) -> Result<(u8, Vec<u8>), NetError> {
    let mut header = [0u8; 6];
    r.read_exact(&mut header)?;
    if header[0] != MAGIC {
        return Err(NetError::Protocol(format!(
            "bad frame magic 0x{:02X} (expected 0x{MAGIC:02X})",
            header[0]
        )));
    }
    let kind = header[1];
    let len = u32::from_le_bytes(header[2..6].try_into().expect("4B")) as usize;
    if len > MAX_BODY {
        return Err(NetError::Protocol(format!(
            "frame body of {len} bytes exceeds MAX_BODY {MAX_BODY}"
        )));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok((kind, body))
}

impl Request {
    /// Serializes the request as one frame.
    ///
    /// # Errors
    /// [`NetError::Io`] on write failure, [`NetError::Protocol`] if the body
    /// exceeds [`MAX_BODY`].
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), NetError> {
        let mut body = Vec::new();
        let kind = match self {
            Request::Hello {
                min_version,
                max_version,
            } => {
                body.extend_from_slice(&min_version.to_le_bytes());
                body.extend_from_slice(&max_version.to_le_bytes());
                K_HELLO
            }
            Request::GetConfig => K_GET_CONFIG,
            Request::PullModel {
                worker,
                round,
                wait,
            } => {
                body.extend_from_slice(&worker.to_le_bytes());
                body.extend_from_slice(&round.to_le_bytes());
                body.push(u8::from(*wait));
                K_PULL_MODEL
            }
            Request::PushGradient {
                worker,
                round,
                loss_sum,
                instances,
                payload,
            } => {
                body.extend_from_slice(&worker.to_le_bytes());
                body.extend_from_slice(&round.to_le_bytes());
                body.extend_from_slice(&loss_sum.to_le_bytes());
                body.extend_from_slice(&instances.to_le_bytes());
                put_bytes(&mut body, payload);
                K_PUSH_GRADIENT
            }
            Request::Predict { instances } => {
                body.extend_from_slice(&(instances.len() as u32).to_le_bytes());
                for inst in instances {
                    body.extend_from_slice(&(inst.indices.len() as u32).to_le_bytes());
                    for (&i, &v) in inst.indices.iter().zip(&inst.values) {
                        body.extend_from_slice(&i.to_le_bytes());
                        body.extend_from_slice(&v.to_le_bytes());
                    }
                }
                K_PREDICT
            }
            Request::GetCheckpoint => K_GET_CHECKPOINT,
            Request::GetStats => K_GET_STATS,
            Request::Shutdown => K_SHUTDOWN,
        };
        write_frame(w, kind, &body)
    }

    /// Reads and decodes one request frame.
    ///
    /// # Errors
    /// [`NetError::Io`] on a truncated stream, [`NetError::Protocol`] on any
    /// grammar violation. Never panics.
    pub fn read_from(r: &mut impl Read) -> Result<Self, NetError> {
        let (kind, body) = read_frame(r)?;
        let mut c = Cursor::new(&body);
        let req = match kind {
            K_HELLO => Request::Hello {
                min_version: c.u16()?,
                max_version: c.u16()?,
            },
            K_GET_CONFIG => Request::GetConfig,
            K_PULL_MODEL => Request::PullModel {
                worker: c.u32()?,
                round: c.u64()?,
                wait: c.u8()? != 0,
            },
            K_PUSH_GRADIENT => Request::PushGradient {
                worker: c.u32()?,
                round: c.u64()?,
                loss_sum: c.f64()?,
                instances: c.u64()?,
                payload: c.bytes()?,
            },
            K_PREDICT => {
                let n = c.count(4)?;
                let mut instances = Vec::with_capacity(n);
                for _ in 0..n {
                    let nnz = c.count(12)?;
                    let mut indices = Vec::with_capacity(nnz);
                    let mut values = Vec::with_capacity(nnz);
                    for _ in 0..nnz {
                        indices.push(c.u32()?);
                        values.push(c.f64()?);
                    }
                    instances.push(PredictInstance { indices, values });
                }
                Request::Predict { instances }
            }
            K_GET_CHECKPOINT => Request::GetCheckpoint,
            K_GET_STATS => Request::GetStats,
            K_SHUTDOWN => Request::Shutdown,
            other => {
                return Err(NetError::Protocol(format!(
                    "unknown request kind 0x{other:02X}"
                )))
            }
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serializes the response as one frame.
    ///
    /// # Errors
    /// [`NetError::Io`] on write failure, [`NetError::Protocol`] if the body
    /// exceeds [`MAX_BODY`].
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), NetError> {
        let mut body = Vec::new();
        let kind = match self {
            Response::HelloAck { version } => {
                body.extend_from_slice(&version.to_le_bytes());
                K_HELLO_ACK
            }
            Response::Config { json } => {
                put_bytes(&mut body, json.as_bytes());
                K_CONFIG
            }
            Response::Model {
                round,
                epoch,
                done,
                weights,
            } => {
                body.extend_from_slice(&round.to_le_bytes());
                body.extend_from_slice(&epoch.to_le_bytes());
                body.push(u8::from(*done));
                body.extend_from_slice(&(weights.len() as u32).to_le_bytes());
                for w in weights {
                    body.extend_from_slice(&w.to_le_bytes());
                }
                K_MODEL
            }
            Response::PushAck { status, round } => {
                body.push(status.to_u8());
                body.extend_from_slice(&round.to_le_bytes());
                K_PUSH_ACK
            }
            Response::Prediction { scores } => {
                body.extend_from_slice(&(scores.len() as u32).to_le_bytes());
                for s in scores {
                    body.extend_from_slice(&s.to_le_bytes());
                }
                K_PREDICTION
            }
            Response::CheckpointBlob { epochs_done, bytes } => {
                body.extend_from_slice(&epochs_done.to_le_bytes());
                put_bytes(&mut body, bytes);
                K_CHECKPOINT_BLOB
            }
            Response::Stats { json } => {
                put_bytes(&mut body, json.as_bytes());
                K_STATS
            }
            Response::ShutdownAck => K_SHUTDOWN_ACK,
            Response::Error { code, message } => {
                body.extend_from_slice(&code.to_u16().to_le_bytes());
                put_bytes(&mut body, message.as_bytes());
                K_ERROR
            }
        };
        write_frame(w, kind, &body)
    }

    /// Reads and decodes one response frame.
    ///
    /// # Errors
    /// [`NetError::Io`] on a truncated stream, [`NetError::Protocol`] on any
    /// grammar violation. Never panics.
    pub fn read_from(r: &mut impl Read) -> Result<Self, NetError> {
        let (kind, body) = read_frame(r)?;
        let mut c = Cursor::new(&body);
        let resp = match kind {
            K_HELLO_ACK => Response::HelloAck { version: c.u16()? },
            K_CONFIG => Response::Config { json: c.string()? },
            K_MODEL => {
                let round = c.u64()?;
                let epoch = c.u32()?;
                let done = c.u8()? != 0;
                let n = c.count(8)?;
                let mut weights = Vec::with_capacity(n);
                for _ in 0..n {
                    weights.push(c.f64()?);
                }
                Response::Model {
                    round,
                    epoch,
                    done,
                    weights,
                }
            }
            K_PUSH_ACK => {
                let raw = c.u8()?;
                let status = PushStatus::from_u8(raw)
                    .ok_or_else(|| NetError::Protocol(format!("unknown push status {raw}")))?;
                Response::PushAck {
                    status,
                    round: c.u64()?,
                }
            }
            K_PREDICTION => {
                let n = c.count(8)?;
                let mut scores = Vec::with_capacity(n);
                for _ in 0..n {
                    scores.push(c.f64()?);
                }
                Response::Prediction { scores }
            }
            K_CHECKPOINT_BLOB => Response::CheckpointBlob {
                epochs_done: c.u64()?,
                bytes: c.bytes()?,
            },
            K_STATS => Response::Stats { json: c.string()? },
            K_SHUTDOWN_ACK => Response::ShutdownAck,
            K_ERROR => {
                let raw = c.u16()?;
                let code = ErrorCode::from_u16(raw)
                    .ok_or_else(|| NetError::Protocol(format!("unknown error code {raw}")))?;
                Response::Error {
                    code,
                    message: c.string()?,
                }
            }
            other => {
                return Err(NetError::Protocol(format!(
                    "unknown response kind 0x{other:02X}"
                )))
            }
        };
        c.finish()?;
        Ok(resp)
    }

    /// Converts an `Error` response into `Err(NetError::Remote)`, passing
    /// every other response through.
    ///
    /// # Errors
    /// [`NetError::Remote`] when `self` is [`Response::Error`].
    pub fn into_result(self) -> Result<Response, NetError> {
        match self {
            Response::Error { code, message } => Err(NetError::Remote { code, message }),
            other => Ok(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: &Request) -> Request {
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        Request::read_from(&mut buf.as_slice()).unwrap()
    }

    fn roundtrip_resp(resp: &Response) -> Response {
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        Response::read_from(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn every_request_roundtrips() {
        for req in [
            Request::Hello {
                min_version: 1,
                max_version: 3,
            },
            Request::GetConfig,
            Request::PullModel {
                worker: 2,
                round: 77,
                wait: true,
            },
            Request::PushGradient {
                worker: 3,
                round: 12,
                loss_sum: -0.75,
                instances: 40,
                payload: vec![0xDE, 0xAD, 0xBE, 0xEF],
            },
            Request::Predict {
                instances: vec![
                    PredictInstance {
                        indices: vec![1, 7, 9],
                        values: vec![0.5, -0.25, 2.0],
                    },
                    PredictInstance {
                        indices: vec![],
                        values: vec![],
                    },
                ],
            },
            Request::GetCheckpoint,
            Request::GetStats,
            Request::Shutdown,
        ] {
            assert_eq!(roundtrip_req(&req), req);
        }
    }

    #[test]
    fn every_response_roundtrips() {
        for resp in [
            Response::HelloAck { version: 1 },
            Response::Config {
                json: "{\"workers\":4}".into(),
            },
            Response::Model {
                round: 9,
                epoch: 2,
                done: false,
                weights: vec![0.0, -1.5, 3.25],
            },
            Response::PushAck {
                status: PushStatus::Stale,
                round: 10,
            },
            Response::Prediction {
                scores: vec![0.1, -0.9],
            },
            Response::CheckpointBlob {
                epochs_done: 3,
                bytes: vec![1, 2, 3],
            },
            Response::Stats { json: "{}".into() },
            Response::ShutdownAck,
            Response::Error {
                code: ErrorCode::Backpressure,
                message: "queue full".into(),
            },
        ] {
            assert_eq!(roundtrip_resp(&resp), resp);
        }
    }

    #[test]
    fn bad_magic_kind_and_lengths_fail_typed() {
        // Bad magic.
        let err = Request::read_from(&mut [0x00u8, 0x01, 0, 0, 0, 0].as_slice()).unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "{err}");
        // Unknown kind.
        let err = Request::read_from(&mut [MAGIC, 0x66, 0, 0, 0, 0].as_slice()).unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "{err}");
        // Oversized length prefix.
        let mut huge = vec![MAGIC, K_PUSH_GRADIENT];
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = Request::read_from(&mut huge.as_slice()).unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "{err}");
        // Truncated body: Io, not a panic.
        let mut buf = Vec::new();
        Request::GetStats.write_to(&mut buf).unwrap();
        buf[2] = 40; // claim a 40-byte body that never arrives
        let err = Request::read_from(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, NetError::Io(_)), "{err}");
        // Trailing garbage after a valid body.
        let mut buf = Vec::new();
        Request::PullModel {
            worker: 0,
            round: 1,
            wait: false,
        }
        .write_to(&mut buf)
        .unwrap();
        let body_len = buf.len() - 6;
        buf[2] = (body_len + 3) as u8;
        buf.extend_from_slice(&[9, 9, 9]);
        let err = Request::read_from(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "{err}");
    }

    #[test]
    fn forged_counts_fail_before_allocating() {
        // A Predict frame claiming 2^31 instances in a 12-byte body.
        let mut body = Vec::new();
        body.extend_from_slice(&(1u32 << 31).to_le_bytes());
        body.extend_from_slice(&[0; 8]);
        let mut buf = vec![MAGIC, K_PREDICT];
        buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        buf.extend_from_slice(&body);
        let err = Request::read_from(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "{err}");
    }

    #[test]
    fn error_response_converts_to_remote_error() {
        let resp = Response::Error {
            code: ErrorCode::BadState,
            message: "not training".into(),
        };
        let err = resp.into_result().unwrap_err();
        assert!(matches!(
            err,
            NetError::Remote {
                code: ErrorCode::BadState,
                ..
            }
        ));
        assert!(Response::ShutdownAck.into_result().is_ok());
    }
}
