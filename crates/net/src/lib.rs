//! Live parameter server over real sockets.
//!
//! Everything before this crate runs SketchML's distributed training
//! inside one process (threads + simulated links). This crate puts the
//! same math on a real wire: a driver process runs [`server::Server`],
//! worker processes run [`client::run_worker`], and inference clients hit
//! the very same port with `Predict` while training is mutating weights.
//!
//! Layering:
//!
//! * [`wire`] — length-prefixed request/response frames with typed decode
//!   errors and protocol-version negotiation; gradient payloads are the
//!   existing v2/CSK CRC frames produced by the `GradientCompressor`
//!   registry, carried opaquely.
//! * [`sock`] — one connection type over TCP or Unix-domain sockets.
//! * [`store`] — epoch-snapshot model store: `Predict` readers clone an
//!   `Arc` and score lock-free while the trainer publishes new snapshots.
//! * [`server`] — accept loop, bounded connection queue, handler pool,
//!   bounded push queue (backpressure), and the trainer thread that
//!   coalesces worker pushes per round and replicates the in-simulator
//!   aggregation exactly (worker-id order, instance-weighted mean).
//! * [`client`] — typed client plus the full worker participant loop with
//!   checkpoint-validated recovery for respawned workers.
//!
//! Determinism: the server ships its [`server::ServeSetup`] to every
//! worker; both sides build the same seeded [`sketchml_data::Batcher`] and
//! dataset, so batch index slices line up without ever crossing the wire,
//! and a full-strength run reproduces the in-process simulator's loss
//! trajectory.

#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod obs;
pub mod server;
pub mod sock;
pub mod store;
pub mod wire;

pub use client::{run_worker, Client, ModelView, WorkerRunStats};
pub use error::{ErrorCode, NetError};
pub use server::{ServeSetup, ServeSummary, Server};
pub use sock::{Conn, Listener};
pub use store::{ModelSnapshot, ModelStore};
pub use wire::{PredictInstance, PushStatus, Request, Response, PROTOCOL_VERSION};
