//! Transport abstraction: one connection type over TCP or Unix-domain
//! sockets, so the wire protocol and the server runtime are
//! transport-agnostic.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;

/// A bound, accepting socket.
#[derive(Debug)]
pub enum Listener {
    /// TCP listener (loopback or real NIC).
    Tcp(TcpListener),
    /// Unix-domain listener (same-host, no TCP stack).
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Binds a TCP listener; `127.0.0.1:0` picks a free loopback port.
    ///
    /// # Errors
    /// Propagates the OS bind failure.
    pub fn bind_tcp(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Ok(Listener::Tcp(TcpListener::bind(addr)?))
    }

    /// Binds a Unix-domain listener at `path` (must not exist yet).
    ///
    /// # Errors
    /// Propagates the OS bind failure.
    #[cfg(unix)]
    pub fn bind_unix(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Listener::Unix(UnixListener::bind(path)?))
    }

    /// Accepts the next connection, blocking.
    ///
    /// # Errors
    /// Propagates the OS accept failure.
    pub fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true).ok();
                Ok(Conn::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(Conn::Unix(s))
            }
        }
    }

    /// Human-readable bound address: `tcp://ip:port` or `unix://path`.
    /// For TCP with port 0, this reports the OS-resolved port.
    pub fn local_desc(&self) -> String {
        match self {
            Listener::Tcp(l) => match l.local_addr() {
                Ok(a) => format!("tcp://{a}"),
                Err(_) => "tcp://?".into(),
            },
            #[cfg(unix)]
            Listener::Unix(l) => match l.local_addr() {
                Ok(a) => format!(
                    "unix://{}",
                    a.as_pathname().unwrap_or(Path::new("?")).display()
                ),
                Err(_) => "unix://?".into(),
            },
        }
    }
}

/// One established connection.
#[derive(Debug)]
pub enum Conn {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    /// Connects to a `tcp://host:port` or `unix://path` address (bare
    /// `host:port` is treated as TCP).
    ///
    /// # Errors
    /// Propagates the OS connect failure.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        if let Some(path) = addr.strip_prefix("unix://") {
            #[cfg(unix)]
            return Ok(Conn::Unix(UnixStream::connect(path)?));
            #[cfg(not(unix))]
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                format!("unix sockets unavailable on this platform: {path}"),
            ));
        }
        let addr = addr.strip_prefix("tcp://").unwrap_or(addr);
        let s = TcpStream::connect(addr)?;
        s.set_nodelay(true).ok();
        Ok(Conn::Tcp(s))
    }

    /// An independently readable/writable handle to the same socket.
    ///
    /// # Errors
    /// Propagates the OS dup failure.
    pub fn try_clone(&self) -> std::io::Result<Self> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
        })
    }

    /// Shuts down both directions, unblocking any reader.
    pub fn shutdown(&self) {
        match self {
            Conn::Tcp(s) => {
                s.shutdown(std::net::Shutdown::Both).ok();
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                s.shutdown(std::net::Shutdown::Both).ok();
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}
