//! Thin shims from server events to the global telemetry registry
//! (schema v6 `serving` section). All of these are no-ops unless a
//! telemetry session is recording.

use sketchml_telemetry::{counter_max, inc, Counter};

/// A connection was accepted.
pub fn connection() {
    inc(Counter::ServingConnections);
}

/// A request frame was decoded; `inflight` is the concurrent count
/// including this one (tracked as a high-water mark).
pub fn request(inflight: u64) {
    inc(Counter::ServingRequests);
    counter_max(Counter::ServingInflightMax, inflight);
}

/// A `Predict` batch was scored (`instances` rows).
pub fn predict(_instances: u64) {
    inc(Counter::ServingPredicts);
}

/// A `PushGradient` was accepted into the trainer queue.
pub fn push() {
    inc(Counter::ServingPushes);
}

/// A `PullModel` was answered.
pub fn pull() {
    inc(Counter::ServingPulls);
}

/// A push was refused because the bounded queue was full.
pub fn backpressure() {
    inc(Counter::ServingBackpressureRejects);
}

/// A trainer round coalesced every expected worker push.
pub fn coalesced_round() {
    inc(Counter::ServingCoalescedRounds);
}

/// The push queue reached `depth` entries (tracked as a high-water mark).
pub fn queue_depth(depth: u64) {
    counter_max(Counter::ServingQueueDepthMax, depth);
}
