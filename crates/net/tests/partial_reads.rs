//! Frame decode over partial stream reads.
//!
//! TCP gives no message boundaries: a request frame carrying a valid
//! SketchML v2 (or Count-Sketch CSK) gradient payload can arrive split at
//! ANY byte boundary across multiple socket reads. These tests split such
//! a frame at every boundary across two socket writes and require the
//! reader to either reassemble it exactly or fail with a typed error —
//! never panic, never misparse.

#![cfg(unix)]

use sketchml_core::{compressor_by_name, SparseGradient};
use sketchml_net::{NetError, PushStatus, Request, Response};
use std::io::{BufReader, Read, Write};
use std::os::unix::net::UnixStream;

/// Encodes a request into its exact wire bytes.
fn request_bytes(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    req.write_to(&mut buf).unwrap();
    buf
}

fn response_bytes(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    resp.write_to(&mut buf).unwrap();
    buf
}

/// A small but non-trivial gradient: irregular keys, mixed-sign values.
fn gradient(dim: u64, nnz: usize) -> SparseGradient {
    let keys: Vec<u64> = (0..nnz as u64).map(|i| (i * 37 + 5) % dim).collect();
    let mut keys: Vec<u64> = {
        let mut k = keys;
        k.sort_unstable();
        k.dedup();
        k
    };
    keys.truncate(nnz);
    let values: Vec<f64> = keys
        .iter()
        .map(|&k| {
            if k % 2 == 0 {
                0.25 + k as f64
            } else {
                -(k as f64) / 3.0
            }
        })
        .collect();
    SparseGradient::new(dim, keys, values).unwrap()
}

/// A `PushGradient` request whose payload is a real compressed frame from
/// the registry compressor `name`.
fn push_request(name: &str) -> (Request, SparseGradient) {
    let compressor = compressor_by_name(name).unwrap();
    let grad = gradient(1 << 14, 48);
    let compressed = compressor.compress(&grad).unwrap();
    (
        Request::PushGradient {
            worker: 3,
            round: 17,
            loss_sum: 2.5,
            instances: 64,
            payload: compressed.payload.to_vec(),
        },
        grad,
    )
}

/// Writes `bytes[..split]`, yields to let the reader consume the partial
/// prefix, then writes the rest. The reader must reassemble.
fn split_write(
    mut sender: UnixStream,
    bytes: Vec<u8>,
    split: usize,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        sender.write_all(&bytes[..split]).unwrap();
        sender.flush().unwrap();
        // Give the reader a chance to attempt (and block on) a short read.
        std::thread::yield_now();
        sender.write_all(&bytes[split..]).unwrap();
        sender.flush().unwrap();
    })
}

#[test]
fn v2_frame_reassembles_at_every_split_boundary() {
    let (req, grad) = push_request("sketchml");
    let bytes = request_bytes(&req);
    let compressor = compressor_by_name("sketchml").unwrap();
    for split in 0..=bytes.len() {
        let (sender, receiver) = UnixStream::pair().unwrap();
        let writer = split_write(sender, bytes.clone(), split);
        let mut reader = BufReader::new(receiver);
        let decoded = Request::read_from(&mut reader)
            .unwrap_or_else(|e| panic!("split at byte {split}: {e}"));
        writer.join().unwrap();
        let Request::PushGradient {
            worker,
            round,
            payload,
            ..
        } = &decoded
        else {
            panic!("split at byte {split}: wrong variant {decoded:?}");
        };
        assert_eq!((*worker, *round), (3, 17), "split at byte {split}");
        // The reassembled payload must still be a decodable v2 frame.
        let recovered = compressor.decompress(payload).unwrap();
        assert_eq!(recovered.dim(), grad.dim(), "split at byte {split}");
    }
}

#[test]
fn csk_frame_reassembles_at_every_split_boundary() {
    // Count-Sketch frames exercise a different payload grammar (CSK magic,
    // table + heavy-hitter sections) under the same transport splitting.
    let (req, grad) = push_request("countsketch:4x512:16");
    let bytes = request_bytes(&req);
    let compressor = compressor_by_name("countsketch:4x512:16").unwrap();
    for split in 0..=bytes.len() {
        let (sender, receiver) = UnixStream::pair().unwrap();
        let writer = split_write(sender, bytes.clone(), split);
        let mut reader = BufReader::new(receiver);
        let decoded = Request::read_from(&mut reader)
            .unwrap_or_else(|e| panic!("split at byte {split}: {e}"));
        writer.join().unwrap();
        let Request::PushGradient { payload, .. } = &decoded else {
            panic!("split at byte {split}: wrong variant");
        };
        let recovered = compressor.decompress(payload).unwrap();
        assert_eq!(recovered.dim(), grad.dim(), "split at byte {split}");
    }
}

#[test]
fn response_frame_reassembles_at_every_split_boundary() {
    let resp = Response::Model {
        round: 9,
        epoch: 2,
        done: false,
        weights: (0..257).map(|i| i as f64 / 7.0).collect(),
    };
    let bytes = response_bytes(&resp);
    // Sample every boundary in the header + first section, then stride
    // through the (homogeneous) weight block to keep the test fast.
    let boundaries: Vec<usize> = (0..=bytes.len())
        .filter(|&i| i <= 64 || i >= bytes.len() - 64 || i % 97 == 0)
        .collect();
    for split in boundaries {
        let (sender, receiver) = UnixStream::pair().unwrap();
        let writer = split_write(sender, bytes.clone(), split);
        let mut reader = BufReader::new(receiver);
        let decoded = Response::read_from(&mut reader)
            .unwrap_or_else(|e| panic!("split at byte {split}: {e}"));
        writer.join().unwrap();
        let Response::Model { round, weights, .. } = decoded else {
            panic!("split at byte {split}: wrong variant");
        };
        assert_eq!(round, 9, "split at byte {split}");
        assert_eq!(weights.len(), 257, "split at byte {split}");
    }
}

#[test]
fn truncated_stream_fails_typed_at_every_boundary_never_panics() {
    let (req, _) = push_request("sketchml");
    let bytes = request_bytes(&req);
    for cut in 0..bytes.len() {
        let (mut sender, receiver) = UnixStream::pair().unwrap();
        sender.write_all(&bytes[..cut]).unwrap();
        drop(sender); // EOF mid-frame
        let mut reader = BufReader::new(receiver);
        match Request::read_from(&mut reader) {
            Ok(decoded) => panic!("cut at byte {cut}: decoded {decoded:?} from a truncated stream"),
            // Typed failure is the contract: EOF surfaces as Io, a
            // headerless sliver as Protocol. Panics fail the test runner.
            Err(NetError::Io(_)) | Err(NetError::Protocol(_)) => {}
            Err(other) => panic!("cut at byte {cut}: wrong error class {other}"),
        }
    }
}

#[test]
fn garbage_after_partial_header_fails_typed() {
    // A valid prefix spliced with garbage must fail typed, not panic or
    // hang: corrupt the byte right after each split point.
    let ack = response_bytes(&Response::PushAck {
        status: PushStatus::Accepted,
        round: 4,
    });
    for split in 0..ack.len() {
        let mut corrupted = ack.clone();
        corrupted[split] ^= 0xFF;
        let (mut sender, receiver) = UnixStream::pair().unwrap();
        sender.write_all(&corrupted).unwrap();
        drop(sender);
        let mut reader = BufReader::new(receiver);
        match Response::read_from(&mut reader) {
            // Flipping a bit in (say) the round field still decodes — that
            // is CRC territory for the inner gradient frames, not the outer
            // envelope. What must never happen is a panic or an untyped
            // error.
            Ok(_) => {}
            Err(NetError::Io(_)) | Err(NetError::Protocol(_)) => {}
            Err(other) => panic!("corrupt at byte {split}: wrong error class {other}"),
        }
    }
}

#[test]
fn byte_at_a_time_delivery_reassembles() {
    // The pathological case: every byte in its own segment.
    let (req, _) = push_request("countsketch:4x512:16");
    let bytes = request_bytes(&req);
    let (mut sender, receiver) = UnixStream::pair().unwrap();
    let writer = std::thread::spawn(move || {
        for b in bytes {
            sender.write_all(&[b]).unwrap();
            sender.flush().unwrap();
        }
    });
    let mut reader = BufReader::new(receiver);
    let decoded = Request::read_from(&mut reader).unwrap();
    writer.join().unwrap();
    assert!(matches!(decoded, Request::PushGradient { round: 17, .. }));
    // Nothing may remain buffered: exactly one frame was sent.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
}
