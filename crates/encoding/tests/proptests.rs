//! Property-based tests: the key codecs must be lossless for *every*
//! admissible input — the paper's §3.4 correctness requirement ("we must
//! design a lossless compression method for the gradient keys").

use bytes::BytesMut;
use proptest::collection::{btree_set, vec};
use proptest::prelude::*;
use sketchml_encoding::{bitmap, bitpack, csr, delta_binary, huffman, rice, rle, varint};

/// Strictly ascending keys with deltas that fit the 4-byte scheme.
fn ascending_keys(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    btree_set(0u64..1 << 32, 0..max_len).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut buf = BytesMut::new();
        varint::write_u64(&mut buf, v);
        prop_assert_eq!(varint::read_u64(&mut buf.freeze()).unwrap(), v);
    }

    #[test]
    fn delta_binary_lossless(keys in ascending_keys(500)) {
        let mut buf = BytesMut::new();
        delta_binary::encode_keys(&keys, &mut buf).unwrap();
        let decoded = delta_binary::decode_keys(&mut buf.freeze()).unwrap();
        prop_assert_eq!(decoded, keys);
    }

    #[test]
    fn delta_binary_never_panics_on_garbage(data in vec(any::<u8>(), 0..300)) {
        let mut slice: &[u8] = &data;
        let _ = delta_binary::decode_keys(&mut slice); // Err is fine, panic is not
    }

    #[test]
    fn bitmap_lossless(keys in btree_set(0u64..5_000, 0..300)) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let dim = 5_000u64;
        let mut buf = BytesMut::new();
        bitmap::encode_bitmap(&keys, dim, &mut buf).unwrap();
        let decoded = bitmap::decode_bitmap(&mut buf.freeze()).unwrap();
        prop_assert_eq!(decoded, keys);
    }

    #[test]
    fn bitpack_lossless(values in vec(0u16..512, 0..400)) {
        let max = values.iter().copied().max().unwrap_or(0);
        let bits = bitpack::bits_for(max);
        let mut buf = BytesMut::new();
        bitpack::pack_u16(&values, bits, &mut buf).unwrap();
        let decoded = bitpack::unpack_u16(&mut buf.freeze(), values.len(), bits).unwrap();
        prop_assert_eq!(decoded, values);
    }

    #[test]
    fn rle_lossless(values in vec(0u64..20, 0..400)) {
        let mut buf = BytesMut::new();
        rle::encode_rle(&values, &mut buf);
        let decoded = rle::decode_rle(&mut buf.freeze()).unwrap();
        prop_assert_eq!(decoded, values);
    }

    #[test]
    fn huffman_lossless(data in vec(any::<u8>(), 0..2000)) {
        let mut buf = BytesMut::new();
        huffman::encode_huffman(&data, &mut buf);
        let decoded = huffman::decode_huffman(&mut buf.freeze()).unwrap();
        prop_assert_eq!(decoded, data);
    }

    #[test]
    fn huffman_never_panics_on_garbage(data in vec(any::<u8>(), 0..300)) {
        let mut slice: &[u8] = &data;
        let _ = huffman::decode_huffman(&mut slice);
    }

    #[test]
    fn csr_roundtrip(rows in vec(btree_set(0u64..10_000, 0..30), 0..10)) {
        let rows: Vec<Vec<(u64, f64)>> = rows
            .into_iter()
            .map(|r| r.into_iter().map(|k| (k, k as f64 * 0.5 - 3.0)).collect())
            .collect();
        let m = csr::CsrMatrix::from_rows(&rows).unwrap();
        prop_assert_eq!(m.to_rows(), rows);
        let mut buf = BytesMut::new();
        m.encode(&mut buf);
        let decoded = csr::CsrMatrix::decode(&mut buf.freeze()).unwrap();
        prop_assert_eq!(decoded, m);
    }

    /// Delta-binary's cost model: every key costs at least 1.25 bytes
    /// (1 payload + 1/4 flag) and at most 4 payload bytes plus a whole flag
    /// byte when n is tiny, matching the Appendix A.3 accounting.
    #[test]
    fn delta_binary_cost_bounds(keys in ascending_keys(300)) {
        prop_assume!(!keys.is_empty());
        let bpk = delta_binary::bytes_per_key(&keys).unwrap();
        prop_assert!((1.25..=5.0).contains(&bpk), "bytes/key {bpk}");
    }

    #[test]
    fn rice_lossless(values in vec(0u32..1_000_000, 0..500)) {
        let mut buf = BytesMut::new();
        rice::encode_rice(&values, &mut buf);
        let decoded = rice::decode_rice(&mut buf.freeze()).unwrap();
        prop_assert_eq!(decoded, values);
    }

    #[test]
    fn rice_keys_lossless(keys in ascending_keys(400)) {
        let mut buf = BytesMut::new();
        rice::encode_rice_keys(&keys, &mut buf).unwrap();
        let decoded = rice::decode_rice_keys(&mut buf.freeze()).unwrap();
        prop_assert_eq!(decoded, keys);
    }

    #[test]
    fn rice_never_panics_on_garbage(data in vec(any::<u8>(), 0..300)) {
        let mut slice: &[u8] = &data;
        let _ = rice::decode_rice(&mut slice);
    }
}
