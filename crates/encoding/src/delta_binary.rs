//! Dynamic delta-binary encoding of gradient keys (paper §3.4, Figure 7).
//!
//! The codec exploits three properties of sparse-gradient keys: they are
//! non-repetitive, ascending, and — although a key itself can be huge for a
//! high-dimensional model — the *difference* between neighbouring keys is
//! small.
//!
//! **Step 1 (delta encoding)**: replace each key with its increment over the
//! previous key (the first key keeps its absolute value).
//!
//! **Step 2 (binary encoding)**: a threshold module maps each delta to the
//! least number of bytes that holds it — 1 byte for `[0, 255]`, 2 for
//! `[256, 65535]`, 3 for `[65536, 16777215]`, 4 for `[16777216, 2^32 - 1]` —
//! and records the choice in a 2-bit *byte flag* (`00` = 1 byte, `01` = 2,
//! `10` = 3, `11` = 4). Flags are packed four per byte ahead of the
//! payload, costing 1/4 byte per key (Appendix A.3's "two flag bits").
//!
//! Wire layout produced by [`encode_keys`]:
//!
//! ```text
//! varint n | ⌈n/4⌉ flag bytes | Σ payload bytes (little-endian, 1–4 each)
//! ```

use crate::error::EncodingError;
use crate::varint;
use bytes::{Buf, BufMut, BytesMut};

/// Number of payload bytes selected by the threshold module for `delta`
/// (§3.4 Step 2). Always in `1..=4`.
#[inline]
pub fn bytes_needed(delta: u32) -> usize {
    match delta {
        0..=0xFF => 1,
        0x100..=0xFFFF => 2,
        0x1_0000..=0xFF_FFFF => 3,
        _ => 4,
    }
}

/// Computes the delta keys of a strictly ascending key array (§3.4 Step 1).
///
/// The first entry is the first key itself; entry `i > 0` is
/// `keys[i] - keys[i-1]`.
///
/// # Errors
/// [`EncodingError::DuplicateKey`] if a key repeats (a merged shard stream
/// that was concatenated instead of summed), [`EncodingError::InvalidInput`]
/// if keys descend or a delta (or the first key) exceeds `u32::MAX`, the
/// 4-byte maximum of the byte-flag scheme.
pub fn delta_transform(keys: &[u64]) -> Result<Vec<u32>, EncodingError> {
    let mut out = Vec::with_capacity(keys.len());
    let mut prev: Option<u64> = None;
    for (i, &k) in keys.iter().enumerate() {
        let delta = match prev {
            None => k,
            Some(p) if k > p => k - p,
            Some(p) if k == p => return Err(EncodingError::DuplicateKey { key: k, offset: i }),
            Some(p) => {
                return Err(EncodingError::InvalidInput(format!(
                    "keys must be strictly ascending: keys[{i}] = {k} < keys[{}] = {p}",
                    i - 1
                )))
            }
        };
        let delta = u32::try_from(delta).map_err(|_| {
            EncodingError::InvalidInput(format!(
                "delta {delta} at position {i} exceeds the 4-byte maximum"
            ))
        })?;
        out.push(delta);
        prev = Some(k);
    }
    Ok(out)
}

/// Inverse of [`delta_transform`].
pub fn delta_restore(deltas: &[u32]) -> Vec<u64> {
    let mut out = Vec::with_capacity(deltas.len());
    let mut acc: u64 = 0;
    for &d in deltas {
        acc += u64::from(d);
        out.push(acc);
    }
    out
}

/// Encodes a strictly ascending key array into `out` using delta-binary
/// encoding. Returns the number of bytes written.
///
/// # Errors
/// See [`delta_transform`].
pub fn encode_keys(keys: &[u64], out: &mut impl BufMut) -> Result<usize, EncodingError> {
    let deltas = delta_transform(keys)?;
    let n = deltas.len();
    let mut written = varint::encoded_len(n as u64);
    varint::write_u64(out, n as u64);

    // Byte flags, packed four per byte, LSB-first within each byte.
    let mut flag_bytes = vec![0u8; n.div_ceil(4)];
    for (i, &d) in deltas.iter().enumerate() {
        let flag = (bytes_needed(d) - 1) as u8; // 00..11
        flag_bytes[i / 4] |= flag << ((i % 4) * 2);
    }
    out.put_slice(&flag_bytes);
    written += flag_bytes.len();

    for &d in &deltas {
        let nb = bytes_needed(d);
        out.put_slice(&d.to_le_bytes()[..nb]);
        written += nb;
    }
    Ok(written)
}

/// Streaming variant of [`encode_keys`] writing into a [`BytesMut`]: the
/// 2-bit byte flags are reserved up front (zeroed) and back-patched while the
/// payload bytes stream out, so no intermediate delta array is materialized.
/// Byte-for-byte identical output to [`encode_keys`]. Returns the number of
/// bytes appended.
///
/// # Errors
/// See [`delta_transform`]. On error the tail of `out` past its original
/// length is unspecified.
pub fn encode_keys_into(keys: &[u64], out: &mut BytesMut) -> Result<usize, EncodingError> {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if crate::simd::lanes_active() {
        let r = encode_keys_into_lanes(keys, out);
        #[cfg(debug_assertions)]
        if let Ok(len) = r {
            let mut reference = BytesMut::new();
            encode_keys_into_scalar(keys, &mut reference)
                .expect("scalar path must agree that the lane input was valid");
            assert_eq!(
                &out[out.len() - len..],
                &reference[..],
                "delta-binary lane diverged from scalar reference"
            );
        }
        return r;
    }
    encode_keys_into_scalar(keys, out)
}

/// Scalar reference implementation of [`encode_keys_into`].
fn encode_keys_into_scalar(keys: &[u64], out: &mut BytesMut) -> Result<usize, EncodingError> {
    let n = keys.len();
    let start = out.len();
    varint::write_u64(out, n as u64);
    let flag_at = out.len();
    let payload_at = flag_at + n.div_ceil(4);
    // Reserve the 4-bytes-per-delta worst case up front (zero-filled — the
    // flag bytes need the zeros, the payload tail is truncated off below) so
    // the hot loop runs with no capacity checks and no data-dependent
    // branches: every delta is stored as an unconditional 4-byte overlapping
    // little-endian write and the cursor advances by the true width, which
    // the next write's low bytes then overwrite.
    out.resize(payload_at + 4 * n, 0);
    let data: &mut [u8] = out;
    let mut bad = false;
    let mut prev = 0u64;
    let mut pos = payload_at;
    encode_run_scalar(keys, 0, data, flag_at, &mut prev, &mut pos, &mut bad);
    if bad {
        // Re-run the checking transform to surface the exact error the
        // allocating path reports (`out`'s tail is unspecified on error).
        delta_transform(keys)?;
        debug_assert!(false, "validity flag set but delta_transform passed");
    }
    out.truncate(pos);
    Ok(out.len() - start)
}

/// Hot scalar run shared by the pure-scalar path and the lane path's
/// prologue/tail: encodes `keys` (absolute indices starting at `i0`) with
/// carried `prev`/`pos`/`bad` state.
#[inline]
fn encode_run_scalar(
    keys: &[u64],
    i0: usize,
    data: &mut [u8],
    flag_at: usize,
    prev: &mut u64,
    pos: &mut usize,
    bad: &mut bool,
) {
    let mut p = *prev;
    let mut at = *pos;
    let mut b = *bad;
    for (off, &k) in keys.iter().enumerate() {
        let i = i0 + off;
        let d64 = k.wrapping_sub(p);
        // Violations (duplicate / descending / >4-byte delta) only set a
        // flag here; the classic typed error is reproduced by the caller.
        b |= (i != 0 && k <= p) | (d64 > u64::from(u32::MAX));
        p = k;
        let d = d64 as u32;
        // Branchless threshold module: bytes to hold the highest set bit.
        let bits = 32 - (d | 1).leading_zeros() as usize;
        let nb = (bits + 7) >> 3;
        data[flag_at + i / 4] |= ((nb - 1) as u8) << ((i % 4) * 2);
        data[at..at + 4].copy_from_slice(&d.to_le_bytes());
        at += nb;
    }
    *prev = p;
    *pos = at;
    *bad = b;
}

/// Lane-dispatched variant of [`encode_keys_into_scalar`]: a 4-key scalar
/// prologue aligns the stream so the AVX2 middle emits whole flag bytes,
/// and a scalar tail finishes the remainder. Byte-identical output.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn encode_keys_into_lanes(keys: &[u64], out: &mut BytesMut) -> Result<usize, EncodingError> {
    let n = keys.len();
    let start = out.len();
    varint::write_u64(out, n as u64);
    let flag_at = out.len();
    let payload_at = flag_at + n.div_ceil(4);
    out.resize(payload_at + 4 * n, 0);
    let data: &mut [u8] = out;
    let mut prev = 0u64;
    let mut pos = payload_at;
    let mut bad = false;
    let p0 = n.min(4);
    encode_run_scalar(&keys[..p0], 0, data, flag_at, &mut prev, &mut pos, &mut bad);
    let mid_end = if n >= 8 {
        // SAFETY: AVX2 verified by `lanes_active` in the dispatcher.
        unsafe { encode_mid_avx2(keys, data, flag_at, &mut pos, &mut bad) }
    } else {
        p0
    };
    if mid_end > p0 {
        prev = keys[mid_end - 1];
    }
    encode_run_scalar(
        &keys[mid_end..],
        mid_end,
        data,
        flag_at,
        &mut prev,
        &mut pos,
        &mut bad,
    );
    if bad {
        delta_transform(keys)?;
        debug_assert!(false, "validity flag set but delta_transform passed");
    }
    out.truncate(pos);
    Ok(out.len() - start)
}

/// AVX2 middle loop of the delta-binary encoder: four keys per iteration.
/// Deltas come from an offset-by-one unaligned load; the §3.4 threshold
/// module becomes three 64-bit compares whose mask sum is `-(nb - 1)` per
/// lane, which both packs one whole flag byte and advances the payload
/// cursor. Validity (ascending, 4-byte deltas) is accumulated as a vector
/// mask and folded into `bad` once at the end — the error path re-checks
/// scalar anyway. Starts at absolute index 4 (the prologue's work) and
/// returns the first index not consumed (a multiple of 4).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn encode_mid_avx2(
    keys: &[u64],
    data: &mut [u8],
    flag_at: usize,
    pos: &mut usize,
    bad: &mut bool,
) -> usize {
    use core::arch::x86_64::*;
    let n = keys.len();
    debug_assert!(n >= 8);
    let msb = _mm256_set1_epi64x(i64::MIN);
    let ones = _mm256_set1_epi64x(-1);
    // `u32::MAX` with the sign bit flipped, for the unsigned width check.
    let max32f = _mm256_set1_epi64x((0xFFFF_FFFFu64 ^ (1u64 << 63)) as i64);
    let t1 = _mm256_set1_epi64x(0xFF);
    let t2 = _mm256_set1_epi64x(0xFFFF);
    let t3 = _mm256_set1_epi64x(0xFF_FFFF);
    let mut badv = _mm256_setzero_si256();
    let mut at = *pos;
    let mut i = 4usize;
    while i + 4 <= n {
        let k = _mm256_loadu_si256(keys.as_ptr().add(i).cast());
        let pm = _mm256_loadu_si256(keys.as_ptr().add(i - 1).cast());
        let d = _mm256_sub_epi64(k, pm);
        // Unsigned `k > prev` via the sign-flip trick (AVX2 compares are
        // signed); a lane that fails is a duplicate or descending key.
        let ascending = _mm256_cmpgt_epi64(_mm256_xor_si256(k, msb), _mm256_xor_si256(pm, msb));
        let big = _mm256_cmpgt_epi64(_mm256_xor_si256(d, msb), max32f);
        badv = _mm256_or_si256(
            badv,
            _mm256_or_si256(_mm256_andnot_si256(ascending, ones), big),
        );
        let c = _mm256_add_epi64(
            _mm256_add_epi64(_mm256_cmpgt_epi64(d, t1), _mm256_cmpgt_epi64(d, t2)),
            _mm256_cmpgt_epi64(d, t3),
        );
        let mut ds = [0u64; 4];
        let mut cs = [0i64; 4];
        _mm256_storeu_si256(ds.as_mut_ptr().cast(), d);
        _mm256_storeu_si256(cs.as_mut_ptr().cast(), c);
        let flag = (-cs[0]) as u8
            | (((-cs[1]) as u8) << 2)
            | (((-cs[2]) as u8) << 4)
            | (((-cs[3]) as u8) << 6);
        data[flag_at + i / 4] = flag;
        for j in 0..4 {
            data[at..at + 4].copy_from_slice(&(ds[j] as u32).to_le_bytes());
            at += 1 + (-cs[j]) as usize;
        }
        i += 4;
    }
    *bad |= _mm256_testz_si256(badv, badv) == 0;
    *pos = at;
    i
}

/// Decodes a key array previously written by [`encode_keys`].
///
/// # Errors
/// [`EncodingError::UnexpectedEof`] on truncated input.
pub fn decode_keys(buf: &mut impl Buf) -> Result<Vec<u64>, EncodingError> {
    let mut out = Vec::new();
    decode_keys_into(buf, &mut out)?;
    Ok(out)
}

/// Single-pass decode of [`encode_keys`] output into a reusable buffer: each
/// delta is read, accumulated, and pushed as a key in one loop — no
/// intermediate delta vector. `out` is cleared first.
///
/// # Errors
/// [`EncodingError::UnexpectedEof`] on truncated input (with `out` contents
/// unspecified).
pub fn decode_keys_into(buf: &mut impl Buf, out: &mut Vec<u64>) -> Result<(), EncodingError> {
    let n = varint::read_u64(buf)? as usize;
    out.clear();
    let flag_len = n.div_ceil(4);
    if buf.remaining() < flag_len {
        return Err(EncodingError::UnexpectedEof {
            context: "byte flags",
        });
    }
    out.reserve(n);

    if buf.chunk().len() == buf.remaining() {
        // Contiguous buffer (slices, `Bytes`): decode straight off the chunk
        // without copying flags or payload.
        let used = {
            let data = buf.chunk();
            let mut pos = flag_len;
            let mut acc = 0u64;
            for i in 0..n {
                let flag = (data[i / 4] >> ((i % 4) * 2)) & 0b11;
                let nb = flag as usize + 1;
                if data.len() - pos < nb {
                    return Err(EncodingError::UnexpectedEof {
                        context: "delta payload",
                    });
                }
                let mut le = [0u8; 4];
                le[..nb].copy_from_slice(&data[pos..pos + nb]);
                pos += nb;
                acc += u64::from(u32::from_le_bytes(le));
                out.push(acc);
            }
            pos
        };
        buf.advance(used);
        return Ok(());
    }

    // Fragmented buffer: copy the flags once, then stream the payload.
    let mut flag_bytes = vec![0u8; flag_len];
    buf.copy_to_slice(&mut flag_bytes);
    let mut acc = 0u64;
    for i in 0..n {
        let flag = (flag_bytes[i / 4] >> ((i % 4) * 2)) & 0b11;
        let nb = flag as usize + 1;
        if buf.remaining() < nb {
            return Err(EncodingError::UnexpectedEof {
                context: "delta payload",
            });
        }
        let mut le = [0u8; 4];
        buf.copy_to_slice(&mut le[..nb]);
        acc += u64::from(u32::from_le_bytes(le));
        out.push(acc);
    }
    Ok(())
}

/// Exact encoded size in bytes of `keys` without materializing the buffer.
///
/// # Errors
/// See [`delta_transform`].
pub fn encoded_len(keys: &[u64]) -> Result<usize, EncodingError> {
    let deltas = delta_transform(keys)?;
    let n = deltas.len();
    Ok(varint::encoded_len(n as u64)
        + n.div_ceil(4)
        + deltas.iter().map(|&d| bytes_needed(d)).sum::<usize>())
}

/// Merges two strictly ascending key arrays into their sorted union (each
/// shared key appearing once), appending to `out` (cleared first). This is
/// the key-union step of collective merge: the result is guaranteed to
/// re-encode through [`encode_keys`] without tripping the duplicate check.
///
/// # Errors
/// [`EncodingError::DuplicateKey`] / [`EncodingError::InvalidInput`] if
/// either *input* repeats or descends — a corrupt increment stream upstream,
/// surfaced here instead of silently poisoning the union.
pub fn union_keys_into(a: &[u64], b: &[u64], out: &mut Vec<u64>) -> Result<(), EncodingError> {
    fn check_ascending(keys: &[u64]) -> Result<(), EncodingError> {
        for (i, w) in keys.windows(2).enumerate() {
            if w[1] == w[0] {
                // `i + 1` is the index of the repeated occurrence.
                return Err(EncodingError::DuplicateKey {
                    key: w[0],
                    offset: i + 1,
                });
            }
            if w[1] < w[0] {
                return Err(EncodingError::InvalidInput(format!(
                    "keys must be strictly ascending: {} < {}",
                    w[1], w[0]
                )));
            }
        }
        Ok(())
    }
    check_ascending(a)?;
    check_ascending(b)?;
    out.clear();
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    Ok(())
}

/// Average bytes consumed per key — the statistic Figure 8(d) tracks
/// ("Bytes Per Key", ~1.25–1.27 in the paper). Excludes the count varint.
///
/// # Errors
/// See [`delta_transform`].
pub fn bytes_per_key(keys: &[u64]) -> Result<f64, EncodingError> {
    if keys.is_empty() {
        return Ok(0.0);
    }
    let deltas = delta_transform(keys)?;
    let payload: usize = deltas.iter().map(|&d| bytes_needed(d)).sum();
    let flags = keys.len().div_ceil(4);
    Ok((payload + flags) as f64 / keys.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn roundtrip(keys: &[u64]) -> Vec<u64> {
        let mut buf = BytesMut::new();
        let written = encode_keys(keys, &mut buf).unwrap();
        assert_eq!(written, buf.len());
        assert_eq!(written, encoded_len(keys).unwrap());
        let mut bytes = buf.freeze();
        let decoded = decode_keys(&mut bytes).unwrap();
        assert_eq!(
            bytes.remaining(),
            0,
            "decoder must consume exactly its bytes"
        );
        decoded
    }

    #[test]
    fn paper_figure7_example() {
        // Figure 7's running example of §3.4.
        let keys = [702u64, 735, 1244, 2516, 3536, 3786, 4187, 4195];
        let deltas = delta_transform(&keys).unwrap();
        assert_eq!(deltas, vec![702, 33, 509, 1272, 1020, 250, 401, 8]);
        // Byte widths: 702→2, 33→1, 509→2, 1272→2, 1020→2, 250→1, 401→2, 8→1.
        let widths: Vec<usize> = deltas.iter().map(|&d| bytes_needed(d)).collect();
        assert_eq!(widths, vec![2, 1, 2, 2, 2, 1, 2, 1]);
        assert_eq!(roundtrip(&keys), keys);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(roundtrip(&[]), Vec::<u64>::new());
        assert_eq!(roundtrip(&[0]), vec![0]);
        assert_eq!(roundtrip(&[4_000_000_000]), vec![4_000_000_000]);
    }

    #[test]
    fn threshold_boundaries() {
        assert_eq!(bytes_needed(0), 1);
        assert_eq!(bytes_needed(255), 1);
        assert_eq!(bytes_needed(256), 2);
        assert_eq!(bytes_needed(65_535), 2);
        assert_eq!(bytes_needed(65_536), 3);
        assert_eq!(bytes_needed(16_777_215), 3);
        assert_eq!(bytes_needed(16_777_216), 4);
        assert_eq!(bytes_needed(u32::MAX), 4);
    }

    #[test]
    fn keys_crossing_all_width_classes() {
        let keys = [
            10u64,
            10 + 255,
            10 + 255 + 65_535,
            10 + 255 + 65_535 + 16_777_215,
            10 + 255 + 65_535 + 16_777_215 + u32::MAX as u64,
        ];
        assert_eq!(roundtrip(&keys), keys);
    }

    #[test]
    fn random_ascending_keys_roundtrip() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..50 {
            let n = rng.gen_range(1..2000);
            let mut keys: Vec<u64> = Vec::with_capacity(n);
            let mut cur = 0u64;
            for _ in 0..n {
                cur += rng.gen_range(1..100_000u64);
                keys.push(cur);
            }
            assert_eq!(roundtrip(&keys), keys);
        }
    }

    #[test]
    fn non_ascending_rejected() {
        assert!(encode_keys(&[5, 5], &mut BytesMut::new()).is_err());
        assert!(encode_keys(&[5, 3], &mut BytesMut::new()).is_err());
    }

    #[test]
    fn duplicate_keys_are_a_typed_error() {
        // A concatenated (unsummed) shard union repeats keys; both encode
        // paths must name the offending key *and its position* rather than
        // emit a zero delta.
        for result in [
            encode_keys(&[3, 7, 7, 9], &mut BytesMut::new()),
            encode_keys_into(&[3, 7, 7, 9], &mut BytesMut::new()).map(|_| 0),
        ] {
            assert_eq!(
                result,
                Err(EncodingError::DuplicateKey { key: 7, offset: 2 })
            );
        }
        assert_eq!(
            delta_transform(&[1, 1]),
            Err(EncodingError::DuplicateKey { key: 1, offset: 1 })
        );
        // Descending stays the generic invalid-input error.
        assert!(matches!(
            delta_transform(&[5, 3]),
            Err(EncodingError::InvalidInput(_))
        ));
    }

    #[test]
    fn duplicate_key_offset_points_at_second_occurrence() {
        // The offset disambiguates *which* repeat tripped the check when the
        // same key value legitimately appears far apart in a bad merge.
        let keys = [10u64, 20, 30, 30, 40, 40];
        assert_eq!(
            delta_transform(&keys),
            Err(EncodingError::DuplicateKey { key: 30, offset: 3 })
        );
        assert_eq!(
            encode_keys(&keys, &mut BytesMut::new()),
            Err(EncodingError::DuplicateKey { key: 30, offset: 3 })
        );
        assert_eq!(
            encode_keys_into(&keys, &mut BytesMut::new()),
            Err(EncodingError::DuplicateKey { key: 30, offset: 3 })
        );
        let mut out = Vec::new();
        assert_eq!(
            union_keys_into(&keys, &[], &mut out),
            Err(EncodingError::DuplicateKey { key: 30, offset: 3 })
        );
        // The rendered message carries both coordinates.
        let msg = EncodingError::DuplicateKey { key: 30, offset: 3 }.to_string();
        assert!(msg.contains("30") && msg.contains("offset 3"), "{msg}");
    }

    #[test]
    fn union_keys_merges_and_dedups() {
        let mut out = Vec::new();
        union_keys_into(&[1, 4, 9], &[2, 4, 10], &mut out).unwrap();
        assert_eq!(out, vec![1, 2, 4, 9, 10]);
        union_keys_into(&[], &[7], &mut out).unwrap();
        assert_eq!(out, vec![7]);
        union_keys_into(&[7], &[], &mut out).unwrap();
        assert_eq!(out, vec![7]);
        // The union always re-encodes cleanly.
        let mut buf = BytesMut::new();
        union_keys_into(&[1, 4, 9], &[2, 4, 10], &mut out).unwrap();
        encode_keys(&out, &mut buf).unwrap();
    }

    #[test]
    fn union_keys_rejects_corrupt_inputs() {
        let mut out = Vec::new();
        assert_eq!(
            union_keys_into(&[1, 1], &[2], &mut out),
            Err(EncodingError::DuplicateKey { key: 1, offset: 1 })
        );
        assert_eq!(
            union_keys_into(&[2], &[9, 9], &mut out),
            Err(EncodingError::DuplicateKey { key: 9, offset: 1 })
        );
        assert!(matches!(
            union_keys_into(&[5, 3], &[], &mut out),
            Err(EncodingError::InvalidInput(_))
        ));
    }

    #[test]
    fn oversized_delta_rejected() {
        let keys = [0u64, u32::MAX as u64 + 1];
        assert!(matches!(
            encode_keys(&keys, &mut BytesMut::new()),
            Err(EncodingError::InvalidInput(_))
        ));
        // First key too large is also a delta.
        assert!(encode_keys(&[u32::MAX as u64 + 1], &mut BytesMut::new()).is_err());
    }

    #[test]
    fn truncated_buffers_error_not_panic() {
        let keys: Vec<u64> = (0..100).map(|i| i * 7 + 3).collect();
        let mut buf = BytesMut::new();
        encode_keys(&keys, &mut buf).unwrap();
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut partial = full.slice(..cut);
            let _ = decode_keys(&mut partial); // must not panic
        }
        let mut ok = full.clone();
        assert_eq!(decode_keys(&mut ok).unwrap(), keys);
    }

    #[test]
    fn dense_keys_cost_about_125_bytes_each() {
        // Deltas of 1..=255 take 1 payload byte + 1/4 flag byte each —
        // the ~1.25 bytes/key regime of Figure 8(d).
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 30).collect();
        let bpk = bytes_per_key(&keys).unwrap();
        assert!((1.2..=1.3).contains(&bpk), "bytes/key = {bpk}");
    }

    #[test]
    fn sparser_keys_cost_more() {
        let dense: Vec<u64> = (0..5_000u64).map(|i| i * 100).collect();
        let sparse: Vec<u64> = (0..5_000u64).map(|i| i * 100_000).collect();
        assert!(bytes_per_key(&sparse).unwrap() > bytes_per_key(&dense).unwrap());
        assert_eq!(bytes_per_key(&[]).unwrap(), 0.0);
    }

    #[test]
    fn streaming_encode_matches_allocating_encode() {
        let mut rng = StdRng::seed_from_u64(33);
        let mut scratch = BytesMut::new();
        for _ in 0..40 {
            let n = rng.gen_range(0..1500);
            let mut keys: Vec<u64> = Vec::with_capacity(n);
            let mut cur = 0u64;
            for _ in 0..n {
                cur += rng.gen_range(1..40_000_000u64);
                keys.push(cur);
            }
            let mut reference = BytesMut::new();
            let ref_written = encode_keys(&keys, &mut reference).unwrap();
            scratch.clear();
            let written = encode_keys_into(&keys, &mut scratch).unwrap();
            assert_eq!(written, ref_written);
            assert_eq!(&scratch[..], &reference[..], "streaming encode diverged");

            let mut dec = Vec::new();
            let mut view = &scratch[..];
            decode_keys_into(&mut view, &mut dec).unwrap();
            assert_eq!(view.len(), 0, "decoder must consume exactly its bytes");
            assert_eq!(dec, keys);
        }
    }

    #[test]
    fn streaming_encode_rejects_bad_keys() {
        let mut buf = BytesMut::new();
        assert!(encode_keys_into(&[5, 5], &mut buf).is_err());
        buf.clear();
        assert!(encode_keys_into(&[5, 3], &mut buf).is_err());
        buf.clear();
        assert!(encode_keys_into(&[u32::MAX as u64 + 1], &mut buf).is_err());
    }

    #[test]
    fn decode_into_reuses_buffer_and_rejects_truncation() {
        let keys: Vec<u64> = (0..200).map(|i| i * 11 + 5).collect();
        let mut buf = BytesMut::new();
        encode_keys(&keys, &mut buf).unwrap();
        let full = buf.freeze();
        let mut out = vec![99u64; 3]; // stale content must be cleared
        let mut view = &full[..];
        decode_keys_into(&mut view, &mut out).unwrap();
        assert_eq!(out, keys);
        for cut in 0..full.len() {
            let mut partial = &full[..cut];
            let _ = decode_keys_into(&mut partial, &mut out); // must not panic
        }
    }

    #[test]
    fn beats_raw_four_byte_keys() {
        // §3.4: "3.2× smaller for a four-byte integer".
        let mut rng = StdRng::seed_from_u64(32);
        let mut cur = 0u64;
        let keys: Vec<u64> = (0..20_000)
            .map(|_| {
                cur += rng.gen_range(1..60u64);
                cur
            })
            .collect();
        let encoded = encoded_len(&keys).unwrap() as f64;
        let raw = 4.0 * keys.len() as f64;
        assert!(
            raw / encoded > 2.5,
            "compression rate {} too low",
            raw / encoded
        );
    }
}
