//! Size accounting helpers shared by the experiment harnesses.

use serde::{Deserialize, Serialize};

/// Size breakdown of one encoded message, used for Figure 8(b)
/// ("Message Size and Compression Rate") and Figure 8(d) ("Bytes Per Key").
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SizeReport {
    /// Bytes spent on keys (flags + payload).
    pub key_bytes: usize,
    /// Bytes spent on values (bucket means + sketch tables, or raw floats).
    pub value_bytes: usize,
    /// Bytes spent on headers/counts.
    pub header_bytes: usize,
    /// Number of key-value pairs in the message.
    pub pairs: usize,
}

impl SizeReport {
    /// Total message size in bytes.
    pub fn total(&self) -> usize {
        self.key_bytes + self.value_bytes + self.header_bytes
    }

    /// Average bytes per key, the Figure 8(d) metric.
    pub fn bytes_per_key(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.key_bytes as f64 / self.pairs as f64
        }
    }

    /// Compression rate against the uncompressed `(4-byte key, 8-byte
    /// value)` representation — the `12d` reference of §3.5.
    pub fn compression_rate(&self) -> f64 {
        if self.total() == 0 {
            return 1.0;
        }
        (12 * self.pairs) as f64 / self.total() as f64
    }

    /// Accumulates another report (e.g. across epochs or workers).
    pub fn accumulate(&mut self, other: &SizeReport) {
        self.key_bytes += other.key_bytes;
        self.value_bytes += other.value_bytes;
        self.header_bytes += other.header_bytes;
        self.pairs += other.pairs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_rates() {
        let r = SizeReport {
            key_bytes: 125,
            value_bytes: 300,
            header_bytes: 25,
            pairs: 100,
        };
        assert_eq!(r.total(), 450);
        assert!((r.bytes_per_key() - 1.25).abs() < 1e-12);
        assert!((r.compression_rate() - 1200.0 / 450.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = SizeReport::default();
        assert_eq!(r.total(), 0);
        assert_eq!(r.bytes_per_key(), 0.0);
        assert_eq!(r.compression_rate(), 1.0);
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = SizeReport {
            key_bytes: 10,
            value_bytes: 20,
            header_bytes: 5,
            pairs: 3,
        };
        let b = a;
        a.accumulate(&b);
        assert_eq!(a.total(), 70);
        assert_eq!(a.pairs, 6);
    }
}
