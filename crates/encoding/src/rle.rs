//! Run-length encoding (RLE) baseline.
//!
//! §3.4: "RLE and Huffman Coding are typically used to compress a data
//! sequence in which a same data value might occur consecutively … they are
//! useless for non-repetitive gradient keys." This module exists so that
//! claim is *measured*, not assumed: the `encoding` bench and the
//! `rle_useless_for_distinct_keys` test run RLE over real key streams.
//!
//! Encoding: a stream of `(varint run_length, varint value)` pairs.

use crate::error::EncodingError;
use crate::varint;
use bytes::{Buf, BufMut};

/// Encodes `values` as (run, value) pairs. Returns bytes written.
pub fn encode_rle(values: &[u64], out: &mut impl BufMut) -> usize {
    let mut written = varint::encoded_len(values.len() as u64);
    varint::write_u64(out, values.len() as u64);
    let mut i = 0;
    while i < values.len() {
        let v = values[i];
        let mut run = 1u64;
        while i + (run as usize) < values.len() && values[i + run as usize] == v {
            run += 1;
        }
        varint::write_u64(out, run);
        varint::write_u64(out, v);
        written += varint::encoded_len(run) + varint::encoded_len(v);
        i += run as usize;
    }
    written
}

/// Decodes a stream written by [`encode_rle`].
///
/// # Errors
/// [`EncodingError::UnexpectedEof`] on truncation, [`EncodingError::Corrupt`]
/// if run lengths disagree with the declared element count.
pub fn decode_rle(buf: &mut impl Buf) -> Result<Vec<u64>, EncodingError> {
    let n = varint::read_u64(buf)? as usize;
    // Allocation-bomb guard: each encoded run costs at least two varint
    // bytes and expands to at most `run` elements, but a *declared* count far
    // beyond what any remaining run could produce is corruption — cap the
    // upfront reservation by what the buffer could plausibly hold and let the
    // loop's own bounds checks reject the rest.
    let mut out = Vec::with_capacity(n.min(buf.remaining().saturating_mul(8)));
    while out.len() < n {
        let run = varint::read_u64(buf)?;
        let v = varint::read_u64(buf)?;
        if run == 0 || out.len() + run as usize > n {
            return Err(EncodingError::Corrupt(format!(
                "run of {run} overflows declared count {n}"
            )));
        }
        out.extend(std::iter::repeat_n(v, run as usize));
    }
    Ok(out)
}

/// Exact size [`encode_rle`] would produce without writing.
pub fn encoded_len(values: &[u64]) -> usize {
    let mut len = varint::encoded_len(values.len() as u64);
    let mut i = 0;
    while i < values.len() {
        let v = values[i];
        let mut run = 1u64;
        while i + (run as usize) < values.len() && values[i + run as usize] == v {
            run += 1;
        }
        len += varint::encoded_len(run) + varint::encoded_len(v);
        i += run as usize;
    }
    len
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn roundtrip(values: &[u64]) -> Vec<u64> {
        let mut buf = BytesMut::new();
        let written = encode_rle(values, &mut buf);
        assert_eq!(written, buf.len());
        assert_eq!(written, encoded_len(values));
        decode_rle(&mut buf.freeze()).unwrap()
    }

    #[test]
    fn roundtrips() {
        assert_eq!(roundtrip(&[]), Vec::<u64>::new());
        assert_eq!(roundtrip(&[7]), vec![7]);
        let runs = [1u64, 1, 1, 5, 5, 2, 2, 2, 2, 9];
        assert_eq!(roundtrip(&runs), runs);
    }

    #[test]
    fn compresses_repetitive_data() {
        let values = vec![42u64; 10_000];
        let len = encoded_len(&values);
        assert!(
            len < 16,
            "10k identical values should collapse, got {len} bytes"
        );
    }

    #[test]
    fn rle_useless_for_distinct_keys() {
        // §3.4's claim: for strictly ascending (never-repeating) keys, RLE
        // stores every key plus a run length — *worse* than raw.
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 31 + 1000).collect();
        let len = encoded_len(&keys);
        assert!(
            len >= keys.len() * 2,
            "RLE must pay >= 2 bytes/key on distinct keys, got {len}"
        );
        let delta = crate::delta_binary::encoded_len(&keys).unwrap();
        assert!(
            delta * 2 < len,
            "delta-binary ({delta}) should beat RLE ({len}) by 2x+"
        );
    }

    #[test]
    fn corrupt_run_rejected() {
        let mut buf = BytesMut::new();
        varint::write_u64(&mut buf, 3); // declare 3 elements
        varint::write_u64(&mut buf, 5); // run of 5 overflows
        varint::write_u64(&mut buf, 1);
        assert!(matches!(
            decode_rle(&mut buf.freeze()),
            Err(EncodingError::Corrupt(_))
        ));
    }

    #[test]
    fn truncation_detected() {
        let mut buf = BytesMut::new();
        encode_rle(&[1, 2, 3], &mut buf);
        let full = buf.freeze();
        let mut cut = full.slice(..full.len() - 1);
        assert!(decode_rle(&mut cut).is_err());
    }
}
