//! Multi-shard payload framing for the parallel compression engine.
//!
//! A sharded message concatenates the independently-encoded shard payloads
//! behind a tiny self-describing header, all varint ([`crate::varint`]):
//!
//! ```text
//! +----------------+------------------+-----+------------------+---------+-----+---------+
//! | shard count S  | len(payload[0])  | ... | len(payload[S-1])| payload0| ... | payloadS|
//! |   varint       |   varint         |     |   varint         |  bytes  |     |  bytes  |
//! +----------------+------------------+-----+------------------+---------+-----+---------+
//! ```
//!
//! The header depends only on the shard payloads — never on how many threads
//! produced them — so a frame is byte-identical for any worker-thread count.

use crate::error::EncodingError;
use crate::varint;
use bytes::BufMut;

/// Upper bound on the shard count accepted by [`read_header`]; real configs
/// use at most a few hundred shards, so anything larger is corruption.
pub const MAX_SHARDS: usize = 65_536;

/// Appends the frame header (shard count + per-shard lengths) to `out`.
pub fn write_header(out: &mut impl BufMut, lens: &[usize]) {
    varint::write_u64(out, lens.len() as u64);
    for &len in lens {
        varint::write_u64(out, len as u64);
    }
}

/// Number of bytes [`write_header`] emits for these shard lengths.
pub fn header_len(lens: &[usize]) -> usize {
    varint::encoded_len(lens.len() as u64)
        + lens
            .iter()
            .map(|&len| varint::encoded_len(len as u64))
            .sum::<usize>()
}

/// Reads a frame header from the front of `buf`, advancing it past the
/// header. Returns the per-shard payload lengths.
///
/// # Errors
/// [`EncodingError::UnexpectedEof`] on a truncated header, and
/// [`EncodingError::Corrupt`] if the shard count exceeds [`MAX_SHARDS`], a
/// length does not fit in memory, or the declared payload bytes exceed what
/// remains in the buffer.
pub fn read_header(buf: &mut &[u8]) -> Result<Vec<usize>, EncodingError> {
    let mut lens = Vec::new();
    read_header_into(buf, &mut lens)?;
    Ok(lens)
}

/// [`read_header`] into a caller-owned buffer (cleared first), so the hot
/// decode path can reuse one allocation across messages.
///
/// # Errors
/// Same contract as [`read_header`].
pub fn read_header_into(buf: &mut &[u8], lens: &mut Vec<usize>) -> Result<(), EncodingError> {
    lens.clear();
    let count = varint::read_u64(buf)?;
    if count == 0 || count > MAX_SHARDS as u64 {
        return Err(EncodingError::Corrupt(format!(
            "shard count {count} outside 1..={MAX_SHARDS}"
        )));
    }
    let count = count as usize;
    lens.reserve(count);
    let mut total: u64 = 0;
    for _ in 0..count {
        let len = varint::read_u64(buf)?;
        total = total
            .checked_add(len)
            .ok_or_else(|| EncodingError::Corrupt("shard lengths overflow".into()))?;
        let len = usize::try_from(len)
            .map_err(|_| EncodingError::Corrupt("shard length exceeds usize".into()))?;
        lens.push(len);
    }
    if total > buf.len() as u64 {
        return Err(EncodingError::Corrupt(format!(
            "frame declares {total} payload bytes but only {} remain",
            buf.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn header_roundtrips() {
        let lens = vec![0usize, 1, 127, 128, 70_000];
        let mut buf = BytesMut::new();
        write_header(&mut buf, &lens);
        assert_eq!(buf.len(), header_len(&lens));
        let payload_bytes = lens.iter().sum::<usize>();
        buf.extend_from_slice(&vec![0u8; payload_bytes]);
        let frozen = buf.freeze();
        let mut slice = &frozen[..];
        assert_eq!(read_header(&mut slice).unwrap(), lens);
        assert_eq!(slice.len(), payload_bytes);
    }

    #[test]
    fn truncated_header_is_eof() {
        let mut buf = BytesMut::new();
        write_header(&mut buf, &[10, 20, 30]);
        let frozen = buf.freeze();
        for cut in 0..frozen.len() {
            let mut slice = &frozen[..cut];
            assert!(read_header(&mut slice).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn declared_bytes_must_fit() {
        let mut buf = BytesMut::new();
        write_header(&mut buf, &[100]);
        let frozen = buf.freeze();
        let mut slice = &frozen[..]; // header only; 100 payload bytes missing
        assert!(matches!(
            read_header(&mut slice),
            Err(EncodingError::Corrupt(_))
        ));
    }

    #[test]
    fn absurd_shard_counts_are_corrupt() {
        let mut buf = BytesMut::new();
        varint::write_u64(&mut buf, 0); // zero shards
        let frozen = buf.freeze();
        let mut slice = &frozen[..];
        assert!(matches!(
            read_header(&mut slice),
            Err(EncodingError::Corrupt(_))
        ));

        let mut buf = BytesMut::new();
        varint::write_u64(&mut buf, u64::MAX); // billions of shards
        let frozen = buf.freeze();
        let mut slice = &frozen[..];
        assert!(matches!(
            read_header(&mut slice),
            Err(EncodingError::Corrupt(_))
        ));
    }
}
