//! Multi-shard payload framing for the parallel compression engine.
//!
//! A **v1** sharded message concatenates the independently-encoded shard
//! payloads behind a tiny self-describing header, all varint
//! ([`crate::varint`]):
//!
//! ```text
//! +----------------+------------------+-----+------------------+---------+-----+---------+
//! | shard count S  | len(payload[0])  | ... | len(payload[S-1])| payload0| ... | payloadS|
//! |   varint       |   varint         |     |   varint         |  bytes  |     |  bytes  |
//! +----------------+------------------+-----+------------------+---------+-----+---------+
//! ```
//!
//! The **v2** frame adds a per-shard CRC32 ([`crate::crc32`]) so in-flight
//! corruption is *detected* instead of silently poisoning gradients. v1
//! rejects a shard count of zero, which frees the `0x00` lead byte as a
//! version sentinel — v1 decoders fail cleanly on v2 frames, and
//! [`read_any_header_into`] decodes both:
//!
//! ```text
//! +------+---------+----------+-----------------+------------------+----------+-----+
//! | 0x00 | version | count S  | len[0..S] varint| crc32[0..S] (LE) | payload0 | ... |
//! | u8   | u8 = 2  | varint   |                 |  4 bytes each    |          |     |
//! +------+---------+----------+-----------------+------------------+----------+-----+
//! ```
//!
//! The header depends only on the shard payloads — never on how many threads
//! produced them — so a frame is byte-identical for any worker-thread count.

use crate::error::EncodingError;
use crate::varint;
use bytes::BufMut;

/// Upper bound on the shard count accepted by [`read_header`]; real configs
/// use at most a few hundred shards, so anything larger is corruption.
pub const MAX_SHARDS: usize = 65_536;

/// Lead byte distinguishing a v2 frame: varint `0`, which v1 rejects as a
/// corrupt shard count.
pub const V2_SENTINEL: u8 = 0x00;

/// Version byte of the CRC-carrying frame format.
pub const V2_VERSION: u8 = 2;

/// Which frame format a sharded payload is written in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FrameVersion {
    /// Lengths only (PR 1 wire format; the golden-fixture default).
    #[default]
    V1,
    /// Lengths + per-shard CRC32: corruption surfaces as a typed error.
    V2,
}

/// Appends the frame header (shard count + per-shard lengths) to `out`.
pub fn write_header(out: &mut impl BufMut, lens: &[usize]) {
    varint::write_u64(out, lens.len() as u64);
    for &len in lens {
        varint::write_u64(out, len as u64);
    }
}

/// Number of bytes [`write_header`] emits for these shard lengths.
pub fn header_len(lens: &[usize]) -> usize {
    varint::encoded_len(lens.len() as u64)
        + lens
            .iter()
            .map(|&len| varint::encoded_len(len as u64))
            .sum::<usize>()
}

/// Reads a frame header from the front of `buf`, advancing it past the
/// header. Returns the per-shard payload lengths.
///
/// # Errors
/// [`EncodingError::UnexpectedEof`] on a truncated header, and
/// [`EncodingError::Corrupt`] if the shard count exceeds [`MAX_SHARDS`], a
/// length does not fit in memory, or the declared payload bytes exceed what
/// remains in the buffer.
pub fn read_header(buf: &mut &[u8]) -> Result<Vec<usize>, EncodingError> {
    let mut lens = Vec::new();
    read_header_into(buf, &mut lens)?;
    Ok(lens)
}

/// [`read_header`] into a caller-owned buffer (cleared first), so the hot
/// decode path can reuse one allocation across messages.
///
/// # Errors
/// Same contract as [`read_header`].
pub fn read_header_into(buf: &mut &[u8], lens: &mut Vec<usize>) -> Result<(), EncodingError> {
    lens.clear();
    let count = varint::read_u64(buf)?;
    if count == 0 || count > MAX_SHARDS as u64 {
        return Err(EncodingError::Corrupt(format!(
            "shard count {count} outside 1..={MAX_SHARDS}"
        )));
    }
    let count = count as usize;
    // Allocation-bomb guard: every declared shard needs at least one length
    // byte still in the buffer, so any count beyond the remaining bytes is
    // corrupt — reject it *before* reserving.
    if count > buf.len() {
        return Err(EncodingError::Corrupt(format!(
            "shard count {count} exceeds the {} remaining bytes",
            buf.len()
        )));
    }
    lens.reserve(count);
    read_lens(buf, count, lens)
}

/// Reads `count` shard lengths, validating the running total against the
/// remaining buffer as it goes so an adversarial header fails fast.
fn read_lens(buf: &mut &[u8], count: usize, lens: &mut Vec<usize>) -> Result<(), EncodingError> {
    let mut total: u64 = 0;
    for _ in 0..count {
        let len = varint::read_u64(buf)?;
        total = total
            .checked_add(len)
            .ok_or_else(|| EncodingError::Corrupt("shard lengths overflow".into()))?;
        // Conservative early check: the payload region only shrinks as more
        // length varints are consumed, so exceeding the current remainder is
        // already unrecoverable.
        if total > buf.len() as u64 {
            return Err(EncodingError::Corrupt(format!(
                "frame declares {total} payload bytes but only {} remain",
                buf.len()
            )));
        }
        let len = usize::try_from(len)
            .map_err(|_| EncodingError::Corrupt("shard length exceeds usize".into()))?;
        lens.push(len);
    }
    Ok(())
}

/// Appends a v2 frame header (sentinel + version + count + lengths + one
/// CRC32 per shard) to `out`. `crcs` must be [`crate::crc32::crc32`] of each
/// shard payload, in order.
///
/// # Panics
/// Debug-asserts `lens` and `crcs` have equal lengths (a caller bug, not a
/// wire condition).
pub fn write_header_v2(out: &mut impl BufMut, lens: &[usize], crcs: &[u32]) {
    debug_assert_eq!(lens.len(), crcs.len(), "one CRC per shard");
    out.put_u8(V2_SENTINEL);
    out.put_u8(V2_VERSION);
    varint::write_u64(out, lens.len() as u64);
    for &len in lens {
        varint::write_u64(out, len as u64);
    }
    for &crc in crcs {
        out.put_u32_le(crc);
    }
}

/// Number of bytes [`write_header_v2`] emits for these shard lengths.
pub fn header_len_v2(lens: &[usize]) -> usize {
    2 + header_len(lens) + 4 * lens.len()
}

/// Reads either frame version from the front of `buf`, advancing past the
/// header. Fills `lens` with the per-shard payload lengths; fills `crcs`
/// with the per-shard checksums for a v2 frame (cleared and left empty for
/// v1). Returns which version was found.
///
/// # Errors
/// Same contract as [`read_header`], plus [`EncodingError::Corrupt`] for an
/// unsupported v2 version byte.
pub fn read_any_header_into(
    buf: &mut &[u8],
    lens: &mut Vec<usize>,
    crcs: &mut Vec<u32>,
) -> Result<FrameVersion, EncodingError> {
    crcs.clear();
    if buf.first() != Some(&V2_SENTINEL) {
        read_header_into(buf, lens)?;
        return Ok(FrameVersion::V1);
    }
    lens.clear();
    *buf = &buf[1..];
    let Some((&version, rest)) = buf.split_first() else {
        return Err(EncodingError::UnexpectedEof {
            context: "frame version byte",
        });
    };
    *buf = rest;
    if version != V2_VERSION {
        return Err(EncodingError::Corrupt(format!(
            "unsupported frame version {version}"
        )));
    }
    let count = varint::read_u64(buf)?;
    if count == 0 || count > MAX_SHARDS as u64 {
        return Err(EncodingError::Corrupt(format!(
            "shard count {count} outside 1..={MAX_SHARDS}"
        )));
    }
    let count = count as usize;
    // Each shard needs ≥ 1 length byte + 4 CRC bytes ahead of the payload;
    // reject absurd counts before reserving anything.
    if count.saturating_mul(5) > buf.len() {
        return Err(EncodingError::Corrupt(format!(
            "shard count {count} exceeds the {} remaining bytes",
            buf.len()
        )));
    }
    lens.reserve(count);
    read_lens(buf, count, lens)?;
    if buf.len() < 4 * count {
        return Err(EncodingError::UnexpectedEof {
            context: "per-shard CRC32 table",
        });
    }
    crcs.reserve(count);
    for _ in 0..count {
        let (head, rest) = buf.split_at(4);
        crcs.push(u32::from_le_bytes([head[0], head[1], head[2], head[3]]));
        *buf = rest;
    }
    // Re-check the payload total now that the CRC table is consumed.
    let total: u64 = lens.iter().map(|&l| l as u64).sum();
    if total > buf.len() as u64 {
        return Err(EncodingError::Corrupt(format!(
            "frame declares {total} payload bytes but only {} remain",
            buf.len()
        )));
    }
    Ok(FrameVersion::V2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn header_roundtrips() {
        let lens = vec![0usize, 1, 127, 128, 70_000];
        let mut buf = BytesMut::new();
        write_header(&mut buf, &lens);
        assert_eq!(buf.len(), header_len(&lens));
        let payload_bytes = lens.iter().sum::<usize>();
        buf.extend_from_slice(&vec![0u8; payload_bytes]);
        let frozen = buf.freeze();
        let mut slice = &frozen[..];
        assert_eq!(read_header(&mut slice).unwrap(), lens);
        assert_eq!(slice.len(), payload_bytes);
    }

    #[test]
    fn truncated_header_is_eof() {
        let mut buf = BytesMut::new();
        write_header(&mut buf, &[10, 20, 30]);
        let frozen = buf.freeze();
        for cut in 0..frozen.len() {
            let mut slice = &frozen[..cut];
            assert!(read_header(&mut slice).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn declared_bytes_must_fit() {
        let mut buf = BytesMut::new();
        write_header(&mut buf, &[100]);
        let frozen = buf.freeze();
        let mut slice = &frozen[..]; // header only; 100 payload bytes missing
        assert!(matches!(
            read_header(&mut slice),
            Err(EncodingError::Corrupt(_))
        ));
    }

    #[test]
    fn absurd_shard_counts_are_corrupt() {
        let mut buf = BytesMut::new();
        varint::write_u64(&mut buf, 0); // zero shards
        let frozen = buf.freeze();
        let mut slice = &frozen[..];
        assert!(matches!(
            read_header(&mut slice),
            Err(EncodingError::Corrupt(_))
        ));

        let mut buf = BytesMut::new();
        varint::write_u64(&mut buf, u64::MAX); // billions of shards
        let frozen = buf.freeze();
        let mut slice = &frozen[..];
        assert!(matches!(
            read_header(&mut slice),
            Err(EncodingError::Corrupt(_))
        ));
    }

    #[test]
    fn declared_count_beyond_buffer_rejected_before_allocating() {
        // 65 000 declared shards but only 3 bytes follow: must be rejected
        // without reserving 65 000 slots.
        let mut buf = BytesMut::new();
        varint::write_u64(&mut buf, 65_000);
        buf.extend_from_slice(&[1, 2, 3]);
        let frozen = buf.freeze();
        let mut slice = &frozen[..];
        let mut lens = Vec::new();
        let err = read_header_into(&mut slice, &mut lens).unwrap_err();
        assert!(matches!(err, EncodingError::Corrupt(_)), "{err}");
        assert_eq!(lens.capacity(), 0, "guard must fire before reserve");
    }

    #[test]
    fn oversized_length_rejected_before_later_lengths() {
        // First declared length already exceeds everything that remains:
        // the in-loop check fires without reading the rest of the header.
        let mut buf = BytesMut::new();
        varint::write_u64(&mut buf, 2);
        varint::write_u64(&mut buf, 1 << 40);
        varint::write_u64(&mut buf, 0);
        let frozen = buf.freeze();
        let mut slice = &frozen[..];
        assert!(matches!(
            read_header(&mut slice),
            Err(EncodingError::Corrupt(_))
        ));
    }

    #[test]
    fn v2_header_roundtrips_and_v1_reader_rejects_it() {
        let lens = vec![3usize, 0, 129];
        let crcs = vec![0xDEAD_BEEF, 0, 0x0102_0304];
        let mut buf = BytesMut::new();
        write_header_v2(&mut buf, &lens, &crcs);
        assert_eq!(buf.len(), header_len_v2(&lens));
        buf.extend_from_slice(&vec![7u8; lens.iter().sum::<usize>()]);
        let frozen = buf.freeze();

        let mut slice = &frozen[..];
        let (mut got_lens, mut got_crcs) = (Vec::new(), Vec::new());
        let version = read_any_header_into(&mut slice, &mut got_lens, &mut got_crcs).unwrap();
        assert_eq!(version, FrameVersion::V2);
        assert_eq!(got_lens, lens);
        assert_eq!(got_crcs, crcs);
        assert_eq!(slice.len(), lens.iter().sum::<usize>());

        // A v1 decoder sees shard count 0 and fails with a typed error.
        let mut slice = &frozen[..];
        assert!(matches!(
            read_header(&mut slice),
            Err(EncodingError::Corrupt(_))
        ));
    }

    #[test]
    fn any_reader_still_decodes_v1() {
        let lens = vec![5usize, 9];
        let mut buf = BytesMut::new();
        write_header(&mut buf, &lens);
        buf.extend_from_slice(&[0u8; 14]);
        let frozen = buf.freeze();
        let mut slice = &frozen[..];
        let (mut got_lens, mut crcs) = (Vec::new(), vec![1, 2, 3]);
        let version = read_any_header_into(&mut slice, &mut got_lens, &mut crcs).unwrap();
        assert_eq!(version, FrameVersion::V1);
        assert_eq!(got_lens, lens);
        assert!(crcs.is_empty(), "v1 must clear stale CRCs");
    }

    #[test]
    fn v2_adversarial_headers_are_typed_errors() {
        // Bare sentinel: EOF on the version byte.
        let mut slice: &[u8] = &[V2_SENTINEL];
        let (mut lens, mut crcs) = (Vec::new(), Vec::new());
        assert!(read_any_header_into(&mut slice, &mut lens, &mut crcs).is_err());

        // Unknown version byte.
        let mut slice: &[u8] = &[V2_SENTINEL, 9, 1, 0, 0, 0, 0, 0];
        assert!(matches!(
            read_any_header_into(&mut slice, &mut lens, &mut crcs),
            Err(EncodingError::Corrupt(_))
        ));

        // Huge declared count with a tiny buffer: rejected before reserve.
        let mut buf = BytesMut::new();
        buf.put_u8(V2_SENTINEL);
        buf.put_u8(V2_VERSION);
        varint::write_u64(&mut buf, 60_000);
        buf.extend_from_slice(&[0, 0, 0]);
        let frozen = buf.freeze();
        let mut slice = &frozen[..];
        let mut lens = Vec::new();
        let err = read_any_header_into(&mut slice, &mut lens, &mut crcs).unwrap_err();
        assert!(matches!(err, EncodingError::Corrupt(_)), "{err}");
        assert_eq!(lens.capacity(), 0, "guard must fire before reserve");

        // Truncated CRC table.
        let mut buf = BytesMut::new();
        write_header_v2(&mut buf, &[4, 4], &[1, 2]);
        let frozen = buf.freeze();
        let cut = frozen.len() - 10; // into the CRC table
        let mut slice = &frozen[..cut];
        assert!(read_any_header_into(&mut slice, &mut lens, &mut crcs).is_err());
    }
}
