//! SIMD lane dispatch for the codec hot paths.
//!
//! Mirrors `sketchml-sketches::simd`: every vectorized routine keeps an
//! always-compiled scalar reference, lanes compile only under the `simd`
//! cargo feature on x86_64, are selected at runtime on AVX2 hardware, and
//! debug builds assert lane output equals the scalar reference byte-for-
//! byte. [`force_scalar`] lets differential tests pin the scalar path.
//! (This crate has its own toggle because it does not depend on the
//! sketches crate; `sketchml-core` re-exports a combined switch.)

use std::sync::atomic::{AtomicBool, Ordering};

static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Forces the scalar reference implementations even when the `simd` feature
/// and AVX2 are both available. Test hook for scalar-vs-lane differential
/// tests; a no-op (scalar is the only path) without the feature.
pub fn force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::SeqCst);
}

/// True when vector lanes are compiled in, supported by this CPU, and not
/// forced off by [`force_scalar`].
#[inline]
pub fn lanes_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if FORCE_SCALAR.load(Ordering::Relaxed) {
            return false;
        }
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        let _ = FORCE_SCALAR.load(Ordering::Relaxed);
        false
    }
}
