//! Rice (Golomb–Rice) coding — the remaining §1.1 lossless baseline.
//!
//! Rice coding with parameter `k` writes a value `v` as `⌊v / 2^k⌋` unary
//! bits followed by the low `k` bits verbatim. It is near-optimal for
//! geometrically distributed integers, which delta keys approximately are —
//! making it the strongest of the classic lossless baselines on key streams
//! and a useful upper-bound comparison for the paper's byte-aligned
//! delta-binary scheme (which trades a little density for byte-aligned
//! decoding speed).
//!
//! Wire layout: `varint n | u8 k | bitstream`.

use crate::delta_binary::{delta_restore, delta_transform};
use crate::error::EncodingError;
use crate::varint;
use bytes::{Buf, BufMut};

/// Chooses the Rice parameter `k` minimizing the encoded size for `values`
/// (standard mean-based heuristic, then refined by exact cost).
pub fn optimal_k(values: &[u32]) -> u8 {
    if values.is_empty() {
        return 0;
    }
    let mean = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
    let guess = if mean <= 1.0 {
        0
    } else {
        mean.log2().floor() as i64
    };
    let mut best_k = 0u8;
    let mut best_bits = u64::MAX;
    for k in (guess - 2).max(0)..=(guess + 2).min(31) {
        let k = k as u8;
        let bits: u64 = values.iter().map(|&v| (v as u64 >> k) + 1 + k as u64).sum();
        if bits < best_bits {
            best_bits = bits;
            best_k = k;
        }
    }
    best_k
}

/// Bit-level writer over a byte vector.
struct BitWriter {
    bytes: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            bytes: Vec::new(),
            acc: 0,
            nbits: 0,
        }
    }

    /// Appends the low `n` bits of `v` (`n < 58`), MSB-first.
    fn push(&mut self, v: u64, n: u32) {
        debug_assert!(n < 58, "push width too large for the accumulator");
        if n == 0 {
            return;
        }
        self.acc = (self.acc << n) | (v & ((1u64 << n) - 1));
        self.nbits += n;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.bytes.push((self.acc >> self.nbits) as u8);
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.bytes.push((self.acc << (8 - self.nbits)) as u8);
        }
        self.bytes
    }
}

/// Bit-level reader over a byte slice.
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BitReader {
            bytes,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    fn read_bit(&mut self) -> Result<u64, EncodingError> {
        if self.nbits == 0 {
            if self.pos >= self.bytes.len() {
                return Err(EncodingError::UnexpectedEof {
                    context: "rice bitstream",
                });
            }
            self.acc = self.bytes[self.pos] as u64;
            self.pos += 1;
            self.nbits = 8;
        }
        self.nbits -= 1;
        Ok((self.acc >> self.nbits) & 1)
    }

    fn read_bits(&mut self, n: u32) -> Result<u64, EncodingError> {
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()?;
        }
        Ok(v)
    }
}

/// Rice-encodes `values` with an automatically chosen parameter.
/// Returns bytes written.
pub fn encode_rice(values: &[u32], out: &mut impl BufMut) -> usize {
    let k = optimal_k(values);
    let mut written = varint::encoded_len(values.len() as u64);
    varint::write_u64(out, values.len() as u64);
    out.put_u8(k);
    written += 1;
    let mut bits = BitWriter::new();
    for &v in values {
        push_rice_value(&mut bits, v, k);
    }
    let body = bits.finish();
    out.put_slice(&body);
    written + body.len()
}

/// Appends one Rice-coded value to a bit writer: unary quotient (ones then a
/// zero, emitted in chunks to respect the accumulator width) followed by the
/// low `k` remainder bits.
#[inline]
fn push_rice_value(bits: &mut BitWriter, v: u32, k: u8) {
    let q = (v as u64) >> k;
    let mut rem = q;
    while rem >= 32 {
        bits.push(u64::MAX, 32);
        rem -= 32;
    }
    bits.push(((1u64 << rem) - 1) << 1, rem as u32 + 1);
    if k > 0 {
        bits.push(v as u64, k as u32);
    }
}

/// Zero-temporary variant of [`encode_rice`]: streams the bitstream directly
/// into `out` instead of building an intermediate byte vector, so pooled
/// callers stay allocation-free. Byte-identical output to [`encode_rice`].
/// Returns bytes written.
pub fn encode_rice_into(values: &[u32], out: &mut bytes::BytesMut) -> usize {
    #[inline]
    fn push(out: &mut bytes::BytesMut, acc: &mut u64, nbits: &mut u32, v: u64, n: u32) {
        debug_assert!(n < 58, "push width too large for the accumulator");
        if n == 0 {
            return;
        }
        *acc = (*acc << n) | (v & ((1u64 << n) - 1));
        *nbits += n;
        while *nbits >= 8 {
            *nbits -= 8;
            out.put_u8((*acc >> *nbits) as u8);
        }
    }
    let k = optimal_k(values);
    let start = out.len();
    varint::write_u64(out, values.len() as u64);
    out.put_u8(k);
    let mut acc = 0u64;
    let mut nbits = 0u32;
    for &v in values {
        let q = (v as u64) >> k;
        let mut rem = q;
        while rem >= 32 {
            push(out, &mut acc, &mut nbits, u64::MAX, 32);
            rem -= 32;
        }
        push(
            out,
            &mut acc,
            &mut nbits,
            ((1u64 << rem) - 1) << 1,
            rem as u32 + 1,
        );
        if k > 0 {
            push(out, &mut acc, &mut nbits, v as u64, k as u32);
        }
    }
    if nbits > 0 {
        out.put_u8((acc << (8 - nbits)) as u8);
    }
    out.len() - start
}

/// Exact byte count [`encode_rice`] will emit for `values` (including the
/// count varint and parameter byte) — lets callers compare codecs before
/// committing bytes.
pub fn encoded_len_rice(values: &[u32]) -> usize {
    let k = optimal_k(values);
    let bits: u64 = values.iter().map(|&v| (v as u64 >> k) + 1 + k as u64).sum();
    varint::encoded_len(values.len() as u64) + 1 + (bits as usize).div_ceil(8)
}

/// Decodes a stream written by [`encode_rice`].
///
/// # Errors
/// [`EncodingError::UnexpectedEof`] on truncation, [`EncodingError::Corrupt`]
/// on an implausible unary run.
pub fn decode_rice(buf: &mut impl Buf) -> Result<Vec<u32>, EncodingError> {
    let mut out = Vec::new();
    decode_rice_into(buf, &mut out)?;
    Ok(out)
}

/// Variant of [`decode_rice`] decoding into a reusable buffer (`out` is
/// cleared first). A contiguous `buf` is decoded straight off its chunk
/// without an intermediate copy, so pooled callers stay allocation-free.
///
/// Like [`decode_rice`], this consumes the rest of `buf`: the bitstream
/// carries no byte length, so it must be the final field of its frame.
///
/// # Errors
/// See [`decode_rice`].
pub fn decode_rice_into(buf: &mut impl Buf, out: &mut Vec<u32>) -> Result<(), EncodingError> {
    let n = varint::read_u64(buf)? as usize;
    if !buf.has_remaining() {
        return Err(EncodingError::UnexpectedEof {
            context: "rice parameter",
        });
    }
    let k = buf.get_u8();
    if k > 31 {
        return Err(EncodingError::Corrupt(format!("rice parameter {k} > 31")));
    }
    out.clear();
    if buf.chunk().len() == buf.remaining() {
        let body = buf.chunk();
        decode_rice_body(body, n, k, out)?;
        let len = body.len();
        buf.advance(len);
    } else {
        let mut body = vec![0u8; buf.remaining()];
        buf.copy_to_slice(&mut body);
        decode_rice_body(&body, n, k, out)?;
    }
    Ok(())
}

fn decode_rice_body(body: &[u8], n: usize, k: u8, out: &mut Vec<u32>) -> Result<(), EncodingError> {
    // Allocation-bomb guard: every value costs at least its unary terminator
    // bit, so a declared count beyond 8× the body length is corrupt.
    if n > body.len().saturating_mul(8) {
        return Err(EncodingError::Corrupt(format!(
            "declared {n} values but the bitstream holds at most {}",
            body.len().saturating_mul(8)
        )));
    }
    let mut bits = BitReader::new(body);
    out.reserve(n);
    for _ in 0..n {
        let mut q: u64 = 0;
        while bits.read_bit()? == 1 {
            q += 1;
            if q > u32::MAX as u64 {
                return Err(EncodingError::Corrupt("unary run overflows u32".into()));
            }
        }
        let low = if k > 0 { bits.read_bits(k as u32)? } else { 0 };
        let v = (q << k) | low;
        let v = u32::try_from(v)
            .map_err(|_| EncodingError::Corrupt("rice value overflows u32".into()))?;
        out.push(v);
    }
    Ok(())
}

/// Rice-encodes a strictly ascending key array by delta-transforming first
/// (the apples-to-apples comparison against `delta_binary`).
///
/// # Errors
/// See [`delta_transform`].
pub fn encode_rice_keys(keys: &[u64], out: &mut impl BufMut) -> Result<usize, EncodingError> {
    let deltas = delta_transform(keys)?;
    Ok(encode_rice(&deltas, out))
}

/// Decodes keys written by [`encode_rice_keys`].
///
/// # Errors
/// See [`decode_rice`].
pub fn decode_rice_keys(buf: &mut impl Buf) -> Result<Vec<u64>, EncodingError> {
    let deltas = decode_rice(buf)?;
    Ok(delta_restore(&deltas))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn roundtrip(values: &[u32]) -> Vec<u32> {
        let mut buf = BytesMut::new();
        let written = encode_rice(values, &mut buf);
        assert_eq!(written, buf.len());
        decode_rice(&mut buf.freeze()).unwrap()
    }

    #[test]
    fn roundtrips_basic() {
        assert_eq!(roundtrip(&[]), Vec::<u32>::new());
        assert_eq!(roundtrip(&[0]), vec![0]);
        assert_eq!(
            roundtrip(&[0, 1, 2, 3, 255, 256, 65_536]),
            vec![0, 1, 2, 3, 255, 256, 65_536]
        );
        assert_eq!(roundtrip(&[u32::MAX]), vec![u32::MAX]);
    }

    #[test]
    fn roundtrips_random_geometric() {
        let mut rng = StdRng::seed_from_u64(61);
        for _ in 0..20 {
            let values: Vec<u32> = (0..rng.gen_range(1..2000))
                .map(|_| {
                    // Geometric-ish deltas like real key gaps.
                    let u: f64 = rng.gen::<f64>().max(1e-12);
                    (-u.ln() * 40.0) as u32
                })
                .collect();
            assert_eq!(roundtrip(&values), values);
        }
    }

    #[test]
    fn into_variants_match_allocating_paths() {
        let mut rng = StdRng::seed_from_u64(63);
        for round in 0..20 {
            let n = if round == 0 { 0 } else { rng.gen_range(1..500) };
            let values: Vec<u32> = (0..n)
                .map(|_| rng.gen::<u32>() >> rng.gen_range(0..32))
                .collect();
            let mut a = BytesMut::new();
            let wa = encode_rice(&values, &mut a);
            let mut b = BytesMut::new();
            let wb = encode_rice_into(&values, &mut b);
            assert_eq!(a, b, "encode_rice_into diverged at round {round}");
            assert_eq!(wa, wb);
            assert_eq!(encoded_len_rice(&values), wa, "size prediction wrong");
            let mut out = Vec::new();
            decode_rice_into(&mut a.freeze(), &mut out).unwrap();
            assert_eq!(out, values);
        }
    }

    #[test]
    fn optimal_k_tracks_scale() {
        assert!(optimal_k(&[0, 1, 0, 1]) <= 1);
        assert!(optimal_k(&[1000; 100]) >= 8);
        assert_eq!(optimal_k(&[]), 0);
    }

    #[test]
    fn key_roundtrip_and_density() {
        let mut rng = StdRng::seed_from_u64(62);
        let mut cur = 0u64;
        let keys: Vec<u64> = (0..10_000)
            .map(|_| {
                cur += rng.gen_range(1..80);
                cur
            })
            .collect();
        let mut buf = BytesMut::new();
        let rice_len = encode_rice_keys(&keys, &mut buf).unwrap();
        assert_eq!(decode_rice_keys(&mut buf.freeze()).unwrap(), keys);

        // Rice is denser than byte-aligned delta-binary on geometric gaps…
        let db_len = crate::delta_binary::encoded_len(&keys).unwrap();
        assert!(
            rice_len < db_len,
            "rice {rice_len} should be denser than delta-binary {db_len}"
        );
        // …but both are way below raw 4-byte keys.
        assert!(rice_len < 4 * keys.len() / 2);
    }

    #[test]
    fn truncation_detected() {
        let mut buf = BytesMut::new();
        encode_rice(&[5, 9, 200, 3], &mut buf);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut partial = full.slice(..cut);
            let _ = decode_rice(&mut partial); // must not panic
        }
    }

    #[test]
    fn corrupt_parameter_rejected() {
        let mut buf = BytesMut::new();
        varint::write_u64(&mut buf, 1);
        buf.put_u8(77); // k > 31
        buf.put_u8(0);
        assert!(decode_rice(&mut buf.freeze()).is_err());
    }
}
