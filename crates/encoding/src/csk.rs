//! CSK wire frame: a Count-Sketch cell table with v2-style CRC framing.
//!
//! Unlike the native SketchML payload (keys + bucket indexes), a Count-Sketch
//! message is just a dense `rows × cols` table of signed `f64` cells plus the
//! parameters needed to rebuild the hash families. Because the table is
//! linear, a frame may also carry a *window* of the table (`cell_start`,
//! `cell_count`): ring reduce-scatter chunks the table by contiguous cell
//! ranges and each hop folds windows element-wise.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic 0xC5 | version 0x01 | crc32 (4 B, over everything after itself)
//! | varint dim | varint rows | varint cols | varint k | seed (8 B)
//! | varint nnz | varint key_lo | varint key_end
//! | varint cell_start | varint cell_count
//! | cell_count × f64 cells
//! ```
//!
//! `[key_lo, key_end)` is the key range the encoder actually folded in: the
//! decoder's heavy-hitter scan is confined to it, so a sketch of a key-range
//! shard can never surface ghost keys outside its shard (and a narrow range
//! makes decode proportionally cheaper). A full-gradient frame uses
//! `[0, dim)`; an empty one `[0, 0)`. Merging frames unions the ranges.
//!
//! The CRC covers every byte after the checksum field, so any single-byte
//! flip in the body is detected; flips in the magic/version/CRC prefix are
//! caught structurally. There is no CRC-less v1 of this frame — it was born
//! after the PR 4 corruption-detection work, so integrity is not optional.

use crate::crc32::crc32;
use crate::error::EncodingError;
use crate::varint;
use bytes::{BufMut, BytesMut};

/// First byte of every CSK frame.
pub const CSK_MAGIC: u8 = 0xC5;
/// Current frame version.
pub const CSK_VERSION: u8 = 1;
/// Bytes before the CRC-covered body: magic, version, crc32.
const PREFIX_LEN: usize = 6;

/// The self-describing parameters of a CSK frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CskHeader {
    /// Gradient dimensionality the sketch summarizes.
    pub dim: u64,
    /// Sketch rows (hash/sign pairs).
    pub rows: u32,
    /// Sketch columns (bins per row).
    pub cols: u32,
    /// Heavy hitters to extract on decode.
    pub k: u32,
    /// Seed both hash families derive from.
    pub seed: u64,
    /// Pair count folded into the table (reporting only; merges add it).
    pub nnz: u64,
    /// Smallest key folded into the table (heavy-hitter scan lower bound).
    pub key_lo: u64,
    /// One past the largest key folded in (scan upper bound; merges union).
    pub key_end: u64,
    /// First cell of the carried window (0 for a full table).
    pub cell_start: u64,
    /// Number of cells carried (`rows·cols` for a full table).
    pub cell_count: u64,
}

impl CskHeader {
    /// Total cells of the full table this frame windows into.
    pub fn table_len(&self) -> u64 {
        u64::from(self.rows) * u64::from(self.cols)
    }

    /// True when the frame carries the whole table.
    pub fn is_full(&self) -> bool {
        self.cell_start == 0 && self.cell_count == self.table_len()
    }

    fn validate(&self) -> Result<(), EncodingError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(EncodingError::InvalidInput(
                "csk frame needs rows >= 1 and cols >= 1".into(),
            ));
        }
        if self.k == 0 {
            return Err(EncodingError::InvalidInput("csk frame needs k >= 1".into()));
        }
        if self.key_lo > self.key_end || self.key_end > self.dim {
            return Err(EncodingError::InvalidInput(format!(
                "csk key range [{}, {}) outside gradient of dim {}",
                self.key_lo, self.key_end, self.dim
            )));
        }
        if self.nnz > 0 && self.key_lo == self.key_end {
            return Err(EncodingError::InvalidInput(format!(
                "csk frame carries {} pairs but an empty key range",
                self.nnz
            )));
        }
        let table = self.table_len();
        let end = self
            .cell_start
            .checked_add(self.cell_count)
            .ok_or_else(|| EncodingError::InvalidInput("csk window overflows".into()))?;
        if self.cell_count == 0 || end > table {
            return Err(EncodingError::InvalidInput(format!(
                "csk window [{}, {end}) outside table of {table} cells",
                self.cell_start
            )));
        }
        Ok(())
    }
}

/// Appends a CSK frame for `header` + `cells` to `out`, returning the number
/// of header bytes (everything except the cell payload).
///
/// # Errors
/// [`EncodingError::InvalidInput`] if the header is inconsistent or
/// `cells.len()` disagrees with `header.cell_count`.
pub fn write_frame(
    header: &CskHeader,
    cells: &[f64],
    out: &mut BytesMut,
) -> Result<usize, EncodingError> {
    header.validate()?;
    if cells.len() as u64 != header.cell_count {
        return Err(EncodingError::InvalidInput(format!(
            "csk frame declares {} cells but {} were supplied",
            header.cell_count,
            cells.len()
        )));
    }
    let base = out.len();
    out.reserve(PREFIX_LEN + 40 + cells.len() * 8);
    out.put_u8(CSK_MAGIC);
    out.put_u8(CSK_VERSION);
    out.put_u32_le(0); // CRC back-patched below.
    varint::write_u64(out, header.dim);
    varint::write_u64(out, u64::from(header.rows));
    varint::write_u64(out, u64::from(header.cols));
    varint::write_u64(out, u64::from(header.k));
    out.put_u64_le(header.seed);
    varint::write_u64(out, header.nnz);
    varint::write_u64(out, header.key_lo);
    varint::write_u64(out, header.key_end);
    varint::write_u64(out, header.cell_start);
    varint::write_u64(out, header.cell_count);
    let header_bytes = out.len() - base;
    for &c in cells {
        out.put_f64_le(c);
    }
    let crc = crc32(&out[base + PREFIX_LEN..]);
    out[base + 2..base + PREFIX_LEN].copy_from_slice(&crc.to_le_bytes());
    Ok(header_bytes)
}

/// Exact frame length [`write_frame`] would produce.
pub fn frame_len(header: &CskHeader) -> usize {
    PREFIX_LEN
        + varint::encoded_len(header.dim)
        + varint::encoded_len(u64::from(header.rows))
        + varint::encoded_len(u64::from(header.cols))
        + varint::encoded_len(u64::from(header.k))
        + 8
        + varint::encoded_len(header.nnz)
        + varint::encoded_len(header.key_lo)
        + varint::encoded_len(header.key_end)
        + varint::encoded_len(header.cell_start)
        + varint::encoded_len(header.cell_count)
        + header.cell_count as usize * 8
}

/// Parses a CSK frame, appending its cells to `cells_out` (cleared first).
///
/// # Errors
/// [`EncodingError::Corrupt`] on a wrong magic/version, CRC mismatch,
/// truncated or over-long payload, inconsistent window, or non-finite cell.
pub fn read_frame(payload: &[u8], cells_out: &mut Vec<f64>) -> Result<CskHeader, EncodingError> {
    cells_out.clear();
    if payload.len() < PREFIX_LEN {
        return Err(EncodingError::UnexpectedEof {
            context: "csk frame prefix",
        });
    }
    if payload[0] != CSK_MAGIC {
        return Err(EncodingError::Corrupt(format!(
            "csk frame magic {:#04x}, expected {CSK_MAGIC:#04x}",
            payload[0]
        )));
    }
    if payload[1] != CSK_VERSION {
        return Err(EncodingError::Corrupt(format!(
            "csk frame version {}, expected {CSK_VERSION}",
            payload[1]
        )));
    }
    let declared = u32::from_le_bytes([payload[2], payload[3], payload[4], payload[5]]);
    let got = crc32(&payload[PREFIX_LEN..]);
    if declared != got {
        return Err(EncodingError::Corrupt(format!(
            "csk frame CRC mismatch: header says {declared:#010x}, payload hashes to {got:#010x}"
        )));
    }
    let mut buf = &payload[PREFIX_LEN..];
    let dim = varint::read_u64(&mut buf)?;
    let rows = read_u32(&mut buf, "rows")?;
    let cols = read_u32(&mut buf, "cols")?;
    let k = read_u32(&mut buf, "k")?;
    if buf.len() < 8 {
        return Err(EncodingError::UnexpectedEof {
            context: "csk seed",
        });
    }
    let seed = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes checked"));
    buf = &buf[8..];
    let nnz = varint::read_u64(&mut buf)?;
    let key_lo = varint::read_u64(&mut buf)?;
    let key_end = varint::read_u64(&mut buf)?;
    let cell_start = varint::read_u64(&mut buf)?;
    let cell_count = varint::read_u64(&mut buf)?;
    let header = CskHeader {
        dim,
        rows,
        cols,
        k,
        seed,
        nnz,
        key_lo,
        key_end,
        cell_start,
        cell_count,
    };
    header
        .validate()
        .map_err(|e| EncodingError::Corrupt(format!("csk frame header: {e}")))?;
    let want = cell_count
        .checked_mul(8)
        .filter(|&n| n <= usize::MAX as u64)
        .ok_or_else(|| EncodingError::Corrupt("csk cell count overflows".into()))?
        as usize;
    if buf.len() != want {
        return Err(EncodingError::Corrupt(format!(
            "csk frame declares {cell_count} cells ({want} bytes) but {} bytes follow",
            buf.len()
        )));
    }
    cells_out.reserve(cell_count as usize);
    for chunk in buf.chunks_exact(8) {
        let c = f64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)"));
        if !c.is_finite() {
            return Err(EncodingError::Corrupt(format!(
                "csk cell is not finite: {c}"
            )));
        }
        cells_out.push(c);
    }
    Ok(header)
}

fn read_u32(buf: &mut &[u8], what: &'static str) -> Result<u32, EncodingError> {
    let v = varint::read_u64(buf)?;
    u32::try_from(v).map_err(|_| EncodingError::Corrupt(format!("csk {what} {v} exceeds u32")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(cells: u64) -> CskHeader {
        CskHeader {
            dim: 40_000,
            rows: 4,
            cols: 8,
            k: 16,
            seed: 0xDEAD_BEEF,
            nnz: 10,
            key_lo: 5,
            key_end: 39_000,
            cell_start: 0,
            cell_count: cells,
        }
    }

    #[test]
    fn full_table_roundtrips() {
        let cells: Vec<f64> = (0..32).map(|i| (i as f64 - 16.0) / 8.0).collect();
        let h = header(32);
        let mut buf = BytesMut::new();
        let header_bytes = write_frame(&h, &cells, &mut buf).unwrap();
        assert_eq!(buf.len(), frame_len(&h));
        assert_eq!(buf.len(), header_bytes + 32 * 8);
        let mut out = Vec::new();
        let back = read_frame(&buf, &mut out).unwrap();
        assert_eq!(back, h);
        assert!(back.is_full());
        assert_eq!(out, cells);
    }

    #[test]
    fn window_roundtrips() {
        let cells: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let h = CskHeader {
            cell_start: 5,
            cell_count: 10,
            ..header(10)
        };
        let mut buf = BytesMut::new();
        write_frame(&h, &cells, &mut buf).unwrap();
        let mut out = Vec::new();
        let back = read_frame(&buf, &mut out).unwrap();
        assert_eq!(back.cell_start, 5);
        assert!(!back.is_full());
        assert_eq!(out, cells);
    }

    #[test]
    fn invalid_headers_rejected_on_write() {
        let mut buf = BytesMut::new();
        let zero_rows = CskHeader {
            rows: 0,
            ..header(32)
        };
        assert!(write_frame(&zero_rows, &[0.0; 32], &mut buf).is_err());
        let zero_k = CskHeader { k: 0, ..header(32) };
        assert!(write_frame(&zero_k, &[0.0; 32], &mut buf).is_err());
        let bad_window = CskHeader {
            cell_start: 30,
            cell_count: 10,
            ..header(10)
        };
        assert!(write_frame(&bad_window, &[0.0; 10], &mut buf).is_err());
        let miscounted = header(32);
        assert!(write_frame(&miscounted, &[0.0; 31], &mut buf).is_err());
        let range_past_dim = CskHeader {
            key_end: 40_001,
            ..header(32)
        };
        assert!(write_frame(&range_past_dim, &[0.0; 32], &mut buf).is_err());
        let inverted_range = CskHeader {
            key_lo: 9,
            key_end: 3,
            ..header(32)
        };
        assert!(write_frame(&inverted_range, &[0.0; 32], &mut buf).is_err());
        let pairs_in_empty_range = CskHeader {
            key_lo: 7,
            key_end: 7,
            ..header(32)
        };
        assert!(write_frame(&pairs_in_empty_range, &[0.0; 32], &mut buf).is_err());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let cells: Vec<f64> = (0..32).map(|i| i as f64 * 0.25 - 4.0).collect();
        let mut buf = BytesMut::new();
        write_frame(&header(32), &cells, &mut buf).unwrap();
        let mut bytes = buf.to_vec();
        let mut out = Vec::new();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                bytes[i] ^= 1 << bit;
                assert!(read_frame(&bytes, &mut out).is_err(), "flip {i}:{bit}");
                bytes[i] ^= 1 << bit;
            }
        }
        assert!(read_frame(&bytes, &mut out).is_ok());
    }

    #[test]
    fn truncation_and_trailing_bytes_rejected() {
        let cells = vec![1.5f64; 32];
        let mut buf = BytesMut::new();
        write_frame(&header(32), &cells, &mut buf).unwrap();
        let mut out = Vec::new();
        for cut in 0..buf.len() {
            assert!(read_frame(&buf[..cut], &mut out).is_err(), "cut {cut}");
        }
        let mut long = buf.to_vec();
        long.push(0);
        assert!(read_frame(&long, &mut out).is_err());
    }

    #[test]
    fn non_finite_cells_rejected() {
        let mut cells = vec![0.5f64; 32];
        cells[7] = f64::INFINITY;
        let mut buf = BytesMut::new();
        write_frame(&header(32), &cells, &mut buf).unwrap();
        let mut out = Vec::new();
        assert!(matches!(
            read_frame(&buf, &mut out),
            Err(EncodingError::Corrupt(_))
        ));
    }

    #[test]
    fn appending_after_existing_bytes_patches_the_right_crc() {
        let cells = vec![0.25f64; 32];
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"prefix");
        let start = buf.len();
        write_frame(&header(32), &cells, &mut buf).unwrap();
        let mut out = Vec::new();
        assert!(read_frame(&buf[start..], &mut out).is_ok());
    }
}
