//! LEB128 variable-length unsigned integers.
//!
//! The SketchML wire format uses varints for counts and header fields so
//! that small messages (tiny groups, few buckets) don't pay fixed 4/8-byte
//! overheads. Seven payload bits per byte, little-endian groups, high bit
//! set on continuation bytes.

use crate::error::EncodingError;
use bytes::{Buf, BufMut};

/// Maximum encoded length of a `u64` varint.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends `value` to `out` as a LEB128 varint.
pub fn write_u64(out: &mut impl BufMut, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.put_u8(byte);
            return;
        }
        out.put_u8(byte | 0x80);
    }
}

/// Reads a LEB128 varint from `buf`.
///
/// # Errors
/// [`EncodingError::UnexpectedEof`] if the buffer runs out mid-varint and
/// [`EncodingError::Corrupt`] if the encoding exceeds 10 bytes.
pub fn read_u64(buf: &mut impl Buf) -> Result<u64, EncodingError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for _ in 0..MAX_VARINT_LEN {
        if !buf.has_remaining() {
            return Err(EncodingError::UnexpectedEof { context: "varint" });
        }
        let byte = buf.get_u8();
        let payload = (byte & 0x7F) as u64;
        value |= payload
            .checked_shl(shift)
            .ok_or_else(|| EncodingError::Corrupt("varint shift overflow".into()))?;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
    Err(EncodingError::Corrupt("varint longer than 10 bytes".into()))
}

/// Number of bytes [`write_u64`] would emit for `value`.
pub fn encoded_len(value: u64) -> usize {
    if value == 0 {
        return 1;
    }
    (64 - value.leading_zeros() as usize).div_ceil(7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn roundtrip(v: u64) -> u64 {
        let mut buf = BytesMut::new();
        write_u64(&mut buf, v);
        assert_eq!(buf.len(), encoded_len(v));
        let mut slice = buf.freeze();
        read_u64(&mut slice).unwrap()
    }

    #[test]
    fn roundtrips_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            assert_eq!(roundtrip(v), v);
        }
    }

    #[test]
    fn known_encodings() {
        let mut buf = BytesMut::new();
        write_u64(&mut buf, 300);
        assert_eq!(&buf[..], &[0xAC, 0x02]);
    }

    #[test]
    fn eof_is_detected() {
        let mut buf: &[u8] = &[0x80, 0x80]; // two continuation bytes, no end
        assert_eq!(
            read_u64(&mut buf),
            Err(EncodingError::UnexpectedEof { context: "varint" })
        );
        let mut empty: &[u8] = &[];
        assert!(read_u64(&mut empty).is_err());
    }

    #[test]
    fn overlong_is_corrupt() {
        let mut buf: &[u8] = &[0x80; 11];
        assert!(matches!(read_u64(&mut buf), Err(EncodingError::Corrupt(_))));
    }

    #[test]
    fn encoded_len_matches_spec() {
        assert_eq!(encoded_len(0), 1);
        assert_eq!(encoded_len(127), 1);
        assert_eq!(encoded_len(128), 2);
        assert_eq!(encoded_len(u64::MAX), 10);
    }
}
