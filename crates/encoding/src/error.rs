//! Error type shared by the codecs.

use std::fmt;

/// Errors produced while encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodingError {
    /// Input violated a codec precondition (e.g. keys not strictly
    /// ascending, or a delta too large for the 4-byte maximum).
    InvalidInput(String),
    /// The byte stream ended before the decoder finished.
    UnexpectedEof {
        /// What the decoder was reading when the stream ran out.
        context: &'static str,
    },
    /// The byte stream was structurally invalid.
    Corrupt(String),
}

impl fmt::Display for EncodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodingError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            EncodingError::UnexpectedEof { context } => {
                write!(f, "unexpected end of stream while reading {context}")
            }
            EncodingError::Corrupt(msg) => write!(f, "corrupt stream: {msg}"),
        }
    }
}

impl std::error::Error for EncodingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(EncodingError::InvalidInput("x".into())
            .to_string()
            .contains("x"));
        assert!(EncodingError::UnexpectedEof { context: "flags" }
            .to_string()
            .contains("flags"));
        assert!(EncodingError::Corrupt("bad magic".into())
            .to_string()
            .contains("bad magic"));
    }
}
