//! Error type shared by the codecs.

use std::fmt;

/// Errors produced while encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodingError {
    /// Input violated a codec precondition (e.g. keys descending, or a
    /// delta too large for the 4-byte maximum).
    InvalidInput(String),
    /// A key appeared twice in input that must be strictly ascending —
    /// the signature of a shard/partial union that was concatenated without
    /// summing. Encoding it would silently produce a zero increment the
    /// decoder cannot distinguish from a corrupt stream, so it is rejected
    /// with the offending key and its position for the caller to merge
    /// first.
    DuplicateKey {
        /// The repeated key.
        key: u64,
        /// Index of the *second* occurrence in the input key slice.
        offset: usize,
    },
    /// The byte stream ended before the decoder finished.
    UnexpectedEof {
        /// What the decoder was reading when the stream ran out.
        context: &'static str,
    },
    /// The byte stream was structurally invalid.
    Corrupt(String),
}

impl fmt::Display for EncodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodingError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            EncodingError::DuplicateKey { key, offset } => {
                write!(
                    f,
                    "duplicate key {key} at offset {offset}: merged key streams must be summed, not concatenated"
                )
            }
            EncodingError::UnexpectedEof { context } => {
                write!(f, "unexpected end of stream while reading {context}")
            }
            EncodingError::Corrupt(msg) => write!(f, "corrupt stream: {msg}"),
        }
    }
}

impl std::error::Error for EncodingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(EncodingError::InvalidInput("x".into())
            .to_string()
            .contains("x"));
        assert!(EncodingError::UnexpectedEof { context: "flags" }
            .to_string()
            .contains("flags"));
        assert!(EncodingError::Corrupt("bad magic".into())
            .to_string()
            .contains("bad magic"));
        let dup = EncodingError::DuplicateKey { key: 42, offset: 7 }.to_string();
        assert!(dup.contains("42"));
        assert!(dup.contains("offset 7"));
    }
}
