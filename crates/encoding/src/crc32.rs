//! CRC32 (IEEE 802.3, polynomial `0xEDB88320`) for frame integrity checks.
//!
//! The v2 shard frame ([`crate::framing`]) carries one CRC32 per shard so a
//! receiver can tell a corrupted-in-flight payload from a valid one *before*
//! handing it to the inner codec — turning silent gradient poisoning into a
//! typed [`crate::error::EncodingError::Corrupt`]. Table-driven, built at
//! compile time; no external crates.

/// The reflected IEEE polynomial used by zlib, PNG, Ethernet.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32 of `data` (initial value `!0`, final XOR `!0` — the standard
/// "CRC-32/ISO-HDLC" parameterisation; `crc32(b"123456789") == 0xCBF43926`).
pub fn crc32(data: &[u8]) -> u32 {
    !update(!0, data)
}

/// Feeds `data` into a running raw CRC state (pre-inversion). Start from
/// `!0`, finish with `!state` — lets callers checksum scattered slices
/// without concatenating them.
pub fn update(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(&[0u8]), 0xD202_EF8D);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        for split in [0usize, 1, 7, 512, 1024] {
            let state = update(!0, &data[..split]);
            let state = update(state, &data[split..]);
            assert_eq!(!state, crc32(&data), "split at {split}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_crc() {
        let data: Vec<u8> = (0..64u8).collect();
        let reference = crc32(&data);
        let mut copy = data.clone();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32(&copy), reference, "flip {byte}:{bit} undetected");
                copy[byte] ^= 1 << bit;
            }
        }
    }
}
