//! Compressed Sparse Row (CSR) storage — the sparse-matrix baseline of §1.1.
//!
//! "Methods such as Compressed Sparse Row (CSR) can store matrix-type data
//! via taking advantage of data sparsity, but the performance improvement is
//! not large enough due to limited compression performance." CSR stores a
//! batch of sparse rows as three arrays (`indptr`, `indices`, `values`);
//! the per-key cost stays a full 4-byte index, which is what the `encoding`
//! bench contrasts with delta-binary's ~1.25 bytes/key.

use crate::error::EncodingError;
use crate::varint;
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

/// A batch of sparse rows in CSR layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    /// Row pointers: row `i` occupies `indices[indptr[i]..indptr[i+1]]`.
    pub indptr: Vec<u32>,
    /// Column indices, ascending within each row.
    pub indices: Vec<u32>,
    /// Values aligned with `indices`.
    pub values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from per-row `(key, value)` pairs.
    ///
    /// # Errors
    /// [`EncodingError::InvalidInput`] if a row's keys are not strictly
    /// ascending or exceed `u32::MAX`.
    pub fn from_rows(rows: &[Vec<(u64, f64)>]) -> Result<Self, EncodingError> {
        let nnz: usize = rows.iter().map(Vec::len).sum();
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        indptr.push(0u32);
        for (r, row) in rows.iter().enumerate() {
            let mut prev: Option<u64> = None;
            for &(k, v) in row {
                if let Some(p) = prev {
                    if k <= p {
                        return Err(EncodingError::InvalidInput(format!(
                            "row {r}: keys must be strictly ascending"
                        )));
                    }
                }
                let k32 = u32::try_from(k).map_err(|_| {
                    EncodingError::InvalidInput(format!("row {r}: key {k} exceeds u32"))
                })?;
                indices.push(k32);
                values.push(v);
                prev = Some(k);
            }
            indptr.push(indices.len() as u32);
        }
        Ok(CsrMatrix {
            indptr,
            indices,
            values,
        })
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.indptr.len().saturating_sub(1)
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Returns row `i` as `(keys, values)` slices.
    pub fn row(&self, i: usize) -> Option<(&[u32], &[f64])> {
        if i + 1 >= self.indptr.len() {
            return None;
        }
        let lo = self.indptr[i] as usize;
        let hi = self.indptr[i + 1] as usize;
        Some((&self.indices[lo..hi], &self.values[lo..hi]))
    }

    /// Reconstructs the per-row pair representation.
    pub fn to_rows(&self) -> Vec<Vec<(u64, f64)>> {
        (0..self.num_rows())
            .map(|i| {
                let (keys, vals) = self.row(i).expect("row in range");
                keys.iter()
                    .zip(vals)
                    .map(|(&k, &v)| (k as u64, v))
                    .collect()
            })
            .collect()
    }

    /// Serializes to the straightforward CSR wire layout (4-byte indices,
    /// 8-byte values). Returns bytes written.
    pub fn encode(&self, out: &mut impl BufMut) -> usize {
        let mut written = 0;
        written += varint::encoded_len(self.num_rows() as u64);
        varint::write_u64(out, self.num_rows() as u64);
        written += varint::encoded_len(self.nnz() as u64);
        varint::write_u64(out, self.nnz() as u64);
        for &p in &self.indptr {
            out.put_u32_le(p);
        }
        for &i in &self.indices {
            out.put_u32_le(i);
        }
        for &v in &self.values {
            out.put_f64_le(v);
        }
        written + 4 * self.indptr.len() + 4 * self.indices.len() + 8 * self.values.len()
    }

    /// Decodes a matrix written by [`CsrMatrix::encode`].
    ///
    /// # Errors
    /// [`EncodingError::UnexpectedEof`] on truncation,
    /// [`EncodingError::Corrupt`] on inconsistent pointers.
    pub fn decode(buf: &mut impl Buf) -> Result<Self, EncodingError> {
        let rows = varint::read_u64(buf)? as usize;
        let nnz = varint::read_u64(buf)? as usize;
        // Checked arithmetic: wire-controlled counts must not wrap past the
        // remaining-bytes test and reach the unchecked reads below.
        let need = rows
            .checked_add(1)
            .and_then(|r| r.checked_mul(4))
            .and_then(|p| nnz.checked_mul(12).and_then(|b| p.checked_add(b)))
            .ok_or_else(|| {
                EncodingError::Corrupt(format!("CSR dimensions overflow: rows={rows} nnz={nnz}"))
            })?;
        if buf.remaining() < need {
            return Err(EncodingError::UnexpectedEof {
                context: "CSR arrays",
            });
        }
        let indptr: Vec<u32> = (0..=rows).map(|_| buf.get_u32_le()).collect();
        if indptr.first() != Some(&0) || indptr.last() != Some(&(nnz as u32)) {
            return Err(EncodingError::Corrupt(
                "CSR indptr endpoints invalid".into(),
            ));
        }
        if indptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(EncodingError::Corrupt("CSR indptr not monotone".into()));
        }
        let indices: Vec<u32> = (0..nnz).map(|_| buf.get_u32_le()).collect();
        let values: Vec<f64> = (0..nnz).map(|_| buf.get_f64_le()).collect();
        Ok(CsrMatrix {
            indptr,
            indices,
            values,
        })
    }

    /// Serialized size in bytes (the §1.1 "limited compression" cost).
    pub fn encoded_len(&self) -> usize {
        varint::encoded_len(self.num_rows() as u64)
            + varint::encoded_len(self.nnz() as u64)
            + 4 * self.indptr.len()
            + 4 * self.indices.len()
            + 8 * self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn sample() -> Vec<Vec<(u64, f64)>> {
        vec![
            vec![(0, 1.5), (7, -0.25), (100, 3.0)],
            vec![],
            vec![(2, 0.5)],
            vec![(1, -1.0), (2, 2.0), (3, -3.0), (4, 4.0)],
        ]
    }

    #[test]
    fn from_rows_roundtrip() {
        let rows = sample();
        let m = CsrMatrix::from_rows(&rows).unwrap();
        assert_eq!(m.num_rows(), 4);
        assert_eq!(m.nnz(), 8);
        assert_eq!(m.to_rows(), rows);
        assert_eq!(m.row(1), Some((&[][..], &[][..])));
        assert_eq!(m.row(4), None);
    }

    #[test]
    fn wire_roundtrip() {
        let m = CsrMatrix::from_rows(&sample()).unwrap();
        let mut buf = BytesMut::new();
        let written = m.encode(&mut buf);
        assert_eq!(written, buf.len());
        assert_eq!(written, m.encoded_len());
        let decoded = CsrMatrix::decode(&mut buf.freeze()).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn invalid_rows_rejected() {
        assert!(CsrMatrix::from_rows(&[vec![(3, 1.0), (3, 2.0)]]).is_err());
        assert!(CsrMatrix::from_rows(&[vec![(5, 1.0), (4, 2.0)]]).is_err());
        assert!(CsrMatrix::from_rows(&[vec![(u64::MAX, 1.0)]]).is_err());
    }

    #[test]
    fn corrupt_streams_rejected() {
        let m = CsrMatrix::from_rows(&sample()).unwrap();
        let mut buf = BytesMut::new();
        m.encode(&mut buf);
        let full = buf.freeze();
        let mut cut = full.slice(..full.len() / 2);
        assert!(CsrMatrix::decode(&mut cut).is_err());

        // Break the indptr endpoint.
        let mut broken = BytesMut::from(&full[..]);
        broken[2] = 0xFF;
        assert!(CsrMatrix::decode(&mut broken.freeze()).is_err());
    }

    #[test]
    fn per_key_cost_is_four_bytes() {
        // CSR's key cost never drops below 4 bytes/key — the §1.1 point.
        let rows: Vec<Vec<(u64, f64)>> = vec![(0..1000u64).map(|k| (k * 3, 1.0)).collect()];
        let m = CsrMatrix::from_rows(&rows).unwrap();
        let key_bytes = m.encoded_len() - 8 * m.nnz(); // exclude values
        assert!(key_bytes >= 4 * m.nnz());
    }
}
