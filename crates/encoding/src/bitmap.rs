//! Bitmap key encoding — the Appendix A.3 alternative.
//!
//! A bitmap stores one bit per model dimension: bit `k` set means dimension
//! `k` has a nonzero gradient. Its cost is a flat `⌈D/8⌉` bytes regardless
//! of how many keys there are, so it wins only when gradients are dense
//! (`d/D > ~1/10`); Appendix A.3 concludes delta-binary is the better
//! choice for SketchML's sparse regime — the `encoding` bench and the
//! `keys_crossover` test quantify exactly where the crossover sits.

use crate::error::EncodingError;
use crate::varint;
use bytes::{Buf, BufMut};

/// Encodes ascending keys `< dim` as a `⌈dim/8⌉`-byte bitmap. Returns bytes
/// written.
///
/// # Errors
/// [`EncodingError::InvalidInput`] if any key is `>= dim` or keys repeat.
pub fn encode_bitmap(
    keys: &[u64],
    dim: u64,
    out: &mut impl BufMut,
) -> Result<usize, EncodingError> {
    let nbytes = (dim as usize).div_ceil(8);
    let mut bits = vec![0u8; nbytes];
    for &k in keys {
        if k >= dim {
            return Err(EncodingError::InvalidInput(format!(
                "key {k} out of range for dimension {dim}"
            )));
        }
        let byte = (k / 8) as usize;
        let mask = 1u8 << (k % 8);
        if bits[byte] & mask != 0 {
            return Err(EncodingError::InvalidInput(format!("duplicate key {k}")));
        }
        bits[byte] |= mask;
    }
    let mut written = varint::encoded_len(dim);
    varint::write_u64(out, dim);
    out.put_slice(&bits);
    written += nbytes;
    Ok(written)
}

/// Decodes a bitmap written by [`encode_bitmap`] back into ascending keys.
///
/// # Errors
/// [`EncodingError::UnexpectedEof`] on truncated input.
pub fn decode_bitmap(buf: &mut impl Buf) -> Result<Vec<u64>, EncodingError> {
    let dim = varint::read_u64(buf)?;
    let nbytes = (dim as usize).div_ceil(8);
    if buf.remaining() < nbytes {
        return Err(EncodingError::UnexpectedEof {
            context: "bitmap bits",
        });
    }
    let mut bits = vec![0u8; nbytes];
    buf.copy_to_slice(&mut bits);
    let mut keys = Vec::new();
    for (byte_idx, &b) in bits.iter().enumerate() {
        if b == 0 {
            continue;
        }
        for bit in 0..8 {
            if b & (1 << bit) != 0 {
                let k = byte_idx as u64 * 8 + bit as u64;
                if k < dim {
                    keys.push(k);
                }
            }
        }
    }
    Ok(keys)
}

/// Size in bytes of a bitmap over `dim` dimensions (excluding the header).
pub fn bitmap_len(dim: u64) -> usize {
    (dim as usize).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta_binary;
    use bytes::BytesMut;

    fn roundtrip(keys: &[u64], dim: u64) -> Vec<u64> {
        let mut buf = BytesMut::new();
        encode_bitmap(keys, dim, &mut buf).unwrap();
        decode_bitmap(&mut buf.freeze()).unwrap()
    }

    #[test]
    fn roundtrips() {
        let keys = [0u64, 1, 7, 8, 63, 64, 999];
        assert_eq!(roundtrip(&keys, 1000), keys);
        assert_eq!(roundtrip(&[], 100), Vec::<u64>::new());
        assert_eq!(roundtrip(&[0], 1), vec![0]);
    }

    #[test]
    fn out_of_range_and_duplicates_rejected() {
        let mut buf = BytesMut::new();
        assert!(encode_bitmap(&[10], 10, &mut buf).is_err());
        assert!(encode_bitmap(&[3, 3], 10, &mut buf).is_err());
    }

    #[test]
    fn truncation_detected() {
        let mut buf = BytesMut::new();
        encode_bitmap(&[5, 20], 64, &mut buf).unwrap();
        let full = buf.freeze();
        let mut cut = full.slice(..full.len() - 2);
        assert!(decode_bitmap(&mut cut).is_err());
    }

    #[test]
    fn keys_crossover_vs_delta_binary() {
        // Appendix A.3: bitmap costs ⌈D/8⌉ no matter what; delta-binary
        // costs ~1.25 bytes/key. Sparse → delta wins; dense → bitmap wins.
        let dim = 80_000u64;
        let sparse: Vec<u64> = (0..1_000u64).map(|i| i * 80).collect();
        let dense: Vec<u64> = (0..40_000u64).map(|i| i * 2).collect();

        let bitmap_cost = bitmap_len(dim);
        let delta_sparse = delta_binary::encoded_len(&sparse).unwrap();
        let delta_dense = delta_binary::encoded_len(&dense).unwrap();

        assert!(
            delta_sparse < bitmap_cost,
            "{delta_sparse} !< {bitmap_cost}"
        );
        assert!(delta_dense > bitmap_cost, "{delta_dense} !> {bitmap_cost}");
    }
}
