//! Canonical Huffman coding over bytes — the classic lossless baseline.
//!
//! §1.1 lists Huffman coding among the "lossless methods for repetitive
//! integer data \[that\] cannot be used for non-repetitive gradient keys and
//! floating-point gradient values". We implement it anyway so the claim can
//! be measured: the `encoding` bench runs Huffman over serialized key
//! streams and gradient values and reports the (lack of) gain.
//!
//! Wire layout: `varint n | 256 code lengths (u8) | packed bitstream`.
//! Codes are canonical, so lengths alone reconstruct the codebook.

use crate::error::EncodingError;
use crate::varint;
use bytes::{Buf, BufMut};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Maximum admissible code length (a byte alphabet cannot exceed 255).
const MAX_CODE_LEN: u8 = 255;

/// Computes Huffman code lengths for the 256-symbol byte alphabet from
/// frequencies. Symbols with zero frequency get length 0 (unused).
fn code_lengths(freq: &[u64; 256]) -> [u8; 256] {
    let mut lengths = [0u8; 256];
    let used: Vec<usize> = (0..256).filter(|&s| freq[s] > 0).collect();
    match used.len() {
        0 => return lengths,
        1 => {
            lengths[used[0]] = 1;
            return lengths;
        }
        _ => {}
    }
    // Node arena: leaves first, then internal nodes as (left, right).
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut parents: Vec<Option<usize>> = vec![None; used.len()];
    for (i, &s) in used.iter().enumerate() {
        heap.push(Reverse((freq[s], i)));
    }
    let mut next_id = used.len();
    while heap.len() > 1 {
        let Reverse((fa, a)) = heap.pop().expect("len > 1");
        let Reverse((fb, b)) = heap.pop().expect("len > 1");
        parents.push(None);
        if a >= parents.len() || b >= parents.len() {
            unreachable!("node ids are dense");
        }
        parents[a] = Some(next_id);
        parents[b] = Some(next_id);
        heap.push(Reverse((fa + fb, next_id)));
        next_id += 1;
    }
    for (i, &s) in used.iter().enumerate() {
        let mut depth = 0u8;
        let mut node = i;
        while let Some(p) = parents[node] {
            depth = depth.saturating_add(1);
            node = p;
        }
        lengths[s] = depth.max(1);
    }
    lengths
}

/// Assigns canonical codes from lengths: symbols sorted by (length, value).
fn canonical_codes(lengths: &[u8; 256]) -> [(u32, u8); 256] {
    let mut codes = [(0u32, 0u8); 256];
    let mut symbols: Vec<usize> = (0..256).filter(|&s| lengths[s] > 0).collect();
    symbols.sort_by_key(|&s| (lengths[s], s));
    let mut code: u32 = 0;
    let mut prev_len: u8 = 0;
    for &s in &symbols {
        let len = lengths[s];
        code <<= len - prev_len;
        codes[s] = (code, len);
        code += 1;
        prev_len = len;
    }
    codes
}

/// Encodes `data` with a Huffman code built from its own byte frequencies.
/// Returns bytes written (header included).
pub fn encode_huffman(data: &[u8], out: &mut impl BufMut) -> usize {
    let mut freq = [0u64; 256];
    for &b in data {
        freq[b as usize] += 1;
    }
    let lengths = code_lengths(&freq);
    let codes = canonical_codes(&lengths);

    let mut written = varint::encoded_len(data.len() as u64);
    varint::write_u64(out, data.len() as u64);
    out.put_slice(&lengths);
    written += 256;

    let mut acc: u64 = 0;
    let mut nbits: u32 = 0;
    let mut body = Vec::with_capacity(data.len());
    for &b in data {
        let (code, len) = codes[b as usize];
        // Append MSB-first: shift accumulated bits left.
        acc = (acc << len) | code as u64;
        nbits += len as u32;
        while nbits >= 8 {
            nbits -= 8;
            body.push((acc >> nbits) as u8);
        }
    }
    if nbits > 0 {
        body.push((acc << (8 - nbits)) as u8);
    }
    out.put_slice(&body);
    written + body.len()
}

/// Decodes a stream written by [`encode_huffman`].
///
/// # Errors
/// [`EncodingError::UnexpectedEof`] on truncation, [`EncodingError::Corrupt`]
/// on an invalid codebook or bitstream.
pub fn decode_huffman(buf: &mut impl Buf) -> Result<Vec<u8>, EncodingError> {
    let n = varint::read_u64(buf)? as usize;
    if buf.remaining() < 256 {
        return Err(EncodingError::UnexpectedEof {
            context: "huffman code lengths",
        });
    }
    let mut lengths = [0u8; 256];
    buf.copy_to_slice(&mut lengths);
    if n == 0 {
        return Ok(Vec::new());
    }

    // Canonical decoding tables: symbols ordered by (length, value).
    let mut symbols: Vec<usize> = (0..256).filter(|&s| lengths[s] > 0).collect();
    if symbols.is_empty() {
        return Err(EncodingError::Corrupt("no symbols in codebook".into()));
    }
    symbols.sort_by_key(|&s| (lengths[s], s));
    let codes = canonical_codes(&lengths);

    let body: Vec<u8> = {
        let mut v = vec![0u8; buf.remaining()];
        buf.copy_to_slice(&mut v);
        v
    };

    // Allocation-bomb guard: every decoded symbol consumes ≥ 1 bit of body,
    // so a declared count beyond 8× the body length cannot be satisfied.
    if n > body.len().saturating_mul(8) {
        return Err(EncodingError::Corrupt(format!(
            "declared {n} symbols but the bitstream holds at most {}",
            body.len().saturating_mul(8)
        )));
    }
    let mut out = Vec::with_capacity(n);
    let mut code: u32 = 0;
    let mut len: u8 = 0;
    let mut bit_iter = body
        .iter()
        .flat_map(|&byte| (0..8).rev().map(move |i| (byte >> i) & 1));
    'outer: while out.len() < n {
        loop {
            let Some(bit) = bit_iter.next() else {
                return Err(EncodingError::UnexpectedEof {
                    context: "huffman bitstream",
                });
            };
            code = (code << 1) | bit as u32;
            len += 1;
            // Linear probe over the canonical table; adequate for the
            // baseline role this codec plays.
            for &s in &symbols {
                if codes[s].1 == len && codes[s].0 == code {
                    out.push(s as u8);
                    code = 0;
                    len = 0;
                    continue 'outer;
                }
            }
            if len == MAX_CODE_LEN {
                return Err(EncodingError::Corrupt("no code matches bitstream".into()));
            }
        }
    }
    Ok(out)
}

/// Size [`encode_huffman`] would produce for `data`.
pub fn encoded_len(data: &[u8]) -> usize {
    let mut freq = [0u64; 256];
    for &b in data {
        freq[b as usize] += 1;
    }
    let lengths = code_lengths(&freq);
    let bits: u64 = data.iter().map(|&b| lengths[b as usize] as u64).sum();
    varint::encoded_len(data.len() as u64) + 256 + (bits as usize).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let mut buf = BytesMut::new();
        let written = encode_huffman(data, &mut buf);
        assert_eq!(written, buf.len());
        assert_eq!(written, encoded_len(data));
        decode_huffman(&mut buf.freeze()).unwrap()
    }

    #[test]
    fn roundtrips_basic() {
        assert_eq!(roundtrip(b""), b"");
        assert_eq!(roundtrip(b"a"), b"a");
        assert_eq!(roundtrip(b"aaaa"), b"aaaa");
        assert_eq!(roundtrip(b"abracadabra"), b"abracadabra");
    }

    #[test]
    fn roundtrips_random() {
        let mut rng = StdRng::seed_from_u64(51);
        for _ in 0..20 {
            let n = rng.gen_range(1..5000);
            let data: Vec<u8> = (0..n).map(|_| rng.gen()).collect();
            assert_eq!(roundtrip(&data), data);
        }
    }

    #[test]
    fn compresses_skewed_text() {
        let data: Vec<u8> = b"aaaaaaaaaaaaaaaabbbbbbbbccccdde"
            .iter()
            .cycle()
            .take(10_000)
            .copied()
            .collect();
        let len = encoded_len(&data);
        assert!(
            len < data.len() / 2,
            "skewed text should compress 2x+, got {len} of {}",
            data.len()
        );
    }

    #[test]
    fn useless_for_key_streams() {
        // §1.1's claim: serialize ascending 4-byte keys and try Huffman.
        // The high bytes compress a little but nowhere near delta-binary.
        let keys: Vec<u64> = (0..5_000u64).map(|i| i * 37 + 1_000_000).collect();
        let raw: Vec<u8> = keys
            .iter()
            .flat_map(|&k| (k as u32).to_le_bytes())
            .collect();
        let huff = encoded_len(&raw);
        let delta = crate::delta_binary::encoded_len(&keys).unwrap();
        assert!(
            delta * 2 < huff,
            "delta-binary ({delta}) should beat Huffman-on-raw-keys ({huff}) by 2x+"
        );
    }

    #[test]
    fn truncation_detected() {
        let mut buf = BytesMut::new();
        encode_huffman(b"hello huffman world", &mut buf);
        let full = buf.freeze();
        for cut in [5, 100, full.len() - 1] {
            if cut < full.len() {
                let mut partial = full.slice(..cut);
                assert!(decode_huffman(&mut partial).is_err());
            }
        }
    }

    #[test]
    fn code_lengths_satisfy_kraft() {
        let mut rng = StdRng::seed_from_u64(52);
        let data: Vec<u8> = (0..10_000)
            .map(|_| (rng.gen::<f64>().powi(3) * 255.0) as u8)
            .collect();
        let mut freq = [0u64; 256];
        for &b in &data {
            freq[b as usize] += 1;
        }
        let lengths = code_lengths(&freq);
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "Kraft inequality violated: {kraft}");
    }
}
