//! Fixed-width bit packing.
//!
//! §3.2 Step 4 binary-encodes bucket indexes: "If q = 256, one byte is
//! enough". For non-power-of-256 bucket counts we pack each index into
//! exactly `⌈log2 q⌉` bits, which is what the `Adam+Key+Quan` ablation
//! variant (Figure 8) ships on the wire, and what a MinMaxSketch's cell
//! table uses when serialized.

use crate::error::EncodingError;
use bytes::{Buf, BufMut, BytesMut};

/// Minimum number of bits required to represent values in `[0, max_value]`.
pub fn bits_for(max_value: u16) -> u32 {
    (16 - max_value.leading_zeros()).max(1)
}

/// Packs `values` at `bits` bits each (LSB-first) and appends to `out`.
/// Returns the number of bytes written.
///
/// # Errors
/// [`EncodingError::InvalidInput`] if `bits` is 0 or > 16, or any value
/// does not fit in `bits` bits.
pub fn pack_u16(values: &[u16], bits: u32, out: &mut impl BufMut) -> Result<usize, EncodingError> {
    if bits == 0 || bits > 16 {
        return Err(EncodingError::InvalidInput(format!(
            "bit width must be in 1..=16, got {bits}"
        )));
    }
    let limit = if bits == 16 {
        u16::MAX
    } else {
        (1u16 << bits) - 1
    };
    let total_bits = values.len() * bits as usize;
    let total_bytes = total_bits.div_ceil(8);
    let mut bytes = vec![0u8; total_bytes];
    let mut bit_pos = 0usize;
    for (i, &v) in values.iter().enumerate() {
        if v > limit {
            return Err(EncodingError::InvalidInput(format!(
                "value {v} at position {i} exceeds {bits}-bit limit {limit}"
            )));
        }
        let mut v = v as u32;
        let mut remaining = bits;
        while remaining > 0 {
            let byte = bit_pos / 8;
            let offset = (bit_pos % 8) as u32;
            let take = remaining.min(8 - offset);
            bytes[byte] |= ((v & ((1 << take) - 1)) as u8) << offset;
            v >>= take;
            bit_pos += take as usize;
            remaining -= take;
        }
    }
    out.put_slice(&bytes);
    Ok(total_bytes)
}

/// Zero-temporary variant of [`pack_u16`]: reserves the packed region at the
/// tail of `out` (zeroed) and ORs bits in place instead of building a
/// temporary byte vector. Byte-identical output to [`pack_u16`]. Returns the
/// number of bytes appended.
///
/// # Errors
/// See [`pack_u16`]. On error the tail of `out` past its original length is
/// unspecified.
pub fn pack_u16_into(
    values: &[u16],
    bits: u32,
    out: &mut BytesMut,
) -> Result<usize, EncodingError> {
    if bits == 0 || bits > 16 {
        return Err(EncodingError::InvalidInput(format!(
            "bit width must be in 1..=16, got {bits}"
        )));
    }
    let limit = if bits == 16 {
        u16::MAX
    } else {
        (1u16 << bits) - 1
    };
    let total_bytes = (values.len() * bits as usize).div_ceil(8);
    let at = out.len();
    out.resize(at + total_bytes, 0);
    let bytes = &mut out[at..];
    let mut bit_pos = 0usize;
    for (i, &v) in values.iter().enumerate() {
        if v > limit {
            return Err(EncodingError::InvalidInput(format!(
                "value {v} at position {i} exceeds {bits}-bit limit {limit}"
            )));
        }
        let mut v = v as u32;
        let mut remaining = bits;
        while remaining > 0 {
            let byte = bit_pos / 8;
            let offset = (bit_pos % 8) as u32;
            let take = remaining.min(8 - offset);
            bytes[byte] |= ((v & ((1 << take) - 1)) as u8) << offset;
            v >>= take;
            bit_pos += take as usize;
            remaining -= take;
        }
    }
    Ok(total_bytes)
}

/// Unpacks `count` values of `bits` bits each from `buf`.
///
/// # Errors
/// [`EncodingError::UnexpectedEof`] on truncated input,
/// [`EncodingError::InvalidInput`] on a bad bit width.
pub fn unpack_u16(buf: &mut impl Buf, count: usize, bits: u32) -> Result<Vec<u16>, EncodingError> {
    let mut out = Vec::new();
    unpack_u16_into(buf, count, bits, &mut out)?;
    Ok(out)
}

/// Variant of [`unpack_u16`] decoding into a reusable buffer (`out` is
/// cleared first). Contiguous buffers are decoded straight off the chunk
/// without an intermediate copy.
///
/// # Errors
/// See [`unpack_u16`].
pub fn unpack_u16_into(
    buf: &mut impl Buf,
    count: usize,
    bits: u32,
    out: &mut Vec<u16>,
) -> Result<(), EncodingError> {
    if bits == 0 || bits > 16 {
        return Err(EncodingError::InvalidInput(format!(
            "bit width must be in 1..=16, got {bits}"
        )));
    }
    // `count` can come straight off the wire: a checked multiply keeps an
    // absurd declared count from wrapping past the remaining-bytes test.
    let total_bytes = count
        .checked_mul(bits as usize)
        .map(|b| b.div_ceil(8))
        .ok_or_else(|| EncodingError::Corrupt(format!("bit-packed count {count} overflows")))?;
    if buf.remaining() < total_bytes {
        return Err(EncodingError::UnexpectedEof {
            context: "bit-packed values",
        });
    }
    out.clear();
    out.reserve(count);
    if buf.chunk().len() >= total_bytes {
        unpack_from_bytes(&buf.chunk()[..total_bytes], count, bits, out);
        buf.advance(total_bytes);
    } else {
        let mut bytes = vec![0u8; total_bytes];
        buf.copy_to_slice(&mut bytes);
        unpack_from_bytes(&bytes, count, bits, out);
    }
    Ok(())
}

fn unpack_from_bytes(bytes: &[u8], count: usize, bits: u32, out: &mut Vec<u16>) {
    let mut bit_pos = 0usize;
    for _ in 0..count {
        let mut v: u32 = 0;
        let mut got = 0u32;
        while got < bits {
            let byte = bit_pos / 8;
            let offset = (bit_pos % 8) as u32;
            let take = (bits - got).min(8 - offset);
            let chunk = ((bytes[byte] >> offset) & ((1u16 << take) - 1) as u8) as u32;
            v |= chunk << got;
            got += take;
            bit_pos += take as usize;
        }
        out.push(v as u16);
    }
}

/// Bytes [`pack_u16`] will emit for `count` values at `bits` bits.
pub fn packed_len(count: usize, bits: u32) -> usize {
    (count * bits as usize).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn roundtrip(values: &[u16], bits: u32) {
        let mut buf = BytesMut::new();
        let written = pack_u16(values, bits, &mut buf).unwrap();
        assert_eq!(written, buf.len());
        assert_eq!(written, packed_len(values.len(), bits));
        let mut bytes = buf.freeze();
        let decoded = unpack_u16(&mut bytes, values.len(), bits).unwrap();
        assert_eq!(decoded, values);
    }

    #[test]
    fn roundtrips_every_width() {
        let mut rng = StdRng::seed_from_u64(41);
        for bits in 1..=16u32 {
            let limit = if bits == 16 {
                u16::MAX
            } else {
                (1u16 << bits) - 1
            };
            let values: Vec<u16> = (0..321).map(|_| rng.gen_range(0..=limit)).collect();
            roundtrip(&values, bits);
        }
    }

    #[test]
    fn eight_bit_indexes_cost_one_byte() {
        // §3.2 Step 4: q = 256 → one byte per index.
        let values: Vec<u16> = (0..1000).map(|i| (i % 256) as u16).collect();
        assert_eq!(packed_len(values.len(), 8), 1000);
        roundtrip(&values, 8);
    }

    #[test]
    fn empty_input() {
        roundtrip(&[], 7);
    }

    #[test]
    fn value_overflow_rejected() {
        let mut buf = BytesMut::new();
        assert!(pack_u16(&[8], 3, &mut buf).is_err());
        assert!(pack_u16(&[7], 3, &mut buf).is_ok());
    }

    #[test]
    fn bad_widths_rejected() {
        let mut buf = BytesMut::new();
        assert!(pack_u16(&[1], 0, &mut buf).is_err());
        assert!(pack_u16(&[1], 17, &mut buf).is_err());
        let mut data: &[u8] = &[0u8; 8];
        assert!(unpack_u16(&mut data, 1, 0).is_err());
    }

    #[test]
    fn truncation_detected() {
        let mut buf = BytesMut::new();
        pack_u16(&[1, 2, 3, 4, 5], 9, &mut buf).unwrap();
        let full = buf.freeze();
        let mut cut = full.slice(..full.len() - 1);
        assert!(unpack_u16(&mut cut, 5, 9).is_err());
    }

    #[test]
    fn bits_for_covers_ranges() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u16::MAX), 16);
    }

    #[test]
    fn in_place_variants_match_allocating_path() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut packed = BytesMut::new();
        let mut unpacked = Vec::new();
        for bits in 1..=16u32 {
            let limit = if bits == 16 {
                u16::MAX
            } else {
                (1u16 << bits) - 1
            };
            let values: Vec<u16> = (0..257).map(|_| rng.gen_range(0..=limit)).collect();
            let mut reference = BytesMut::new();
            let ref_written = pack_u16(&values, bits, &mut reference).unwrap();
            packed.clear();
            let written = pack_u16_into(&values, bits, &mut packed).unwrap();
            assert_eq!(written, ref_written);
            assert_eq!(&packed[..], &reference[..], "bits={bits} pack diverged");

            let mut view = &packed[..];
            unpack_u16_into(&mut view, values.len(), bits, &mut unpacked).unwrap();
            assert_eq!(view.len(), 0);
            assert_eq!(unpacked, values);
        }
        // Error parity with the allocating path.
        assert!(pack_u16_into(&[8], 3, &mut packed).is_err());
        assert!(pack_u16_into(&[1], 0, &mut packed).is_err());
        let mut data: &[u8] = &[0u8; 8];
        assert!(unpack_u16_into(&mut data, 1, 17, &mut unpacked).is_err());
        let mut short: &[u8] = &[0u8];
        assert!(unpack_u16_into(&mut short, 9, 8, &mut unpacked).is_err());
    }

    #[test]
    fn packing_is_dense() {
        // 1000 values at 3 bits = 3000 bits = 375 bytes exactly.
        assert_eq!(packed_len(1000, 3), 375);
    }
}
