//! Lossless codecs for the SketchML gradient-compression framework
//! (Jiang et al., SIGMOD 2018, §3.4 and Appendix A.3).
//!
//! Gradient **keys** (model dimensions) cannot tolerate precision loss —
//! decoding a wrong key updates a wrong model dimension — so SketchML
//! compresses them losslessly with **delta-binary encoding**: ascending keys
//! are replaced by their increments ("delta keys"), and each increment is
//! stored in the least number of bytes that holds it (1–4), selected by a
//! 2-bit *byte flag* packed four-per-byte.
//!
//! This crate implements that codec ([`delta_binary`]) plus every baseline
//! the paper discusses or that its analysis compares against:
//!
//! - [`bitmap`] — the `⌈rD/8⌉`-byte bitmap alternative analyzed (and
//!   rejected) in Appendix A.3;
//! - [`rice`] — Golomb–Rice coding, the strongest classic lossless baseline
//!   on geometric key gaps (§1.1 cites Rice among the lossless methods);
//! - [`rle`] — run-length encoding, "typically used to compress a data
//!   sequence in which a same data value might occur consecutively …
//!   useless for non-repetitive gradient keys" (§3.4);
//! - [`huffman`] — canonical Huffman coding over bytes, the other classic
//!   lossless method §1.1/§3.4 rules out;
//! - [`csr`] — Compressed Sparse Row storage, the sparse-matrix baseline of
//!   §1.1;
//! - [`bitpack`] — fixed-width bit packing used for the binary-encoded
//!   bucket indexes of §3.2 Step 4;
//! - [`varint`] — LEB128 variable-length integers used by the wire format
//!   for counts and headers;
//! - [`crc32`] — frame-integrity checksums carried by the v2 shard frame
//!   ([`framing`]) so in-flight corruption is detected, not silently decoded;
//! - [`csk`] — the Count-Sketch cell-table frame (full or windowed), CRC32
//!   protected, merged element-wise by the `MergePolicy::Linear` collectives.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bitmap;
pub mod bitpack;
pub mod crc32;
pub mod csk;
pub mod csr;
pub mod delta_binary;
pub mod error;
pub mod framing;
pub mod huffman;
pub mod rice;
pub mod rle;
pub mod simd;
pub mod stats;
pub mod varint;

pub use delta_binary::{decode_keys, encode_keys};
pub use error::EncodingError;
