//! Property-based tests of the ML substrate: losses, optimizers, vectors.

use proptest::collection::vec;
use proptest::prelude::*;
use sketchml_ml::{AdaGrad, Adam, AdamConfig, GlmLoss, Momentum, Optimizer, Sgd, SparseVector};

proptest! {
    /// Losses are non-negative and finite over reasonable score ranges.
    #[test]
    fn losses_are_nonnegative_and_finite(
        score in -100.0f64..100.0,
        label in prop_oneof![Just(-1.0f64), Just(1.0f64)],
    ) {
        for loss in GlmLoss::all() {
            let l = loss.loss(score, label);
            prop_assert!(l >= 0.0, "{loss:?}: loss {l} < 0");
            prop_assert!(l.is_finite());
            prop_assert!(loss.dloss(score, label).is_finite());
        }
    }

    /// Numeric gradient check for logistic and squared at random points.
    #[test]
    fn smooth_losses_match_numeric_derivative(
        score in -10.0f64..10.0,
        label in -2.0f64..2.0,
    ) {
        let h = 1e-6;
        for loss in [GlmLoss::Logistic, GlmLoss::Squared] {
            let numeric = (loss.loss(score + h, label) - loss.loss(score - h, label)) / (2.0 * h);
            let analytic = loss.dloss(score, label);
            prop_assert!((numeric - analytic).abs() < 1e-4,
                "{loss:?}: numeric {numeric} vs analytic {analytic}");
        }
    }

    /// A gradient step along the true gradient direction cannot increase a
    /// convex per-instance loss (for a small enough step).
    #[test]
    fn gradient_step_decreases_loss(
        score in -5.0f64..5.0,
        label in prop_oneof![Just(-1.0f64), Just(1.0f64)],
    ) {
        for loss in GlmLoss::all() {
            let g = loss.dloss(score, label);
            if g == 0.0 { continue; }
            let before = loss.loss(score, label);
            let after = loss.loss(score - 1e-4 * g, label);
            prop_assert!(after <= before + 1e-12,
                "{loss:?}: step increased loss {before} -> {after}");
        }
    }

    /// Every optimizer moves weights opposite to the gradient sign on the
    /// first step and never touches untouched dimensions.
    #[test]
    fn optimizers_step_against_gradient(
        g in prop_oneof![-10.0f64..-1e-6, 1e-6..10.0],
        dim in 2usize..16,
    ) {
        let builders: Vec<Box<dyn Fn() -> Box<dyn Optimizer>>> = vec![
            Box::new(|| Box::new(Sgd::new(0.1).unwrap())),
            Box::new(move || Box::new(Momentum::new(16, 0.1, 0.9).unwrap())),
            Box::new(move || Box::new(AdaGrad::new(16, 0.1).unwrap())),
            Box::new(move || Box::new(Adam::new(16, AdamConfig::with_lr(0.1)).unwrap())),
        ];
        for build in &builders {
            let mut opt = build();
            let mut w = vec![0.0; 16];
            opt.step(&mut w, &[(dim - 1) as u64], &[g]);
            prop_assert!(w[dim - 1] * g < 0.0, "step must oppose gradient");
            for (i, &wi) in w.iter().enumerate() {
                if i != dim - 1 {
                    prop_assert_eq!(wi, 0.0, "untouched dim {} moved", i);
                }
            }
        }
    }

    /// Sparse dot products match the dense equivalent.
    #[test]
    fn sparse_dot_matches_dense(
        pairs in vec((0u32..64, -5.0f64..5.0), 0..32),
        dense in vec(-3.0f64..3.0, 64),
    ) {
        let mut sorted: Vec<(u32, f64)> = pairs;
        sorted.sort_by_key(|&(i, _)| i);
        sorted.dedup_by_key(|&mut (i, _)| i);
        let x = SparseVector::from_pairs(&sorted).unwrap();
        let reference: f64 = sorted.iter().map(|&(i, v)| v * dense[i as usize]).sum();
        prop_assert!((x.dot(&dense) - reference).abs() < 1e-9);
        // scatter_add is the adjoint: dense' = dense + s*x.
        let mut target = dense.clone();
        x.scatter_add(&mut target, 2.0);
        for &(i, v) in &sorted {
            prop_assert!((target[i as usize] - dense[i as usize] - 2.0 * v).abs() < 1e-12);
        }
    }
}
