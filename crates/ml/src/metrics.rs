//! Evaluation metrics shared by the experiment harnesses (§4.1 "Metrics":
//! "we follow prior art and measure the average run time per epoch and the
//! loss function with respect to the run time").

use serde::{Deserialize, Serialize};

/// One point of a loss-versus-time convergence curve (Figures 10 & 14).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossPoint {
    /// Simulated seconds since training started.
    pub seconds: f64,
    /// Epoch index (1-based).
    pub epoch: usize,
    /// Test loss at this point.
    pub loss: f64,
}

/// Convergence detector implementing §4.4's rule: "An algorithm is
/// considered as converged if the variation of loss is less than 1% within
/// five epochs."
#[derive(Debug, Clone)]
pub struct ConvergenceDetector {
    window: usize,
    tolerance: f64,
    history: Vec<f64>,
}

impl Default for ConvergenceDetector {
    fn default() -> Self {
        ConvergenceDetector::new(5, 0.01)
    }
}

impl ConvergenceDetector {
    /// Detector declaring convergence when loss varies less than
    /// `tolerance` (relative) across `window` consecutive epochs.
    pub fn new(window: usize, tolerance: f64) -> Self {
        ConvergenceDetector {
            window: window.max(2),
            tolerance,
            history: Vec::new(),
        }
    }

    /// Records an epoch's loss; returns `true` once converged.
    pub fn push(&mut self, loss: f64) -> bool {
        self.history.push(loss);
        self.converged()
    }

    /// Whether the §4.4 criterion currently holds.
    pub fn converged(&self) -> bool {
        if self.history.len() < self.window {
            return false;
        }
        let tail = &self.history[self.history.len() - self.window..];
        let max = tail.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = tail.iter().copied().fold(f64::INFINITY, f64::min);
        let mid = (max.abs() + min.abs()) / 2.0;
        if mid == 0.0 {
            return true;
        }
        (max - min) / mid < self.tolerance
    }

    /// Best (minimum) loss observed so far.
    pub fn best(&self) -> Option<f64> {
        self.history.iter().copied().min_by(f64::total_cmp)
    }

    /// Number of epochs recorded.
    pub fn epochs(&self) -> usize {
        self.history.len()
    }
}

/// Root-mean-square error between predictions and targets.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn rmse(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len());
    if predictions.is_empty() {
        return 0.0;
    }
    let mse: f64 = predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / predictions.len() as f64;
    mse.sqrt()
}

/// Area under the ROC curve for binary ±1 labels, computed by the
/// rank-statistic formula (the CTR-prediction metric of the paper's §4.1
/// third dataset). Returns `None` when one class is absent.
pub fn auc(scores: &[f64], labels: &[f64]) -> Option<f64> {
    assert_eq!(scores.len(), labels.len());
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut rank_sum_pos = 0.0f64;
    let (mut pos, mut neg) = (0u64, 0u64);
    let mut i = 0usize;
    while i < order.len() {
        // Average ranks across ties.
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            if labels[idx] > 0.0 {
                pos += 1;
                rank_sum_pos += avg_rank;
            } else {
                neg += 1;
            }
        }
        i = j + 1;
    }
    if pos == 0 || neg == 0 {
        return None;
    }
    let auc = (rank_sum_pos - pos as f64 * (pos as f64 + 1.0) / 2.0) / (pos as f64 * neg as f64);
    Some(auc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convergence_after_flat_window() {
        let mut det = ConvergenceDetector::default();
        for loss in [1.0, 0.8, 0.6, 0.5, 0.45] {
            assert!(!det.push(loss));
        }
        // Five nearly-identical epochs → converged.
        for loss in [0.444, 0.4435, 0.4441, 0.4438] {
            det.push(loss);
        }
        assert!(det.push(0.4436));
        assert_eq!(det.best(), Some(0.4435));
    }

    #[test]
    fn no_convergence_while_improving() {
        let mut det = ConvergenceDetector::default();
        for i in 0..20 {
            let loss = 1.0 / (i + 1) as f64;
            assert!(!det.push(loss), "epoch {i} should not be converged");
        }
    }

    #[test]
    fn short_history_not_converged() {
        let mut det = ConvergenceDetector::new(5, 0.01);
        det.push(0.5);
        det.push(0.5);
        assert!(!det.converged());
        assert_eq!(det.epochs(), 2);
    }

    #[test]
    fn rmse_basics() {
        assert_eq!(rmse(&[], &[]), 0.0);
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rmse_length_mismatch_panics() {
        rmse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn auc_perfect_and_random() {
        // Perfectly separated scores.
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [-1.0, -1.0, 1.0, 1.0];
        assert_eq!(auc(&scores, &labels), Some(1.0));
        // Perfectly inverted.
        let labels_inv = [1.0, 1.0, -1.0, -1.0];
        assert_eq!(auc(&scores, &labels_inv), Some(0.0));
        // All ties -> 0.5.
        let flat = [0.5, 0.5, 0.5, 0.5];
        assert_eq!(auc(&flat, &labels), Some(0.5));
        // Single class -> None.
        assert_eq!(auc(&scores, &[1.0, 1.0, 1.0, 1.0]), None);
    }

    #[test]
    fn auc_handles_partial_overlap() {
        let scores = [0.1, 0.4, 0.35, 0.8];
        let labels = [-1.0, 1.0, -1.0, 1.0];
        // Pairs: (0.4>0.1)=1, (0.4>0.35)=1, (0.8>0.1)=1, (0.8>0.35)=1 → 4/4.
        assert_eq!(auc(&scores, &labels), Some(1.0));
        let labels2 = [1.0, -1.0, 1.0, -1.0];
        assert_eq!(auc(&scores, &labels2), Some(0.0));
    }
}
