//! Sketch-compressed optimizer state (ROADMAP: "100M+ dimension models").
//!
//! Dense Adam pins `2·d` f64s of moments per worker — at d = 100M that is
//! 1.6 GB, dwarfing the KB-scale compressed gradients SketchML ships on the
//! wire. "Compressing Gradient Optimizers via Count-Sketches" (Spring et al.,
//! arXiv:1902.00179) shows the auxiliary vectors tolerate the same
//! count-sketch treatment the paper applies to gradients: store each moment
//! vector in a seeded `rows × cols` signed table, estimate entries by a
//! sign-corrected median over rows, and fold every update back in as an
//! *insert of the delta* so the table keeps tracking its own estimate:
//!
//! ```text
//! est   = S.query(k)              // median-of-rows estimate of m_k
//! new   = β·est + (1-β)·g         // the usual moment recurrence
//! S.insert(k, new - est)          // table now answers ≈ new for k
//! ```
//!
//! AdaGrad's accumulator is a plain running sum (`G += g²`), which is exactly
//! the linear aggregation a count-sketch supports natively, so it inserts
//! `g²` directly with no query-before-update.
//!
//! Memory is `rows·cols·8` bytes per table **regardless of d** — a few MB
//! bounds optimizer state for arbitrarily wide models, at the price of
//! collision noise in the moment estimates (benign for Adam/AdaGrad, whose
//! per-dimension normalization absorbs small errors; see `fig_bigmodel`).
//!
//! [`OptimizerState`] is the serializable sum of every dense and sketched
//! optimizer this crate offers. It is what `Checkpoint` v2 stores, closing
//! the v1 hole where only Adam runs could checkpoint at all.

use crate::error::MlError;
use crate::optimizer::{AdaGrad, Adam, AdamConfig, Momentum, Optimizer, OptimizerKind, Sgd};
use serde::{Deserialize, Serialize};
use sketchml_sketches::CountSketch;

/// Seed salts for the moment tables, fixed so that two workers building the
/// same spec get hash-identical tables (required for bit-exact resume and
/// for merging sketched state across elastic membership changes).
const SEED_M: u64 = 0x5EED_0111;
const SEED_V: u64 = 0x5EED_0222;
const SEED_U: u64 = 0x5EED_0333;
const SEED_G: u64 = 0x5EED_0444;

/// How a trainer materializes optimizer state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum OptStateMode {
    /// Exact per-dimension vectors (`O(d)` memory) — the classical layout.
    #[default]
    Dense,
    /// Count-sketch tables of `rows × cols` f64 cells per moment vector
    /// (`O(rows·cols)` memory, independent of d).
    Sketched {
        /// Hash rows per table (median-of-rows estimation; 3–5 typical).
        rows: usize,
        /// Buckets per row; the main memory/accuracy knob.
        cols: usize,
    },
}

impl OptStateMode {
    /// Convenience constructor for the sketched mode.
    pub fn sketched(rows: usize, cols: usize) -> Self {
        OptStateMode::Sketched { rows, cols }
    }

    /// Validates shape parameters.
    ///
    /// # Errors
    /// [`MlError::InvalidConfig`] on a zero or oversized table.
    pub fn validate(&self) -> Result<(), MlError> {
        if let OptStateMode::Sketched { rows, cols } = *self {
            if rows == 0 || cols == 0 {
                return Err(MlError::InvalidConfig(
                    "sketched opt state needs rows > 0 and cols > 0".into(),
                ));
            }
            if rows > 64 {
                return Err(MlError::InvalidConfig(format!(
                    "sketched opt state supports at most 64 rows, got {rows}"
                )));
            }
            if rows.checked_mul(cols).is_none_or(|c| c > u32::MAX as usize) {
                return Err(MlError::InvalidConfig(
                    "sketched opt state table exceeds u32::MAX cells".into(),
                ));
            }
        }
        Ok(())
    }
}

fn table(rows: usize, cols: usize, seed: u64) -> Result<CountSketch, MlError> {
    CountSketch::new(rows, cols, seed)
        .map_err(|e| MlError::InvalidConfig(format!("sketched opt state: {e}")))
}

/// Adam whose moment vectors live in count-sketch tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SketchedAdam {
    config: AdamConfig,
    m: CountSketch,
    v: CountSketch,
    t: u64,
}

impl SketchedAdam {
    /// Creates a sketched Adam with `rows × cols` tables for each moment.
    ///
    /// # Errors
    /// [`MlError::InvalidConfig`] on bad hyper-parameters or table shape.
    pub fn new(config: AdamConfig, rows: usize, cols: usize) -> Result<Self, MlError> {
        Adam::new(0, config)?; // reuse the dense hyper-parameter validation
        Ok(SketchedAdam {
            config,
            m: table(rows, cols, SEED_M)?,
            v: table(rows, cols, SEED_V)?,
            t: 0,
        })
    }

    /// Step counter (number of `step` calls so far).
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Hyper-parameters in effect.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// Bytes held in moment tables (excludes the struct header).
    pub fn state_bytes(&self) -> usize {
        8 * (self.m.rows() * self.m.cols() + self.v.rows() * self.v.cols())
    }
}

impl Optimizer for SketchedAdam {
    fn step(&mut self, weights: &mut [f64], keys: &[u64], values: &[f64]) {
        self.t += 1;
        let AdamConfig {
            lr,
            beta1,
            beta2,
            epsilon,
        } = self.config;
        let bc1 = 1.0 - beta1.powf(self.t as f64);
        let bc2 = 1.0 - beta2.powf(self.t as f64);
        for (&key, &g) in keys.iter().zip(values) {
            if key as usize >= weights.len() {
                continue;
            }
            let m_est = self.m.query(key);
            let m_new = beta1 * m_est + (1.0 - beta1) * g;
            self.m.insert(key, m_new - m_est);
            // Collision noise can push the second-moment estimate negative;
            // clamp before using it (it is a sum of squares in expectation).
            let v_est = self.v.query(key);
            let v_new = beta2 * v_est.max(0.0) + (1.0 - beta2) * g * g;
            self.v.insert(key, v_new - v_est);
            let m_hat = m_new / bc1;
            let v_hat = (v_new / bc2).max(0.0);
            weights[key as usize] -= lr * m_hat / (v_hat.sqrt() + epsilon);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.config.lr
    }
}

/// Momentum SGD whose velocity vector lives in a count-sketch table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SketchedMomentum {
    /// Learning rate η.
    pub lr: f64,
    /// Momentum coefficient γ.
    pub gamma: f64,
    velocity: CountSketch,
}

impl SketchedMomentum {
    /// Creates a sketched momentum optimizer.
    ///
    /// # Errors
    /// [`MlError::InvalidConfig`] on bad hyper-parameters or table shape.
    pub fn new(lr: f64, gamma: f64, rows: usize, cols: usize) -> Result<Self, MlError> {
        Momentum::new(0, lr, gamma)?;
        Ok(SketchedMomentum {
            lr,
            gamma,
            velocity: table(rows, cols, SEED_U)?,
        })
    }

    /// Bytes held in the velocity table.
    pub fn state_bytes(&self) -> usize {
        8 * self.velocity.rows() * self.velocity.cols()
    }
}

impl Optimizer for SketchedMomentum {
    fn step(&mut self, weights: &mut [f64], keys: &[u64], values: &[f64]) {
        for (&key, &g) in keys.iter().zip(values) {
            if key as usize >= weights.len() {
                continue;
            }
            let u_est = self.velocity.query(key);
            let u_new = self.gamma * u_est + g;
            self.velocity.insert(key, u_new - u_est);
            weights[key as usize] -= self.lr * u_new;
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }
}

/// AdaGrad whose squared-gradient accumulator lives in a count-sketch table.
///
/// Accumulation is purely additive, so updates are plain linear inserts —
/// the one optimizer whose sketched form needs no query-before-update.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SketchedAdaGrad {
    /// Learning rate η.
    pub lr: f64,
    /// Stability term ε.
    pub epsilon: f64,
    accum: CountSketch,
}

impl SketchedAdaGrad {
    /// Creates a sketched AdaGrad optimizer.
    ///
    /// # Errors
    /// [`MlError::InvalidConfig`] on bad hyper-parameters or table shape.
    pub fn new(lr: f64, epsilon: f64, rows: usize, cols: usize) -> Result<Self, MlError> {
        AdaGrad::with_epsilon(0, lr, epsilon)?;
        Ok(SketchedAdaGrad {
            lr,
            epsilon,
            accum: table(rows, cols, SEED_G)?,
        })
    }

    /// Bytes held in the accumulator table.
    pub fn state_bytes(&self) -> usize {
        8 * self.accum.rows() * self.accum.cols()
    }
}

impl Optimizer for SketchedAdaGrad {
    fn step(&mut self, weights: &mut [f64], keys: &[u64], values: &[f64]) {
        for (&key, &g) in keys.iter().zip(values) {
            if key as usize >= weights.len() {
                continue;
            }
            self.accum.insert(key, g * g);
            let a = self.accum.query(key).max(0.0);
            weights[key as usize] -= self.lr * g / (a.sqrt() + self.epsilon);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }
}

/// Every optimizer state this crate can checkpoint: the serializable sum of
/// dense and sketched variants. Checkpoint v2 stores this enum; trainers hold
/// it directly so any run — not just Adam — can crash and resume bit-exact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum OptimizerState {
    /// Stateless SGD (`lr` only — nothing to sketch).
    Sgd(Sgd),
    /// Dense momentum (velocity over the full dimension).
    Momentum(Momentum),
    /// Dense AdaGrad (accumulator over the full dimension).
    AdaGrad(AdaGrad),
    /// Dense Adam (the paper's default).
    Adam(Adam),
    /// Momentum with a sketched velocity table.
    SketchedMomentum(SketchedMomentum),
    /// AdaGrad with a sketched accumulator table.
    SketchedAdaGrad(SketchedAdaGrad),
    /// Adam with sketched moment tables.
    SketchedAdam(SketchedAdam),
}

impl OptimizerState {
    /// Instantiates the state for `kind` under `mode` for a `dim`-dimensional
    /// model. SGD is stateless, so `Sketched` mode degenerates to the same
    /// dense (zero-byte) representation.
    ///
    /// # Errors
    /// Propagates constructor validation errors.
    pub fn build(kind: OptimizerKind, mode: OptStateMode, dim: usize) -> Result<Self, MlError> {
        mode.validate()?;
        Ok(match (kind, mode) {
            (OptimizerKind::Sgd(lr), _) => OptimizerState::Sgd(Sgd::new(lr)?),
            (kind, OptStateMode::Dense) => match kind {
                OptimizerKind::Sgd(_) => unreachable!("handled above"),
                OptimizerKind::Momentum(lr, gamma) => {
                    OptimizerState::Momentum(Momentum::new(dim, lr, gamma)?)
                }
                OptimizerKind::AdaGrad(lr, epsilon) => {
                    OptimizerState::AdaGrad(AdaGrad::with_epsilon(dim, lr, epsilon)?)
                }
                OptimizerKind::Adam(cfg) => OptimizerState::Adam(Adam::new(dim, cfg)?),
            },
            (kind, OptStateMode::Sketched { rows, cols }) => match kind {
                OptimizerKind::Sgd(_) => unreachable!("handled above"),
                OptimizerKind::Momentum(lr, gamma) => {
                    OptimizerState::SketchedMomentum(SketchedMomentum::new(lr, gamma, rows, cols)?)
                }
                OptimizerKind::AdaGrad(lr, epsilon) => {
                    OptimizerState::SketchedAdaGrad(SketchedAdaGrad::new(lr, epsilon, rows, cols)?)
                }
                OptimizerKind::Adam(cfg) => {
                    OptimizerState::SketchedAdam(SketchedAdam::new(cfg, rows, cols)?)
                }
            },
        })
    }

    /// Display name for experiment tables and logs.
    pub fn name(&self) -> &'static str {
        match self {
            OptimizerState::Sgd(_) => "SGD",
            OptimizerState::Momentum(_) => "Momentum",
            OptimizerState::AdaGrad(_) => "AdaGrad",
            OptimizerState::Adam(_) => "Adam",
            OptimizerState::SketchedMomentum(_) => "SketchedMomentum",
            OptimizerState::SketchedAdaGrad(_) => "SketchedAdaGrad",
            OptimizerState::SketchedAdam(_) => "SketchedAdam",
        }
    }

    /// Whether the state lives in count-sketch tables.
    pub fn is_sketched(&self) -> bool {
        matches!(
            self,
            OptimizerState::SketchedMomentum(_)
                | OptimizerState::SketchedAdaGrad(_)
                | OptimizerState::SketchedAdam(_)
        )
    }

    /// Bytes of auxiliary state (moment/velocity/accumulator storage).
    pub fn state_bytes(&self) -> usize {
        match self {
            OptimizerState::Sgd(_) => 0,
            OptimizerState::Momentum(m) => m.state_bytes(),
            OptimizerState::AdaGrad(a) => a.state_bytes(),
            OptimizerState::Adam(a) => a.state_bytes(),
            OptimizerState::SketchedMomentum(m) => m.state_bytes(),
            OptimizerState::SketchedAdaGrad(a) => a.state_bytes(),
            OptimizerState::SketchedAdam(a) => a.state_bytes(),
        }
    }

    /// The Adam state, if this is a dense Adam.
    pub fn as_adam(&self) -> Option<&Adam> {
        match self {
            OptimizerState::Adam(a) => Some(a),
            _ => None,
        }
    }
}

impl Optimizer for OptimizerState {
    fn step(&mut self, weights: &mut [f64], keys: &[u64], values: &[f64]) {
        match self {
            OptimizerState::Sgd(o) => o.step(weights, keys, values),
            OptimizerState::Momentum(o) => o.step(weights, keys, values),
            OptimizerState::AdaGrad(o) => o.step(weights, keys, values),
            OptimizerState::Adam(o) => o.step(weights, keys, values),
            OptimizerState::SketchedMomentum(o) => o.step(weights, keys, values),
            OptimizerState::SketchedAdaGrad(o) => o.step(weights, keys, values),
            OptimizerState::SketchedAdam(o) => o.step(weights, keys, values),
        }
    }

    fn learning_rate(&self) -> f64 {
        match self {
            OptimizerState::Sgd(o) => o.learning_rate(),
            OptimizerState::Momentum(o) => o.learning_rate(),
            OptimizerState::AdaGrad(o) => o.learning_rate(),
            OptimizerState::Adam(o) => o.learning_rate(),
            OptimizerState::SketchedMomentum(o) => o.learning_rate(),
            OptimizerState::SketchedAdaGrad(o) => o.learning_rate(),
            OptimizerState::SketchedAdam(o) => o.learning_rate(),
        }
    }
}

impl From<Sgd> for OptimizerState {
    fn from(o: Sgd) -> Self {
        OptimizerState::Sgd(o)
    }
}

impl From<Momentum> for OptimizerState {
    fn from(o: Momentum) -> Self {
        OptimizerState::Momentum(o)
    }
}

impl From<AdaGrad> for OptimizerState {
    fn from(o: AdaGrad) -> Self {
        OptimizerState::AdaGrad(o)
    }
}

impl From<Adam> for OptimizerState {
    fn from(o: Adam) -> Self {
        OptimizerState::Adam(o)
    }
}

impl From<SketchedMomentum> for OptimizerState {
    fn from(o: SketchedMomentum) -> Self {
        OptimizerState::SketchedMomentum(o)
    }
}

impl From<SketchedAdaGrad> for OptimizerState {
    fn from(o: SketchedAdaGrad) -> Self {
        OptimizerState::SketchedAdaGrad(o)
    }
}

impl From<SketchedAdam> for OptimizerState {
    fn from(o: SketchedAdam) -> Self {
        OptimizerState::SketchedAdam(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_kind() -> [OptimizerKind; 4] {
        [
            OptimizerKind::Sgd(0.05),
            OptimizerKind::Momentum(0.05, 0.9),
            OptimizerKind::AdaGrad(0.1, 1e-8),
            OptimizerKind::Adam(AdamConfig::with_lr(0.05)),
        ]
    }

    #[test]
    fn mode_validation() {
        assert!(OptStateMode::Dense.validate().is_ok());
        assert!(OptStateMode::sketched(3, 1024).validate().is_ok());
        assert!(OptStateMode::sketched(0, 1024).validate().is_err());
        assert!(OptStateMode::sketched(3, 0).validate().is_err());
        assert!(OptStateMode::sketched(65, 1024).validate().is_err());
        assert!(OptStateMode::sketched(64, usize::MAX / 2)
            .validate()
            .is_err());
        assert_eq!(OptStateMode::default(), OptStateMode::Dense);
    }

    #[test]
    fn build_covers_every_kind_and_mode() {
        for kind in every_kind() {
            for mode in [OptStateMode::Dense, OptStateMode::sketched(3, 256)] {
                let mut st = OptimizerState::build(kind, mode, 16).unwrap();
                let mut w = vec![0.0; 16];
                st.step(&mut w, &[3], &[1.0]);
                assert_ne!(w[3], 0.0, "{} did not update", st.name());
                assert!(st.learning_rate() > 0.0);
            }
        }
        // SGD has no state to sketch — both modes yield the dense form.
        let st = OptimizerState::build(OptimizerKind::Sgd(0.1), OptStateMode::sketched(3, 256), 16)
            .unwrap();
        assert!(!st.is_sketched());
        assert_eq!(st.state_bytes(), 0);
    }

    #[test]
    fn sketched_memory_is_dimension_independent() {
        let cfg = AdamConfig::default();
        let small = SketchedAdam::new(cfg, 3, 512).unwrap();
        assert_eq!(small.state_bytes(), 8 * 3 * 512 * 2);
        // Dense Adam at d scales linearly; sketched is constant.
        let dense = Adam::new(1 << 20, cfg).unwrap();
        assert!(dense.state_bytes() > 100 * small.state_bytes());
    }

    #[test]
    fn sketched_adam_tracks_dense_when_collision_free() {
        // With far more columns than live dimensions the sketch is
        // essentially exact, so sketched Adam must track dense Adam tightly.
        let cfg = AdamConfig::with_lr(0.1);
        let mut dense = Adam::new(4, cfg).unwrap();
        let mut sk = SketchedAdam::new(cfg, 3, 4096).unwrap();
        let (mut wd, mut ws) = (vec![0.0; 4], vec![0.0; 4]);
        for step in 0..200 {
            let g = [2.0 * (wd[0] - 1.0), (step as f64 * 0.1).sin(), -0.3, 0.001];
            dense.step(&mut wd, &[0, 1, 2, 3], &g);
            let g = [2.0 * (ws[0] - 1.0), (step as f64 * 0.1).sin(), -0.3, 0.001];
            sk.step(&mut ws, &[0, 1, 2, 3], &g);
        }
        for (a, b) in wd.iter().zip(&ws) {
            assert!((a - b).abs() < 1e-6, "dense {a} vs sketched {b}");
        }
        assert_eq!(dense.steps(), sk.steps());
    }

    #[test]
    fn sketched_momentum_and_adagrad_converge_on_quadratic() {
        let mut mom = SketchedMomentum::new(0.02, 0.9, 3, 1024).unwrap();
        let mut w = vec![0.0];
        for _ in 0..500 {
            let g = 2.0 * (w[0] - 3.0);
            mom.step(&mut w, &[0], &[g]);
        }
        assert!((w[0] - 3.0).abs() < 0.1, "momentum w = {}", w[0]);

        let mut ada = SketchedAdaGrad::new(0.5, 1e-8, 3, 1024).unwrap();
        let mut w = vec![0.0];
        for _ in 0..2000 {
            let g = 2.0 * (w[0] - 3.0);
            ada.step(&mut w, &[0], &[g]);
        }
        assert!((w[0] - 3.0).abs() < 0.1, "adagrad w = {}", w[0]);
    }

    #[test]
    fn sketched_state_roundtrips_serde_bit_exact() {
        let mut sk = SketchedAdam::new(AdamConfig::with_lr(0.05), 3, 512).unwrap();
        let mut w = vec![0.0; 64];
        for i in 0..50u64 {
            sk.step(&mut w, &[i % 64, (i * 7) % 64], &[0.5, -0.25]);
        }
        let state = OptimizerState::SketchedAdam(sk);
        let json = serde_json::to_string(&state).unwrap();
        let back: OptimizerState = serde_json::from_str(&json).unwrap();
        let (mut a, mut b) = (state.clone(), back);
        let mut wa = vec![0.1; 64];
        let mut wb = vec![0.1; 64];
        for i in 0..20u64 {
            a.step(&mut wa, &[i], &[0.3]);
            b.step(&mut wb, &[i], &[0.3]);
        }
        assert_eq!(wa, wb, "resumed sketched state must step identically");
    }

    #[test]
    fn out_of_range_keys_are_ignored_by_sketched_variants() {
        let mut w = vec![0.0; 2];
        let mut sk = SketchedAdam::new(AdamConfig::default(), 2, 64).unwrap();
        sk.step(&mut w, &[99], &[1.0]);
        let mut mo = SketchedMomentum::new(0.1, 0.9, 2, 64).unwrap();
        mo.step(&mut w, &[99], &[1.0]);
        let mut ad = SketchedAdaGrad::new(0.1, 1e-8, 2, 64).unwrap();
        ad.step(&mut w, &[99], &[1.0]);
        assert_eq!(w, vec![0.0, 0.0]);
    }
}
