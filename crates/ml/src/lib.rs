//! ML substrate for the SketchML reproduction (paper §2.2, §4.1, §B.3).
//!
//! The paper trains three ℓ2-regularized generalized linear models —
//! Logistic Regression, Support Vector Machine, and Linear Regression —
//! with mini-batch **Adam SGD**, plus a multilayer perceptron for the §B.3
//! neural-network experiment. This crate implements all of it from scratch:
//!
//! - [`vector`] — sparse feature vectors and labeled instances;
//! - [`loss`] — the three GLM losses of §4.1 and their gradients;
//! - [`optimizer`] — plain SGD and Adam (Kingma & Ba) with lazy sparse
//!   moment updates;
//! - [`model`] — GLM training: mini-batch gradient computation, prediction,
//!   loss/accuracy evaluation;
//! - [`mlp`] — a sigmoid-hidden/softmax-output multilayer perceptron whose
//!   gradients flatten to key-value pairs so they flow through the same
//!   compression path (§B.3);
//! - [`metrics`] — evaluation helpers.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod checkpoint;
pub mod error;
pub mod loss;
pub mod metrics;
pub mod mlp;
pub mod model;
pub mod opt_state;
pub mod optimizer;
pub mod vector;

pub use checkpoint::Checkpoint;
pub use error::MlError;
pub use loss::GlmLoss;
pub use mlp::{Mlp, MlpConfig};
pub use model::{BatchGradient, GlmModel};
pub use opt_state::{
    OptStateMode, OptimizerState, SketchedAdaGrad, SketchedAdam, SketchedMomentum,
};
pub use optimizer::{AdaGrad, Adam, AdamConfig, Momentum, Optimizer, OptimizerKind, Sgd};
pub use vector::{Instance, SparseVector};
