//! Sparse feature vectors and labeled training instances (paper §2.2:
//! "the training instance `x_i` is generally sparse").

use crate::error::MlError;
use serde::{Deserialize, Serialize};

/// A sparse feature vector with strictly ascending `u32` indices.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SparseVector {
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseVector {
    /// Builds a vector from parallel index/value arrays.
    ///
    /// # Errors
    /// [`MlError::InvalidInput`] on length mismatch, unsorted/duplicate
    /// indices, or non-finite values.
    pub fn new(indices: Vec<u32>, values: Vec<f64>) -> Result<Self, MlError> {
        if indices.len() != values.len() {
            return Err(MlError::InvalidInput(format!(
                "{} indices but {} values",
                indices.len(),
                values.len()
            )));
        }
        for w in indices.windows(2) {
            if w[0] >= w[1] {
                return Err(MlError::InvalidInput(
                    "indices must be strictly ascending".into(),
                ));
            }
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(MlError::InvalidInput("non-finite feature value".into()));
        }
        Ok(SparseVector { indices, values })
    }

    /// Builds from `(index, value)` pairs that are already ascending.
    ///
    /// # Errors
    /// See [`SparseVector::new`].
    pub fn from_pairs(pairs: &[(u32, f64)]) -> Result<Self, MlError> {
        let indices = pairs.iter().map(|&(i, _)| i).collect();
        let values = pairs.iter().map(|&(_, v)| v).collect();
        Self::new(indices, values)
    }

    /// Number of nonzero features.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Whether the vector is all-zero.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Ascending feature indices.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Values aligned with [`Self::indices`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterator over `(index, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Dot product against a dense weight vector; indices past the end of
    /// `dense` contribute zero (models may be narrower than the data).
    pub fn dot(&self, dense: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (i, v) in self.iter() {
            if let Some(w) = dense.get(i as usize) {
                acc += w * v;
            }
        }
        acc
    }

    /// `dense[i] += scale * self[i]` for every nonzero (gradient scatter).
    pub fn scatter_add(&self, dense: &mut [f64], scale: f64) {
        for (i, v) in self.iter() {
            if let Some(w) = dense.get_mut(i as usize) {
                *w += scale * v;
            }
        }
    }

    /// L2 norm of the values.
    pub fn l2_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// A labeled training instance. For the classifiers (LR/SVM) labels are
/// ±1; for linear regression the label is a real target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Sparse feature vector `x_i`.
    pub features: SparseVector,
    /// Label `y_i`.
    pub label: f64,
}

impl Instance {
    /// Creates a labeled instance.
    pub fn new(features: SparseVector, label: f64) -> Self {
        Instance { features, label }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates() {
        assert!(SparseVector::new(vec![0, 2, 5], vec![1.0, 2.0, 3.0]).is_ok());
        assert!(SparseVector::new(vec![0, 2], vec![1.0]).is_err());
        assert!(SparseVector::new(vec![2, 0], vec![1.0, 2.0]).is_err());
        assert!(SparseVector::new(vec![2, 2], vec![1.0, 2.0]).is_err());
        assert!(SparseVector::new(vec![0], vec![f64::NAN]).is_err());
    }

    #[test]
    fn dot_product() {
        let v = SparseVector::new(vec![0, 3], vec![2.0, -1.0]).unwrap();
        let w = [1.0, 9.0, 9.0, 4.0];
        assert_eq!(v.dot(&w), 2.0 - 4.0);
        // Out-of-range indices contribute zero.
        let narrow = [1.0];
        assert_eq!(v.dot(&narrow), 2.0);
        assert_eq!(SparseVector::default().dot(&w), 0.0);
    }

    #[test]
    fn scatter_add() {
        let v = SparseVector::new(vec![1, 2], vec![1.0, 2.0]).unwrap();
        let mut w = vec![0.0; 4];
        v.scatter_add(&mut w, 0.5);
        assert_eq!(w, vec![0.0, 0.5, 1.0, 0.0]);
    }

    #[test]
    fn from_pairs_and_iter() {
        let v = SparseVector::from_pairs(&[(3, 1.5), (7, -2.0)]).unwrap();
        let pairs: Vec<(u32, f64)> = v.iter().collect();
        assert_eq!(pairs, vec![(3, 1.5), (7, -2.0)]);
        assert_eq!(v.nnz(), 2);
        assert!((v.l2_norm() - (1.5f64 * 1.5 + 4.0).sqrt()).abs() < 1e-12);
    }
}
