//! The three ℓ2-regularized GLM losses of the evaluation (paper §4.1):
//!
//! ```text
//! LR:     f = Σ log(1 + e^{-y_i θᵀx_i}) + λ/2 ‖θ‖²
//! SVM:    f = Σ max(0, 1 - y_i θᵀx_i)  + λ/2 ‖θ‖²
//! Linear: f = Σ (y_i - θᵀx_i)²         + λ/2 ‖θ‖²
//! ```
//!
//! Each loss exposes its per-instance value and the derivative with respect
//! to the score `s = θᵀx`, from which the sparse gradient follows as
//! `∂f/∂θ_k = (∂l/∂s) · x_k`.

use serde::{Deserialize, Serialize};

/// Loss family of a generalized linear model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GlmLoss {
    /// Logistic regression (labels ±1).
    Logistic,
    /// Support vector machine with hinge loss (labels ±1).
    Hinge,
    /// Linear regression with squared error (real labels).
    Squared,
}

impl GlmLoss {
    /// Short display name matching the paper's tables ("LR", "SVM",
    /// "Linear").
    pub fn name(self) -> &'static str {
        match self {
            GlmLoss::Logistic => "LR",
            GlmLoss::Hinge => "SVM",
            GlmLoss::Squared => "Linear",
        }
    }

    /// Per-instance loss given the score `s = θᵀx` and label `y`.
    #[inline]
    pub fn loss(self, score: f64, label: f64) -> f64 {
        match self {
            GlmLoss::Logistic => {
                // Numerically stable log(1 + e^{-ys}).
                let m = -label * score;
                if m > 30.0 {
                    m
                } else {
                    m.exp().ln_1p()
                }
            }
            GlmLoss::Hinge => (1.0 - label * score).max(0.0),
            GlmLoss::Squared => {
                let e = label - score;
                e * e
            }
        }
    }

    /// Derivative of the per-instance loss with respect to the score.
    #[inline]
    pub fn dloss(self, score: f64, label: f64) -> f64 {
        match self {
            GlmLoss::Logistic => {
                // -y σ(-ys) with a stable sigmoid.
                let m = -label * score;
                let sig = if m >= 0.0 {
                    1.0 / (1.0 + (-m).exp())
                } else {
                    let e = m.exp();
                    e / (1.0 + e)
                };
                -label * sig
            }
            GlmLoss::Hinge => {
                if label * score < 1.0 {
                    -label
                } else {
                    0.0
                }
            }
            GlmLoss::Squared => -2.0 * (label - score),
        }
    }

    /// Whether this loss solves a ±1 classification task.
    pub fn is_classification(self) -> bool {
        matches!(self, GlmLoss::Logistic | GlmLoss::Hinge)
    }

    /// The three losses in the order the paper's tables list them.
    pub fn all() -> [GlmLoss; 3] {
        [GlmLoss::Logistic, GlmLoss::Hinge, GlmLoss::Squared]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numeric derivative check.
    fn check_gradient(loss: GlmLoss, score: f64, label: f64) {
        let h = 1e-6;
        let numeric = (loss.loss(score + h, label) - loss.loss(score - h, label)) / (2.0 * h);
        let analytic = loss.dloss(score, label);
        assert!(
            (numeric - analytic).abs() < 1e-5,
            "{:?} s={score} y={label}: numeric {numeric} vs analytic {analytic}",
            loss
        );
    }

    #[test]
    fn logistic_matches_numeric_gradient() {
        for s in [-3.0, -0.5, 0.0, 0.5, 3.0] {
            for y in [-1.0, 1.0] {
                check_gradient(GlmLoss::Logistic, s, y);
            }
        }
    }

    #[test]
    fn squared_matches_numeric_gradient() {
        for s in [-2.0, 0.0, 1.5] {
            for y in [-1.0, 0.3, 2.0] {
                check_gradient(GlmLoss::Squared, s, y);
            }
        }
    }

    #[test]
    fn hinge_matches_numeric_gradient_off_kink() {
        for (s, y) in [
            (0.5, 1.0),
            (-0.5, 1.0),
            (2.0, 1.0),
            (0.5, -1.0),
            (-2.0, -1.0),
        ] {
            if (y * s - 1.0f64).abs() > 1e-3 {
                check_gradient(GlmLoss::Hinge, s, y);
            }
        }
    }

    #[test]
    fn logistic_is_stable_at_extremes() {
        let l = GlmLoss::Logistic;
        assert!(l.loss(1e4, -1.0).is_finite());
        assert!(l.loss(-1e4, 1.0).is_finite());
        assert!(l.dloss(1e4, -1.0).is_finite());
        assert!((l.dloss(1e4, 1.0)).abs() < 1e-10, "saturated gradient ~ 0");
        assert!((l.loss(0.0, 1.0) - (2f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn hinge_zero_beyond_margin() {
        let l = GlmLoss::Hinge;
        assert_eq!(l.loss(2.0, 1.0), 0.0);
        assert_eq!(l.dloss(2.0, 1.0), 0.0);
        assert_eq!(l.loss(0.0, 1.0), 1.0);
        assert_eq!(l.dloss(0.0, 1.0), -1.0);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(GlmLoss::Logistic.name(), "LR");
        assert_eq!(GlmLoss::Hinge.name(), "SVM");
        assert_eq!(GlmLoss::Squared.name(), "Linear");
        assert_eq!(GlmLoss::all().len(), 3);
        assert!(GlmLoss::Logistic.is_classification());
        assert!(!GlmLoss::Squared.is_classification());
    }
}
