//! Error type of the ML substrate.

use std::fmt;

/// Errors produced by models, optimizers and vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// Structural problem with an input (shape mismatch, unsorted indices…).
    InvalidInput(String),
    /// Parameter out of range.
    InvalidConfig(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            MlError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
        }
    }
}

impl std::error::Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(MlError::InvalidInput("bad".into())
            .to_string()
            .contains("bad"));
        assert!(MlError::InvalidConfig("lr".into())
            .to_string()
            .contains("lr"));
    }
}
