//! Multilayer perceptron for the §B.3 neural-network experiment.
//!
//! The paper's network: "one input layer (size: 20 × 20), two fully
//! connected layers (size: 600), and one output layer (size: 10)" trained
//! on MNIST with softmax cross-entropy. Hidden activations are sigmoid.
//!
//! Parameters live in one flat `Vec<f64>` so a batch gradient is a flat
//! vector too — it flows through the same `SparseGradient`/compressor path
//! as the GLM gradients ("our Sketch mechanism can be applied on Neural
//! Network models … by transferring gradients with our compression
//! method"). NN gradients are dense, which is exactly the §B.3/§4.6
//! limitation the `fig14_neural_net` harness measures.

use crate::error::MlError;
use crate::optimizer::Optimizer;
use serde::{Deserialize, Serialize};

/// A dense multiclass instance (synthetic MNIST stand-in).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpInstance {
    /// Pixel values, length = input layer size.
    pub pixels: Vec<f64>,
    /// Class in `[0, classes)`.
    pub label: usize,
}

/// Network shape and initialization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Layer sizes, e.g. `[400, 600, 600, 10]` for the paper's network.
    pub layer_sizes: Vec<usize>,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl MlpConfig {
    /// The paper's §B.3 network: 20×20 input, two 600-unit hidden layers,
    /// 10 outputs.
    pub fn paper_network() -> Self {
        MlpConfig {
            layer_sizes: vec![400, 600, 600, 10],
            seed: 42,
        }
    }

    /// A scaled-down network for fast tests and simulations.
    pub fn small(input: usize, hidden: usize, classes: usize) -> Self {
        MlpConfig {
            layer_sizes: vec![input, hidden, classes],
            seed: 42,
        }
    }
}

/// Offsets of one layer's weights and biases inside the flat parameter
/// vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct LayerSpec {
    inputs: usize,
    outputs: usize,
    /// Start of the `outputs × inputs` weight block.
    w_off: usize,
    /// Start of the `outputs` bias block.
    b_off: usize,
}

/// A feed-forward network: sigmoid hidden layers, softmax output,
/// cross-entropy loss.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<LayerSpec>,
    /// All weights and biases, flattened.
    pub params: Vec<f64>,
    classes: usize,
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl Mlp {
    /// Builds a network with small deterministic random weights.
    ///
    /// # Errors
    /// [`MlError::InvalidConfig`] unless there are >= 2 layers of positive
    /// size.
    pub fn new(config: &MlpConfig) -> Result<Self, MlError> {
        if config.layer_sizes.len() < 2 {
            return Err(MlError::InvalidConfig(
                "need at least input and output layers".into(),
            ));
        }
        if config.layer_sizes.contains(&0) {
            return Err(MlError::InvalidConfig(
                "layer sizes must be positive".into(),
            ));
        }
        let mut layers = Vec::new();
        let mut off = 0usize;
        for w in config.layer_sizes.windows(2) {
            let (inputs, outputs) = (w[0], w[1]);
            layers.push(LayerSpec {
                inputs,
                outputs,
                w_off: off,
                b_off: off + inputs * outputs,
            });
            off += inputs * outputs + outputs;
        }
        // Xavier-ish init from a deterministic mixer.
        let mut state = config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let mut params = vec![0.0; off];
        for layer in &layers {
            let scale = (6.0 / (layer.inputs + layer.outputs) as f64).sqrt();
            for p in &mut params[layer.w_off..layer.w_off + layer.inputs * layer.outputs] {
                *p = next() * scale;
            }
            // Biases start at zero.
        }
        let classes = *config.layer_sizes.last().expect("checked non-empty");
        Ok(Mlp {
            layers,
            params,
            classes,
        })
    }

    /// Total number of parameters (the gradient's dimensionality).
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Input size expected by the first layer.
    pub fn input_size(&self) -> usize {
        self.layers[0].inputs
    }

    /// Forward pass returning every layer's activations (input included).
    fn forward(&self, pixels: &[f64]) -> Vec<Vec<f64>> {
        let mut acts: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len() + 1);
        acts.push(pixels.to_vec());
        for (li, layer) in self.layers.iter().enumerate() {
            let prev = &acts[li];
            let mut out = vec![0.0; layer.outputs];
            for (o, slot) in out.iter_mut().enumerate() {
                let row = &self.params
                    [layer.w_off + o * layer.inputs..layer.w_off + (o + 1) * layer.inputs];
                let mut z = self.params[layer.b_off + o];
                for (w, a) in row.iter().zip(prev) {
                    z += w * a;
                }
                *slot = z;
            }
            let is_output = li == self.layers.len() - 1;
            if is_output {
                // Softmax, stabilized.
                let max = out.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let mut sum = 0.0;
                for z in &mut out {
                    *z = (*z - max).exp();
                    sum += *z;
                }
                for z in &mut out {
                    *z /= sum;
                }
            } else {
                for z in &mut out {
                    *z = sigmoid(*z);
                }
            }
            acts.push(out);
        }
        acts
    }

    /// Class probabilities for one instance.
    pub fn predict(&self, pixels: &[f64]) -> Vec<f64> {
        self.forward(pixels)
            .pop()
            .expect("forward returns >= 2 layers")
    }

    /// Mini-batch gradient (flat, averaged) and the batch's mean
    /// cross-entropy loss.
    pub fn batch_gradient(&self, batch: &[MlpInstance]) -> (Vec<f64>, f64) {
        let mut grad = vec![0.0; self.params.len()];
        let mut loss_sum = 0.0;
        for inst in batch {
            debug_assert!(inst.label < self.classes);
            let acts = self.forward(&inst.pixels);
            let probs = acts.last().expect("output layer");
            loss_sum += -(probs[inst.label].max(1e-12)).ln();

            // delta at output: p - onehot(y).
            let mut delta: Vec<f64> = probs.clone();
            delta[inst.label] -= 1.0;

            for (li, layer) in self.layers.iter().enumerate().rev() {
                let prev = &acts[li];
                // Accumulate weight/bias gradients.
                for (o, &d) in delta.iter().enumerate() {
                    if d == 0.0 {
                        continue;
                    }
                    let row = &mut grad
                        [layer.w_off + o * layer.inputs..layer.w_off + (o + 1) * layer.inputs];
                    for (g, a) in row.iter_mut().zip(prev) {
                        *g += d * a;
                    }
                    grad[layer.b_off + o] += d;
                }
                if li == 0 {
                    break;
                }
                // Propagate: delta_prev = Wᵀ delta ⊙ σ'(a_prev).
                let mut prev_delta = vec![0.0; layer.inputs];
                for (o, &d) in delta.iter().enumerate() {
                    if d == 0.0 {
                        continue;
                    }
                    let row = &self.params
                        [layer.w_off + o * layer.inputs..layer.w_off + (o + 1) * layer.inputs];
                    for (pd, w) in prev_delta.iter_mut().zip(row) {
                        *pd += w * d;
                    }
                }
                for (pd, &a) in prev_delta.iter_mut().zip(prev) {
                    *pd *= a * (1.0 - a); // sigmoid'
                }
                delta = prev_delta;
            }
        }
        if !batch.is_empty() {
            let inv = 1.0 / batch.len() as f64;
            for g in &mut grad {
                *g *= inv;
            }
            loss_sum /= batch.len() as f64;
        }
        (grad, loss_sum)
    }

    /// Applies a flat gradient through an optimizer (keys = 0..P).
    pub fn apply_dense_gradient(&mut self, opt: &mut dyn Optimizer, grad: &[f64]) {
        debug_assert_eq!(grad.len(), self.params.len());
        let keys: Vec<u64> = (0..grad.len() as u64).collect();
        opt.step(&mut self.params, &keys, grad);
    }

    /// Applies a sparse (possibly decompressed) gradient.
    pub fn apply_sparse_gradient(&mut self, opt: &mut dyn Optimizer, keys: &[u64], values: &[f64]) {
        opt.step(&mut self.params, keys, values);
    }

    /// Mean cross-entropy loss over `data`.
    pub fn mean_loss(&self, data: &[MlpInstance]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let sum: f64 = data
            .iter()
            .map(|inst| -(self.predict(&inst.pixels)[inst.label].max(1e-12)).ln())
            .sum();
        sum / data.len() as f64
    }

    /// Multiclass accuracy over `data`.
    pub fn accuracy(&self, data: &[MlpInstance]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .iter()
            .filter(|inst| {
                let p = self.predict(&inst.pixels);
                let argmax = p
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .expect("non-empty probabilities");
                argmax == inst.label
            })
            .count();
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{Adam, AdamConfig};
    use rand::prelude::*;
    use rand::rngs::StdRng;

    /// Two-class toy images: class determined by which half is brighter.
    fn toy_images(n: usize, pixels: usize, seed: u64) -> Vec<MlpInstance> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let label = rng.gen_range(0..2usize);
                let mut px = vec![0.0; pixels];
                for (i, p) in px.iter_mut().enumerate() {
                    let base = if (i < pixels / 2) == (label == 0) {
                        0.8
                    } else {
                        0.2
                    };
                    *p = (base + rng.gen_range(-0.1..0.1f64)).clamp(0.0, 1.0);
                }
                MlpInstance { pixels: px, label }
            })
            .collect()
    }

    #[test]
    fn construction_and_shapes() {
        let mlp = Mlp::new(&MlpConfig::small(16, 8, 3)).unwrap();
        assert_eq!(mlp.input_size(), 16);
        assert_eq!(mlp.classes(), 3);
        assert_eq!(mlp.num_params(), 16 * 8 + 8 + 8 * 3 + 3);
        assert!(Mlp::new(&MlpConfig {
            layer_sizes: vec![4],
            seed: 0
        })
        .is_err());
        assert!(Mlp::new(&MlpConfig {
            layer_sizes: vec![4, 0, 2],
            seed: 0
        })
        .is_err());
    }

    #[test]
    fn softmax_outputs_are_probabilities() {
        let mlp = Mlp::new(&MlpConfig::small(8, 4, 5)).unwrap();
        let p = mlp.predict(&[0.1; 8]);
        assert_eq!(p.len(), 5);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn gradient_matches_numeric() {
        let mlp = Mlp::new(&MlpConfig::small(4, 3, 2)).unwrap();
        let batch = vec![
            MlpInstance {
                pixels: vec![0.5, -0.2, 0.8, 0.1],
                label: 0,
            },
            MlpInstance {
                pixels: vec![-0.3, 0.9, 0.0, 0.4],
                label: 1,
            },
        ];
        let (grad, _) = mlp.batch_gradient(&batch);
        let h = 1e-6;
        // Spot-check a spread of parameters.
        for k in (0..mlp.num_params()).step_by(3) {
            let mut up = mlp.clone();
            up.params[k] += h;
            let mut dn = mlp.clone();
            dn.params[k] -= h;
            let numeric = (up.mean_loss(&batch) - dn.mean_loss(&batch)) / (2.0 * h);
            assert!(
                (numeric - grad[k]).abs() < 1e-4,
                "param {k}: numeric {numeric} vs analytic {}",
                grad[k]
            );
        }
    }

    #[test]
    fn training_learns_toy_task() {
        let data = toy_images(200, 16, 5);
        let mut mlp = Mlp::new(&MlpConfig::small(16, 8, 2)).unwrap();
        let mut opt = Adam::new(mlp.num_params(), AdamConfig::with_lr(0.02)).unwrap();
        let initial = mlp.mean_loss(&data);
        for _ in 0..60 {
            let (g, _) = mlp.batch_gradient(&data);
            mlp.apply_dense_gradient(&mut opt, &g);
        }
        let final_loss = mlp.mean_loss(&data);
        assert!(final_loss < initial * 0.5, "{initial} -> {final_loss}");
        assert!(
            mlp.accuracy(&data) > 0.9,
            "accuracy {}",
            mlp.accuracy(&data)
        );
    }

    #[test]
    fn sparse_gradient_application_matches_dense() {
        let data = toy_images(20, 8, 6);
        let build = || {
            let m = Mlp::new(&MlpConfig::small(8, 4, 2)).unwrap();
            let o = Adam::new(m.num_params(), AdamConfig::default()).unwrap();
            let (g, _) = m.batch_gradient(&data);
            (m, o, g)
        };
        let (mut dense_m, mut dense_o, g) = build();
        dense_m.apply_dense_gradient(&mut dense_o, &g);
        let (mut sparse_m, mut sparse_o, g2) = build();
        let keys: Vec<u64> = (0..g2.len() as u64).collect();
        sparse_m.apply_sparse_gradient(&mut sparse_o, &keys, &g2);
        assert_eq!(dense_m.params, sparse_m.params);
    }

    #[test]
    fn deterministic_initialization() {
        let a = Mlp::new(&MlpConfig::small(8, 4, 2)).unwrap();
        let b = Mlp::new(&MlpConfig::small(8, 4, 2)).unwrap();
        assert_eq!(a.params, b.params);
        let c = Mlp::new(&MlpConfig {
            layer_sizes: vec![8, 4, 2],
            seed: 99,
        })
        .unwrap();
        assert_ne!(a.params, c.params);
    }

    #[test]
    fn paper_network_shape() {
        let mlp = Mlp::new(&MlpConfig::paper_network()).unwrap();
        assert_eq!(mlp.input_size(), 400);
        assert_eq!(mlp.classes(), 10);
        assert_eq!(
            mlp.num_params(),
            400 * 600 + 600 + 600 * 600 + 600 + 600 * 10 + 10
        );
    }
}
