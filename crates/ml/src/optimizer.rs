//! First-order optimizers (paper §2.2, §4.1).
//!
//! SGD applies `θ ← θ - η·g`. Adam (Kingma & Ba, the paper's choice for all
//! baselines — "Note that the Adam strategy is applied to all the baselines
//! for the purpose of fairness") keeps exponential moving averages of the
//! gradient and its square:
//!
//! ```text
//! m_t = β₁ m_{t-1} + (1-β₁) g_t
//! v_t = β₂ v_{t-1} + (1-β₂) g_t²
//! θ_{t+1} = θ_t - η/(√v̂_t + ε) · m̂_t
//! ```
//!
//! Adam's per-dimension adaptive step is also §3.3's "Solution 2" for the
//! vanishing-gradient effect of MinMaxSketch decay: dimensions whose decoded
//! gradients shrink accumulate a smaller `v`, which *raises* their effective
//! learning rate.
//!
//! Moments are updated **lazily** — only on dimensions the sparse gradient
//! touches — the standard sparse-Adam treatment for high-dimensional models.

use crate::error::MlError;
use serde::{Deserialize, Serialize};

/// A first-order optimizer consuming sparse gradients.
pub trait Optimizer: Send {
    /// Applies one update step from a sparse gradient.
    fn step(&mut self, weights: &mut [f64], keys: &[u64], values: &[f64]);

    /// Learning rate currently in effect.
    fn learning_rate(&self) -> f64;
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate η.
    pub lr: f64,
}

impl Sgd {
    /// Creates SGD with learning rate `lr`.
    ///
    /// # Errors
    /// [`MlError::InvalidConfig`] unless `lr > 0`.
    pub fn new(lr: f64) -> Result<Self, MlError> {
        if lr <= 0.0 || !lr.is_finite() {
            return Err(MlError::InvalidConfig(format!(
                "lr must be positive, got {lr}"
            )));
        }
        Ok(Sgd { lr })
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, weights: &mut [f64], keys: &[u64], values: &[f64]) {
        for (&k, &g) in keys.iter().zip(values) {
            if let Some(w) = weights.get_mut(k as usize) {
                *w -= self.lr * g;
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }
}

/// Adam hyper-parameters (§4.1 defaults: β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate η.
    pub lr: f64,
    /// First-moment decay β₁.
    pub beta1: f64,
    /// Second-moment decay β₂.
    pub beta2: f64,
    /// Numerical-stability term ε.
    pub epsilon: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 0.01,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
        }
    }
}

impl AdamConfig {
    /// Default parameters at a specific learning rate.
    pub fn with_lr(lr: f64) -> Self {
        AdamConfig {
            lr,
            ..AdamConfig::default()
        }
    }
}

/// Adam with lazily-updated sparse moments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    config: AdamConfig,
    /// First moment `m`, allocated over the full model dimension.
    m: Vec<f64>,
    /// Second moment `v`.
    v: Vec<f64>,
    /// Global step counter `t` for bias correction.
    t: u64,
}

impl Adam {
    /// Creates an Adam optimizer for a `dim`-dimensional model.
    ///
    /// # Errors
    /// [`MlError::InvalidConfig`] on out-of-range hyper-parameters.
    pub fn new(dim: usize, config: AdamConfig) -> Result<Self, MlError> {
        if config.lr <= 0.0 || !config.lr.is_finite() {
            return Err(MlError::InvalidConfig("lr must be positive".into()));
        }
        if !(0.0..1.0).contains(&config.beta1) || !(0.0..1.0).contains(&config.beta2) {
            return Err(MlError::InvalidConfig("betas must be in [0, 1)".into()));
        }
        if config.epsilon <= 0.0 || !config.epsilon.is_finite() {
            return Err(MlError::InvalidConfig("epsilon must be positive".into()));
        }
        Ok(Adam {
            config,
            m: vec![0.0; dim],
            v: vec![0.0; dim],
            t: 0,
        })
    }

    /// Step counter (number of `step` calls so far).
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Hyper-parameters in effect.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// Bytes held in moment vectors.
    pub fn state_bytes(&self) -> usize {
        8 * (self.m.len() + self.v.len())
    }
}

impl Optimizer for Adam {
    fn step(&mut self, weights: &mut [f64], keys: &[u64], values: &[f64]) {
        self.t += 1;
        let AdamConfig {
            lr,
            beta1,
            beta2,
            epsilon,
        } = self.config;
        // powf, not powi: casting t to i32 wraps past i32::MAX, flipping the
        // exponent sign and with it the bias correction.
        let bc1 = 1.0 - beta1.powf(self.t as f64);
        let bc2 = 1.0 - beta2.powf(self.t as f64);
        for (&k, &g) in keys.iter().zip(values) {
            let k = k as usize;
            if k >= weights.len() {
                continue;
            }
            let m = &mut self.m[k];
            *m = beta1 * *m + (1.0 - beta1) * g;
            let v = &mut self.v[k];
            *v = beta2 * *v + (1.0 - beta2) * g * g;
            let m_hat = *m / bc1;
            let v_hat = *v / bc2;
            weights[k] -= lr * m_hat / (v_hat.sqrt() + epsilon);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.config.lr
    }
}

/// SGD with Polyak momentum (paper §4.1 cites momentum, refs 36/37, as one of
/// the two ingredients Adam combines): `u ← γ·u + g; θ ← θ − η·u`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Momentum {
    /// Learning rate η.
    pub lr: f64,
    /// Momentum coefficient γ (typically 0.9).
    pub gamma: f64,
    velocity: Vec<f64>,
}

impl Momentum {
    /// Creates a momentum optimizer for a `dim`-dimensional model.
    ///
    /// # Errors
    /// [`MlError::InvalidConfig`] on out-of-range hyper-parameters.
    pub fn new(dim: usize, lr: f64, gamma: f64) -> Result<Self, MlError> {
        if lr <= 0.0 || !lr.is_finite() {
            return Err(MlError::InvalidConfig("lr must be positive".into()));
        }
        if !(0.0..1.0).contains(&gamma) {
            return Err(MlError::InvalidConfig("gamma must be in [0, 1)".into()));
        }
        Ok(Momentum {
            lr,
            gamma,
            velocity: vec![0.0; dim],
        })
    }

    /// Bytes held in the velocity vector.
    pub fn state_bytes(&self) -> usize {
        8 * self.velocity.len()
    }
}

impl Optimizer for Momentum {
    fn step(&mut self, weights: &mut [f64], keys: &[u64], values: &[f64]) {
        for (&k, &g) in keys.iter().zip(values) {
            let k = k as usize;
            if k >= weights.len() {
                continue;
            }
            let u = &mut self.velocity[k];
            *u = self.gamma * *u + g;
            weights[k] -= self.lr * *u;
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }
}

/// AdaGrad (Duchi et al., the paper's reference 15 — the other Adam ingredient):
/// `G ← G + g²; θ ← θ − η/(√G + ε)·g`. Per-dimension adaptive steps, no
/// moment decay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaGrad {
    /// Learning rate η.
    pub lr: f64,
    /// Stability term ε.
    pub epsilon: f64,
    accum: Vec<f64>,
}

impl AdaGrad {
    /// Default stability term when none is configured.
    pub const DEFAULT_EPSILON: f64 = 1e-8;

    /// Creates an AdaGrad optimizer for a `dim`-dimensional model with the
    /// default ε.
    ///
    /// # Errors
    /// [`MlError::InvalidConfig`] on out-of-range hyper-parameters.
    pub fn new(dim: usize, lr: f64) -> Result<Self, MlError> {
        Self::with_epsilon(dim, lr, Self::DEFAULT_EPSILON)
    }

    /// Creates an AdaGrad optimizer with an explicit stability term.
    ///
    /// # Errors
    /// [`MlError::InvalidConfig`] unless `lr > 0` and `epsilon > 0` (both
    /// finite) — the same validation [`AdamConfig`] gets.
    pub fn with_epsilon(dim: usize, lr: f64, epsilon: f64) -> Result<Self, MlError> {
        if lr <= 0.0 || !lr.is_finite() {
            return Err(MlError::InvalidConfig("lr must be positive".into()));
        }
        if epsilon <= 0.0 || !epsilon.is_finite() {
            return Err(MlError::InvalidConfig("epsilon must be positive".into()));
        }
        Ok(AdaGrad {
            lr,
            epsilon,
            accum: vec![0.0; dim],
        })
    }

    /// Bytes held in the accumulator vector.
    pub fn state_bytes(&self) -> usize {
        8 * self.accum.len()
    }
}

impl Optimizer for AdaGrad {
    fn step(&mut self, weights: &mut [f64], keys: &[u64], values: &[f64]) {
        for (&k, &g) in keys.iter().zip(values) {
            let k = k as usize;
            if k >= weights.len() {
                continue;
            }
            let a = &mut self.accum[k];
            *a += g * g;
            weights[k] -= self.lr * g / (a.sqrt() + self.epsilon);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }
}

/// A serializable optimizer selector, used by the trainer configuration so
/// experiments can ablate the §3.3 "Adaptive Learning Rate" solution
/// (SketchML with plain SGD vs with Adam).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum OptimizerKind {
    /// Plain SGD at the given learning rate.
    Sgd(f64),
    /// Momentum SGD `(lr, gamma)`.
    Momentum(f64, f64),
    /// AdaGrad `(lr, epsilon)`.
    AdaGrad(f64, f64),
    /// Adam with full hyper-parameters (the paper's default).
    Adam(AdamConfig),
}

// Hand-written so pre-existing configs that serialized `AdaGrad` as a bare
// learning rate (`{"AdaGrad": 0.05}`) still parse — they get the historical
// default ε — while the current `(lr, epsilon)` form round-trips as a pair.
impl serde::Deserialize for OptimizerKind {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_obj()
            .ok_or_else(|| serde::Error::custom("OptimizerKind: expected an object"))?;
        let (variant, val) = obj
            .first()
            .ok_or_else(|| serde::Error::custom("OptimizerKind: empty object"))?;
        let pair = |val: &serde::Value, variant: &str| -> Result<(f64, f64), serde::Error> {
            let arr = val.as_arr().ok_or_else(|| {
                serde::Error::custom(format!("OptimizerKind::{variant}: expected a pair"))
            })?;
            if arr.len() != 2 {
                return Err(serde::Error::custom(format!(
                    "OptimizerKind::{variant}: expected 2 values, got {}",
                    arr.len()
                )));
            }
            Ok((
                serde::Deserialize::from_value(&arr[0])?,
                serde::Deserialize::from_value(&arr[1])?,
            ))
        };
        match variant.as_str() {
            "Sgd" => Ok(OptimizerKind::Sgd(serde::Deserialize::from_value(val)?)),
            "Momentum" => {
                let (lr, gamma) = pair(val, "Momentum")?;
                Ok(OptimizerKind::Momentum(lr, gamma))
            }
            "AdaGrad" => {
                if val.as_arr().is_some() {
                    let (lr, epsilon) = pair(val, "AdaGrad")?;
                    Ok(OptimizerKind::AdaGrad(lr, epsilon))
                } else {
                    // Legacy single-value form.
                    Ok(OptimizerKind::AdaGrad(
                        serde::Deserialize::from_value(val)?,
                        AdaGrad::DEFAULT_EPSILON,
                    ))
                }
            }
            "Adam" => Ok(OptimizerKind::Adam(serde::Deserialize::from_value(val)?)),
            other => Err(serde::Error::custom(format!(
                "OptimizerKind: unknown variant {other}"
            ))),
        }
    }
}

impl OptimizerKind {
    /// Instantiates the optimizer for a `dim`-dimensional model.
    ///
    /// # Errors
    /// Propagates the constructors' validation errors.
    pub fn build(self, dim: usize) -> Result<Box<dyn Optimizer>, MlError> {
        Ok(match self {
            OptimizerKind::Sgd(lr) => Box::new(Sgd::new(lr)?),
            OptimizerKind::Momentum(lr, gamma) => Box::new(Momentum::new(dim, lr, gamma)?),
            OptimizerKind::AdaGrad(lr, epsilon) => {
                Box::new(AdaGrad::with_epsilon(dim, lr, epsilon)?)
            }
            OptimizerKind::Adam(cfg) => Box::new(Adam::new(dim, cfg)?),
        })
    }

    /// Display name for experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            OptimizerKind::Sgd(_) => "SGD",
            OptimizerKind::Momentum(..) => "Momentum",
            OptimizerKind::AdaGrad(..) => "AdaGrad",
            OptimizerKind::Adam(_) => "Adam",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_step_math() {
        let mut sgd = Sgd::new(0.1).unwrap();
        let mut w = vec![1.0, 2.0, 3.0];
        sgd.step(&mut w, &[0, 2], &[10.0, -10.0]);
        assert_eq!(w, vec![0.0, 2.0, 4.0]);
        // Out-of-range keys are ignored.
        sgd.step(&mut w, &[99], &[1.0]);
        assert_eq!(w, vec![0.0, 2.0, 4.0]);
    }

    #[test]
    fn sgd_rejects_bad_lr() {
        assert!(Sgd::new(0.0).is_err());
        assert!(Sgd::new(-1.0).is_err());
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the very first Adam step is ≈ lr·sign(g).
        let mut adam = Adam::new(1, AdamConfig::with_lr(0.1)).unwrap();
        let mut w = vec![0.0];
        adam.step(&mut w, &[0], &[0.5]);
        assert!(
            (w[0] + 0.1).abs() < 1e-6,
            "first step should be ≈ -lr, got {}",
            w[0]
        );
    }

    #[test]
    fn adam_matches_reference_two_steps() {
        // Hand-computed reference for g = [1.0, 1.0] on one dimension.
        let cfg = AdamConfig {
            lr: 0.1,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
        };
        let mut adam = Adam::new(1, cfg).unwrap();
        let mut w = vec![0.0];
        adam.step(&mut w, &[0], &[1.0]);
        // t=1: m=0.1/bc1(0.1)=1, v=0.001/bc2(0.001)=1 → step = lr.
        let after1 = w[0];
        assert!((after1 + 0.1).abs() < 1e-6);
        adam.step(&mut w, &[0], &[1.0]);
        // t=2: m=0.19/0.19=1, v=0.0019.../0.001999=~1 → another ~lr step.
        assert!((w[0] + 0.2).abs() < 1e-4, "w after two steps: {}", w[0]);
    }

    #[test]
    fn adam_adapts_per_dimension() {
        // A dimension with persistently large gradients gets smaller
        // effective steps than one with small gradients (relative to
        // magnitude) — the §3.3 "convergence imbalance" fix.
        let mut adam = Adam::new(2, AdamConfig::with_lr(0.01)).unwrap();
        let mut w = vec![0.0, 0.0];
        for _ in 0..100 {
            adam.step(&mut w, &[0, 1], &[10.0, 0.1]);
        }
        // Both dims move ~lr per step despite 100x gradient difference.
        let ratio = w[0] / w[1];
        assert!(
            (0.5..2.0).contains(&ratio),
            "Adam should normalize step sizes, ratio {ratio}"
        );
    }

    #[test]
    fn adam_lazy_sparse_updates() {
        let mut adam = Adam::new(4, AdamConfig::default()).unwrap();
        let mut w = vec![1.0; 4];
        adam.step(&mut w, &[1], &[1.0]);
        assert_eq!(w[0], 1.0);
        assert_ne!(w[1], 1.0);
        assert_eq!(w[2], 1.0);
        assert_eq!(adam.steps(), 1);
    }

    #[test]
    fn adam_validates_config() {
        assert!(Adam::new(
            1,
            AdamConfig {
                lr: 0.0,
                ..AdamConfig::default()
            }
        )
        .is_err());
        assert!(Adam::new(
            1,
            AdamConfig {
                beta1: 1.0,
                ..AdamConfig::default()
            }
        )
        .is_err());
        assert!(Adam::new(
            1,
            AdamConfig {
                beta2: -0.1,
                ..AdamConfig::default()
            }
        )
        .is_err());
        assert!(Adam::new(
            1,
            AdamConfig {
                epsilon: 0.0,
                ..AdamConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimize f(w) = (w - 3)²; gradient 2(w - 3).
        let mut adam = Adam::new(1, AdamConfig::with_lr(0.1)).unwrap();
        let mut w = vec![0.0];
        for _ in 0..500 {
            let g = 2.0 * (w[0] - 3.0);
            adam.step(&mut w, &[0], &[g]);
        }
        assert!((w[0] - 3.0).abs() < 0.05, "w = {}", w[0]);
    }

    #[test]
    fn adam_with_decayed_gradients_still_converges() {
        // §3.3: MinMaxSketch decays gradients; Adam compensates. Feed Adam
        // gradients scaled down 10x — it still reaches the optimum.
        let mut adam = Adam::new(1, AdamConfig::with_lr(0.1)).unwrap();
        let mut w = vec![0.0];
        for _ in 0..800 {
            let g = 2.0 * (w[0] - 3.0) * 0.1; // decayed
            adam.step(&mut w, &[0], &[g]);
        }
        assert!((w[0] - 3.0).abs() < 0.05, "w = {}", w[0]);
    }

    #[test]
    fn momentum_accelerates_consistent_gradients() {
        let mut plain = Sgd::new(0.01).unwrap();
        let mut mom = Momentum::new(1, 0.01, 0.9).unwrap();
        let (mut wp, mut wm) = (vec![0.0], vec![0.0]);
        for _ in 0..50 {
            plain.step(&mut wp, &[0], &[1.0]);
            mom.step(&mut wm, &[0], &[1.0]);
        }
        assert!(
            wm[0] < wp[0],
            "momentum should move farther: {} vs {}",
            wm[0],
            wp[0]
        );
    }

    #[test]
    fn momentum_validates() {
        assert!(Momentum::new(1, 0.0, 0.9).is_err());
        assert!(Momentum::new(1, 0.1, 1.0).is_err());
        assert!(Momentum::new(1, 0.1, 0.9).is_ok());
    }

    #[test]
    fn adagrad_normalizes_per_dimension() {
        let mut opt = AdaGrad::new(2, 0.1).unwrap();
        let mut w = vec![0.0, 0.0];
        for _ in 0..200 {
            opt.step(&mut w, &[0, 1], &[100.0, 0.01]);
        }
        // AdaGrad steps shrink as 1/sqrt(t) regardless of gradient scale.
        let ratio = w[0] / w[1];
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
        assert!(AdaGrad::new(1, 0.0).is_err());
    }

    #[test]
    fn adagrad_validates_epsilon() {
        assert!(AdaGrad::with_epsilon(1, 0.1, 0.0).is_err());
        assert!(AdaGrad::with_epsilon(1, 0.1, -1e-8).is_err());
        assert!(AdaGrad::with_epsilon(1, 0.1, f64::NAN).is_err());
        assert!(AdaGrad::with_epsilon(1, 0.1, f64::INFINITY).is_err());
        let ada = AdaGrad::with_epsilon(1, 0.1, 1e-6).unwrap();
        assert_eq!(ada.epsilon, 1e-6);
        assert_eq!(
            AdaGrad::new(1, 0.1).unwrap().epsilon,
            AdaGrad::DEFAULT_EPSILON
        );
    }

    #[test]
    fn adam_bias_correction_survives_huge_step_counts() {
        // Regression: `beta.powi(t as i32)` wrapped once t exceeded i32::MAX,
        // flipping the exponent sign so `1 - β^t` went negative and the step
        // reversed direction. powf saturates gracefully (β^t → 0, bc → 1).
        let mut adam = Adam::new(1, AdamConfig::with_lr(0.1)).unwrap();
        adam.t = i32::MAX as u64 + 17;
        let mut w = vec![0.0];
        adam.step(&mut w, &[0], &[1.0]);
        assert!(w[0].is_finite(), "step must stay finite, got {}", w[0]);
        assert!(
            w[0] < 0.0,
            "a positive gradient must still decrease the weight, got {}",
            w[0]
        );
    }

    #[test]
    fn optimizer_kind_accepts_legacy_adagrad_json() {
        // Pre-epsilon configs serialized AdaGrad as a bare learning rate.
        let kind: OptimizerKind = serde_json::from_str(r#"{"AdaGrad":0.05}"#).unwrap();
        assert_eq!(kind, OptimizerKind::AdaGrad(0.05, AdaGrad::DEFAULT_EPSILON));
        // The current pair form round-trips.
        let kind = OptimizerKind::AdaGrad(0.1, 1e-6);
        let json = serde_json::to_string(&kind).unwrap();
        assert_eq!(serde_json::from_str::<OptimizerKind>(&json).unwrap(), kind);
        // Other variants round-trip through the hand-written impl too.
        for kind in [
            OptimizerKind::Sgd(0.02),
            OptimizerKind::Momentum(0.02, 0.9),
            OptimizerKind::Adam(AdamConfig::default()),
        ] {
            let json = serde_json::to_string(&kind).unwrap();
            assert_eq!(serde_json::from_str::<OptimizerKind>(&json).unwrap(), kind);
        }
        assert!(serde_json::from_str::<OptimizerKind>(r#"{"Nadam":0.1}"#).is_err());
    }

    #[test]
    fn adagrad_converges_on_quadratic() {
        let mut opt = AdaGrad::new(1, 0.5).unwrap();
        let mut w = vec![0.0];
        for _ in 0..2000 {
            let g = 2.0 * (w[0] - 3.0);
            opt.step(&mut w, &[0], &[g]);
        }
        assert!((w[0] - 3.0).abs() < 0.1, "w = {}", w[0]);
    }

    #[test]
    fn optimizer_kind_builds_and_names() {
        for kind in [
            OptimizerKind::Sgd(0.1),
            OptimizerKind::Momentum(0.1, 0.9),
            OptimizerKind::AdaGrad(0.1, 1e-8),
            OptimizerKind::Adam(AdamConfig::default()),
        ] {
            let mut opt = kind.build(4).unwrap();
            let mut w = vec![0.0; 4];
            opt.step(&mut w, &[1], &[1.0]);
            assert_ne!(w[1], 0.0, "{} did not update", kind.name());
        }
        assert!(OptimizerKind::Sgd(-1.0).build(4).is_err());
        assert_eq!(OptimizerKind::Adam(AdamConfig::default()).name(), "Adam");
    }
}
