//! Generalized linear model training (paper §2.2's data model, §4.1's three
//! statistical models).
//!
//! A mini-batch gradient is computed as
//!
//! ```text
//! g = (1/B) Σ_{i∈batch} (∂l/∂s)(θᵀx_i, y_i) · x_i  +  λ · θ|_touched
//! ```
//!
//! The ℓ2 term is applied only on dimensions the batch touches — the
//! standard sparse treatment; a dense regularization gradient would destroy
//! the sparsity that SketchML's key compression exploits.

use crate::error::MlError;
use crate::loss::GlmLoss;
use crate::optimizer::Optimizer;
use crate::vector::Instance;
use serde::{Deserialize, Serialize};

/// A mini-batch gradient in sparse key-value form, ready for compression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchGradient {
    /// Ascending model dimensions with nonzero gradient.
    pub keys: Vec<u64>,
    /// Gradient values aligned with `keys`.
    pub values: Vec<f64>,
    /// Sum of per-instance losses over the batch (excluding regularization).
    pub loss_sum: f64,
    /// Number of instances in the batch.
    pub instances: usize,
}

impl BatchGradient {
    /// Number of nonzero gradient entries `d`.
    pub fn nnz(&self) -> usize {
        self.keys.len()
    }

    /// Mean per-instance loss of the batch.
    pub fn mean_loss(&self) -> f64 {
        if self.instances == 0 {
            0.0
        } else {
            self.loss_sum / self.instances as f64
        }
    }
}

/// Reusable accumulation buffers so per-batch work does not reallocate the
/// full model dimension (the perf-book "workhorse collection" pattern).
#[derive(Debug, Default)]
pub struct GradScratch {
    dense: Vec<f64>,
    touched: Vec<u32>,
}

impl GradScratch {
    /// Creates scratch buffers for a `dim`-dimensional model.
    pub fn new(dim: usize) -> Self {
        GradScratch {
            dense: vec![0.0; dim],
            touched: Vec::new(),
        }
    }
}

/// An ℓ2-regularized generalized linear model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlmModel {
    /// Dense weight vector θ.
    pub weights: Vec<f64>,
    /// Loss family.
    pub loss: GlmLoss,
    /// Regularization coefficient λ (§4.1 sets 0.01).
    pub l2: f64,
}

impl GlmModel {
    /// Creates a zero-initialized model.
    ///
    /// # Errors
    /// [`MlError::InvalidConfig`] if `dim == 0` or `l2 < 0`.
    pub fn new(dim: usize, loss: GlmLoss, l2: f64) -> Result<Self, MlError> {
        if dim == 0 {
            return Err(MlError::InvalidConfig(
                "model dimension must be positive".into(),
            ));
        }
        if l2 < 0.0 {
            return Err(MlError::InvalidConfig("l2 must be non-negative".into()));
        }
        Ok(GlmModel {
            weights: vec![0.0; dim],
            loss,
            l2,
        })
    }

    /// Model dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// Raw score `θᵀx`.
    pub fn score(&self, instance: &Instance) -> f64 {
        instance.features.dot(&self.weights)
    }

    /// Computes the mini-batch gradient using caller-provided scratch.
    ///
    /// # Panics
    /// Debug-asserts that `scratch` was sized for this model.
    pub fn batch_gradient_with_scratch(
        &self,
        batch: &[Instance],
        scratch: &mut GradScratch,
    ) -> BatchGradient {
        debug_assert_eq!(scratch.dense.len(), self.weights.len());
        // Reset only previously-touched entries (lazy zeroing).
        for &t in &scratch.touched {
            scratch.dense[t as usize] = 0.0;
        }
        scratch.touched.clear();

        let mut loss_sum = 0.0;
        for inst in batch {
            let s = self.score(inst);
            loss_sum += self.loss.loss(s, inst.label);
            let d = self.loss.dloss(s, inst.label);
            if d == 0.0 {
                continue;
            }
            for (i, x) in inst.features.iter() {
                let cell = &mut scratch.dense[i as usize];
                if *cell == 0.0 {
                    scratch.touched.push(i);
                }
                *cell += d * x;
            }
        }

        scratch.touched.sort_unstable();
        scratch.touched.dedup();
        let inv_b = if batch.is_empty() {
            0.0
        } else {
            1.0 / batch.len() as f64
        };
        let mut keys = Vec::with_capacity(scratch.touched.len());
        let mut values = Vec::with_capacity(scratch.touched.len());
        for &t in &scratch.touched {
            let mut g = scratch.dense[t as usize] * inv_b;
            // Sparse ℓ2: only touched dimensions are regularized.
            g += self.l2 * self.weights[t as usize];
            if g != 0.0 && g.is_finite() {
                keys.push(t as u64);
                values.push(g);
            }
        }
        BatchGradient {
            keys,
            values,
            loss_sum,
            instances: batch.len(),
        }
    }

    /// Convenience wrapper allocating fresh scratch.
    pub fn batch_gradient(&self, batch: &[Instance]) -> BatchGradient {
        let mut scratch = GradScratch::new(self.dim());
        self.batch_gradient_with_scratch(batch, &mut scratch)
    }

    /// Applies a (possibly decompressed) gradient through an optimizer.
    pub fn apply_gradient(&mut self, opt: &mut dyn Optimizer, keys: &[u64], values: &[f64]) {
        opt.step(&mut self.weights, keys, values);
    }

    /// Mean per-instance loss over `data` (the paper's test-loss metric,
    /// regularization excluded).
    pub fn mean_loss(&self, data: &[Instance]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let sum: f64 = data
            .iter()
            .map(|inst| self.loss.loss(self.score(inst), inst.label))
            .sum();
        sum / data.len() as f64
    }

    /// Classification accuracy (±1 labels); `None` for regression losses.
    pub fn accuracy(&self, data: &[Instance]) -> Option<f64> {
        if !self.loss.is_classification() || data.is_empty() {
            return None;
        }
        let correct = data
            .iter()
            .filter(|inst| (self.score(inst) >= 0.0) == (inst.label >= 0.0))
            .count();
        Some(correct as f64 / data.len() as f64)
    }

    /// Full objective including the ℓ2 term: mean loss + λ/2·‖θ‖².
    pub fn objective(&self, data: &[Instance]) -> f64 {
        let reg: f64 = self.weights.iter().map(|w| w * w).sum::<f64>() * self.l2 / 2.0;
        self.mean_loss(data) + reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{Adam, AdamConfig};
    use crate::vector::SparseVector;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn instance(pairs: &[(u32, f64)], label: f64) -> Instance {
        Instance::new(SparseVector::from_pairs(pairs).unwrap(), label)
    }

    /// A linearly separable 2-D toy problem.
    fn toy_classification(n: usize, seed: u64) -> Vec<Instance> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x0 = rng.gen_range(-1.0..1.0);
                let x1 = rng.gen_range(-1.0..1.0);
                let label = if x0 + 0.5 * x1 > 0.0 { 1.0 } else { -1.0 };
                instance(&[(0, x0), (1, x1)], label)
            })
            .collect()
    }

    #[test]
    fn gradient_matches_numeric_for_all_losses() {
        let data = vec![
            instance(&[(0, 1.0), (2, -0.5)], 1.0),
            instance(&[(1, 2.0)], -1.0),
            instance(&[(0, 0.3), (1, 0.7), (2, 0.2)], 1.0),
        ];
        for loss in GlmLoss::all() {
            let mut model = GlmModel::new(3, loss, 0.01).unwrap();
            model.weights = vec![0.2, -0.3, 0.15];
            let grad = model.batch_gradient(&data);
            // Numeric gradient of the *sampled* objective.
            let h = 1e-6;
            for (&k, &g) in grad.keys.iter().zip(&grad.values) {
                let k = k as usize;
                let mut up = model.clone();
                up.weights[k] += h;
                let mut dn = model.clone();
                dn.weights[k] -= h;
                let f = |m: &GlmModel| {
                    m.mean_loss(&data) + m.l2 / 2.0 * m.weights.iter().map(|w| w * w).sum::<f64>()
                };
                let numeric = (f(&up) - f(&dn)) / (2.0 * h);
                assert!(
                    (numeric - g).abs() < 1e-4,
                    "{:?} dim {k}: numeric {numeric} vs analytic {g}",
                    loss
                );
            }
        }
    }

    #[test]
    fn gradient_is_sparse() {
        let data = vec![instance(&[(5, 1.0)], 1.0)];
        let model = GlmModel::new(100, GlmLoss::Logistic, 0.0).unwrap();
        let grad = model.batch_gradient(&data);
        assert_eq!(grad.keys, vec![5]);
        assert_eq!(grad.instances, 1);
    }

    #[test]
    fn scratch_reuse_is_consistent() {
        let data = toy_classification(50, 1);
        let model = GlmModel::new(2, GlmLoss::Logistic, 0.01).unwrap();
        let mut scratch = GradScratch::new(2);
        let a = model.batch_gradient_with_scratch(&data, &mut scratch);
        let b = model.batch_gradient_with_scratch(&data, &mut scratch);
        assert_eq!(a, b, "scratch reuse must not change results");
        assert_eq!(a, model.batch_gradient(&data));
    }

    #[test]
    fn training_reduces_loss_all_models() {
        for loss in GlmLoss::all() {
            let data = toy_classification(400, 2);
            let mut model = GlmModel::new(2, loss, 0.001).unwrap();
            let mut opt = Adam::new(2, AdamConfig::with_lr(0.05)).unwrap();
            let initial = model.mean_loss(&data);
            let mut scratch = GradScratch::new(2);
            for _ in 0..200 {
                let g = model.batch_gradient_with_scratch(&data, &mut scratch);
                model.apply_gradient(&mut opt, &g.keys, &g.values);
            }
            let final_loss = model.mean_loss(&data);
            assert!(
                final_loss < initial * 0.8,
                "{:?}: loss {initial} -> {final_loss}",
                loss
            );
        }
    }

    #[test]
    fn classifier_reaches_high_accuracy() {
        let data = toy_classification(500, 3);
        let mut model = GlmModel::new(2, GlmLoss::Logistic, 0.0).unwrap();
        let mut opt = Adam::new(2, AdamConfig::with_lr(0.05)).unwrap();
        for _ in 0..300 {
            let g = model.batch_gradient(&data);
            model.apply_gradient(&mut opt, &g.keys, &g.values);
        }
        let acc = model.accuracy(&data).unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
        // Regression has no accuracy.
        let reg = GlmModel::new(2, GlmLoss::Squared, 0.0).unwrap();
        assert!(reg.accuracy(&data).is_none());
    }

    #[test]
    fn empty_batch_yields_empty_gradient() {
        let model = GlmModel::new(4, GlmLoss::Logistic, 0.01).unwrap();
        let g = model.batch_gradient(&[]);
        assert_eq!(g.nnz(), 0);
        assert_eq!(g.mean_loss(), 0.0);
    }

    #[test]
    fn constructor_validates() {
        assert!(GlmModel::new(0, GlmLoss::Logistic, 0.0).is_err());
        assert!(GlmModel::new(4, GlmLoss::Logistic, -0.1).is_err());
    }
}
