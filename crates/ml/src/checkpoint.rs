//! Model + optimizer checkpointing.
//!
//! Long Adam-SGD runs (the paper's Table 2 jobs take up to 23 hours) need
//! restartable state: the weight vector alone is not enough because Adam's
//! moments and step counter shape every subsequent update. A checkpoint
//! captures both and round-trips through JSON.

use crate::error::MlError;
use crate::model::GlmModel;
use crate::optimizer::Adam;
use serde::{Deserialize, Serialize};
use std::io::{BufReader, BufWriter, Read, Write};

/// A restartable training state: model + Adam state + epoch cursor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version for forward compatibility.
    pub version: u32,
    /// The GLM being trained.
    pub model: GlmModel,
    /// The Adam optimizer with its moments and step counter.
    pub optimizer: Adam,
    /// Epochs completed so far.
    pub epochs_done: usize,
}

impl Checkpoint {
    /// Current format version.
    pub const VERSION: u32 = 1;

    /// Bundles the pieces into a checkpoint.
    pub fn new(model: GlmModel, optimizer: Adam, epochs_done: usize) -> Self {
        Checkpoint {
            version: Self::VERSION,
            model,
            optimizer,
            epochs_done,
        }
    }

    /// Serializes to a writer as JSON.
    ///
    /// # Errors
    /// [`MlError::InvalidInput`] wrapping serialization/IO failures.
    pub fn save(&self, writer: impl Write) -> Result<(), MlError> {
        let mut w = BufWriter::new(writer);
        serde_json::to_writer(&mut w, self)
            .map_err(|e| MlError::InvalidInput(format!("checkpoint serialize: {e}")))?;
        w.flush()
            .map_err(|e| MlError::InvalidInput(format!("checkpoint flush: {e}")))
    }

    /// Serializes to an in-memory buffer — the artifact an elastic joiner
    /// pulls over the (simulated) wire before entering the group.
    ///
    /// # Errors
    /// As [`Self::save`].
    pub fn to_bytes(&self) -> Result<Vec<u8>, MlError> {
        let mut buf = Vec::new();
        self.save(&mut buf)?;
        Ok(buf)
    }

    /// Deserializes and validates an in-memory buffer.
    ///
    /// # Errors
    /// As [`Self::load`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, MlError> {
        Self::load(bytes)
    }

    /// Deserializes from a reader.
    ///
    /// # Errors
    /// [`MlError::InvalidInput`] on malformed JSON or a future version.
    pub fn load(reader: impl Read) -> Result<Self, MlError> {
        let ck: Checkpoint = serde_json::from_reader(BufReader::new(reader))
            .map_err(|e| MlError::InvalidInput(format!("checkpoint parse: {e}")))?;
        if ck.version > Self::VERSION {
            return Err(MlError::InvalidInput(format!(
                "checkpoint version {} is newer than supported {}",
                ck.version,
                Self::VERSION
            )));
        }
        if ck.model.weights.is_empty() {
            return Err(MlError::InvalidInput(
                "checkpoint has an empty model".into(),
            ));
        }
        Ok(ck)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::GlmLoss;
    use crate::optimizer::AdamConfig;
    use crate::vector::{Instance, SparseVector};

    fn toy() -> Vec<Instance> {
        (0..100)
            .map(|i| {
                let x = (i as f64 / 50.0) - 1.0;
                Instance::new(
                    SparseVector::new(vec![0], vec![x]).unwrap(),
                    if x > 0.1 { 1.0 } else { -1.0 },
                )
            })
            .collect()
    }

    #[test]
    fn resume_is_bitwise_identical_to_uninterrupted_run() {
        let data = toy();
        let total = 40;
        let split = 17;

        // Uninterrupted run.
        let mut m1 = GlmModel::new(1, GlmLoss::Logistic, 0.01).unwrap();
        let mut o1 = Adam::new(1, AdamConfig::with_lr(0.05)).unwrap();
        for _ in 0..total {
            let g = m1.batch_gradient(&data);
            m1.apply_gradient(&mut o1, &g.keys, &g.values);
        }

        // Interrupted at `split`, checkpointed, resumed.
        let mut m2 = GlmModel::new(1, GlmLoss::Logistic, 0.01).unwrap();
        let mut o2 = Adam::new(1, AdamConfig::with_lr(0.05)).unwrap();
        for _ in 0..split {
            let g = m2.batch_gradient(&data);
            m2.apply_gradient(&mut o2, &g.keys, &g.values);
        }
        let buf = Checkpoint::new(m2, o2, split).to_bytes().unwrap();
        let ck = Checkpoint::from_bytes(&buf).unwrap();
        assert_eq!(ck.epochs_done, split);
        let (mut m2, mut o2) = (ck.model, ck.optimizer);
        for _ in split..total {
            let g = m2.batch_gradient(&data);
            m2.apply_gradient(&mut o2, &g.keys, &g.values);
        }

        assert_eq!(m1.weights, m2.weights, "resume must be exact");
        assert_eq!(o1.steps(), o2.steps());
    }

    #[test]
    fn rejects_future_versions_and_garbage() {
        let model = GlmModel::new(2, GlmLoss::Squared, 0.0).unwrap();
        let opt = Adam::new(2, AdamConfig::default()).unwrap();
        let mut ck = Checkpoint::new(model, opt, 0);
        ck.version = 999;
        let mut buf = Vec::new();
        ck.save(&mut buf).unwrap();
        assert!(Checkpoint::load(buf.as_slice()).is_err());
        assert!(Checkpoint::load(&b"not json"[..]).is_err());
        assert!(Checkpoint::load(&b"{}"[..]).is_err());
    }
}
