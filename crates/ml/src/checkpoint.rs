//! Model + optimizer checkpointing.
//!
//! Long SGD runs (the paper's Table 2 jobs take up to 23 hours) need
//! restartable state: the weight vector alone is not enough because the
//! optimizer's moments and step counter shape every subsequent update. A
//! checkpoint captures both and round-trips through JSON.
//!
//! ## Format versions
//!
//! - **v1** stored the optimizer as a bare [`Adam`] object — only Adam runs
//!   could checkpoint, and Momentum/AdaGrad/SGD runs silently produced no
//!   checkpoint at all.
//! - **v2** (current) stores a tagged [`OptimizerState`] enum, covering every
//!   dense optimizer *and* the sketched variants of [`crate::opt_state`].
//!   v1 files still load: their `optimizer` field is parsed as Adam and
//!   wrapped in [`OptimizerState::Adam`].

use crate::error::MlError;
use crate::model::GlmModel;
use crate::opt_state::OptimizerState;
use serde::Serialize;
use std::io::{BufReader, BufWriter, Read, Write};

/// A restartable training state: model + optimizer state + epoch cursor.
#[derive(Debug, Clone, Serialize)]
pub struct Checkpoint {
    /// Format version for forward compatibility.
    pub version: u32,
    /// The GLM being trained.
    pub model: GlmModel,
    /// The optimizer with its auxiliary state and any step counter.
    pub optimizer: OptimizerState,
    /// Epochs completed so far.
    pub epochs_done: usize,
}

// Hand-written to keep v1 files loadable: v1 encoded `optimizer` as a plain
// Adam object (`{"config":…,"m":…,"v":…,"t":…}`), v2 as a tagged
// `OptimizerState` (`{"Adam":{…}}`, `{"SketchedAdaGrad":{…}}`, …).
impl serde::Deserialize for Checkpoint {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_obj()
            .ok_or_else(|| serde::Error::custom("Checkpoint: expected an object"))?;
        let version: u32 = serde::Deserialize::from_value(serde::field(obj, "version")?)?;
        let opt_val = serde::field(obj, "optimizer")?;
        let optimizer = if version <= 1 {
            OptimizerState::Adam(serde::Deserialize::from_value(opt_val)?)
        } else {
            serde::Deserialize::from_value(opt_val)?
        };
        Ok(Checkpoint {
            version,
            model: serde::Deserialize::from_value(serde::field(obj, "model")?)?,
            optimizer,
            epochs_done: serde::Deserialize::from_value(serde::field(obj, "epochs_done")?)?,
        })
    }
}

impl Checkpoint {
    /// Current format version.
    pub const VERSION: u32 = 2;

    /// Bundles the pieces into a checkpoint. Accepts any concrete optimizer
    /// via the `From` conversions on [`OptimizerState`].
    pub fn new(model: GlmModel, optimizer: impl Into<OptimizerState>, epochs_done: usize) -> Self {
        Checkpoint {
            version: Self::VERSION,
            model,
            optimizer: optimizer.into(),
            epochs_done,
        }
    }

    /// Serializes to a writer as JSON.
    ///
    /// # Errors
    /// [`MlError::InvalidInput`] wrapping serialization/IO failures.
    pub fn save(&self, writer: impl Write) -> Result<(), MlError> {
        let mut w = BufWriter::new(writer);
        serde_json::to_writer(&mut w, self)
            .map_err(|e| MlError::InvalidInput(format!("checkpoint serialize: {e}")))?;
        w.flush()
            .map_err(|e| MlError::InvalidInput(format!("checkpoint flush: {e}")))
    }

    /// Serializes to an in-memory buffer — the artifact an elastic joiner
    /// pulls over the (simulated) wire before entering the group.
    ///
    /// # Errors
    /// As [`Self::save`].
    pub fn to_bytes(&self) -> Result<Vec<u8>, MlError> {
        let mut buf = Vec::new();
        self.save(&mut buf)?;
        Ok(buf)
    }

    /// Deserializes and validates an in-memory buffer.
    ///
    /// # Errors
    /// As [`Self::load`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, MlError> {
        Self::load(bytes)
    }

    /// Deserializes from a reader. Accepts the current version and every
    /// older one (v1 Adam-only checkpoints are upgraded in place).
    ///
    /// # Errors
    /// [`MlError::InvalidInput`] on malformed JSON or a future version.
    pub fn load(reader: impl Read) -> Result<Self, MlError> {
        let mut ck: Checkpoint = serde_json::from_reader(BufReader::new(reader))
            .map_err(|e| MlError::InvalidInput(format!("checkpoint parse: {e}")))?;
        if ck.version > Self::VERSION {
            return Err(MlError::InvalidInput(format!(
                "checkpoint version {} is newer than supported {}",
                ck.version,
                Self::VERSION
            )));
        }
        if ck.model.weights.is_empty() {
            return Err(MlError::InvalidInput(
                "checkpoint has an empty model".into(),
            ));
        }
        // The in-memory representation is always current; re-saving a loaded
        // v1 checkpoint writes a valid v2 file.
        ck.version = Self::VERSION;
        Ok(ck)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::GlmLoss;
    use crate::opt_state::{OptStateMode, SketchedAdam};
    use crate::optimizer::{Adam, AdamConfig, Optimizer, OptimizerKind};
    use crate::vector::{Instance, SparseVector};

    fn toy() -> Vec<Instance> {
        (0..100)
            .map(|i| {
                let x = (i as f64 / 50.0) - 1.0;
                Instance::new(
                    SparseVector::new(vec![0], vec![x]).unwrap(),
                    if x > 0.1 { 1.0 } else { -1.0 },
                )
            })
            .collect()
    }

    #[test]
    fn resume_is_bitwise_identical_to_uninterrupted_run() {
        let data = toy();
        let total = 40;
        let split = 17;

        // Uninterrupted run.
        let mut m1 = GlmModel::new(1, GlmLoss::Logistic, 0.01).unwrap();
        let mut o1 = Adam::new(1, AdamConfig::with_lr(0.05)).unwrap();
        for _ in 0..total {
            let g = m1.batch_gradient(&data);
            m1.apply_gradient(&mut o1, &g.keys, &g.values);
        }

        // Interrupted at `split`, checkpointed, resumed.
        let mut m2 = GlmModel::new(1, GlmLoss::Logistic, 0.01).unwrap();
        let mut o2 = Adam::new(1, AdamConfig::with_lr(0.05)).unwrap();
        for _ in 0..split {
            let g = m2.batch_gradient(&data);
            m2.apply_gradient(&mut o2, &g.keys, &g.values);
        }
        let buf = Checkpoint::new(m2, o2, split).to_bytes().unwrap();
        let ck = Checkpoint::from_bytes(&buf).unwrap();
        assert_eq!(ck.epochs_done, split);
        let (mut m2, mut o2) = (ck.model, ck.optimizer);
        for _ in split..total {
            let g = m2.batch_gradient(&data);
            m2.apply_gradient(&mut o2, &g.keys, &g.values);
        }

        assert_eq!(m1.weights, m2.weights, "resume must be exact");
        assert_eq!(o1.steps(), o2.as_adam().unwrap().steps());
    }

    #[test]
    fn every_kind_and_mode_roundtrips_bit_exact() {
        let data = toy();
        for kind in [
            OptimizerKind::Sgd(0.05),
            OptimizerKind::Momentum(0.05, 0.9),
            OptimizerKind::AdaGrad(0.1, 1e-8),
            OptimizerKind::Adam(AdamConfig::with_lr(0.05)),
        ] {
            for mode in [OptStateMode::Dense, OptStateMode::sketched(3, 512)] {
                let mut model = GlmModel::new(1, GlmLoss::Logistic, 0.01).unwrap();
                let mut opt = OptimizerState::build(kind, mode, 1).unwrap();
                for _ in 0..10 {
                    let g = model.batch_gradient(&data);
                    model.apply_gradient(&mut opt, &g.keys, &g.values);
                }
                let buf = Checkpoint::new(model.clone(), opt.clone(), 10)
                    .to_bytes()
                    .unwrap();
                let ck = Checkpoint::from_bytes(&buf).unwrap();
                let (mut ma, mut oa) = (model, opt);
                let (mut mb, mut ob) = (ck.model, ck.optimizer);
                for _ in 0..10 {
                    let g = ma.batch_gradient(&data);
                    ma.apply_gradient(&mut oa, &g.keys, &g.values);
                    let g = mb.batch_gradient(&data);
                    mb.apply_gradient(&mut ob, &g.keys, &g.values);
                }
                assert_eq!(
                    ma.weights,
                    mb.weights,
                    "{} {mode:?} resume must be exact",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn v1_adam_only_checkpoint_still_loads() {
        // A v1 file as written before the OptimizerState generalization:
        // `optimizer` is a bare Adam object, not a tagged enum.
        let v1 = r#"{
            "version": 1,
            "model": {"weights": [0.5, -0.25], "loss": "Logistic", "l2": 0.01},
            "optimizer": {
                "config": {"lr": 0.05, "beta1": 0.9, "beta2": 0.999, "epsilon": 1e-8},
                "m": [0.1, 0.2],
                "v": [0.01, 0.02],
                "t": 7
            },
            "epochs_done": 3
        }"#;
        let ck = Checkpoint::load(v1.as_bytes()).unwrap();
        assert_eq!(ck.version, Checkpoint::VERSION, "loaded state is upgraded");
        assert_eq!(ck.epochs_done, 3);
        assert_eq!(ck.model.weights, vec![0.5, -0.25]);
        let adam = ck.optimizer.as_adam().expect("v1 optimizer is Adam");
        assert_eq!(adam.steps(), 7);
        assert_eq!(adam.config().lr, 0.05);
        // Re-saving writes a valid v2 file.
        let bytes = ck.to_bytes().unwrap();
        let again = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(again.optimizer.as_adam().unwrap().steps(), 7);
    }

    #[test]
    fn sketched_state_roundtrips_through_checkpoint() {
        let model = GlmModel::new(8, GlmLoss::Squared, 0.0).unwrap();
        let mut sk = SketchedAdam::new(AdamConfig::with_lr(0.05), 3, 256).unwrap();
        let mut w = vec![0.0; 8];
        for i in 0..30u64 {
            sk.step(&mut w, &[i % 8], &[0.4]);
        }
        let buf = Checkpoint::new(model, sk.clone(), 5).to_bytes().unwrap();
        let ck = Checkpoint::from_bytes(&buf).unwrap();
        let mut restored = ck.optimizer;
        let mut sk = OptimizerState::SketchedAdam(sk);
        let (mut wa, mut wb) = (vec![0.2; 8], vec![0.2; 8]);
        for i in 0..20u64 {
            sk.step(&mut wa, &[i % 8], &[-0.3]);
            restored.step(&mut wb, &[i % 8], &[-0.3]);
        }
        assert_eq!(wa, wb, "sketched checkpoint must restore bit-exact state");
    }

    #[test]
    fn rejects_future_versions_and_garbage() {
        let model = GlmModel::new(2, GlmLoss::Squared, 0.0).unwrap();
        let opt = Adam::new(2, AdamConfig::default()).unwrap();
        let mut ck = Checkpoint::new(model, opt, 0);
        ck.version = 999;
        let mut buf = Vec::new();
        ck.save(&mut buf).unwrap();
        assert!(Checkpoint::load(buf.as_slice()).is_err());
        assert!(Checkpoint::load(&b"not json"[..]).is_err());
        assert!(Checkpoint::load(&b"{}"[..]).is_err());
    }
}
