//! Error type shared by the sketch implementations.

use std::fmt;

/// Errors produced when constructing or (de)serializing sketches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchError {
    /// A size/shape parameter was zero or otherwise out of its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// A query was issued against an empty sketch.
    Empty,
    /// A serialized byte buffer did not have the expected layout.
    Corrupt(String),
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            SketchError::Empty => write!(f, "operation requires a non-empty sketch"),
            SketchError::Corrupt(msg) => write!(f, "corrupt sketch buffer: {msg}"),
        }
    }
}

impl std::error::Error for SketchError {}

impl SketchError {
    /// Convenience constructor for [`SketchError::InvalidParameter`].
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        SketchError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = SketchError::invalid("rows", "must be positive");
        assert!(e.to_string().contains("rows"));
        assert!(e.to_string().contains("must be positive"));
        assert_eq!(
            SketchError::Empty.to_string(),
            "operation requires a non-empty sketch"
        );
        assert!(SketchError::Corrupt("truncated".into())
            .to_string()
            .contains("truncated"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SketchError>();
    }
}
