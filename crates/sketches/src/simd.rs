//! SIMD lane dispatch for the sketch hot paths.
//!
//! Every vectorized routine in this crate keeps an always-compiled scalar
//! reference implementation; the lanes are compiled only under the `simd`
//! cargo feature on x86_64 and selected at runtime when AVX2 is present.
//! Debug builds assert lane output equals the scalar reference bit-for-bit,
//! and the cross-crate proptests in `sketchml-core` additionally compare
//! whole payloads with lanes force-disabled via [`force_scalar`].

use std::sync::atomic::{AtomicBool, Ordering};

static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Forces the scalar reference implementations even when the `simd` feature
/// and AVX2 are both available. Test hook for scalar-vs-lane differential
/// tests; a no-op (scalar is the only path) without the feature.
pub fn force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::SeqCst);
}

/// True when vector lanes are compiled in, supported by this CPU, and not
/// forced off by [`force_scalar`].
#[inline]
pub fn lanes_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if FORCE_SCALAR.load(Ordering::Relaxed) {
            return false;
        }
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        let _ = FORCE_SCALAR.load(Ordering::Relaxed);
        false
    }
}

/// Like [`lanes_active`] but for the AVX-512F lanes (the in-register
/// compactor sort); same feature gate, CPU detection, and scalar-force hook.
#[inline]
pub fn lanes512_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if FORCE_SCALAR.load(Ordering::Relaxed) {
            return false;
        }
        std::arch::is_x86_feature_detected!("avx512f")
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}
