//! MinMaxSketch (paper §3.3) — the novel sketch SketchML introduces to
//! compress bucket indexes.
//!
//! Structure: `s` hash rows × `t` bins, like Count-Min, but the cells store
//! **bucket indexes**, not counters, and the collision rules differ:
//!
//! - **Insert (Min)**: for each row `i`, `H[i, h_i(k)] = min(H[i, h_i(k)], b)`.
//!   A collision can therefore only *lower* a cell, never raise it.
//! - **Query (Max)**: return `max_i H[i, h_i(k)]` — since every cell touched
//!   by key `k` holds a value `<= b(k)`, the maximum is the candidate closest
//!   to (and never above) the true index.
//!
//! The result is an **underestimate-only** error: decoded gradients are
//! decayed, never amplified, which keeps SGD on a correct (if slightly
//! slower) convergence trajectory — the property Appendix A.2 analyzes and
//! the `never_overestimates` test pins down.
//!
//! The module also provides [`GroupedMinMaxSketch`] (§3.3 "Solution 2"): the
//! `q` bucket indexes are partitioned into `r` contiguous groups, each with
//! its own MinMaxSketch, so a collision can only confuse indexes within the
//! same group and the maximum index error drops from `q` to `q/r`.
//!
//! Index normalization convention used across the workspace: *callers hand
//! this module indexes ordered by gradient magnitude* (index 0 = bucket
//! closest to zero). Insert-min therefore decays magnitude for positive and
//! negative gradients alike, which is exactly §3.3's "choose the bucket index
//! closest to the minimum bucket" rule after positive/negative separation.

use crate::error::SketchError;
use crate::hash::HashFamily;
use serde::{Deserialize, Serialize};

/// Sentinel marking a never-written cell. Stored cells must be `< EMPTY`.
pub const EMPTY_CELL: u16 = u16::MAX;

/// The min-insert / max-query sketch of §3.3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MinMaxSketch {
    hash: HashFamily,
    /// Row-major `rows × cols` cells; `EMPTY_CELL` means untouched.
    cells: Vec<u16>,
    inserted: u64,
}

impl MinMaxSketch {
    /// Creates a sketch with `rows` hash tables (`s`) of `cols` bins (`t`).
    ///
    /// # Errors
    /// Returns [`SketchError::InvalidParameter`] if either dimension is zero.
    pub fn new(rows: usize, cols: usize, seed: u64) -> Result<Self, SketchError> {
        if rows == 0 {
            return Err(SketchError::invalid("rows", "must be positive"));
        }
        if cols == 0 {
            return Err(SketchError::invalid("cols", "must be positive"));
        }
        Ok(MinMaxSketch {
            hash: HashFamily::new(rows, cols, seed),
            cells: vec![EMPTY_CELL; rows * cols],
            inserted: 0,
        })
    }

    /// Number of hash rows `s`.
    pub fn rows(&self) -> usize {
        self.hash.rows()
    }

    /// Number of bins per row `t`.
    pub fn cols(&self) -> usize {
        self.hash.cols()
    }

    /// Number of `insert` calls so far.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    #[inline]
    fn idx(&self, row: usize, col: usize) -> usize {
        row * self.hash.cols() + col
    }

    /// Inserts `(key, index)`: every touched cell keeps the **minimum** of
    /// its current value and `index` (§3.3 Insert Phase step 3).
    ///
    /// # Panics
    /// Debug-asserts `index != EMPTY_CELL` (reserved sentinel).
    pub fn insert(&mut self, key: u64, index: u16) {
        debug_assert!(
            index != EMPTY_CELL,
            "index {index} collides with the empty sentinel"
        );
        self.inserted += 1;
        for row in 0..self.hash.rows() {
            let i = self.idx(row, self.hash.bin(row, key));
            if self.cells[i] > index {
                self.cells[i] = index;
            }
        }
    }

    /// Queries the index for `key`: the **maximum** of the `s` candidate
    /// cells (§3.3 Query Phase step 2).
    ///
    /// Returns `None` if any candidate cell was never written — which proves
    /// `key` was never inserted (its own insert would have written all `s`
    /// cells). For any key that *was* inserted the result is `Some(b')` with
    /// `b' <= b(key)` (underestimate-only).
    pub fn query(&self, key: u64) -> Option<u16> {
        let mut best: u16 = 0;
        for row in 0..self.hash.rows() {
            let v = self.cells[self.idx(row, self.hash.bin(row, key))];
            if v == EMPTY_CELL {
                return None;
            }
            best = best.max(v);
        }
        Some(best)
    }

    /// Batch [`Self::insert`] over parallel `keys` / `indexes` slices, using
    /// per-row inner loops that hoist the seed and column loads.
    ///
    /// # Panics
    /// Panics if the slice lengths differ; debug-asserts every index is not
    /// the empty sentinel.
    pub fn insert_batch(&mut self, keys: &[u64], indexes: &[u16]) {
        assert_eq!(keys.len(), indexes.len(), "keys/indexes length mismatch");
        self.inserted += keys.len() as u64;
        insert_batch_raw(
            &mut self.cells,
            self.hash.seeds(),
            self.hash.cols(),
            keys,
            indexes,
        );
    }

    /// Batch [`Self::query`] into a reusable buffer (cleared first). Returns
    /// `false` — with `out` contents unspecified — if any probed cell was
    /// never written, i.e. some key was never inserted.
    pub fn query_batch(&self, keys: &[u64], out: &mut Vec<u16>) -> bool {
        query_batch_raw(&self.cells, self.hash.seeds(), self.hash.cols(), keys, out)
    }

    /// Raw cell table (row-major), for serialization by the wire format.
    pub fn cells(&self) -> &[u16] {
        &self.cells
    }

    /// Merges `other` into `self` by bin-wise **minimum** — the mergeable-
    /// sketch operation collective aggregation relies on.
    ///
    /// Because min is commutative, associative, and idempotent, and
    /// [`EMPTY_CELL`] (`u16::MAX`) is its identity, merging the sketches of
    /// two item sets yields cells *identical* to inserting both sets into a
    /// single sketch. The §3.3 underestimate-only guarantee is therefore
    /// preserved under merge: a query can only move toward zero, never above
    /// the smallest true index inserted for that key — decoded gradients
    /// decay, they never flip sign.
    ///
    /// # Errors
    /// Returns [`SketchError::InvalidParameter`] unless both sketches have
    /// identical shape *and* identical per-row hash seeds (bins are only
    /// comparable when the hash functions agree).
    pub fn merge(&mut self, other: &MinMaxSketch) -> Result<(), SketchError> {
        if self.rows() != other.rows() || self.cols() != other.cols() {
            return Err(SketchError::invalid(
                "shape",
                format!(
                    "cannot merge {}x{} into {}x{}",
                    other.rows(),
                    other.cols(),
                    self.rows(),
                    self.cols()
                ),
            ));
        }
        if self.hash.seeds() != other.hash.seeds() {
            return Err(SketchError::invalid(
                "seed",
                "cannot merge sketches with different hash seeds",
            ));
        }
        for (mine, theirs) in self.cells.iter_mut().zip(&other.cells) {
            if *theirs < *mine {
                *mine = *theirs;
            }
        }
        self.inserted += other.inserted;
        Ok(())
    }

    /// Rebuilds a sketch from its raw parts (deserialization path).
    ///
    /// # Errors
    /// Returns [`SketchError::Corrupt`] if `cells.len() != rows * cols`.
    pub fn from_cells(
        rows: usize,
        cols: usize,
        seed: u64,
        cells: Vec<u16>,
    ) -> Result<Self, SketchError> {
        if rows == 0 || cols == 0 {
            return Err(SketchError::invalid("rows/cols", "must be positive"));
        }
        if cells.len() != rows * cols {
            return Err(SketchError::Corrupt(format!(
                "cell buffer holds {} entries, expected {rows}x{cols}",
                cells.len()
            )));
        }
        Ok(MinMaxSketch {
            hash: HashFamily::new(rows, cols, seed),
            cells,
            inserted: 0,
        })
    }
}

/// Min-inserts `(keys[i], indexes[i])` pairs into a raw row-major
/// `row_seeds.len() × cols` cell table — the allocation-free backing of
/// [`MinMaxSketch::insert_batch`] for callers that pool their cell storage.
/// Per-row outer loops keep the seed and row base in registers; because
/// min-insert is order-independent, the result is identical to per-key
/// inserts.
///
/// # Panics
/// Panics if `cells.len() != row_seeds.len() * cols` or the pair slices
/// differ in length.
pub fn insert_batch_raw(
    cells: &mut [u16],
    row_seeds: &[u64],
    cols: usize,
    keys: &[u64],
    indexes: &[u16],
) {
    assert_eq!(cells.len(), row_seeds.len() * cols, "cell table shape");
    assert_eq!(keys.len(), indexes.len(), "keys/indexes length mismatch");
    if u32::try_from(cols).is_err() {
        // Shapes beyond the batched-hash contract: plain per-key loops.
        for (row, &seed) in row_seeds.iter().enumerate() {
            let row_cells = &mut cells[row * cols..(row + 1) * cols];
            for (&key, &index) in keys.iter().zip(indexes) {
                let cell = &mut row_cells[HashFamily::bin_for(seed, cols, key)];
                *cell = (*cell).min(index);
            }
        }
        return;
    }
    // Hash a stack-sized chunk of keys per row in one `fill_bins` batch (the
    // vectorized unit), then scatter the min-updates. Min-insert is
    // order-independent, so regrouping by chunk leaves the table identical
    // to per-key row-major inserts.
    let mut bins = [0u32; BIN_CHUNK];
    let mut at = 0;
    while at < keys.len() {
        let end = (at + BIN_CHUNK).min(keys.len());
        let key_chunk = &keys[at..end];
        let idx_chunk = &indexes[at..end];
        for (row, &seed) in row_seeds.iter().enumerate() {
            let row_cells = &mut cells[row * cols..(row + 1) * cols];
            let bins = &mut bins[..key_chunk.len()];
            crate::hash::fill_bins(seed, cols, key_chunk, bins);
            for (&bin, &index) in bins.iter().zip(idx_chunk) {
                debug_assert!(
                    index != EMPTY_CELL,
                    "index {index} collides with the empty sentinel"
                );
                // Unconditional min + store: the branchy form mispredicts on
                // ~half the collisions.
                let cell = &mut row_cells[bin as usize];
                *cell = (*cell).min(index);
            }
        }
        at = end;
    }
}

/// Keys hashed per [`crate::hash::fill_bins`] batch in the chunked
/// insert/query paths; sized to keep the bins buffer on the stack.
const BIN_CHUNK: usize = 256;

/// Max-queries every key against a raw cell table (see [`insert_batch_raw`]),
/// writing one index per key into `out` (cleared first). Returns `false` —
/// with `out` contents unspecified — if any probed cell was never written.
///
/// # Panics
/// Panics if `cells.len() != row_seeds.len() * cols`.
pub fn query_batch_raw(
    cells: &[u16],
    row_seeds: &[u64],
    cols: usize,
    keys: &[u64],
    out: &mut Vec<u16>,
) -> bool {
    assert_eq!(cells.len(), row_seeds.len() * cols, "cell table shape");
    out.clear();
    out.resize(keys.len(), 0);
    if u32::try_from(cols).is_err() {
        for (row, &seed) in row_seeds.iter().enumerate() {
            let row_cells = &cells[row * cols..(row + 1) * cols];
            for (&key, best) in keys.iter().zip(out.iter_mut()) {
                let v = row_cells[HashFamily::bin_for(seed, cols, key)];
                if v == EMPTY_CELL {
                    return false;
                }
                *best = (*best).max(v);
            }
        }
        return true;
    }
    let mut bins = [0u32; BIN_CHUNK];
    let mut at = 0;
    while at < keys.len() {
        let end = (at + BIN_CHUNK).min(keys.len());
        let key_chunk = &keys[at..end];
        let out_chunk = &mut out[at..end];
        for (row, &seed) in row_seeds.iter().enumerate() {
            let row_cells = &cells[row * cols..(row + 1) * cols];
            let bins = &mut bins[..key_chunk.len()];
            crate::hash::fill_bins(seed, cols, key_chunk, bins);
            for (&bin, best) in bins.iter().zip(out_chunk.iter_mut()) {
                let v = row_cells[bin as usize];
                if v == EMPTY_CELL {
                    return false;
                }
                if v > *best {
                    *best = v;
                }
            }
        }
        at = end;
    }
    true
}

/// Derives the hash seed of group `g` from a base seed. Exposed so a decoder
/// can rebuild an individual group's [`MinMaxSketch`] from serialized cells
/// with hash functions identical to the encoder's.
#[inline]
pub fn group_seed(base: u64, g: usize) -> u64 {
    base.wrapping_add(g as u64 * 0x9E37)
}

/// Grouped MinMaxSketch (§3.3 "Solution 2"): one sketch per contiguous range
/// of `q / r` bucket indexes, bounding decoded index error by the group width.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupedMinMaxSketch {
    /// Total index range: valid indexes are `[0, q)`.
    q: u16,
    /// Width of each group in index space.
    group_width: u16,
    groups: Vec<MinMaxSketch>,
}

impl GroupedMinMaxSketch {
    /// Creates `r` groups covering indexes `[0, q)`, each an `rows × cols`
    /// MinMaxSketch. Seeds are derived per group so their hash functions are
    /// independent.
    ///
    /// # Errors
    /// Returns [`SketchError::InvalidParameter`] on zero shapes or `r > q`.
    pub fn new(q: u16, r: usize, rows: usize, cols: usize, seed: u64) -> Result<Self, SketchError> {
        if q == 0 {
            return Err(SketchError::invalid("q", "must be positive"));
        }
        if r == 0 {
            return Err(SketchError::invalid("r", "must be positive"));
        }
        if r > q as usize {
            return Err(SketchError::invalid(
                "r",
                format!("cannot have more groups ({r}) than buckets ({q})"),
            ));
        }
        let group_width = (q as usize).div_ceil(r) as u16;
        let groups = (0..r)
            .map(|g| MinMaxSketch::new(rows, cols, group_seed(seed, g)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(GroupedMinMaxSketch {
            q,
            group_width,
            groups,
        })
    }

    /// Number of groups `r`.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Total index range `q`.
    pub fn q(&self) -> u16 {
        self.q
    }

    /// Index width of each group (`⌈q / r⌉`).
    pub fn group_width(&self) -> u16 {
        self.group_width
    }

    /// Group that bucket index `index` belongs to.
    #[inline]
    pub fn group_of(&self, index: u16) -> usize {
        debug_assert!(index < self.q, "index {index} out of range [0, {})", self.q);
        (index / self.group_width) as usize
    }

    /// Inserts `(key, index)` into the owning group's sketch and returns the
    /// group id (the encoder records it: keys are sectioned per group on the
    /// wire, which is how the decoder knows which sketch to query).
    pub fn insert(&mut self, key: u64, index: u16) -> usize {
        let g = self.group_of(index);
        self.groups[g].insert(key, index);
        g
    }

    /// Queries the index for `key` within group `g`.
    ///
    /// The result, when present, always lies in the group's index range, so
    /// the decode error is bounded by [`Self::group_width`].
    pub fn query(&self, g: usize, key: u64) -> Option<u16> {
        self.groups.get(g)?.query(key)
    }

    /// Immutable access to one group's sketch (serialization path).
    pub fn group(&self, g: usize) -> Option<&MinMaxSketch> {
        self.groups.get(g)
    }

    /// Merges `other` group-by-group (see [`MinMaxSketch::merge`]). Both
    /// sketches must cover the same index range with the same group count;
    /// each group pair must agree on shape and hash seeds.
    ///
    /// # Errors
    /// Returns [`SketchError::InvalidParameter`] on any layout mismatch; on
    /// error `self` may have absorbed a prefix of the groups.
    pub fn merge(&mut self, other: &GroupedMinMaxSketch) -> Result<(), SketchError> {
        if self.q != other.q || self.groups.len() != other.groups.len() {
            return Err(SketchError::invalid(
                "groups",
                format!(
                    "cannot merge q={} r={} into q={} r={}",
                    other.q,
                    other.groups.len(),
                    self.q,
                    self.groups.len()
                ),
            ));
        }
        for (mine, theirs) in self.groups.iter_mut().zip(&other.groups) {
            mine.merge(theirs)?;
        }
        Ok(())
    }

    /// Rebuilds from per-group sketches (deserialization path).
    ///
    /// # Errors
    /// Returns [`SketchError::InvalidParameter`] on empty input or `q == 0`.
    pub fn from_groups(q: u16, groups: Vec<MinMaxSketch>) -> Result<Self, SketchError> {
        if q == 0 {
            return Err(SketchError::invalid("q", "must be positive"));
        }
        if groups.is_empty() {
            return Err(SketchError::invalid("groups", "need at least one group"));
        }
        let group_width = (q as usize).div_ceil(groups.len()) as u16;
        Ok(GroupedMinMaxSketch {
            q,
            group_width,
            groups,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use std::collections::HashMap;

    #[test]
    fn exact_without_collisions() {
        let mut mm = MinMaxSketch::new(3, 1 << 16, 1).unwrap();
        for key in 0..200u64 {
            mm.insert(key, (key % 256) as u16);
        }
        for key in 0..200u64 {
            assert_eq!(mm.query(key), Some((key % 256) as u16));
        }
    }

    #[test]
    fn never_overestimates() {
        // Cram 5000 keys into a 2x64 sketch; every queried index must be
        // <= the inserted index (the §3.3 underestimate-only guarantee).
        let mut mm = MinMaxSketch::new(2, 64, 2).unwrap();
        let mut truth: HashMap<u64, u16> = HashMap::new();
        let mut rng = StdRng::seed_from_u64(21);
        for key in 0..5_000u64 {
            let idx = rng.gen_range(0..256u16);
            mm.insert(key, idx);
            truth.insert(key, idx);
        }
        for (&key, &idx) in &truth {
            let got = mm.query(key).expect("inserted key must be present");
            assert!(got <= idx, "key {key}: got {got} > inserted {idx}");
        }
    }

    #[test]
    fn uninserted_key_with_empty_cell_is_detected() {
        let mut mm = MinMaxSketch::new(4, 1 << 14, 3).unwrap();
        mm.insert(1, 5);
        // With 16384 bins and one insert, some probe of a fresh key will
        // almost surely hit an untouched cell.
        let misses = (1000..2000u64).filter(|&k| mm.query(k).is_none()).count();
        assert!(misses > 990, "only {misses} of 1000 foreign keys detected");
    }

    #[test]
    fn empty_sketch_answers_none() {
        let mm = MinMaxSketch::new(2, 16, 4).unwrap();
        assert_eq!(mm.query(42), None);
        assert_eq!(mm.inserted(), 0);
    }

    #[test]
    fn reinsert_keeps_minimum() {
        let mut mm = MinMaxSketch::new(2, 16, 5).unwrap();
        mm.insert(7, 10);
        mm.insert(7, 3);
        mm.insert(7, 200); // must not raise the stored value
        assert_eq!(mm.query(7), Some(3));
    }

    #[test]
    fn accuracy_improves_with_more_cols() {
        let run = |cols: usize| -> f64 {
            let mut mm = MinMaxSketch::new(2, cols, 6).unwrap();
            let mut rng = StdRng::seed_from_u64(22);
            let items: Vec<(u64, u16)> =
                (0..2_000).map(|k| (k, rng.gen_range(0..256u16))).collect();
            for &(k, b) in &items {
                mm.insert(k, b);
            }
            let err: f64 = items
                .iter()
                .map(|&(k, b)| (b - mm.query(k).unwrap()) as f64)
                .sum();
            err / items.len() as f64
        };
        let small = run(256);
        let large = run(4096);
        assert!(
            large < small,
            "mean index error should shrink with columns: {large} !< {small}"
        );
    }

    #[test]
    fn serialization_roundtrip_via_cells() {
        let mut mm = MinMaxSketch::new(2, 128, 7).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let items: Vec<(u64, u16)> = (0..500).map(|k| (k, rng.gen_range(0..64u16))).collect();
        for &(k, b) in &items {
            mm.insert(k, b);
        }
        let rebuilt = MinMaxSketch::from_cells(2, 128, 7, mm.cells().to_vec()).unwrap();
        for &(k, _) in &items {
            assert_eq!(mm.query(k), rebuilt.query(k));
        }
    }

    #[test]
    fn from_cells_validates_length() {
        assert!(MinMaxSketch::from_cells(2, 128, 0, vec![0; 7]).is_err());
        assert!(MinMaxSketch::from_cells(0, 128, 0, vec![]).is_err());
    }

    #[test]
    fn batch_insert_and_query_match_per_key_path() {
        let mut rng = StdRng::seed_from_u64(26);
        let items: Vec<(u64, u16)> = (0..3_000).map(|k| (k, rng.gen_range(0..200u16))).collect();
        let keys: Vec<u64> = items.iter().map(|&(k, _)| k).collect();
        let indexes: Vec<u16> = items.iter().map(|&(_, b)| b).collect();

        let mut reference = MinMaxSketch::new(2, 128, 12).unwrap();
        for &(k, b) in &items {
            reference.insert(k, b);
        }
        let mut batched = MinMaxSketch::new(2, 128, 12).unwrap();
        batched.insert_batch(&keys, &indexes);
        assert_eq!(batched.cells(), reference.cells());
        assert_eq!(batched.inserted(), reference.inserted());

        let mut got = Vec::new();
        assert!(batched.query_batch(&keys, &mut got));
        let expect: Vec<u16> = keys.iter().map(|&k| reference.query(k).unwrap()).collect();
        assert_eq!(got, expect);

        // The raw entry points see the identical flat table.
        let mut raw_cells = vec![EMPTY_CELL; 2 * 128];
        let mut seeds = Vec::new();
        crate::hash::push_row_seeds(2, 12, &mut seeds);
        insert_batch_raw(&mut raw_cells, &seeds, 128, &keys, &indexes);
        assert_eq!(&raw_cells[..], reference.cells());
        let mut raw_got = Vec::new();
        assert!(query_batch_raw(
            &raw_cells,
            &seeds,
            128,
            &keys,
            &mut raw_got
        ));
        assert_eq!(raw_got, expect);
    }

    #[test]
    fn batch_query_detects_missing_key() {
        let mut mm = MinMaxSketch::new(4, 1 << 14, 13).unwrap();
        mm.insert_batch(&[1, 2, 3], &[5, 6, 7]);
        let mut out = Vec::new();
        assert!(!mm.query_batch(&[1, 999_999], &mut out));
        assert!(mm.query_batch(&[1, 2, 3], &mut out));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn grouped_bounds_error_by_group_width() {
        let q = 256u16;
        let r = 8;
        let mut g = GroupedMinMaxSketch::new(q, r, 2, 32, 8).unwrap();
        let mut rng = StdRng::seed_from_u64(24);
        let items: Vec<(u64, u16)> = (0..4_000).map(|k| (k, rng.gen_range(0..q))).collect();
        let mut groups = Vec::with_capacity(items.len());
        for &(k, b) in &items {
            groups.push(g.insert(k, b));
        }
        let width = g.group_width() as i32;
        for (&(k, b), &gi) in items.iter().zip(&groups) {
            let got = g.query(gi, k).expect("inserted key present") as i32;
            let b = b as i32;
            assert!(got <= b, "overestimate: {got} > {b}");
            assert!(
                b - got < width,
                "error {} exceeds group width {width}",
                b - got
            );
        }
    }

    #[test]
    fn grouping_reduces_error_vs_single_sketch() {
        let q = 256u16;
        let total_cols = 64; // deliberately undersized to force collisions
        let mut rng = StdRng::seed_from_u64(25);
        let items: Vec<(u64, u16)> = (0..4_000).map(|k| (k, rng.gen_range(0..q))).collect();

        let mut single = GroupedMinMaxSketch::new(q, 1, 2, total_cols, 9).unwrap();
        let mut grouped = GroupedMinMaxSketch::new(q, 8, 2, total_cols / 8, 9).unwrap();
        let mut sg = Vec::new();
        let mut gg = Vec::new();
        for &(k, b) in &items {
            sg.push(single.insert(k, b));
            gg.push(grouped.insert(k, b));
        }
        let mean_err = |s: &GroupedMinMaxSketch, gs: &[usize]| -> f64 {
            items
                .iter()
                .zip(gs)
                .map(|(&(k, b), &gi)| (b - s.query(gi, k).unwrap()) as f64)
                .sum::<f64>()
                / items.len() as f64
        };
        let e1 = mean_err(&single, &sg);
        let e8 = mean_err(&grouped, &gg);
        assert!(
            e8 < e1,
            "grouping should reduce mean index error: grouped {e8} !< single {e1}"
        );
    }

    #[test]
    fn merge_equals_single_sketch_over_union() {
        let mut rng = StdRng::seed_from_u64(27);
        let items: Vec<(u64, u16)> = (0..3_000).map(|k| (k, rng.gen_range(0..200u16))).collect();

        let mut all = MinMaxSketch::new(2, 128, 14).unwrap();
        for &(k, b) in &items {
            all.insert(k, b);
        }
        let mut merged = MinMaxSketch::new(2, 128, 14).unwrap();
        for part in items.chunks(700) {
            let mut s = MinMaxSketch::new(2, 128, 14).unwrap();
            for &(k, b) in part {
                s.insert(k, b);
            }
            merged.merge(&s).unwrap();
        }
        assert_eq!(merged.cells(), all.cells());
        assert_eq!(merged.inserted(), all.inserted());
    }

    #[test]
    fn merge_rejects_incompatible_layouts() {
        let mut a = MinMaxSketch::new(2, 128, 14).unwrap();
        assert!(a.merge(&MinMaxSketch::new(3, 128, 14).unwrap()).is_err());
        assert!(a.merge(&MinMaxSketch::new(2, 64, 14).unwrap()).is_err());
        assert!(a.merge(&MinMaxSketch::new(2, 128, 15).unwrap()).is_err());
        assert!(a.merge(&MinMaxSketch::new(2, 128, 14).unwrap()).is_ok());
    }

    #[test]
    fn grouped_merge_equals_single_grouped_sketch() {
        let q = 256u16;
        let mut rng = StdRng::seed_from_u64(28);
        let items: Vec<(u64, u16)> = (0..3_000).map(|k| (k, rng.gen_range(0..q))).collect();

        let mut all = GroupedMinMaxSketch::new(q, 8, 2, 32, 16).unwrap();
        let mut merged = GroupedMinMaxSketch::new(q, 8, 2, 32, 16).unwrap();
        for &(k, b) in &items {
            all.insert(k, b);
        }
        for part in items.chunks(1_000) {
            let mut s = GroupedMinMaxSketch::new(q, 8, 2, 32, 16).unwrap();
            for &(k, b) in part {
                s.insert(k, b);
            }
            merged.merge(&s).unwrap();
        }
        for g in 0..all.num_groups() {
            assert_eq!(
                merged.group(g).unwrap().cells(),
                all.group(g).unwrap().cells()
            );
        }
        // Layout mismatches are typed errors.
        let other = GroupedMinMaxSketch::new(q, 4, 2, 32, 16).unwrap();
        assert!(merged.merge(&other).is_err());
    }

    #[test]
    fn group_of_partitions_index_space() {
        let g = GroupedMinMaxSketch::new(256, 8, 2, 16, 10).unwrap();
        assert_eq!(g.group_width(), 32);
        assert_eq!(g.group_of(0), 0);
        assert_eq!(g.group_of(31), 0);
        assert_eq!(g.group_of(32), 1);
        assert_eq!(g.group_of(255), 7);
    }

    #[test]
    fn grouped_invalid_params() {
        assert!(GroupedMinMaxSketch::new(0, 1, 2, 16, 0).is_err());
        assert!(GroupedMinMaxSketch::new(16, 0, 2, 16, 0).is_err());
        assert!(GroupedMinMaxSketch::new(4, 8, 2, 16, 0).is_err());
        assert!(GroupedMinMaxSketch::from_groups(0, vec![]).is_err());
        assert!(GroupedMinMaxSketch::from_groups(8, vec![]).is_err());
    }

    #[test]
    fn grouped_roundtrip_via_parts() {
        let mut g = GroupedMinMaxSketch::new(64, 4, 2, 32, 11).unwrap();
        let items: Vec<(u64, u16)> = (0..100).map(|k| (k, (k % 64) as u16)).collect();
        let mut gids = Vec::new();
        for &(k, b) in &items {
            gids.push(g.insert(k, b));
        }
        let groups: Vec<MinMaxSketch> = (0..g.num_groups())
            .map(|i| g.group(i).unwrap().clone())
            .collect();
        let rebuilt = GroupedMinMaxSketch::from_groups(64, groups).unwrap();
        for (&(k, _), &gi) in items.iter().zip(&gids) {
            assert_eq!(g.query(gi, k), rebuilt.query(gi, k));
        }
    }
}
