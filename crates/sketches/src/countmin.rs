//! The Count-Min frequency sketch (paper §2.4, Figure 1).
//!
//! Count-Min is the classical *additive* frequency sketch: a 2-D array of
//! `s` rows × `t` bins; inserting item `x` increments `D[i, h_i(x)]` in every
//! row, and a query returns the **minimum** of the `s` candidate bins. Hash
//! collisions can only inflate a bin, so the estimate never *under*states the
//! true frequency — the minimum picks the least-inflated candidate.
//!
//! SketchML keeps this structure as the motivating baseline: §3.3 explains
//! why the additive rule is unusable for bucket indexes ("hash bins ever
//! collided are magnified in an unpredictable manner"), which is exactly the
//! behaviour the `overestimates_only` test below pins down and that the
//! `ablations` bench contrasts against [`crate::minmax::MinMaxSketch`].

use crate::error::SketchError;
use crate::hash::HashFamily;
use serde::{Deserialize, Serialize};

/// Additive frequency sketch with min-query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountMinSketch {
    hash: HashFamily,
    /// Row-major `rows × cols` counters.
    table: Vec<u64>,
    total: u64,
    conservative: bool,
}

impl CountMinSketch {
    /// Creates a sketch with `rows` hash tables of `cols` bins each.
    ///
    /// # Errors
    /// Returns [`SketchError::InvalidParameter`] if either dimension is zero.
    pub fn new(rows: usize, cols: usize, seed: u64) -> Result<Self, SketchError> {
        if rows == 0 {
            return Err(SketchError::invalid("rows", "must be positive"));
        }
        if cols == 0 {
            return Err(SketchError::invalid("cols", "must be positive"));
        }
        Ok(CountMinSketch {
            hash: HashFamily::new(rows, cols, seed),
            table: vec![0; rows * cols],
            total: 0,
            conservative: false,
        })
    }

    /// Creates a sketch sized for error `ε` with failure probability `δ`:
    /// `cols = ⌈e/ε⌉`, `rows = ⌈ln(1/δ)⌉` (the classic dimensioning used in
    /// the Appendix A.2 analysis).
    pub fn with_error(epsilon: f64, delta: f64, seed: u64) -> Result<Self, SketchError> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(SketchError::invalid("epsilon", "must be in (0, 1)"));
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(SketchError::invalid("delta", "must be in (0, 1)"));
        }
        let cols = (std::f64::consts::E / epsilon).ceil() as usize;
        let rows = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::new(rows, cols, seed)
    }

    /// Enables the *conservative update* variant: on insert, only bins whose
    /// value equals the current minimum estimate are incremented. Reduces
    /// overestimation at no accuracy cost for point queries.
    pub fn set_conservative(&mut self, on: bool) {
        self.conservative = on;
    }

    /// Number of hash rows `s`.
    pub fn rows(&self) -> usize {
        self.hash.rows()
    }

    /// Number of bins per row `t`.
    pub fn cols(&self) -> usize {
        self.hash.cols()
    }

    /// Total count of all insertions (`N` in Appendix A.2).
    pub fn total(&self) -> u64 {
        self.total
    }

    #[inline]
    fn idx(&self, row: usize, col: usize) -> usize {
        row * self.hash.cols() + col
    }

    /// Inserts `key` with multiplicity `count`.
    pub fn insert_count(&mut self, key: u64, count: u64) {
        self.total += count;
        if self.conservative {
            let est = self.query(key);
            let target = est + count;
            for row in 0..self.hash.rows() {
                let i = self.idx(row, self.hash.bin(row, key));
                if self.table[i] < target {
                    self.table[i] = target;
                }
            }
        } else {
            for row in 0..self.hash.rows() {
                let i = self.idx(row, self.hash.bin(row, key));
                self.table[i] += count;
            }
        }
    }

    /// Inserts a single occurrence of `key` (Figure 1's `Insert(x)`).
    pub fn insert(&mut self, key: u64) {
        self.insert_count(key, 1);
    }

    /// Estimated frequency of `key` (Figure 1's `Query(x)`): the minimum of
    /// the `s` candidate bins. Never less than the true frequency.
    pub fn query(&self, key: u64) -> u64 {
        (0..self.hash.rows())
            .map(|row| self.table[self.idx(row, self.hash.bin(row, key))])
            .min()
            .unwrap_or(0)
    }

    /// Merges another sketch with identical shape and seed by adding tables.
    ///
    /// # Errors
    /// Returns [`SketchError::InvalidParameter`] when shapes differ.
    pub fn merge(&mut self, other: &CountMinSketch) -> Result<(), SketchError> {
        if self.hash != other.hash {
            return Err(SketchError::invalid(
                "other",
                "can only merge Count-Min sketches with identical shape and seed",
            ));
        }
        for (a, b) in self.table.iter_mut().zip(&other.table) {
            *a += *b;
        }
        self.total += other.total;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use std::collections::HashMap;

    #[test]
    fn exact_when_no_collisions() {
        let mut cm = CountMinSketch::new(4, 1 << 16, 1).unwrap();
        for key in 0..100u64 {
            for _ in 0..=key {
                cm.insert(key);
            }
        }
        for key in 0..100u64 {
            assert_eq!(cm.query(key), key + 1);
        }
    }

    #[test]
    fn overestimates_only() {
        // Pack many keys into a tiny sketch: every estimate must still be
        // >= the true frequency (the §3.3 motivation for MinMaxSketch).
        let mut cm = CountMinSketch::new(2, 32, 2).unwrap();
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5_000 {
            let key = rng.gen_range(0..500u64);
            cm.insert(key);
            *truth.entry(key).or_default() += 1;
        }
        for (&key, &f) in &truth {
            assert!(
                cm.query(key) >= f,
                "key {key}: est {} < true {f}",
                cm.query(key)
            );
        }
    }

    #[test]
    fn error_bound_holds_with_high_probability() {
        // Classic guarantee: est <= true + eps * N with prob 1 - delta.
        let (eps, delta) = (0.01, 0.01);
        let mut cm = CountMinSketch::with_error(eps, delta, 3).unwrap();
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100_000 {
            // Zipf-ish workload.
            let key = (rng.gen::<f64>().powi(3) * 10_000.0) as u64;
            cm.insert(key);
            *truth.entry(key).or_default() += 1;
        }
        let n = cm.total() as f64;
        let violations = truth
            .iter()
            .filter(|(&k, &f)| cm.query(k) as f64 > f as f64 + eps * n)
            .count();
        assert!(
            (violations as f64) < delta * truth.len() as f64 + 5.0,
            "{violations} of {} keys violated the bound",
            truth.len()
        );
    }

    #[test]
    fn conservative_update_is_tighter() {
        let build = |conservative: bool| {
            let mut cm = CountMinSketch::new(2, 64, 4).unwrap();
            cm.set_conservative(conservative);
            let mut rng = StdRng::seed_from_u64(9);
            let keys: Vec<u64> = (0..10_000).map(|_| rng.gen_range(0..1000)).collect();
            for &k in &keys {
                cm.insert(k);
            }
            let total_est: u64 = (0..1000u64).map(|k| cm.query(k)).sum();
            total_est
        };
        let plain = build(false);
        let cons = build(true);
        assert!(
            cons <= plain,
            "conservative {cons} should not exceed plain {plain}"
        );
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = CountMinSketch::new(3, 128, 5).unwrap();
        let mut b = CountMinSketch::new(3, 128, 5).unwrap();
        for k in 0..50u64 {
            a.insert(k);
            b.insert_count(k, 2);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.total(), 150);
        for k in 0..50u64 {
            assert!(a.query(k) >= 3);
        }
    }

    #[test]
    fn merge_shape_mismatch_rejected() {
        let mut a = CountMinSketch::new(3, 128, 5).unwrap();
        let b = CountMinSketch::new(3, 64, 5).unwrap();
        assert!(a.merge(&b).is_err());
        let c = CountMinSketch::new(3, 128, 6).unwrap();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(CountMinSketch::new(0, 10, 0).is_err());
        assert!(CountMinSketch::new(10, 0, 0).is_err());
        assert!(CountMinSketch::with_error(0.0, 0.5, 0).is_err());
        assert!(CountMinSketch::with_error(0.5, 1.0, 0).is_err());
    }

    #[test]
    fn unseen_key_estimate_is_bounded_by_total() {
        let mut cm = CountMinSketch::new(4, 1024, 10).unwrap();
        for k in 0..100u64 {
            cm.insert(k);
        }
        assert!(cm.query(999_999) <= cm.total());
    }
}
