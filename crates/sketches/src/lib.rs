//! Probabilistic data structures ("sketches") used by the SketchML gradient
//! compression framework (Jiang et al., SIGMOD 2018).
//!
//! This crate implements, from scratch:
//!
//! - [`quantile::GkSummary`] — the Greenwald–Khanna ε-approximate quantile
//!   summary (paper §2.3), with the classic `merge` and `prune`/compress
//!   operations.
//! - [`quantile::MergingQuantileSketch`] — a mergeable, compactor-based
//!   quantile sketch in the spirit of Yahoo DataSketches (the sketch the
//!   paper's prototype uses in §3.2 Step 1).
//! - [`count_sketch::CountSketch`] — the *linear* signed-sum sketch of
//!   Charikar et al., used for gradient compression by SketchSGD
//!   (arXiv:1903.04488): sum-of-sketches equals sketch-of-sum, enabling
//!   one-pass merges in the collectives layer.
//! - [`countmin::CountMinSketch`] — the classic additive frequency sketch
//!   (paper §2.4, Figure 1), kept both as the motivating baseline that
//!   *cannot* be used for bucket indexes (§3.3 "Motivation") and for tests
//!   contrasting its overestimation against MinMaxSketch's underestimation.
//! - [`minmax::MinMaxSketch`] — the paper's novel sketch (§3.3): `s` hash
//!   rows × `t` bins storing bucket indexes, with a **min** rule on insert
//!   and a **max** rule on query so that hash collisions can only *decay*
//!   the stored index, never amplify it.
//! - [`minmax::GroupedMinMaxSketch`] — the §3.3 "Solution 2" refinement:
//!   the `q` buckets are split into `r` groups with an independent
//!   MinMaxSketch per group, bounding the decoded index error by `q/r`.
//! - [`theory`] — closed-form bounds from Appendix A.2 (correctness rate,
//!   over-estimation probability) used by the validation tests and the
//!   `appendix_a_bounds` experiment harness.
//!
//! All structures are deterministic given a seed, so experiments are
//! reproducible.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod count_sketch;
pub mod countmin;
pub mod error;
pub mod hash;
pub mod minmax;
pub mod quantile;
pub mod simd;
pub mod theory;

pub use count_sketch::{push_sign_seeds, sign_for, CountSketch};
pub use countmin::CountMinSketch;
pub use error::SketchError;
pub use hash::{fill_bins, fill_bins_scalar, push_row_seeds, HashFamily};
pub use minmax::{insert_batch_raw, query_batch_raw, GroupedMinMaxSketch, MinMaxSketch};
pub use quantile::{GkSummary, MergingQuantileSketch, QuantileSketch, TDigest};
