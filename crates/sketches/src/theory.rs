//! Closed-form bounds from the paper's Appendix A.2, used by the validation
//! tests and the `appendix_a_bounds` experiment harness to check the
//! implementation against theory.
//!
//! Every bound validates its inputs and returns a typed
//! [`SketchError::InvalidParameter`] instead of silently producing garbage
//! probabilities for out-of-domain arguments (a `debug_assert!` would vanish
//! in release builds, exactly where the bench harness runs).

use crate::error::SketchError;

/// Probability that a query for the `l`-th least frequent of `v` distinct
/// elements returns an error-free answer from one counter of a MinMaxSketch
/// with `w` bins per row (Appendix A.2): `P' = (1 - 1/w)^(v - l)`.
///
/// `l` is 1-based; `l = v` is the most frequent element.
///
/// # Errors
/// [`SketchError::InvalidParameter`] when `w == 0` or `l` is outside
/// `1..=v`.
pub fn minmax_single_row_correct(v: u64, l: u64, w: usize) -> Result<f64, SketchError> {
    if w == 0 {
        return Err(SketchError::invalid("w", "bins per row must be positive"));
    }
    if l < 1 || l > v {
        return Err(SketchError::invalid(
            "l",
            format!("element rank {l} must be in 1..={v}"),
        ));
    }
    Ok((1.0 - 1.0 / w as f64).powi((v - l) as i32))
}

/// Overall probability that the query result of element `e_l` is correct
/// with `d` rows (Appendix A.2): `P_CR{e_l} = 1 - (1 - P')^d`.
///
/// # Errors
/// [`SketchError::InvalidParameter`] when `d == 0` or the
/// [`minmax_single_row_correct`] domain is violated.
pub fn minmax_element_correct(v: u64, l: u64, w: usize, d: usize) -> Result<f64, SketchError> {
    if d == 0 {
        return Err(SketchError::invalid("d", "row count must be positive"));
    }
    let p = minmax_single_row_correct(v, l, w)?;
    Ok(1.0 - (1.0 - p).powi(d as i32))
}

/// Lower bound on the expected correctness rate of a MinMaxSketch holding
/// `v` distinct elements in `d` rows of `w` bins — equation (2) of the paper:
///
/// `Cr >= (1/v) * Σ_{l=1}^{v} [ 1 - (1 - (1 - 1/w)^{v-l})^d ]`.
///
/// An empty sketch (`v == 0`) is vacuously always correct.
///
/// # Errors
/// [`SketchError::InvalidParameter`] when `w == 0` or `d == 0`.
pub fn minmax_correctness_rate(v: u64, w: usize, d: usize) -> Result<f64, SketchError> {
    if w == 0 {
        return Err(SketchError::invalid("w", "bins per row must be positive"));
    }
    if d == 0 {
        return Err(SketchError::invalid("d", "row count must be positive"));
    }
    if v == 0 {
        return Ok(1.0);
    }
    let mut sum = 0.0;
    for l in 1..=v {
        sum += minmax_element_correct(v, l, w, d)?;
    }
    Ok(sum / v as f64)
}

/// Count-Min over-estimation tail bound (Appendix A.2, with `α <= 1`):
/// `Pr[f̂(e) > f(e) + ε·α·N] <= exp(-d)` when `w = ⌈e/ε⌉`.
///
/// # Errors
/// [`SketchError::InvalidParameter`] when `d == 0` (a zero-row sketch has
/// no tail to bound).
pub fn countmin_overestimate_prob(d: usize) -> Result<f64, SketchError> {
    if d == 0 {
        return Err(SketchError::invalid("d", "row count must be positive"));
    }
    Ok((-(d as f64)).exp())
}

/// Expected bytes per delta-encoded key (Appendix A.3): with `r` groups,
/// model dimension `D` and `d` nonzero keys, the expected key increment is
/// `r·D/d`, which needs `⌈(1/8)·log2(r·D/d)⌉` bytes; the 2-bit byte flag
/// adds `1/4` byte. An empty gradient (`nnz == 0`) costs nothing.
///
/// # Errors
/// [`SketchError::InvalidParameter`] when `r == 0` or `model_dim == 0`.
pub fn expected_bytes_per_key(r: usize, model_dim: u64, nnz: u64) -> Result<f64, SketchError> {
    if r == 0 {
        return Err(SketchError::invalid("r", "group count must be positive"));
    }
    if model_dim == 0 {
        return Err(SketchError::invalid(
            "model_dim",
            "model dimension must be positive",
        ));
    }
    if nnz == 0 {
        return Ok(0.0);
    }
    let gap = (r as f64) * (model_dim as f64) / (nnz as f64);
    let bytes = (gap.log2() / 8.0).ceil().max(1.0);
    Ok(bytes + 0.25)
}

/// Total space cost of a SketchML message in bytes (paper §3.5):
/// `d·(⌈(1/8)·log2(rD/d)⌉ + 1/4) + 8q + s·t·⌈(1/8)·log2 q⌉`.
///
/// # Errors
/// [`SketchError::InvalidParameter`] when any shape parameter (`model_dim`,
/// `q`, `s`, `t`, `r`) is zero.
pub fn sketchml_space_cost(
    nnz: u64,
    model_dim: u64,
    q: usize,
    s: usize,
    t: usize,
    r: usize,
) -> Result<f64, SketchError> {
    if q == 0 {
        return Err(SketchError::invalid("q", "bucket count must be positive"));
    }
    if s == 0 {
        return Err(SketchError::invalid("s", "sketch rows must be positive"));
    }
    if t == 0 {
        return Err(SketchError::invalid("t", "sketch columns must be positive"));
    }
    let per_key = expected_bytes_per_key(r, model_dim, nnz)?;
    let means = 8.0 * q as f64;
    let cell_bytes = ((q as f64).log2() / 8.0).ceil().max(1.0);
    Ok(nnz as f64 * per_key + means + (s * t) as f64 * cell_bytes)
}

/// Uncompressed size of a sparse gradient stored as (4-byte key, 8-byte
/// value) pairs — the `12d` reference of §3.5. Total and valid for any
/// `nnz`, so this one stays infallible.
pub fn raw_space_cost(nnz: u64) -> f64 {
    12.0 * nnz as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minmax::MinMaxSketch;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn correctness_rate_monotone_in_width() {
        let narrow = minmax_correctness_rate(1000, 100, 2).unwrap();
        let wide = minmax_correctness_rate(1000, 1000, 2).unwrap();
        assert!(wide > narrow);
    }

    #[test]
    fn correctness_rate_monotone_in_rows() {
        let one = minmax_correctness_rate(1000, 200, 1).unwrap();
        let three = minmax_correctness_rate(1000, 200, 3).unwrap();
        assert!(three > one);
    }

    #[test]
    fn correctness_rate_edge_cases() {
        assert_eq!(minmax_correctness_rate(0, 10, 2).unwrap(), 1.0);
        // A single element can never collide.
        assert!((minmax_correctness_rate(1, 10, 2).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_parameters_are_typed_errors() {
        // Zero-width / zero-row shapes and out-of-range ranks must surface
        // as InvalidParameter even in release builds.
        assert!(matches!(
            minmax_single_row_correct(10, 5, 0),
            Err(SketchError::InvalidParameter { name: "w", .. })
        ));
        assert!(matches!(
            minmax_single_row_correct(10, 0, 8),
            Err(SketchError::InvalidParameter { name: "l", .. })
        ));
        assert!(matches!(
            minmax_single_row_correct(10, 11, 8),
            Err(SketchError::InvalidParameter { name: "l", .. })
        ));
        assert!(matches!(
            minmax_element_correct(10, 5, 8, 0),
            Err(SketchError::InvalidParameter { name: "d", .. })
        ));
        assert!(minmax_correctness_rate(10, 0, 2).is_err());
        assert!(minmax_correctness_rate(10, 8, 0).is_err());
        assert!(countmin_overestimate_prob(0).is_err());
        assert!(matches!(
            expected_bytes_per_key(0, 1000, 10),
            Err(SketchError::InvalidParameter { name: "r", .. })
        ));
        assert!(expected_bytes_per_key(8, 0, 10).is_err());
        assert!(sketchml_space_cost(100, 1000, 0, 2, 20, 8).is_err());
        assert!(sketchml_space_cost(100, 1000, 256, 0, 20, 8).is_err());
        assert!(sketchml_space_cost(100, 1000, 256, 2, 0, 8).is_err());
        assert!(sketchml_space_cost(100, 1000, 256, 2, 20, 0).is_err());
        assert!(sketchml_space_cost(100, 0, 256, 2, 20, 8).is_err());
    }

    #[test]
    fn empirical_correctness_meets_bound() {
        // Insert v distinct keys with distinct "frequencies" encoded as
        // indexes ordered so that element l has index l (higher = "more
        // frequent" per the A.2 setup where the least-frequent wins a cell).
        // Correct query == exact index recovery.
        let (v, w, d) = (2_000u64, 1_024usize, 2usize);
        let mut trials_correct = 0u64;
        let mut total = 0u64;
        for seed in 0..5u64 {
            let mut mm = MinMaxSketch::new(d, w, seed).unwrap();
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let mut items: Vec<(u64, u16)> = (0..v)
                .map(|k| (k, (k % (u16::MAX as u64 - 1)) as u16))
                .collect();
            items.shuffle(&mut rng);
            for &(k, b) in &items {
                mm.insert(k, b);
            }
            for &(k, b) in &items {
                total += 1;
                if mm.query(k) == Some(b) {
                    trials_correct += 1;
                }
            }
        }
        let empirical = trials_correct as f64 / total as f64;
        let bound = minmax_correctness_rate(v, w, d).unwrap();
        // Equation (2) is a lower bound; allow small statistical slack.
        assert!(
            empirical >= bound - 0.02,
            "empirical correctness {empirical} < theoretical bound {bound}"
        );
    }

    #[test]
    fn space_cost_beats_raw_for_typical_parameters() {
        // §3.5 example: d = 100k nonzeros of a 1M-dim model, q = 256,
        // s = 2, t = d/5, r = 8.
        let nnz = 100_000u64;
        let cost = sketchml_space_cost(nnz, 1_000_000, 256, 2, (nnz / 5) as usize, 8).unwrap();
        let raw = raw_space_cost(nnz);
        assert!(
            cost < raw / 4.0,
            "space cost {cost} should be far below raw {raw}"
        );
    }

    #[test]
    fn bytes_per_key_matches_paper_regime() {
        // §A.3: with r = 8 and d/D >= 1/32 each key fits in 1 byte (+flag).
        let b = expected_bytes_per_key(8, 32_000_000, 1_000_000).unwrap();
        assert_eq!(b, 1.25);
        // Paper's empirical figure is ~1.27-1.5 bytes in sparser settings.
        let sparse = expected_bytes_per_key(8, 54_000_000, 100_000).unwrap();
        assert!(sparse <= 2.25);
        assert_eq!(expected_bytes_per_key(8, 1000, 0).unwrap(), 0.0);
    }

    #[test]
    fn countmin_tail_decays_with_rows() {
        assert!(countmin_overestimate_prob(4).unwrap() < countmin_overestimate_prob(2).unwrap());
        assert!(countmin_overestimate_prob(10).unwrap() < 1e-4);
    }
}
