//! Closed-form bounds from the paper's Appendix A.2, used by the validation
//! tests and the `appendix_a_bounds` experiment harness to check the
//! implementation against theory.

/// Probability that a query for the `l`-th least frequent of `v` distinct
/// elements returns an error-free answer from one counter of a MinMaxSketch
/// with `w` bins per row (Appendix A.2): `P' = (1 - 1/w)^(v - l)`.
///
/// `l` is 1-based; `l = v` is the most frequent element.
pub fn minmax_single_row_correct(v: u64, l: u64, w: usize) -> f64 {
    debug_assert!(l >= 1 && l <= v);
    (1.0 - 1.0 / w as f64).powi((v - l) as i32)
}

/// Overall probability that the query result of element `e_l` is correct
/// with `d` rows (Appendix A.2): `P_CR{e_l} = 1 - (1 - P')^d`.
pub fn minmax_element_correct(v: u64, l: u64, w: usize, d: usize) -> f64 {
    let p = minmax_single_row_correct(v, l, w);
    1.0 - (1.0 - p).powi(d as i32)
}

/// Lower bound on the expected correctness rate of a MinMaxSketch holding
/// `v` distinct elements in `d` rows of `w` bins — equation (2) of the paper:
///
/// `Cr >= (1/v) * Σ_{l=1}^{v} [ 1 - (1 - (1 - 1/w)^{v-l})^d ]`.
pub fn minmax_correctness_rate(v: u64, w: usize, d: usize) -> f64 {
    if v == 0 {
        return 1.0;
    }
    let sum: f64 = (1..=v).map(|l| minmax_element_correct(v, l, w, d)).sum();
    sum / v as f64
}

/// Count-Min over-estimation tail bound (Appendix A.2, with `α <= 1`):
/// `Pr[f̂(e) > f(e) + ε·α·N] <= exp(-d)` when `w = ⌈e/ε⌉`.
pub fn countmin_overestimate_prob(d: usize) -> f64 {
    (-(d as f64)).exp()
}

/// Expected bytes per delta-encoded key (Appendix A.3): with `r` groups,
/// model dimension `D` and `d` nonzero keys, the expected key increment is
/// `r·D/d`, which needs `⌈(1/8)·log2(r·D/d)⌉` bytes; the 2-bit byte flag
/// adds `1/4` byte.
pub fn expected_bytes_per_key(r: usize, model_dim: u64, nnz: u64) -> f64 {
    if nnz == 0 {
        return 0.0;
    }
    let gap = (r as f64) * (model_dim as f64) / (nnz as f64);
    let bytes = (gap.log2() / 8.0).ceil().max(1.0);
    bytes + 0.25
}

/// Total space cost of a SketchML message in bytes (paper §3.5):
/// `d·(⌈(1/8)·log2(rD/d)⌉ + 1/4) + 8q + s·t·⌈(1/8)·log2 q⌉`.
pub fn sketchml_space_cost(
    nnz: u64,
    model_dim: u64,
    q: usize,
    s: usize,
    t: usize,
    r: usize,
) -> f64 {
    let per_key = expected_bytes_per_key(r, model_dim, nnz);
    let means = 8.0 * q as f64;
    let cell_bytes = ((q as f64).log2() / 8.0).ceil().max(1.0);
    nnz as f64 * per_key + means + (s * t) as f64 * cell_bytes
}

/// Uncompressed size of a sparse gradient stored as (4-byte key, 8-byte
/// value) pairs — the `12d` reference of §3.5.
pub fn raw_space_cost(nnz: u64) -> f64 {
    12.0 * nnz as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minmax::MinMaxSketch;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn correctness_rate_monotone_in_width() {
        let narrow = minmax_correctness_rate(1000, 100, 2);
        let wide = minmax_correctness_rate(1000, 1000, 2);
        assert!(wide > narrow);
    }

    #[test]
    fn correctness_rate_monotone_in_rows() {
        let one = minmax_correctness_rate(1000, 200, 1);
        let three = minmax_correctness_rate(1000, 200, 3);
        assert!(three > one);
    }

    #[test]
    fn correctness_rate_edge_cases() {
        assert_eq!(minmax_correctness_rate(0, 10, 2), 1.0);
        // A single element can never collide.
        assert!((minmax_correctness_rate(1, 10, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_correctness_meets_bound() {
        // Insert v distinct keys with distinct "frequencies" encoded as
        // indexes ordered so that element l has index l (higher = "more
        // frequent" per the A.2 setup where the least-frequent wins a cell).
        // Correct query == exact index recovery.
        let (v, w, d) = (2_000u64, 1_024usize, 2usize);
        let mut trials_correct = 0u64;
        let mut total = 0u64;
        for seed in 0..5u64 {
            let mut mm = MinMaxSketch::new(d, w, seed).unwrap();
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let mut items: Vec<(u64, u16)> = (0..v)
                .map(|k| (k, (k % (u16::MAX as u64 - 1)) as u16))
                .collect();
            items.shuffle(&mut rng);
            for &(k, b) in &items {
                mm.insert(k, b);
            }
            for &(k, b) in &items {
                total += 1;
                if mm.query(k) == Some(b) {
                    trials_correct += 1;
                }
            }
        }
        let empirical = trials_correct as f64 / total as f64;
        let bound = minmax_correctness_rate(v, w, d);
        // Equation (2) is a lower bound; allow small statistical slack.
        assert!(
            empirical >= bound - 0.02,
            "empirical correctness {empirical} < theoretical bound {bound}"
        );
    }

    #[test]
    fn space_cost_beats_raw_for_typical_parameters() {
        // §3.5 example: d = 100k nonzeros of a 1M-dim model, q = 256,
        // s = 2, t = d/5, r = 8.
        let nnz = 100_000u64;
        let cost = sketchml_space_cost(nnz, 1_000_000, 256, 2, (nnz / 5) as usize, 8);
        let raw = raw_space_cost(nnz);
        assert!(
            cost < raw / 4.0,
            "space cost {cost} should be far below raw {raw}"
        );
    }

    #[test]
    fn bytes_per_key_matches_paper_regime() {
        // §A.3: with r = 8 and d/D >= 1/32 each key fits in 1 byte (+flag).
        let b = expected_bytes_per_key(8, 32_000_000, 1_000_000);
        assert_eq!(b, 1.25);
        // Paper's empirical figure is ~1.27-1.5 bytes in sparser settings.
        let sparse = expected_bytes_per_key(8, 54_000_000, 100_000);
        assert!(sparse <= 2.25);
        assert_eq!(expected_bytes_per_key(8, 1000, 0), 0.0);
    }

    #[test]
    fn countmin_tail_decays_with_rows() {
        assert!(countmin_overestimate_prob(4) < countmin_overestimate_prob(2));
        assert!(countmin_overestimate_prob(10) < 1e-4);
    }
}
