//! t-digest — a third quantile-sketch backend (Dunning & Ertl).
//!
//! Where GK keeps rank-error guarantees and the compactor sketch keeps
//! mergeability, the t-digest concentrates its centroids near the
//! distribution's tails via the scale function `k(q) = δ/2π · asin(2q − 1)`,
//! giving very accurate extreme quantiles in tiny space — attractive for
//! gradient compression precisely because Figure 4's mass sits in a narrow
//! band whose *edges* determine the bucket splits.
//!
//! Provided as an alternative backend for
//! [`quantize`](../../../sketchml_core/quantify/fn.quantize.html)-style
//! equi-depth splits and benchmarked against the other two sketches.

use crate::error::SketchError;
use crate::quantile::QuantileSketch;
use serde::{Deserialize, Serialize};

/// A centroid: a weighted point mass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Centroid {
    mean: f64,
    weight: u64,
}

/// t-digest with the arcsine scale function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TDigest {
    /// Compression parameter δ: more centroids → more accuracy.
    delta: f64,
    centroids: Vec<Centroid>,
    buffer: Vec<f64>,
    count: u64,
    min: f64,
    max: f64,
}

impl TDigest {
    /// Creates a digest with compression parameter `delta` (typical: 100).
    ///
    /// # Errors
    /// Returns [`SketchError::InvalidParameter`] unless `delta >= 10`.
    pub fn new(delta: f64) -> Result<Self, SketchError> {
        if delta < 10.0 || !delta.is_finite() {
            return Err(SketchError::invalid(
                "delta",
                format!("must be >= 10, got {delta}"),
            ));
        }
        Ok(TDigest {
            delta,
            centroids: Vec::new(),
            buffer: Vec::new(),
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        })
    }

    /// Number of centroids currently stored.
    pub fn num_centroids(&self) -> usize {
        self.centroids.len()
    }

    /// Scale function `k(q)`.
    #[inline]
    fn k(&self, q: f64) -> f64 {
        self.delta / (2.0 * std::f64::consts::PI) * (2.0 * q - 1.0).asin()
    }

    /// Merges the insert buffer into the centroid list (the t-digest
    /// "merging digest" algorithm).
    fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut points: Vec<Centroid> = self
            .buffer
            .drain(..)
            .map(|v| Centroid { mean: v, weight: 1 })
            .collect();
        points.extend_from_slice(&self.centroids);
        points.sort_by(|a, b| a.mean.total_cmp(&b.mean));

        let total: u64 = points.iter().map(|c| c.weight).sum();
        let mut merged: Vec<Centroid> = Vec::with_capacity(self.centroids.len() + 16);
        let mut acc = points[0];
        let mut w_so_far: u64 = 0;
        for &p in &points[1..] {
            let q0 = w_so_far as f64 / total as f64;
            let q1 = (w_so_far + acc.weight + p.weight) as f64 / total as f64;
            // Merge while the combined centroid stays within one k-unit.
            if self.k(q1.min(1.0)) - self.k(q0) <= 1.0 {
                let w = acc.weight + p.weight;
                acc.mean = (acc.mean * acc.weight as f64 + p.mean * p.weight as f64) / w as f64;
                acc.weight = w;
            } else {
                w_so_far += acc.weight;
                merged.push(acc);
                acc = p;
            }
        }
        merged.push(acc);
        self.centroids = merged;
    }

    /// Merges another digest into this one.
    pub fn merge(&mut self, other: &TDigest) {
        let mut other = other.clone();
        other.flush();
        self.flush();
        for c in &other.centroids {
            // Re-insert as weighted buffer entries via repeated means would
            // be O(n); instead splice centroid lists and re-merge.
            self.centroids.push(*c);
        }
        self.centroids.sort_by(|a, b| a.mean.total_cmp(&b.mean));
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        // Re-run the merge pass over the combined list.
        let combined = std::mem::take(&mut self.centroids);
        self.buffer.clear();
        self.centroids = combined;
        self.re_merge();
    }

    /// Re-compresses the centroid list in place.
    fn re_merge(&mut self) {
        if self.centroids.len() < 2 {
            return;
        }
        let points = std::mem::take(&mut self.centroids);
        let total: u64 = points.iter().map(|c| c.weight).sum();
        let mut merged: Vec<Centroid> = Vec::with_capacity(points.len());
        let mut acc = points[0];
        let mut w_so_far: u64 = 0;
        for &p in &points[1..] {
            let q0 = w_so_far as f64 / total as f64;
            let q1 = (w_so_far + acc.weight + p.weight) as f64 / total as f64;
            if self.k(q1.min(1.0)) - self.k(q0) <= 1.0 {
                let w = acc.weight + p.weight;
                acc.mean = (acc.mean * acc.weight as f64 + p.mean * p.weight as f64) / w as f64;
                acc.weight = w;
            } else {
                w_so_far += acc.weight;
                merged.push(acc);
                acc = p;
            }
        }
        merged.push(acc);
        self.centroids = merged;
    }
}

impl QuantileSketch for TDigest {
    fn insert(&mut self, value: f64) {
        debug_assert!(value.is_finite());
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buffer.push(value);
        if self.buffer.len() >= (self.delta as usize) * 4 {
            self.flush();
        }
    }

    fn count(&self) -> u64 {
        self.count
    }

    fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    fn query(&self, phi: f64) -> Result<f64, SketchError> {
        if self.count == 0 {
            return Err(SketchError::Empty);
        }
        let phi = phi.clamp(0.0, 1.0);
        if phi == 0.0 {
            return Ok(self.min);
        }
        if phi == 1.0 {
            return Ok(self.max);
        }
        // Work on a flushed clone so query can take &self.
        let mut snapshot = self.clone();
        snapshot.flush();
        let total: u64 = snapshot.centroids.iter().map(|c| c.weight).sum();
        let target = phi * total as f64;
        let mut w_so_far = 0.0f64;
        for c in &snapshot.centroids {
            let w = c.weight as f64;
            if w_so_far + w >= target {
                return Ok(c.mean.clamp(snapshot.min, snapshot.max));
            }
            w_so_far += w;
        }
        Ok(snapshot.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn rank_err(data: &[f64], sketch: &TDigest, phi: f64) -> f64 {
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        let est = sketch.query(phi).unwrap();
        let rank = sorted.iter().filter(|&&x| x <= est).count() as f64;
        (rank - phi * data.len() as f64).abs() / data.len() as f64
    }

    #[test]
    fn accurate_on_uniform_data() {
        let mut rng = StdRng::seed_from_u64(71);
        let data: Vec<f64> = (0..100_000).map(|_| rng.gen::<f64>()).collect();
        let mut td = TDigest::new(100.0).unwrap();
        td.extend_from_slice(&data);
        for phi in [0.01, 0.1, 0.5, 0.9, 0.99] {
            let err = rank_err(&data, &td, phi);
            assert!(err < 0.02, "phi={phi}: rank error {err}");
        }
    }

    #[test]
    fn tails_are_extra_accurate() {
        let mut rng = StdRng::seed_from_u64(72);
        let data: Vec<f64> = (0..100_000).map(|_| rng.gen::<f64>()).collect();
        let mut td = TDigest::new(100.0).unwrap();
        td.extend_from_slice(&data);
        // Tail quantiles should be tighter than the median's error budget.
        let tail = rank_err(&data, &td, 0.999);
        assert!(tail < 0.005, "tail error {tail}");
        assert_eq!(td.query(0.0).unwrap(), td.min().unwrap());
        assert_eq!(td.query(1.0).unwrap(), td.max().unwrap());
    }

    #[test]
    fn space_is_bounded() {
        let mut rng = StdRng::seed_from_u64(73);
        let mut td = TDigest::new(100.0).unwrap();
        for _ in 0..1_000_000 {
            td.insert(rng.gen::<f64>());
        }
        let mut flushed = td.clone();
        flushed.flush();
        assert!(
            flushed.num_centroids() < 300,
            "centroid count {} should stay near delta",
            flushed.num_centroids()
        );
    }

    #[test]
    fn merge_combines_distributions() {
        let mut a = TDigest::new(100.0).unwrap();
        let mut b = TDigest::new(100.0).unwrap();
        let mut rng = StdRng::seed_from_u64(74);
        let left: Vec<f64> = (0..20_000).map(|_| rng.gen::<f64>()).collect();
        let right: Vec<f64> = (0..20_000).map(|_| 1.0 + rng.gen::<f64>()).collect();
        a.extend_from_slice(&left);
        b.extend_from_slice(&right);
        a.merge(&b);
        assert_eq!(a.count(), 40_000);
        let med = a.query(0.5).unwrap();
        assert!((0.9..=1.1).contains(&med), "union median {med}");
        let mut all = left;
        all.extend_from_slice(&right);
        assert!(rank_err(&all, &a, 0.25) < 0.03);
    }

    #[test]
    fn skewed_gradient_distribution() {
        // Figure 4-like mass near zero: t-digest must resolve the tails.
        let mut rng = StdRng::seed_from_u64(75);
        let data: Vec<f64> = (0..50_000)
            .map(|_| {
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                sign * rng.gen::<f64>().powi(6) * 0.35
            })
            .collect();
        let mut td = TDigest::new(128.0).unwrap();
        td.extend_from_slice(&data);
        for phi in [0.05, 0.5, 0.95] {
            let err = rank_err(&data, &td, phi);
            assert!(err < 0.02, "phi={phi}: {err}");
        }
        let splits = td.splits(16).unwrap();
        assert_eq!(splits.len(), 17);
        for w in splits.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn invalid_and_empty() {
        assert!(TDigest::new(5.0).is_err());
        let td = TDigest::new(50.0).unwrap();
        assert!(td.query(0.5).is_err());
        assert_eq!(td.min(), None);
    }

    #[test]
    fn single_value() {
        let mut td = TDigest::new(50.0).unwrap();
        td.insert(7.5);
        for phi in [0.0, 0.5, 1.0] {
            assert_eq!(td.query(phi).unwrap(), 7.5);
        }
    }
}
