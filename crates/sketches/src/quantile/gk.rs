//! The Greenwald–Khanna ε-approximate quantile summary (paper §2.3).
//!
//! The summary `S(n, k)` is an ordered sequence of tuples `(v, g, Δ)` where
//! `v` is a stored item, `g` is the gap between this tuple's minimum possible
//! rank and the previous tuple's, and `Δ` bounds the uncertainty:
//! `rmin(v_i) = Σ_{j<=i} g_j` and `rmax(v_i) = rmin(v_i) + Δ_i`. The
//! invariant `g_i + Δ_i <= ⌊2εn⌋ + 1` guarantees that any rank query can be
//! answered within `εn`.
//!
//! This implementation follows the original paper's simple (band-free)
//! compression rule: adjacent tuples are merged whenever doing so preserves
//! the invariant. The space bound is slightly worse than with banding but
//! the error guarantee is identical, which is what the SketchML pipeline and
//! the Appendix A.1 variance analysis rely on.

use crate::error::SketchError;
use crate::quantile::QuantileSketch;
use serde::{Deserialize, Serialize};

/// One `(v, g, Δ)` entry of the summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Tuple {
    value: f64,
    gap: u64,
    delta: u64,
}

/// Greenwald–Khanna quantile summary with deterministic `εn` rank error.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GkSummary {
    epsilon: f64,
    tuples: Vec<Tuple>,
    count: u64,
    /// Inserts since the last compression pass.
    since_compress: u64,
}

impl GkSummary {
    /// Creates a summary with rank error at most `epsilon * n`.
    ///
    /// # Errors
    /// Returns [`SketchError::InvalidParameter`] unless `0 < epsilon < 1`.
    pub fn new(epsilon: f64) -> Result<Self, SketchError> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(SketchError::invalid(
                "epsilon",
                format!("must be in (0, 1), got {epsilon}"),
            ));
        }
        Ok(GkSummary {
            epsilon,
            tuples: Vec::new(),
            count: 0,
            since_compress: 0,
        })
    }

    /// Creates a summary sized for `q` equi-depth buckets: `ε = 1 / (4q)`,
    /// so each bucket's population deviates from `n/q` by at most `n/(2q)`.
    pub fn for_buckets(q: usize) -> Result<Self, SketchError> {
        if q == 0 {
            return Err(SketchError::invalid("q", "need at least one bucket"));
        }
        Self::new(1.0 / (4.0 * q as f64))
    }

    /// The configured rank-error fraction ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of tuples currently stored (the summary size `m` of §2.1).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the summary holds no items.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// `⌊2εn⌋`, the maximum allowed `g + Δ` minus one.
    #[inline]
    fn threshold(&self) -> u64 {
        (2.0 * self.epsilon * self.count as f64).floor() as u64
    }

    /// Merges adjacent tuples while the invariant `g_i + g_{i+1} + Δ_{i+1}
    /// <= 2εn` holds (the paper's `prune` of §2.3; classically "COMPRESS").
    pub fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        let threshold = self.threshold();
        let mut out: Vec<Tuple> = Vec::with_capacity(self.tuples.len());
        out.push(self.tuples[0]);
        // Never merge into the final tuple's position from the left in a way
        // that removes the maximum; iterate keeping tuple i only if it cannot
        // be folded into its successor.
        for i in 1..self.tuples.len() {
            let cur = self.tuples[i];
            // Try to fold the previously kept tuple into `cur`.
            let prev = *out.last().expect("out is non-empty");
            let is_prev_first = out.len() == 1;
            if !is_prev_first && prev.gap + cur.gap + cur.delta <= threshold {
                out.pop();
                let merged = Tuple {
                    value: cur.value,
                    gap: prev.gap + cur.gap,
                    delta: cur.delta,
                };
                out.push(merged);
            } else {
                out.push(cur);
            }
        }
        self.tuples = out;
        self.since_compress = 0;
    }

    /// Prunes the summary to at most `k + 1` tuples by sampling tuples at
    /// evenly spaced ranks (paper §2.3: "the prune operation reduces the
    /// number of summaries to avoid exceeding the maximal size"). The rank
    /// error grows by at most `n / (2k)`.
    pub fn prune_to(&mut self, k: usize) {
        if k == 0 || self.tuples.len() <= k + 1 {
            return;
        }
        let mut kept: Vec<Tuple> = Vec::with_capacity(k + 1);
        let first = self.tuples[0];
        kept.push(first);
        // Cumulative rmin/rmax walk, keeping the tuple whose rmin first
        // crosses each target rank i*n/k.
        let n = self.count as f64;
        let mut rmin: u64 = first.gap;
        let mut kept_gap_sum: u64 = first.gap;
        let mut target_idx = 1usize;
        for t in &self.tuples[1..] {
            rmin += t.gap;
            let target = (target_idx as f64 * n / k as f64).ceil() as u64;
            let is_last_tuple = (t.value, t.gap, t.delta)
                == (
                    self.tuples[self.tuples.len() - 1].value,
                    self.tuples[self.tuples.len() - 1].gap,
                    self.tuples[self.tuples.len() - 1].delta,
                );
            if rmin >= target || is_last_tuple {
                // The kept tuple's gap absorbs everything skipped since the
                // previously kept tuple so ranks stay consistent.
                kept.push(Tuple {
                    value: t.value,
                    gap: rmin - kept_gap_sum,
                    delta: t.delta,
                });
                kept_gap_sum = rmin;
                while (target_idx as f64 * n / k as f64).ceil() as u64 <= rmin {
                    target_idx += 1;
                }
            }
        }
        // Always retain the maximum.
        let last = self.tuples[self.tuples.len() - 1];
        if kept.last().map(|t| t.value) != Some(last.value) {
            kept.push(Tuple {
                value: last.value,
                gap: self.count - kept_gap_sum,
                delta: 0,
            });
        }
        self.tuples = kept;
    }

    /// Merges another summary into this one (paper §2.3 "merge").
    ///
    /// The merged summary answers rank queries over the union with error at
    /// most `max(ε₁, ε₂) + ...` per the Greenwald–Khanna combine rule: a
    /// tuple drawn from one summary widens its `Δ` by the local uncertainty
    /// of the other summary around its value.
    pub fn merge(&mut self, other: &GkSummary) {
        if other.tuples.is_empty() {
            return;
        }
        if self.tuples.is_empty() {
            self.tuples = other.tuples.clone();
            self.count = other.count;
            self.epsilon = self.epsilon.max(other.epsilon);
            return;
        }

        let a = &self.tuples;
        let b = &other.tuples;
        let mut merged: Vec<Tuple> = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        // Uncertainty contributed by the *other* summary when a tuple from
        // one side lands between two tuples of the other: the gap + delta of
        // the next tuple on that side (0 past the end).
        let spread = |tuples: &[Tuple], idx: usize| -> u64 {
            if idx < tuples.len() {
                tuples[idx].gap + tuples[idx].delta
            } else {
                0
            }
        };
        while i < a.len() || j < b.len() {
            let take_a = match (a.get(i), b.get(j)) {
                (Some(x), Some(y)) => x.value <= y.value,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!("loop condition guarantees an element"),
            };
            if take_a {
                let mut t = a[i];
                t.delta += spread(b, j).saturating_sub(1);
                merged.push(t);
                i += 1;
            } else {
                let mut t = b[j];
                t.delta += spread(a, i).saturating_sub(1);
                merged.push(t);
                j += 1;
            }
        }
        self.tuples = merged;
        self.count += other.count;
        self.epsilon = self.epsilon.max(other.epsilon);
        self.compress();
    }
}

impl QuantileSketch for GkSummary {
    fn insert(&mut self, value: f64) {
        debug_assert!(value.is_finite(), "GK summary requires finite values");
        self.count += 1;
        let threshold = self.threshold();
        // Position of the first tuple with a strictly larger value.
        let pos = self.tuples.partition_point(|t| t.value <= value);
        let delta = if pos == 0 || pos == self.tuples.len() {
            0 // new minimum or maximum: rank known exactly at insertion time
        } else {
            threshold.saturating_sub(1)
        };
        self.tuples.insert(
            pos,
            Tuple {
                value,
                gap: 1,
                delta,
            },
        );
        self.since_compress += 1;
        let period = (1.0 / (2.0 * self.epsilon)).floor() as u64;
        if self.since_compress >= period.max(1) {
            self.compress();
        }
    }

    fn count(&self) -> u64 {
        self.count
    }

    fn min(&self) -> Option<f64> {
        self.tuples.first().map(|t| t.value)
    }

    fn max(&self) -> Option<f64> {
        self.tuples.last().map(|t| t.value)
    }

    fn query(&self, phi: f64) -> Result<f64, SketchError> {
        if self.tuples.is_empty() {
            return Err(SketchError::Empty);
        }
        let phi = phi.clamp(0.0, 1.0);
        if phi == 0.0 {
            return Ok(self.tuples[0].value);
        }
        if phi == 1.0 {
            return Ok(self.tuples[self.tuples.len() - 1].value);
        }
        let target = (phi * self.count as f64).ceil().max(1.0);
        let allowed = self.epsilon * self.count as f64;
        // Among tuples satisfying the classic feasibility condition
        // (rmin >= target - εn and rmax <= target + εn, guaranteed to exist
        // by the summary invariant), pick the one whose plausible-rank
        // midpoint is nearest the target. This keeps the εn worst case while
        // improving the average over the first-feasible rule.
        let mut rmin: u64 = 0;
        let mut best = self.tuples[0].value;
        let mut best_dist = f64::INFINITY;
        let mut found_feasible = false;
        for t in &self.tuples {
            rmin += t.gap;
            let rmax = rmin + t.delta;
            let feasible = rmin as f64 >= target - allowed && rmax as f64 <= target + allowed;
            if found_feasible && !feasible {
                continue;
            }
            let mid = (rmin + rmax) as f64 / 2.0;
            let dist = (mid - target).abs();
            if (feasible && !found_feasible) || dist < best_dist {
                best_dist = dist;
                best = t.value;
                found_feasible |= feasible;
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::exact_rank;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn check_rank_error(data: &mut [f64], epsilon: f64) {
        let mut gk = GkSummary::new(epsilon).unwrap();
        for &v in data.iter() {
            gk.insert(v);
        }
        data.sort_by(f64::total_cmp);
        let n = data.len() as f64;
        for phi_pct in [1u32, 5, 10, 25, 50, 75, 90, 95, 99] {
            let phi = phi_pct as f64 / 100.0;
            let est = gk.query(phi).unwrap();
            let rank = exact_rank(data, est) as f64;
            let err = (rank - phi * n).abs();
            assert!(
                err <= (epsilon * n).ceil() + 1.0,
                "phi={phi}: rank err {err} > eps*n={}",
                epsilon * n
            );
        }
    }

    #[test]
    fn exact_on_small_inputs() {
        let mut gk = GkSummary::new(0.01).unwrap();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            gk.insert(v);
        }
        assert_eq!(gk.query(0.0).unwrap(), 1.0);
        assert_eq!(gk.query(1.0).unwrap(), 5.0);
        let med = gk.query(0.5).unwrap();
        assert!((2.0..=4.0).contains(&med), "median {med} out of tolerance");
    }

    #[test]
    fn rank_error_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut data: Vec<f64> = (0..20_000).map(|_| rng.gen::<f64>()).collect();
        check_rank_error(&mut data, 0.01);
    }

    #[test]
    fn rank_error_skewed() {
        // Gradient-like distribution: most mass near zero (paper Figure 4).
        let mut rng = StdRng::seed_from_u64(2);
        let mut data: Vec<f64> = (0..20_000)
            .map(|_| {
                let u: f64 = rng.gen();
                u.powi(6) * 0.35 // heavy concentration near 0
            })
            .collect();
        check_rank_error(&mut data, 0.01);
    }

    #[test]
    fn rank_error_sorted_and_reversed_input() {
        let mut asc: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        check_rank_error(&mut asc.clone(), 0.02);
        asc.reverse();
        check_rank_error(&mut asc, 0.02);
    }

    #[test]
    fn space_stays_sublinear() {
        let mut gk = GkSummary::new(0.01).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100_000 {
            gk.insert(rng.gen::<f64>());
        }
        // GK guarantees O((1/eps) * log(eps n)); allow a loose multiple.
        assert!(
            gk.len() < 4_000,
            "summary grew to {} tuples for 100k inserts at eps=0.01",
            gk.len()
        );
    }

    #[test]
    fn merge_preserves_rank_error() {
        let mut rng = StdRng::seed_from_u64(4);
        let data_a: Vec<f64> = (0..8_000).map(|_| rng.gen::<f64>()).collect();
        let data_b: Vec<f64> = (0..12_000).map(|_| rng.gen::<f64>() * 2.0).collect();
        let mut a = GkSummary::new(0.01).unwrap();
        let mut b = GkSummary::new(0.01).unwrap();
        a.extend_from_slice(&data_a);
        b.extend_from_slice(&data_b);
        a.merge(&b);
        assert_eq!(a.count(), 20_000);

        let mut all = data_a;
        all.extend_from_slice(&data_b);
        all.sort_by(f64::total_cmp);
        let n = all.len() as f64;
        for phi in [0.1, 0.5, 0.9] {
            let est = a.query(phi).unwrap();
            let rank = exact_rank(&all, est) as f64;
            // Merge is allowed to roughly double the error.
            assert!(
                (rank - phi * n).abs() <= 3.0 * 0.01 * n,
                "phi={phi}: rank {rank} vs target {}",
                phi * n
            );
        }
    }

    #[test]
    fn merge_into_empty_and_from_empty() {
        let mut a = GkSummary::new(0.05).unwrap();
        let mut b = GkSummary::new(0.05).unwrap();
        b.extend_from_slice(&[1.0, 2.0, 3.0]);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.query(1.0).unwrap(), 3.0);
        let empty = GkSummary::new(0.05).unwrap();
        a.merge(&empty);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn splits_are_monotone_and_equi_depth() {
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<f64> = (0..50_000).map(|_| rng.gen::<f64>()).collect();
        let mut gk = GkSummary::for_buckets(16).unwrap();
        gk.extend_from_slice(&data);
        let splits = gk.splits(16).unwrap();
        assert_eq!(splits.len(), 17);
        for w in splits.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // Equi-depth: each bucket should hold roughly n/16 items.
        let mut sorted = data.clone();
        sorted.sort_by(f64::total_cmp);
        for w in splits.windows(2) {
            let cnt = sorted.iter().filter(|&&x| x >= w[0] && x < w[1]).count();
            let expect = data.len() / 16;
            assert!(
                (cnt as i64 - expect as i64).unsigned_abs() < expect as u64 / 2 + 100,
                "bucket [{}, {}) holds {cnt}, expected ~{expect}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn invalid_epsilon_rejected() {
        assert!(GkSummary::new(0.0).is_err());
        assert!(GkSummary::new(1.0).is_err());
        assert!(GkSummary::new(-0.1).is_err());
        assert!(GkSummary::for_buckets(0).is_err());
    }

    #[test]
    fn query_empty_errors() {
        let gk = GkSummary::new(0.1).unwrap();
        assert_eq!(gk.query(0.5), Err(SketchError::Empty));
    }

    #[test]
    fn duplicate_values_are_handled() {
        let mut gk = GkSummary::new(0.01).unwrap();
        for _ in 0..1000 {
            gk.insert(7.0);
        }
        for phi in [0.0, 0.3, 0.5, 1.0] {
            assert_eq!(gk.query(phi).unwrap(), 7.0);
        }
    }

    #[test]
    fn prune_to_bounds_size_and_keeps_accuracy() {
        let mut rng = StdRng::seed_from_u64(99);
        let data: Vec<f64> = (0..50_000).map(|_| rng.gen::<f64>()).collect();
        let mut gk = GkSummary::new(0.002).unwrap();
        gk.extend_from_slice(&data);
        let before = gk.len();
        gk.prune_to(64);
        assert!(gk.len() <= 66, "pruned to {} tuples", gk.len());
        assert!(gk.len() < before);
        // Extremes survive.
        let mut sorted = data.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(gk.min().unwrap(), sorted[0]);
        assert_eq!(gk.max().unwrap(), *sorted.last().unwrap());
        // Rank error degrades gracefully to ~n/(2k).
        for phi in [0.25, 0.5, 0.75] {
            let est = gk.query(phi).unwrap();
            let rank = exact_rank(&sorted, est) as f64;
            let err = (rank - phi * data.len() as f64).abs();
            assert!(
                err <= data.len() as f64 / 64.0 + data.len() as f64 * 0.002 + 2.0,
                "phi={phi}: rank error {err} after prune"
            );
        }
    }

    #[test]
    fn prune_to_noop_on_small_summaries() {
        let mut gk = GkSummary::new(0.1).unwrap();
        gk.extend_from_slice(&[1.0, 2.0, 3.0]);
        let before = gk.len();
        gk.prune_to(64);
        assert_eq!(gk.len(), before);
        gk.prune_to(0);
        assert_eq!(gk.len(), before);
    }
}
