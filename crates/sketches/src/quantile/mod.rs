//! Quantile sketches (paper §2.3).
//!
//! A quantile sketch summarizes a stream of comparable items in a small data
//! structure and answers rank queries `phi ∈ [0, 1]` approximately. SketchML
//! uses one to derive *equi-depth* bucket boundaries for gradient values
//! (§3.2 Step 1): `q` averaged quantiles `{0, 1/q, …, (q-1)/q}` plus the
//! maximum value become the `q + 1` split points of `q` buckets, each of
//! which holds (approximately) the same *number* of gradient values.
//!
//! Two implementations are provided:
//!
//! - [`GkSummary`], the classic Greenwald–Khanna summary with deterministic
//!   `εn` rank error and explicit `merge`/`prune` operations;
//! - [`MergingQuantileSketch`], a compactor-based mergeable sketch in the
//!   style of Yahoo DataSketches (the library the paper's prototype calls),
//!   faster to update and the default choice of the compression pipeline;
//! - [`TDigest`], the tail-accurate industry-standard alternative, kept as
//!   a third backend and benchmarked against the other two.

mod gk;
mod merging;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub(crate) mod sort128;
mod tdigest;

pub use gk::GkSummary;
pub use merging::MergingQuantileSketch;
pub use tdigest::TDigest;

use crate::error::SketchError;

/// Common interface of the quantile sketches.
pub trait QuantileSketch {
    /// Inserts one item into the sketch.
    fn insert(&mut self, value: f64);

    /// Total number of items inserted so far.
    fn count(&self) -> u64;

    /// Smallest item seen so far, or `None` if empty.
    fn min(&self) -> Option<f64>;

    /// Largest item seen so far, or `None` if empty.
    fn max(&self) -> Option<f64>;

    /// Approximate value whose rank is `phi * count()`, `phi ∈ [0, 1]`.
    ///
    /// `phi = 0` returns the minimum and `phi = 1` the maximum.
    fn query(&self, phi: f64) -> Result<f64, SketchError>;

    /// Equi-depth split points for `q` buckets: the values at quantiles
    /// `{0, 1/q, …, (q-1)/q, 1}` (paper §3.2 Step 1 (2)–(3)).
    ///
    /// The returned vector has `q + 1` monotonically non-decreasing entries;
    /// bucket `i` covers `[splits[i], splits[i + 1])` (the last bucket is
    /// closed on both sides).
    fn splits(&self, q: usize) -> Result<Vec<f64>, SketchError> {
        if q == 0 {
            return Err(SketchError::invalid("q", "need at least one bucket"));
        }
        if self.count() == 0 {
            return Err(SketchError::Empty);
        }
        let mut out = Vec::with_capacity(q + 1);
        for i in 0..=q {
            out.push(self.query(i as f64 / q as f64)?);
        }
        // Guard against tiny non-monotonicities from independent queries.
        for i in 1..out.len() {
            if out[i] < out[i - 1] {
                out[i] = out[i - 1];
            }
        }
        Ok(out)
    }

    /// Inserts every item of `values`.
    fn extend_from_slice(&mut self, values: &[f64]) {
        for &v in values {
            self.insert(v);
        }
    }
}

/// Exact rank of `value` within `data` (number of elements `<= value`).
/// Test helper shared by the unit tests of both sketch implementations.
#[cfg(test)]
pub(crate) fn exact_rank(data: &[f64], value: f64) -> usize {
    data.iter().filter(|&&x| x <= value).count()
}
