//! A mergeable, compactor-based quantile sketch.
//!
//! This plays the role of Yahoo DataSketches in the paper's prototype (§3.2
//! Step 1 (1): "Here we choose Yahoo DataSketches, a state-of-the-art
//! quantile sketch"). The design follows the KLL/Manku-style compactor
//! hierarchy: level `l` holds items of weight `2^l`; when a level buffer
//! reaches capacity `k` it is sorted and *compacted* — every other item
//! (random parity) survives and is promoted to level `l + 1`, halving the
//! stored item count while preserving ranks in expectation.
//!
//! With capacity `k` per level the standard analysis gives rank error
//! `O(log(n/k) / k)·n`; `k = 256` comfortably exceeds the paper's "99%
//! correctness at m = 256" reference point for the sizes we process.

use crate::error::SketchError;
use crate::hash::mix64;
use crate::quantile::QuantileSketch;
use serde::{Deserialize, Serialize};

/// Default per-level buffer capacity (the paper's default sketch size
/// `m = 128`; see §4.1 "The size of quantile sketch is 128 by default").
pub const DEFAULT_CAPACITY: usize = 128;

/// Stack budget (in items) for the key-space sort below; level buffers at
/// the default capacities stay far under this, and larger buffers fall back
/// to the comparator sort.
const SORT_STACK: usize = 512;

/// Maps f64 bits to a u64 whose *unsigned* order equals [`f64::total_cmp`]
/// order. Bijective — see [`from_total_key`] — and equal keys correspond to
/// bitwise-identical floats, so sorting keys and mapping back is exactly
/// `sort_unstable_by(f64::total_cmp)`.
#[inline]
fn total_key(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Inverse of [`total_key`].
#[inline]
fn from_total_key(k: u64) -> f64 {
    f64::from_bits(if k >> 63 == 1 { k & !(1 << 63) } else { !k })
}

/// Sorts `buf` exactly as `buf.sort_unstable_by(f64::total_cmp)` would, but
/// through the integer key space: one u64 compare per comparison instead of
/// total_cmp's sign-magnitude transform on both operands every time. Level
/// buffers above level 0 are concatenations of the sorted halves emitted by
/// prior compactions, so the common case is detected and resolved with a
/// linear two-run merge instead of a full sort.
fn sort_total(buf: &mut [f64]) {
    let n = buf.len();
    if n > SORT_STACK {
        buf.sort_unstable_by(f64::total_cmp);
        return;
    }
    let mut key_buf = [0u64; SORT_STACK];
    let keys = &mut key_buf[..n];
    for (k, &v) in keys.iter_mut().zip(buf.iter()) {
        *k = total_key(v);
    }
    // Detect presorted runs: `split` = end of the first ascending run.
    let mut split = 1;
    while split < n && keys[split - 1] <= keys[split] {
        split += 1;
    }
    if split < n {
        let mut i = split + 1;
        while i < n && keys[i - 1] <= keys[i] {
            i += 1;
        }
        if i == n {
            // Exactly two sorted runs. Compactions emit sorted 64-chunks, so
            // full upper-level buffers are two 64-runs — the in-register
            // bitonic merge's exact shape.
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            if n == 128 && split == 64 && crate::simd::lanes512_active() {
                debug_parity(keys, |k| {
                    // SAFETY: AVX-512F verified by `lanes512_active`.
                    unsafe { super::sort128::merge_halves_128(k) };
                });
                for (v, &k) in buf.iter_mut().zip(keys.iter()) {
                    *v = from_total_key(k);
                }
                return;
            }
            // Linear merge through an aux buffer.
            let mut aux = [0u64; SORT_STACK];
            merge_runs(keys, &mut aux[..n], split);
            keys.copy_from_slice(&aux[..n]);
        } else {
            // Random contents: the level-0 case, almost always exactly the
            // compactor capacity of 128 — sorted branch-free in zmm
            // registers when AVX-512F is available.
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            if n == 128 && crate::simd::lanes512_active() {
                debug_parity(keys, |k| {
                    // SAFETY: AVX-512F verified by `lanes512_active`.
                    unsafe { super::sort128::sort_128(k) };
                });
                for (v, &k) in buf.iter_mut().zip(keys.iter()) {
                    *v = from_total_key(k);
                }
                return;
            }
            keys.sort_unstable();
        }
    }
    for (v, &k) in buf.iter_mut().zip(keys.iter()) {
        *v = from_total_key(k);
    }
}

/// Runs `f` on `keys` and, in debug builds, asserts the result is identical
/// to `sort_unstable` (u64 duplicates are interchangeable, so every correct
/// sort of the same multiset produces the same bytes).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn debug_parity(keys: &mut [u64], f: impl FnOnce(&mut [u64])) {
    #[cfg(debug_assertions)]
    let mut reference = keys.to_vec();
    f(keys);
    #[cfg(debug_assertions)]
    {
        reference.sort_unstable();
        assert_eq!(keys, reference.as_slice(), "SIMD sort diverged from scalar");
    }
}

/// Merges the two ascending runs `src[..half]` and `src[half..]` into `dst`
/// (`dst.len() == src.len()`), taking from the left run on ties. The select
/// is branch-free — random compactor contents make every comparison a coin
/// flip, so the classic `if a <= b` merge mispredicts on every other
/// element.
#[inline]
fn merge_runs(src: &[u64], dst: &mut [u64], half: usize) {
    let n = src.len();
    assert!(0 < half && half <= n && dst.len() == n);
    let (mut a, mut b) = (0usize, half);
    for d in dst.iter_mut() {
        // Clamped-index loads are always in bounds, so the exhaustion guard
        // is a register select (cmov) over an already-loaded value instead
        // of a branch around a load. An exhausted run presents `u64::MAX`,
        // which no real key equals: that would be the total-order key of an
        // f64 with all exponent bits set (a NaN), rejected at insert.
        // SAFETY: `a.min(half - 1) < half <= n` and `b.min(n - 1) < n`.
        let ka_raw = unsafe { *src.get_unchecked(a.min(half - 1)) };
        let kb_raw = unsafe { *src.get_unchecked(b.min(n - 1)) };
        let ka = if a < half { ka_raw } else { u64::MAX };
        let kb = if b < n { kb_raw } else { u64::MAX };
        let take_a = ka <= kb;
        *d = if take_a { ka } else { kb };
        a += take_a as usize;
        b += 1 - take_a as usize;
    }
}

/// Mergeable quantile sketch built from a hierarchy of compactor buffers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MergingQuantileSketch {
    capacity: usize,
    /// `levels[l]` holds items of weight `2^l`, unsorted.
    levels: Vec<Vec<f64>>,
    count: u64,
    min: f64,
    max: f64,
    /// Deterministic parity source so runs are reproducible.
    rng_state: u64,
}

impl MergingQuantileSketch {
    /// Creates a sketch whose per-level buffers hold `capacity` items.
    ///
    /// # Errors
    /// Returns [`SketchError::InvalidParameter`] if `capacity < 2`.
    pub fn new(capacity: usize) -> Result<Self, SketchError> {
        if capacity < 2 {
            return Err(SketchError::invalid(
                "capacity",
                format!("must be at least 2, got {capacity}"),
            ));
        }
        Ok(MergingQuantileSketch {
            capacity,
            levels: vec![Vec::with_capacity(capacity)],
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            rng_state: 0x5EED_5EED_5EED_5EED,
        })
    }

    /// Creates a sketch with the paper's default size (`m = 128`).
    pub fn with_default_capacity() -> Self {
        Self::new(DEFAULT_CAPACITY).expect("default capacity is valid")
    }

    /// Per-level buffer capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently retained across all levels (space cost).
    pub fn retained(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Deterministic pseudo-random bit for compaction parity.
    fn next_bit(&mut self) -> bool {
        self.rng_state = mix64(self.rng_state);
        self.rng_state & 1 == 1
    }

    /// Compacts level `l` into level `l + 1`.
    fn compact_level(&mut self, l: usize) {
        if self.levels.len() <= l + 1 {
            self.levels.push(Vec::with_capacity(self.capacity));
        }
        let mut buf = std::mem::take(&mut self.levels[l]);
        // Items equal under `total_cmp` are bitwise identical, so any
        // unstable reorder yields the same array (and the same survivors).
        sort_total(&mut buf);
        let offset = usize::from(self.next_bit());
        self.levels[l + 1].extend(buf.iter().skip(offset).step_by(2).copied());
        // Put the (cleared) buffer back so its capacity is reused.
        self.levels[l] = buf;
        self.levels[l].clear();
    }

    /// Cascades compactions until every level is within capacity.
    fn maybe_compact(&mut self) {
        let mut l = 0;
        while l < self.levels.len() {
            if self.levels[l].len() >= self.capacity {
                self.compact_level(l);
            }
            l += 1;
        }
    }

    /// Merges another sketch into this one. Error grows to the max of the
    /// two sketches' errors plus at most one extra compaction round.
    pub fn merge(&mut self, other: &MergingQuantileSketch) {
        for (l, buf) in other.levels.iter().enumerate() {
            if buf.is_empty() {
                continue;
            }
            while self.levels.len() <= l {
                self.levels.push(Vec::with_capacity(self.capacity));
            }
            self.levels[l].extend_from_slice(buf);
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.maybe_compact();
    }

    /// All retained `(value, weight)` pairs, sorted by value.
    fn weighted_items(&self) -> Vec<(f64, u64)> {
        let mut items: Vec<(f64, u64)> = Vec::new();
        self.weighted_items_into(&mut items);
        items
    }

    /// Fills `items` (cleared first) with the retained `(value, weight)`
    /// pairs, sorted by value. Reordering of equal-value items by the
    /// unstable sort is immaterial: the rank scans in `query`/`splits` only
    /// emit values, and any permutation of an equal-value run crosses each
    /// rank target at the same value with the same cumulative weight at the
    /// run's exit.
    fn weighted_items_into(&self, items: &mut Vec<(f64, u64)>) {
        items.clear();
        items.reserve(self.retained());
        for (l, buf) in self.levels.iter().enumerate() {
            let w = 1u64 << l;
            items.extend(buf.iter().map(|&v| (v, w)));
        }
        items.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
    }

    /// Restores the sketch to its freshly-constructed state while keeping
    /// every level buffer's capacity. The parity source is re-seeded, so a
    /// reset sketch fed the same inserts produces *identical* splits to a
    /// brand-new sketch of the same capacity — the invariant the
    /// zero-allocation compression path relies on for byte-identical output.
    pub fn reset(&mut self) {
        for level in &mut self.levels {
            level.clear();
        }
        self.count = 0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
        self.rng_state = 0x5EED_5EED_5EED_5EED;
    }

    /// [`QuantileSketch::splits`] into reusable buffers: `items` is the
    /// weighted-item scratch, `out` receives the `q + 1` split points. Both
    /// are cleared first. Identical output to `splits`.
    ///
    /// # Errors
    /// Returns [`SketchError::InvalidParameter`] if `q == 0` and
    /// [`SketchError::Empty`] if nothing was inserted.
    pub fn splits_into(
        &self,
        q: usize,
        items: &mut Vec<(f64, u64)>,
        out: &mut Vec<f64>,
    ) -> Result<(), SketchError> {
        if q == 0 {
            return Err(SketchError::invalid("q", "need at least one bucket"));
        }
        if self.count == 0 {
            return Err(SketchError::Empty);
        }
        self.weighted_items_into(items);
        let total: u64 = items.iter().map(|&(_, w)| w).sum();
        out.clear();
        out.reserve(q + 1);
        out.push(self.min);
        let mut cum = 0u64;
        let mut iter = items.iter();
        let mut cur = iter.next();
        for i in 1..q {
            let target = ((i as f64 / q as f64) * total as f64).ceil().max(1.0) as u64;
            while let Some(&(v, w)) = cur {
                if cum + w >= target {
                    out.push(v.clamp(self.min, self.max));
                    break;
                }
                cum += w;
                cur = iter.next();
            }
            if out.len() < i + 1 {
                out.push(self.max);
            }
        }
        out.push(self.max);
        for i in 1..out.len() {
            if out[i] < out[i - 1] {
                out[i] = out[i - 1];
            }
        }
        Ok(())
    }
}

impl QuantileSketch for MergingQuantileSketch {
    fn insert(&mut self, value: f64) {
        debug_assert!(value.is_finite(), "quantile sketch requires finite values");
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.levels[0].push(value);
        if self.levels[0].len() >= self.capacity {
            self.maybe_compact();
        }
    }

    fn count(&self) -> u64 {
        self.count
    }

    fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Bulk insertion that replays [`QuantileSketch::insert`] exactly —
    /// level-0 fills to the same boundaries, so compaction parity and the
    /// resulting splits are bit-identical — while amortizing the capacity
    /// check and min/max bookkeeping over whole chunks.
    fn extend_from_slice(&mut self, values: &[f64]) {
        let mut rest = values;
        while !rest.is_empty() {
            let room = (self.capacity - self.levels[0].len()).max(1);
            let (chunk, tail) = rest.split_at(room.min(rest.len()));
            for &v in chunk {
                debug_assert!(v.is_finite(), "quantile sketch requires finite values");
                self.min = self.min.min(v);
                self.max = self.max.max(v);
            }
            self.count += chunk.len() as u64;
            self.levels[0].extend_from_slice(chunk);
            if self.levels[0].len() >= self.capacity {
                self.maybe_compact();
            }
            rest = tail;
        }
    }

    fn query(&self, phi: f64) -> Result<f64, SketchError> {
        if self.count == 0 {
            return Err(SketchError::Empty);
        }
        let phi = phi.clamp(0.0, 1.0);
        if phi == 0.0 {
            return Ok(self.min);
        }
        if phi == 1.0 {
            return Ok(self.max);
        }
        let items = self.weighted_items();
        let total: u64 = items.iter().map(|&(_, w)| w).sum();
        let target = (phi * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for &(v, w) in &items {
            cum += w;
            if cum >= target {
                return Ok(v.clamp(self.min, self.max));
            }
        }
        Ok(self.max)
    }

    /// Splits computed from a single materialization of the weighted items,
    /// so the `q + 1` queries cost one sort instead of `q + 1`.
    fn splits(&self, q: usize) -> Result<Vec<f64>, SketchError> {
        let mut items = Vec::new();
        let mut out = Vec::new();
        self.splits_into(q, &mut items, &mut out)?;
        Ok(out)
    }
}

impl Default for MergingQuantileSketch {
    fn default() -> Self {
        Self::with_default_capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::exact_rank;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn rank_error(data: &[f64], sketch: &MergingQuantileSketch, phi: f64) -> f64 {
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        let est = sketch.query(phi).unwrap();
        let rank = exact_rank(&sorted, est) as f64;
        (rank - phi * data.len() as f64).abs() / data.len() as f64
    }

    #[test]
    fn small_input_is_exact() {
        let mut s = MergingQuantileSketch::new(64).unwrap();
        for v in [3.0, 1.0, 2.0] {
            s.insert(v);
        }
        assert_eq!(s.query(0.0).unwrap(), 1.0);
        assert_eq!(s.query(1.0).unwrap(), 3.0);
        assert_eq!(s.query(0.5).unwrap(), 2.0);
    }

    #[test]
    fn rank_error_bounded_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let data: Vec<f64> = (0..50_000).map(|_| rng.gen::<f64>()).collect();
        let mut s = MergingQuantileSketch::new(256).unwrap();
        s.extend_from_slice(&data);
        for phi in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let err = rank_error(&data, &s, phi);
            assert!(err < 0.03, "phi={phi}: relative rank error {err}");
        }
    }

    #[test]
    fn rank_error_bounded_skewed() {
        let mut rng = StdRng::seed_from_u64(12);
        // Mimic Figure 4: values concentrated near zero, long negative tail.
        let data: Vec<f64> = (0..50_000)
            .map(|_| -(rng.gen::<f64>().powi(8) * 0.353) + 0.004 * rng.gen::<f64>())
            .collect();
        let mut s = MergingQuantileSketch::new(256).unwrap();
        s.extend_from_slice(&data);
        for phi in [0.05, 0.5, 0.95] {
            let err = rank_error(&data, &s, phi);
            assert!(err < 0.03, "phi={phi}: relative rank error {err}");
        }
    }

    #[test]
    fn retained_space_is_logarithmic() {
        let mut s = MergingQuantileSketch::new(128).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1_000_000 {
            s.insert(rng.gen());
        }
        // ~capacity per level, ~log2(n/k) levels.
        assert!(
            s.retained() <= 128 * 24,
            "retained {} items for 1M inserts",
            s.retained()
        );
    }

    #[test]
    fn merge_matches_union_quantiles() {
        let mut rng = StdRng::seed_from_u64(14);
        let a_data: Vec<f64> = (0..30_000).map(|_| rng.gen::<f64>()).collect();
        let b_data: Vec<f64> = (0..30_000).map(|_| 1.0 + rng.gen::<f64>()).collect();
        let mut a = MergingQuantileSketch::new(256).unwrap();
        let mut b = MergingQuantileSketch::new(256).unwrap();
        a.extend_from_slice(&a_data);
        b.extend_from_slice(&b_data);
        a.merge(&b);
        assert_eq!(a.count(), 60_000);
        let mut all = a_data;
        all.extend_from_slice(&b_data);
        let err = rank_error(&all, &a, 0.5);
        assert!(err < 0.04, "post-merge median error {err}");
        // Union median sits at the boundary of the two populations.
        let med = a.query(0.5).unwrap();
        assert!((0.9..=1.1).contains(&med), "median {med}");
    }

    #[test]
    fn splits_partition_equally() {
        let mut rng = StdRng::seed_from_u64(15);
        let data: Vec<f64> = (0..40_000).map(|_| rng.gen::<f64>()).collect();
        let mut s = MergingQuantileSketch::new(256).unwrap();
        s.extend_from_slice(&data);
        let q = 8;
        let splits = s.splits(q).unwrap();
        assert_eq!(splits.len(), q + 1);
        assert_eq!(splits[0], s.min().unwrap());
        assert_eq!(splits[q], s.max().unwrap());
        for w in splits.windows(2) {
            let cnt = data.iter().filter(|&&x| x >= w[0] && x < w[1]).count();
            let expect = data.len() / q;
            assert!(
                (cnt as f64 - expect as f64).abs() < expect as f64 * 0.35,
                "bucket [{}, {}): {cnt} vs {expect}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let build = || {
            let mut s = MergingQuantileSketch::new(64).unwrap();
            let mut rng = StdRng::seed_from_u64(16);
            for _ in 0..10_000 {
                s.insert(rng.gen());
            }
            s.query(0.5).unwrap()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn reset_sketch_reproduces_fresh_sketch_exactly() {
        let mut rng = StdRng::seed_from_u64(17);
        let data_a: Vec<f64> = (0..20_000).map(|_| rng.gen::<f64>()).collect();
        let data_b: Vec<f64> = (0..7_000).map(|_| rng.gen::<f64>() - 0.5).collect();

        let mut reused = MergingQuantileSketch::new(128).unwrap();
        reused.extend_from_slice(&data_a);
        let _ = reused.splits(64).unwrap();
        reused.reset();
        assert_eq!(reused.count(), 0);
        assert_eq!(reused.min(), None);
        reused.extend_from_slice(&data_b);

        let mut fresh = MergingQuantileSketch::new(128).unwrap();
        fresh.extend_from_slice(&data_b);

        // Bit-identical, not just approximately equal: the compression hot
        // path reuses one sketch across gradients and must produce the same
        // bytes a fresh sketch would.
        assert_eq!(reused.splits(64).unwrap(), fresh.splits(64).unwrap());
        assert_eq!(reused.query(0.5).unwrap(), fresh.query(0.5).unwrap());
    }

    #[test]
    fn splits_into_matches_splits() {
        let mut rng = StdRng::seed_from_u64(18);
        let data: Vec<f64> = (0..30_000).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
        let mut s = MergingQuantileSketch::new(256).unwrap();
        s.extend_from_slice(&data);
        let mut items = vec![(9.0, 9u64)]; // stale scratch must be cleared
        let mut out = vec![1.0, 2.0];
        for q in [1usize, 2, 7, 64, 256] {
            s.splits_into(q, &mut items, &mut out).unwrap();
            assert_eq!(out, s.splits(q).unwrap(), "q={q}");
        }
        assert!(s.splits_into(0, &mut items, &mut out).is_err());
        let empty = MergingQuantileSketch::new(64).unwrap();
        assert_eq!(
            empty.splits_into(4, &mut items, &mut out),
            Err(SketchError::Empty)
        );
    }

    #[test]
    fn empty_and_invalid() {
        let s = MergingQuantileSketch::new(64).unwrap();
        assert_eq!(s.query(0.5), Err(SketchError::Empty));
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert!(MergingQuantileSketch::new(1).is_err());
        assert!(s.splits(0).is_err());
    }

    #[test]
    fn single_item() {
        let mut s = MergingQuantileSketch::new(64).unwrap();
        s.insert(42.0);
        for phi in [0.0, 0.5, 1.0] {
            assert_eq!(s.query(phi).unwrap(), 42.0);
        }
        let splits = s.splits(4).unwrap();
        assert!(splits.iter().all(|&v| v == 42.0));
    }
}
