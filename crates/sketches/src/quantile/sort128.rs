//! AVX-512F in-register sort of exactly 128 `u64` keys.
//!
//! The merging quantile sketch compacts level buffers of the default
//! capacity 128, so the encode hot path sorts the same size millions of
//! times. This kernel sorts 128 keys entirely in zmm registers — no
//! data-dependent branches, so no mispredictions on random compactor
//! contents (where comparison-based sorts mispredict roughly every other
//! compare):
//!
//! 1. **Column sort** — the keys are viewed as 16 vectors × 8 lanes and a
//!    Batcher odd-even 16-input network ([`COLSORT16`], 63 compare-exchanges)
//!    runs *vertically*: one `vpminuq`/`vpmaxuq` pair per comparator sorts
//!    all 8 lane-columns at once.
//! 2. **Transpose** — two 8×8 qword transposes turn the 8 sorted columns
//!    into 8 contiguous sorted 16-runs (two vectors each).
//! 3. **Bitonic merge rounds** — 16+16 → 32 → 64 → 128 with the classic
//!    reverse-and-clean bitonic merge; intra-vector cleaning uses the three
//!    masked distance-4/2/1 stages.
//!
//! The final 64+64 round doubles as [`merge_halves_128`] for level buffers
//! that are a concatenation of two sorted 64-runs (every compaction emits
//! sorted 64-chunks, so upper levels hit exactly that shape).
//!
//! The scalar reference is plain `sort_unstable` — u64 duplicates are
//! interchangeable, so any correct sort yields the identical byte sequence
//! and callers can (and in debug builds do) assert equality.

use core::arch::x86_64::{
    __m512i, _mm512_loadu_si512, _mm512_mask_mov_epi64, _mm512_max_epu64, _mm512_min_epu64,
    _mm512_permutexvar_epi64, _mm512_set_epi64, _mm512_shuffle_i64x2, _mm512_storeu_si512,
    _mm512_unpackhi_epi64, _mm512_unpacklo_epi64,
};

/// Batcher odd-even mergesort network for 16 inputs: 63 comparators in 10
/// layers. Exhaustively validated against the 0-1 principle in the tests.
pub(crate) const COLSORT16: [(u8, u8); 63] = [
    (0, 1),
    (2, 3),
    (4, 5),
    (6, 7),
    (8, 9),
    (10, 11),
    (12, 13),
    (14, 15),
    (0, 2),
    (1, 3),
    (4, 6),
    (5, 7),
    (8, 10),
    (9, 11),
    (12, 14),
    (13, 15),
    (1, 2),
    (5, 6),
    (9, 10),
    (13, 14),
    (0, 4),
    (1, 5),
    (2, 6),
    (3, 7),
    (8, 12),
    (9, 13),
    (10, 14),
    (11, 15),
    (2, 4),
    (3, 5),
    (10, 12),
    (11, 13),
    (1, 2),
    (3, 4),
    (5, 6),
    (9, 10),
    (11, 12),
    (13, 14),
    (0, 8),
    (1, 9),
    (2, 10),
    (3, 11),
    (4, 12),
    (5, 13),
    (6, 14),
    (7, 15),
    (4, 8),
    (5, 9),
    (6, 10),
    (7, 11),
    (2, 4),
    (3, 5),
    (6, 8),
    (7, 9),
    (10, 12),
    (11, 13),
    (1, 2),
    (3, 4),
    (5, 6),
    (7, 8),
    (9, 10),
    (11, 12),
    (13, 14),
];

/// Vector compare-exchange: after the call `w[a]` holds the lane-wise
/// minima and `w[b]` the maxima.
#[inline]
#[target_feature(enable = "avx512f")]
unsafe fn ce(w: &mut [__m512i; 16], a: usize, b: usize) {
    let lo = _mm512_min_epu64(w[a], w[b]);
    let hi = _mm512_max_epu64(w[a], w[b]);
    w[a] = lo;
    w[b] = hi;
}

/// Reverses the 8 lanes of `v`.
#[inline]
#[target_feature(enable = "avx512f")]
unsafe fn rev8(v: __m512i) -> __m512i {
    _mm512_permutexvar_epi64(_mm512_set_epi64(0, 1, 2, 3, 4, 5, 6, 7), v)
}

/// Sorts the bitonic 8-lane sequence in `v` ascending: masked distance-4,
/// -2, -1 compare-exchange stages (upper partner of each pair keeps the
/// max, selected by the lane mask).
#[inline]
#[target_feature(enable = "avx512f")]
unsafe fn clean8(v: __m512i) -> __m512i {
    let p = _mm512_permutexvar_epi64(_mm512_set_epi64(3, 2, 1, 0, 7, 6, 5, 4), v);
    let v = _mm512_mask_mov_epi64(_mm512_min_epu64(v, p), 0xF0, _mm512_max_epu64(v, p));
    let p = _mm512_permutexvar_epi64(_mm512_set_epi64(5, 4, 7, 6, 1, 0, 3, 2), v);
    let v = _mm512_mask_mov_epi64(_mm512_min_epu64(v, p), 0xCC, _mm512_max_epu64(v, p));
    let p = _mm512_permutexvar_epi64(_mm512_set_epi64(6, 7, 4, 5, 2, 3, 0, 1), v);
    _mm512_mask_mov_epi64(_mm512_min_epu64(v, p), 0xAA, _mm512_max_epu64(v, p))
}

/// Merges the two adjacent ascending runs `w[i0..i0+k]` and
/// `w[i0+k..i0+2k]` (each `k` vectors = `8k` keys) into one ascending run:
/// reverse the second run to form a bitonic sequence, then clean with
/// halving vector distances and a final per-vector [`clean8`].
#[inline]
#[target_feature(enable = "avx512f")]
unsafe fn bitonic_merge(w: &mut [__m512i; 16], i0: usize, k: usize) {
    for i in 0..k / 2 {
        let a = rev8(w[i0 + k + i]);
        let b = rev8(w[i0 + 2 * k - 1 - i]);
        w[i0 + k + i] = b;
        w[i0 + 2 * k - 1 - i] = a;
    }
    if k % 2 == 1 {
        w[i0 + k + k / 2] = rev8(w[i0 + k + k / 2]);
    }
    let mut d = k;
    while d >= 1 {
        let mut blk = 0;
        while blk < 2 * k {
            for i in 0..d {
                ce(w, i0 + blk + i, i0 + blk + i + d);
            }
            blk += 2 * d;
        }
        d /= 2;
    }
    for v in w[i0..i0 + 2 * k].iter_mut() {
        *v = clean8(*v);
    }
}

/// Transposes the 8×8 qword block `r` (rows → columns): qword unpacks pair
/// the rows, then two rounds of 128-bit-lane shuffles regroup them.
#[inline]
#[target_feature(enable = "avx512f")]
unsafe fn transpose8(r: &[__m512i]) -> [__m512i; 8] {
    let t0 = _mm512_unpacklo_epi64(r[0], r[1]);
    let t1 = _mm512_unpackhi_epi64(r[0], r[1]);
    let t2 = _mm512_unpacklo_epi64(r[2], r[3]);
    let t3 = _mm512_unpackhi_epi64(r[2], r[3]);
    let t4 = _mm512_unpacklo_epi64(r[4], r[5]);
    let t5 = _mm512_unpackhi_epi64(r[4], r[5]);
    let t6 = _mm512_unpacklo_epi64(r[6], r[7]);
    let t7 = _mm512_unpackhi_epi64(r[6], r[7]);
    let s0 = _mm512_shuffle_i64x2::<0x88>(t0, t2);
    let s1 = _mm512_shuffle_i64x2::<0x88>(t4, t6);
    let s2 = _mm512_shuffle_i64x2::<0xDD>(t0, t2);
    let s3 = _mm512_shuffle_i64x2::<0xDD>(t4, t6);
    let s4 = _mm512_shuffle_i64x2::<0x88>(t1, t3);
    let s5 = _mm512_shuffle_i64x2::<0x88>(t5, t7);
    let s6 = _mm512_shuffle_i64x2::<0xDD>(t1, t3);
    let s7 = _mm512_shuffle_i64x2::<0xDD>(t5, t7);
    [
        _mm512_shuffle_i64x2::<0x88>(s0, s1),
        _mm512_shuffle_i64x2::<0x88>(s4, s5),
        _mm512_shuffle_i64x2::<0x88>(s2, s3),
        _mm512_shuffle_i64x2::<0x88>(s6, s7),
        _mm512_shuffle_i64x2::<0xDD>(s0, s1),
        _mm512_shuffle_i64x2::<0xDD>(s4, s5),
        _mm512_shuffle_i64x2::<0xDD>(s2, s3),
        _mm512_shuffle_i64x2::<0xDD>(s6, s7),
    ]
}

/// Sorts `keys` (which must hold exactly 128 elements) ascending.
///
/// # Safety
/// The caller must have verified AVX-512F support (e.g. via
/// [`crate::simd::lanes512_active`]).
#[target_feature(enable = "avx512f")]
pub unsafe fn sort_128(keys: &mut [u64]) {
    assert_eq!(keys.len(), 128);
    let p = keys.as_mut_ptr();
    let mut v = [_mm512_loadu_si512(p.cast()); 16];
    for (i, slot) in v.iter_mut().enumerate().skip(1) {
        *slot = _mm512_loadu_si512(p.add(8 * i).cast());
    }
    for &(a, b) in &COLSORT16 {
        ce(&mut v, a as usize, b as usize);
    }
    // Lane-column `c` is now the sorted 16-run (rows 0..16, lane c); the
    // transposes make each run contiguous: top[c] = first 8, bot[c] = last 8.
    let top = transpose8(&v[..8]);
    let bot = transpose8(&v[8..]);
    let mut w = [top[0]; 16];
    for c in 0..8 {
        w[2 * c] = top[c];
        w[2 * c + 1] = bot[c];
    }
    for c in [0, 4, 8, 12] {
        bitonic_merge(&mut w, c, 2);
    }
    for c in [0, 8] {
        bitonic_merge(&mut w, c, 4);
    }
    bitonic_merge(&mut w, 0, 8);
    for (i, slot) in w.iter().enumerate() {
        _mm512_storeu_si512(p.add(8 * i).cast(), *slot);
    }
}

/// Merges `keys[..64]` and `keys[64..]`, each already sorted ascending, into
/// one sorted 128-run (the final round of [`sort_128`] on its own).
///
/// # Safety
/// As for [`sort_128`].
#[target_feature(enable = "avx512f")]
pub unsafe fn merge_halves_128(keys: &mut [u64]) {
    assert_eq!(keys.len(), 128);
    debug_assert!(keys[..64].windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(keys[64..].windows(2).all(|w| w[0] <= w[1]));
    let p = keys.as_mut_ptr();
    let mut w = [_mm512_loadu_si512(p.cast()); 16];
    for (i, slot) in w.iter_mut().enumerate().skip(1) {
        *slot = _mm512_loadu_si512(p.add(8 * i).cast());
    }
    bitonic_merge(&mut w, 0, 8);
    for (i, slot) in w.iter().enumerate() {
        _mm512_storeu_si512(p.add(8 * i).cast(), *slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    /// Applies [`COLSORT16`] to a scalar 16-array.
    fn apply_network(v: &mut [u64; 16]) {
        for &(a, b) in &COLSORT16 {
            let (x, y) = (v[a as usize], v[b as usize]);
            v[a as usize] = x.min(y);
            v[b as usize] = x.max(y);
        }
    }

    /// 0-1 principle: a comparator network sorts all inputs iff it sorts
    /// every 0-1 sequence; 16 inputs means 2^16 cases, checked exhaustively.
    #[test]
    fn colsort16_satisfies_zero_one_principle() {
        for bits in 0u32..(1 << 16) {
            let mut v = [0u64; 16];
            for (i, slot) in v.iter_mut().enumerate() {
                *slot = u64::from(bits >> i & 1);
            }
            let mut expect = v;
            expect.sort_unstable();
            apply_network(&mut v);
            assert_eq!(v, expect, "network fails on pattern {bits:#x}");
        }
    }

    #[test]
    fn sort_128_matches_sort_unstable() {
        if !crate::simd::lanes512_active() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(0x50A7);
        for case in 0..200 {
            let mut keys: Vec<u64> = match case % 4 {
                0 => (0..128).map(|_| rng.gen()).collect(),
                1 => (0..128).map(|_| rng.gen_range(0..16)).collect(),
                2 => (0..128u64).rev().collect(),
                _ => (0..128).map(|_| rng.gen::<u32>() as u64).collect(),
            };
            let mut expect = keys.clone();
            expect.sort_unstable();
            unsafe { sort_128(&mut keys) };
            assert_eq!(keys, expect);
        }
    }

    #[test]
    fn merge_halves_matches_sort_unstable() {
        if !crate::simd::lanes512_active() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(0x4D4D);
        for _ in 0..200 {
            let mut keys: Vec<u64> = (0..128).map(|_| rng.gen_range(0..1000)).collect();
            keys[..64].sort_unstable();
            keys[64..].sort_unstable();
            let mut expect = keys.clone();
            expect.sort_unstable();
            unsafe { merge_halves_128(&mut keys) };
            assert_eq!(keys, expect);
        }
    }
}
