//! Count-Sketch: a *linear* frequency sketch of signed `f64` mass.
//!
//! Unlike the paper's MinMaxSketch (whose min/max update rule is not
//! linear), the Count-Sketch of Charikar–Chen–Farach-Colton — used for
//! gradient compression by SketchSGD (arXiv:1903.04488) — stores plain
//! signed sums: row `r` adds `s_r(k) · v` into cell `h_r(k)`. Because every
//! cell is a sum, the sketch of a sum of gradients equals the element-wise
//! sum of their sketches: `S(a + b) = S(a) + S(b)`. That identity is what
//! lets the collectives layer merge raw tables hop by hop (no key union, no
//! resketch) and defer heavy-hitter extraction to the final hop.
//!
//! Estimation (`query`) takes the median across rows of the sign-corrected
//! cell values; heavy-hitter recovery (`top_k_into`) is a second pass over
//! the candidate key range that keeps the `k` largest-magnitude estimates,
//! using an exact sort when the candidate set is small and a bounded
//! min-heap otherwise.

use crate::error::SketchError;
use crate::hash::{mix64, push_row_seeds, HashFamily};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Salt XORed into the user seed to derive the *sign* hash family, keeping
/// it independent from the bin family built from the same seed.
pub const SIGN_SALT: u64 = 0x5851_F42D_4C95_7F2D;

/// Appends the `rows` per-row **sign** seeds a [`CountSketch`] built from
/// `seed` would use. The derivation reuses [`push_row_seeds`] on a salted
/// seed, so flat scratch-buffer paths can reproduce signs without
/// constructing a sketch.
pub fn push_sign_seeds(rows: usize, seed: u64, out: &mut Vec<u64>) {
    push_row_seeds(rows, seed ^ SIGN_SALT, out);
}

/// The ±1 sign row `sign_seed` assigns to `key`. One avalanche of the
/// SplitMix64 mixer; the low bit picks the sign.
#[inline]
pub fn sign_for(sign_seed: u64, key: u64) -> f64 {
    if mix64(key ^ sign_seed) & 1 == 0 {
        1.0
    } else {
        -1.0
    }
}

/// A candidate ordered by estimate *strength*: larger magnitude wins, ties
/// broken toward the smaller key so selection is total and deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    abs: f64,
    key: u64,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.abs
            .total_cmp(&other.abs)
            .then_with(|| other.key.cmp(&self.key))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A `rows × cols` table of signed `f64` counters with independent per-row
/// bin and sign hash families (both derived from one seed via
/// [`crate::hash`]).
///
/// ```
/// use sketchml_sketches::CountSketch;
///
/// let mut s = CountSketch::new(5, 256, 42)?;
/// s.insert(7, 1.5);
/// s.insert(9, -0.25);
/// assert_eq!(s.query(7), 1.5);
/// let top = s.top_k(2, 1000);
/// assert_eq!(top, vec![(7, 1.5), (9, -0.25)]);
/// # Ok::<(), sketchml_sketches::SketchError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountSketch {
    seed: u64,
    hash: HashFamily,
    sign_seeds: Vec<u64>,
    cells: Vec<f64>,
}

impl CountSketch {
    /// Creates an empty `rows × cols` sketch derived from `seed`.
    ///
    /// # Errors
    /// [`SketchError::InvalidParameter`] if `rows` or `cols` is zero or the
    /// table would exceed `u32::MAX` cells.
    pub fn new(rows: usize, cols: usize, seed: u64) -> Result<Self, SketchError> {
        Self::from_cells(rows, cols, seed, None)
    }

    /// Rebuilds a sketch from a serialized cell table (row-major,
    /// `rows * cols` long). `None` starts from all zeros.
    ///
    /// # Errors
    /// [`SketchError::InvalidParameter`] on a zero/oversized shape;
    /// [`SketchError::Corrupt`] if `cells` has the wrong length.
    pub fn from_cells(
        rows: usize,
        cols: usize,
        seed: u64,
        cells: Option<Vec<f64>>,
    ) -> Result<Self, SketchError> {
        if rows == 0 {
            return Err(SketchError::invalid("rows", "must be positive"));
        }
        if cols == 0 {
            return Err(SketchError::invalid("cols", "must be positive"));
        }
        let len = rows
            .checked_mul(cols)
            .filter(|&n| n <= u32::MAX as usize)
            .ok_or_else(|| SketchError::invalid("rows*cols", "table exceeds u32::MAX cells"))?;
        let cells = match cells {
            Some(c) if c.len() != len => {
                return Err(SketchError::Corrupt(format!(
                    "cell table has {} entries, shape needs {len}",
                    c.len()
                )));
            }
            Some(c) => c,
            None => vec![0.0; len],
        };
        let mut sign_seeds = Vec::with_capacity(rows);
        push_sign_seeds(rows, seed, &mut sign_seeds);
        Ok(CountSketch {
            seed,
            hash: HashFamily::new(rows, cols, seed),
            sign_seeds,
            cells,
        })
    }

    /// Number of rows (independent hash/sign pairs).
    #[inline]
    pub fn rows(&self) -> usize {
        self.hash.rows()
    }

    /// Number of columns (bins per row).
    #[inline]
    pub fn cols(&self) -> usize {
        self.hash.cols()
    }

    /// The seed both hash families were derived from.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The raw row-major cell table. This *is* the wire payload: two
    /// sketches with equal shape and seed merge by adding these slices
    /// element-wise.
    #[inline]
    pub fn cells(&self) -> &[f64] {
        &self.cells
    }

    /// Mutable access to the raw cell table, for linear folds that
    /// accumulate another sketch's cells in place.
    #[inline]
    pub fn cells_mut(&mut self) -> &mut [f64] {
        &mut self.cells
    }

    /// Consumes the sketch, returning the cell buffer — lets pooled decode
    /// paths reclaim the allocation they lent to [`Self::from_cells`].
    pub fn into_cells(self) -> Vec<f64> {
        self.cells
    }

    /// Adds `value` under `key`: row `r` adds `sign_r(key) · value` into
    /// bin `h_r(key)`.
    #[inline]
    pub fn insert(&mut self, key: u64, value: f64) {
        let cols = self.cols();
        for (r, (&bin_seed, &sign_seed)) in
            self.hash.seeds().iter().zip(&self.sign_seeds).enumerate()
        {
            let bin = HashFamily::bin_for(bin_seed, cols, key);
            self.cells[r * cols + bin] += sign_for(sign_seed, key) * value;
        }
    }

    /// Inserts a batch of pairs, iterating row-major so each row's cells
    /// stay hot in cache. With the `simd` feature on AVX2 hardware the bin
    /// and sign hashes are computed four keys per lane
    /// ([`crate::hash::fill_bins`] / [`crate::hash::fill_sign_flips`]);
    /// [`Self::insert_batch_scalar`] is the always-compiled reference and
    /// debug builds assert the resulting cell tables are bit-identical.
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    pub fn insert_batch(&mut self, keys: &[u64], values: &[f64]) {
        assert_eq!(keys.len(), values.len(), "keys/values length mismatch");
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if crate::simd::lanes_active() {
            #[cfg(debug_assertions)]
            let reference = {
                let mut clone = self.clone();
                clone.insert_batch_scalar(keys, values);
                clone.cells
            };
            self.insert_batch_lanes(keys, values);
            #[cfg(debug_assertions)]
            debug_assert!(
                self.cells
                    .iter()
                    .zip(&reference)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "simd lane diverged from scalar insert_batch"
            );
            return;
        }
        self.insert_batch_scalar(keys, values);
    }

    /// Scalar reference implementation of [`Self::insert_batch`].
    pub fn insert_batch_scalar(&mut self, keys: &[u64], values: &[f64]) {
        assert_eq!(keys.len(), values.len(), "keys/values length mismatch");
        let cols = self.cols();
        for (r, (&bin_seed, &sign_seed)) in
            self.hash.seeds().iter().zip(&self.sign_seeds).enumerate()
        {
            let row = &mut self.cells[r * cols..(r + 1) * cols];
            for (&k, &v) in keys.iter().zip(values) {
                row[HashFamily::bin_for(bin_seed, cols, k)] += sign_for(sign_seed, k) * v;
            }
        }
    }

    /// Lane-batched row update: per chunk, bins and sign-bit flip masks come
    /// from the vectorized hash primitives, then a scalar scatter applies
    /// `row[bin] += flip(v)`. XOR-ing the flip mask into the value's bits is
    /// exactly `±1.0 · v` for every finite value, and the scatter visits
    /// keys in the same order as the scalar path, so sums are bit-identical.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    fn insert_batch_lanes(&mut self, keys: &[u64], values: &[f64]) {
        const CHUNK: usize = 256;
        let cols = self.cols();
        let mut bins = [0u32; CHUNK];
        let mut flips = [0u64; CHUNK];
        for (r, (&bin_seed, &sign_seed)) in
            self.hash.seeds().iter().zip(&self.sign_seeds).enumerate()
        {
            let row = &mut self.cells[r * cols..(r + 1) * cols];
            for (kc, vc) in keys.chunks(CHUNK).zip(values.chunks(CHUNK)) {
                let b = &mut bins[..kc.len()];
                let f = &mut flips[..kc.len()];
                crate::hash::fill_bins(bin_seed, cols, kc, b);
                crate::hash::fill_sign_flips(sign_seed, kc, f);
                for ((&bin, &flip), &v) in b.iter().zip(f.iter()).zip(vc) {
                    row[bin as usize] += f64::from_bits(v.to_bits() ^ flip);
                }
            }
        }
    }

    /// Point estimate for `key`: the median across rows of the
    /// sign-corrected cell values (mean of the middle two when the row
    /// count is even).
    pub fn query(&self, key: u64) -> f64 {
        let mut est = [0.0f64; 64];
        let rows = self.rows().min(64);
        self.row_estimates(key, &mut est[..rows]);
        median(&mut est[..rows])
    }

    /// Appends the estimate for every key in `keys` to `out`.
    pub fn query_batch(&self, keys: &[u64], out: &mut Vec<f64>) {
        out.reserve(keys.len());
        for &k in keys {
            out.push(self.query(k));
        }
    }

    #[inline]
    fn row_estimates(&self, key: u64, out: &mut [f64]) {
        let cols = self.cols();
        for (r, (&bin_seed, &sign_seed)) in self
            .hash
            .seeds()
            .iter()
            .zip(&self.sign_seeds)
            .enumerate()
            .take(out.len())
        {
            let bin = HashFamily::bin_for(bin_seed, cols, key);
            out[r] = sign_for(sign_seed, key) * self.cells[r * cols + bin];
        }
    }

    /// Element-wise sum with `other` — the linearity that makes
    /// sketch-of-sum equal sum-of-sketches.
    ///
    /// # Errors
    /// [`SketchError::Corrupt`] when shapes or seeds differ (the hash
    /// families would disagree, so cell positions are not comparable).
    pub fn merge(&mut self, other: &Self) -> Result<(), SketchError> {
        if self.rows() != other.rows() || self.cols() != other.cols() || self.seed != other.seed {
            return Err(SketchError::Corrupt(format!(
                "cannot merge {}x{} seed {} with {}x{} seed {}",
                self.rows(),
                self.cols(),
                self.seed,
                other.rows(),
                other.cols(),
                other.seed
            )));
        }
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            *a += b;
        }
        Ok(())
    }

    /// Multiplies every cell by `factor` (linearity again: `S(c·g) = c·S(g)`).
    pub fn scale(&mut self, factor: f64) {
        for c in &mut self.cells {
            *c *= factor;
        }
    }

    /// Resets every cell to zero, keeping the hash families.
    pub fn clear(&mut self) {
        self.cells.fill(0.0);
    }

    /// True if every cell is exactly zero.
    pub fn is_empty(&self) -> bool {
        self.cells.iter().all(|&c| c == 0.0)
    }

    /// Recovers the `k` largest-magnitude estimates over keys `0..dim`,
    /// written key-ascending into `keys_out`/`vals_out` (cleared first).
    /// Exact-zero estimates are dropped, so the result can be shorter than
    /// `k`. Small candidate sets (`dim ≤ 2k`) take an exact collect-and-sort
    /// path; larger ones stream through a size-`k` min-heap. Both paths
    /// select the same set under the same deterministic order (magnitude
    /// descending, key ascending on ties).
    pub fn top_k_into(&self, k: usize, dim: u64, keys_out: &mut Vec<u64>, vals_out: &mut Vec<f64>) {
        self.top_k_range_into(k, 0..dim, keys_out, vals_out);
    }

    /// [`Self::top_k_into`] confined to candidate keys in `range` — the
    /// decode path for a sketch known to cover only a key-range shard, where
    /// scanning the full domain could surface ghost keys outside the shard.
    pub fn top_k_range_into(
        &self,
        k: usize,
        range: std::ops::Range<u64>,
        keys_out: &mut Vec<u64>,
        vals_out: &mut Vec<f64>,
    ) {
        keys_out.clear();
        vals_out.clear();
        if k == 0 || range.is_empty() {
            return;
        }
        let span = range.end - range.start;
        let mut picked: Vec<Candidate> = if span <= 2 * k as u64 {
            // Exact fallback: few candidates, sort them all.
            let mut all: Vec<Candidate> = range
                .map(|key| Candidate {
                    abs: self.query(key).abs(),
                    key,
                })
                .filter(|c| c.abs != 0.0)
                .collect();
            all.sort_by(|a, b| b.cmp(a));
            all.truncate(k);
            all
        } else {
            // Size-k min-heap of the strongest candidates seen so far.
            let mut heap: BinaryHeap<std::cmp::Reverse<Candidate>> = BinaryHeap::with_capacity(k);
            for key in range {
                let abs = self.query(key).abs();
                if abs == 0.0 {
                    continue;
                }
                let cand = Candidate { abs, key };
                if heap.len() < k {
                    heap.push(std::cmp::Reverse(cand));
                } else if let Some(weakest) = heap.peek() {
                    if cand > weakest.0 {
                        heap.pop();
                        heap.push(std::cmp::Reverse(cand));
                    }
                }
            }
            heap.into_iter().map(|r| r.0).collect()
        };
        picked.sort_by_key(|c| c.key);
        keys_out.reserve(picked.len());
        vals_out.reserve(picked.len());
        for c in picked {
            keys_out.push(c.key);
            vals_out.push(self.query(c.key));
        }
    }

    /// Allocating convenience wrapper around [`Self::top_k_into`].
    pub fn top_k(&self, k: usize, dim: u64) -> Vec<(u64, f64)> {
        let mut keys = Vec::new();
        let mut vals = Vec::new();
        self.top_k_into(k, dim, &mut keys, &mut vals);
        keys.into_iter().zip(vals).collect()
    }
}

/// Median under `f64` total order; even lengths average the middle two.
fn median(xs: &mut [f64]) -> f64 {
    debug_assert!(!xs.is_empty());
    xs.sort_by(f64::total_cmp);
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        0.5 * (xs[mid - 1] + xs[mid])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Vec<u64>, Vec<f64>) {
        let keys: Vec<u64> = (0..200u64).map(|i| i * 37 % 10_000).collect();
        let mut keys = keys;
        keys.sort_unstable();
        keys.dedup();
        let values: Vec<f64> = keys
            .iter()
            .map(|&k| ((k % 13) as f64 - 6.0) / 16.0)
            .collect();
        (keys, values)
    }

    #[test]
    fn shape_validation() {
        assert!(CountSketch::new(0, 10, 1).is_err());
        assert!(CountSketch::new(10, 0, 1).is_err());
        assert!(CountSketch::new(1 << 20, 1 << 20, 1).is_err());
        assert!(CountSketch::from_cells(2, 3, 1, Some(vec![0.0; 5])).is_err());
        assert!(CountSketch::from_cells(2, 3, 1, Some(vec![0.0; 6])).is_ok());
    }

    #[test]
    fn single_key_is_exact() {
        let mut s = CountSketch::new(3, 64, 9).unwrap();
        s.insert(1234, -0.75);
        assert_eq!(s.query(1234), -0.75);
    }

    #[test]
    fn linearity_sum_of_sketches_is_sketch_of_sum() {
        let (keys, values) = sample();
        let half = keys.len() / 2;
        let mut a = CountSketch::new(5, 512, 77).unwrap();
        a.insert_batch(&keys[..half], &values[..half]);
        let mut b = CountSketch::new(5, 512, 77).unwrap();
        b.insert_batch(&keys[half..], &values[half..]);
        let mut whole = CountSketch::new(5, 512, 77).unwrap();
        whole.insert_batch(&keys, &values);

        a.merge(&b).unwrap();
        // Dyadic-rational values make f64 addition exact, so the tables are
        // bit-identical, not merely close.
        assert_eq!(a.cells(), whole.cells());
    }

    #[test]
    fn merge_rejects_shape_and_seed_mismatch() {
        let mut a = CountSketch::new(3, 64, 1).unwrap();
        let b = CountSketch::new(3, 64, 2).unwrap();
        let c = CountSketch::new(4, 64, 1).unwrap();
        let d = CountSketch::new(3, 128, 1).unwrap();
        assert!(matches!(a.merge(&b), Err(SketchError::Corrupt(_))));
        assert!(matches!(a.merge(&c), Err(SketchError::Corrupt(_))));
        assert!(matches!(a.merge(&d), Err(SketchError::Corrupt(_))));
    }

    #[test]
    fn scale_and_clear() {
        let mut s = CountSketch::new(3, 64, 5).unwrap();
        s.insert(10, 0.5);
        s.scale(4.0);
        assert_eq!(s.query(10), 2.0);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.query(10), 0.0);
    }

    #[test]
    fn top_k_recovers_heavy_hitters() {
        let mut s = CountSketch::new(7, 2048, 3).unwrap();
        // Three heavy keys among light background noise.
        let mut keys = vec![100u64, 2_000, 30_000];
        let mut values = vec![8.0, -6.0, 4.0];
        for i in 0..64u64 {
            keys.push(40_000 + i);
            values.push(if i % 2 == 0 { 0.0625 } else { -0.0625 });
        }
        s.insert_batch(&keys, &values);
        let top = s.top_k(3, 100_000);
        let top_keys: Vec<u64> = top.iter().map(|&(k, _)| k).collect();
        assert_eq!(top_keys, vec![100, 2_000, 30_000]);
        for (k, v) in top {
            let truth = match k {
                100 => 8.0,
                2_000 => -6.0,
                _ => 4.0,
            };
            assert!((v - truth).abs() < 0.5, "key {k}: {v} vs {truth}");
        }
    }

    #[test]
    fn heap_and_exact_paths_agree() {
        let mut s = CountSketch::new(5, 256, 11).unwrap();
        let keys: Vec<u64> = (0..40u64).collect();
        let values: Vec<f64> = (0..40).map(|i| (i as f64 - 20.0) / 8.0).collect();
        s.insert_batch(&keys, &values);
        // dim=40 with k=8 takes the heap path (40 > 16); k=30 takes the
        // exact path (40 <= 60). Compare k=8 against the exact top-8
        // computed by brute force.
        let top = s.top_k(8, 40);
        let mut brute: Vec<(u64, f64)> = (0..40u64).map(|k| (k, s.query(k))).collect();
        brute.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()).then_with(|| a.0.cmp(&b.0)));
        brute.truncate(8);
        brute.sort_by_key(|&(k, _)| k);
        assert_eq!(top, brute);
    }

    #[test]
    fn top_k_drops_exact_zeros_and_handles_edges() {
        let s = CountSketch::new(5, 512, 1).unwrap();
        assert!(s.top_k(5, 1000).is_empty());
        let mut s2 = CountSketch::new(5, 512, 1).unwrap();
        s2.insert(3, 1.0);
        assert!(s2.top_k(0, 1000).is_empty());
        assert!(s2.top_k(5, 0).is_empty());
        assert_eq!(s2.top_k(5, 1000), vec![(3, 1.0)]);
    }

    #[test]
    fn query_batch_matches_query() {
        let (keys, values) = sample();
        let mut s = CountSketch::new(5, 512, 21).unwrap();
        s.insert_batch(&keys, &values);
        let mut out = Vec::new();
        s.query_batch(&keys, &mut out);
        for (&k, &est) in keys.iter().zip(&out) {
            assert_eq!(est, s.query(k));
        }
    }

    #[test]
    fn from_cells_rebuild_is_identical() {
        let mut s = CountSketch::new(4, 128, 17).unwrap();
        s.insert(42, 0.5);
        let back = CountSketch::from_cells(4, 128, 17, Some(s.cells().to_vec())).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.query(42), 0.5);
    }

    #[test]
    fn insert_batch_matches_scalar_reference() {
        let (keys, values) = sample();
        let mut batched = CountSketch::new(5, 512, 33).unwrap();
        batched.insert_batch(&keys, &values);
        let mut scalar = CountSketch::new(5, 512, 33).unwrap();
        scalar.insert_batch_scalar(&keys, &values);
        assert_eq!(batched.cells(), scalar.cells());
        // Unsorted keys with repeats exercise scatter-order sensitivity.
        let shuffled: Vec<u64> = keys.iter().rev().chain(keys.iter()).copied().collect();
        let vals2: Vec<f64> = values.iter().rev().chain(values.iter()).copied().collect();
        let mut batched2 = CountSketch::new(3, 64, 7).unwrap();
        batched2.insert_batch(&shuffled, &vals2);
        let mut scalar2 = CountSketch::new(3, 64, 7).unwrap();
        scalar2.insert_batch_scalar(&shuffled, &vals2);
        assert_eq!(batched2.cells(), scalar2.cells());
    }

    #[test]
    fn sign_flips_agree_with_sign_for() {
        let mut seeds = Vec::new();
        push_sign_seeds(2, 123, &mut seeds);
        let keys: Vec<u64> = (0..100u64).map(|i| i * 977).collect();
        let mut flips = vec![0u64; keys.len()];
        crate::hash::fill_sign_flips(seeds[0], &keys, &mut flips);
        for (&k, &flip) in keys.iter().zip(&flips) {
            let via_flip = f64::from_bits(2.5f64.to_bits() ^ flip);
            assert_eq!(via_flip, sign_for(seeds[0], k) * 2.5);
        }
    }

    #[test]
    fn sign_family_is_independent_of_bins_and_balanced() {
        let mut seeds = Vec::new();
        push_sign_seeds(3, 99, &mut seeds);
        let mut bin_seeds = Vec::new();
        push_row_seeds(3, 99, &mut bin_seeds);
        assert_ne!(seeds, bin_seeds);
        let pos = (0..10_000u64)
            .filter(|&k| sign_for(seeds[0], k) > 0.0)
            .count();
        assert!((4_500..5_500).contains(&pos), "sign bias: {pos}/10000");
    }
}
