//! Seeded hash functions for the frequency-style sketches.
//!
//! Both [`crate::countmin::CountMinSketch`] and [`crate::minmax::MinMaxSketch`]
//! need a family of independent hash functions, one per row (paper §2.4:
//! "associated with each row is a separate hash function `h_i(-)`"). We use a
//! strong 64-bit finalizer (the SplitMix64 mixer) keyed with a per-row seed;
//! its avalanche behaviour gives output bits that are empirically
//! indistinguishable from pairwise independent, which is the assumption made
//! by the Appendix A.2 analysis.

use serde::{Deserialize, Serialize};

/// A family of `rows` seeded 64-bit hash functions mapping keys into
/// `[0, cols)` bins.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashFamily {
    seeds: Vec<u64>,
    cols: usize,
}

/// SplitMix64 finalizer: a bijective mixer with full avalanche.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Appends the `rows` per-row seeds a [`HashFamily`] built from `seed` would
/// use. Exposed so a flat scratch-buffer hot path can derive seeds without
/// constructing (allocating) a family; the derivation is shared with
/// [`HashFamily::new`], so bin mappings are guaranteed identical.
pub fn push_row_seeds(rows: usize, seed: u64, out: &mut Vec<u64>) {
    // Derive well-separated per-row seeds by iterating the mixer.
    let mut s = mix64(seed ^ 0xA076_1D64_78BD_642F);
    for _ in 0..rows {
        s = mix64(s);
        out.push(s);
    }
}

impl HashFamily {
    /// Creates `rows` hash functions over `cols` bins, derived
    /// deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if `rows == 0` or `cols == 0`; sketches validate their shape
    /// before constructing the family.
    pub fn new(rows: usize, cols: usize, seed: u64) -> Self {
        assert!(rows > 0, "hash family needs at least one row");
        assert!(cols > 0, "hash family needs at least one column");
        let mut seeds = Vec::with_capacity(rows);
        push_row_seeds(rows, seed, &mut seeds);
        HashFamily { seeds, cols }
    }

    /// Number of hash functions (sketch rows).
    #[inline]
    pub fn rows(&self) -> usize {
        self.seeds.len()
    }

    /// Number of bins each function maps into (sketch columns).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Per-row seeds; row `i` hashes with `seeds()[i]` via [`Self::bin_for`].
    #[inline]
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// Bin chosen by row `row` for `key`.
    #[inline]
    pub fn bin(&self, row: usize, key: u64) -> usize {
        debug_assert!(row < self.seeds.len());
        Self::bin_for(self.seeds[row], self.cols, key)
    }

    /// Bin computed from a raw row seed (see [`Self::seeds`]). This is the
    /// whole hash function, exposed statically so batch loops can hoist the
    /// seed and column loads out of their inner loop.
    #[inline]
    pub fn bin_for(row_seed: u64, cols: usize, key: u64) -> usize {
        // Multiply-then-take-high via widening keeps the modulo bias
        // negligible for any practical `cols`.
        let h = mix64(key ^ row_seed);
        ((h as u128 * cols as u128) >> 64) as usize
    }

    /// Iterator over the bin chosen by every row for `key`.
    #[inline]
    pub fn bins<'a>(&'a self, key: u64) -> impl Iterator<Item = usize> + 'a {
        (0..self.rows()).map(move |row| self.bin(row, key))
    }
}

/// Fills `out[i]` with [`HashFamily::bin_for`]`(row_seed, cols, keys[i])`
/// over the whole slice. This batch form is the unit the `simd` feature
/// vectorizes (4 keys per AVX2 iteration); [`fill_bins_scalar`] is the
/// always-compiled reference, and debug builds assert the lane matches it
/// bit-for-bit.
///
/// # Panics
/// Panics if the slices differ in length or `cols` exceeds `u32::MAX`
/// (every sketch shape in this crate is far below that).
pub fn fill_bins(row_seed: u64, cols: usize, keys: &[u64], out: &mut [u32]) {
    assert_eq!(keys.len(), out.len(), "bins buffer must match keys length");
    assert!(
        u32::try_from(cols).is_ok(),
        "fill_bins requires cols <= u32::MAX"
    );
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if crate::simd::lanes_active() {
        // SAFETY: `lanes_active` verified AVX2 is available at runtime.
        unsafe { avx2::fill_bins(row_seed, cols as u32, keys, out) };
        #[cfg(debug_assertions)]
        {
            let mut reference = vec![0u32; keys.len()];
            fill_bins_scalar(row_seed, cols, keys, &mut reference);
            debug_assert_eq!(
                out,
                &reference[..],
                "simd lane diverged from scalar fill_bins"
            );
        }
        return;
    }
    fill_bins_scalar(row_seed, cols, keys, out);
}

/// Scalar reference implementation of [`fill_bins`].
#[inline]
pub fn fill_bins_scalar(row_seed: u64, cols: usize, keys: &[u64], out: &mut [u32]) {
    for (o, &k) in out.iter_mut().zip(keys) {
        *o = HashFamily::bin_for(row_seed, cols, k) as u32;
    }
}

/// Fills `out[i]` with `(mix64(keys[i] ^ sign_seed) & 1) << 63` — a sign-bit
/// *flip mask* for Count-Sketch's ±1 hash: XOR-ing it into an `f64`'s bits
/// multiplies the value by the row's sign for that key (exact for every
/// finite value, so sums stay bit-identical to the `±1.0 *` formulation).
/// Batch unit of the `simd` feature; [`fill_sign_flips_scalar`] is the
/// always-compiled reference and debug builds assert the lane matches it.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn fill_sign_flips(sign_seed: u64, keys: &[u64], out: &mut [u64]) {
    assert_eq!(keys.len(), out.len(), "flips buffer must match keys length");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if crate::simd::lanes_active() {
        // SAFETY: `lanes_active` verified AVX2 is available at runtime.
        unsafe { avx2::fill_sign_flips(sign_seed, keys, out) };
        #[cfg(debug_assertions)]
        {
            let mut reference = vec![0u64; keys.len()];
            fill_sign_flips_scalar(sign_seed, keys, &mut reference);
            debug_assert_eq!(
                out,
                &reference[..],
                "simd lane diverged from scalar fill_sign_flips"
            );
        }
        return;
    }
    fill_sign_flips_scalar(sign_seed, keys, out);
}

/// Scalar reference implementation of [`fill_sign_flips`].
#[inline]
pub fn fill_sign_flips_scalar(sign_seed: u64, keys: &[u64], out: &mut [u64]) {
    for (o, &k) in out.iter_mut().zip(keys) {
        *o = (mix64(k ^ sign_seed) & 1) << 63;
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    use core::arch::x86_64::*;

    const M0: i64 = 0x9E37_79B9_7F4A_7C15u64 as i64;
    const M1: i64 = 0xBF58_476D_1CE4_E5B9u64 as i64;
    const M2: i64 = 0x94D0_49BB_1331_11EBu64 as i64;

    /// Per-lane `a.wrapping_mul(b)` — AVX2 has no 64-bit multiply, so it is
    /// synthesized from 32×32→64 partial products.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul64_lo(a: __m256i, b: __m256i) -> __m256i {
        let lo = _mm256_mul_epu32(a, b);
        let t1 = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
        let t2 = _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32));
        _mm256_add_epi64(lo, _mm256_slli_epi64(_mm256_add_epi64(t1, t2), 32))
    }

    /// Per-lane [`super::mix64`].
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mix64x4(mut z: __m256i) -> __m256i {
        z = _mm256_add_epi64(z, _mm256_set1_epi64x(M0));
        z = mul64_lo(
            _mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
            _mm256_set1_epi64x(M1),
        );
        z = mul64_lo(
            _mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
            _mm256_set1_epi64x(M2),
        );
        _mm256_xor_si256(z, _mm256_srli_epi64(z, 31))
    }

    /// `((mix64(k ^ seed) as u128 * cols) >> 64)` for four keys at a time.
    ///
    /// With `cols < 2^32` the widening high product reduces to
    /// `floor((h_hi·c + floor(h_lo·c / 2^32)) / 2^32)`: `h_hi·c + (h_lo·c >>
    /// 32)` cannot overflow 64 bits, so two 32×32 partial products replace
    /// the full 64×64 widening multiply.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fill_bins(row_seed: u64, cols: u32, keys: &[u64], out: &mut [u32]) {
        let seed = _mm256_set1_epi64x(row_seed as i64);
        let c = _mm256_set1_epi64x(i64::from(cols));
        let n = keys.len();
        let mut i = 0;
        while i + 4 <= n {
            let k = _mm256_loadu_si256(keys.as_ptr().add(i).cast());
            let h = mix64x4(_mm256_xor_si256(k, seed));
            let lo = _mm256_mul_epu32(h, c);
            let hi = _mm256_mul_epu32(_mm256_srli_epi64(h, 32), c);
            let bins = _mm256_srli_epi64(_mm256_add_epi64(hi, _mm256_srli_epi64(lo, 32)), 32);
            // Pack the four 64-bit lanes' low words into 4×u32.
            let packed =
                _mm256_permutevar8x32_epi32(bins, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0));
            _mm_storeu_si128(
                out.as_mut_ptr().add(i).cast(),
                _mm256_castsi256_si128(packed),
            );
            i += 4;
        }
        for j in i..n {
            out[j] = super::HashFamily::bin_for(row_seed, cols as usize, keys[j]) as u32;
        }
    }

    /// Per-lane [`super::fill_sign_flips_scalar`]: low mix bit shifted to the
    /// sign-bit position, four keys at a time.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fill_sign_flips(sign_seed: u64, keys: &[u64], out: &mut [u64]) {
        let seed = _mm256_set1_epi64x(sign_seed as i64);
        let one = _mm256_set1_epi64x(1);
        let n = keys.len();
        let mut i = 0;
        while i + 4 <= n {
            let k = _mm256_loadu_si256(keys.as_ptr().add(i).cast());
            let h = mix64x4(_mm256_xor_si256(k, seed));
            let flips = _mm256_slli_epi64(_mm256_and_si256(h, one), 63);
            _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), flips);
            i += 4;
        }
        for j in i..n {
            out[j] = (super::mix64(keys[j] ^ sign_seed) & 1) << 63;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_for_same_seed() {
        let a = HashFamily::new(3, 100, 42);
        let b = HashFamily::new(3, 100, 42);
        for key in 0..1000u64 {
            for row in 0..3 {
                assert_eq!(a.bin(row, key), b.bin(row, key));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = HashFamily::new(1, 1 << 20, 1);
        let b = HashFamily::new(1, 1 << 20, 2);
        let same = (0..1000u64).filter(|&k| a.bin(0, k) == b.bin(0, k)).count();
        assert!(
            same < 10,
            "seeds should decorrelate bins, got {same} collisions"
        );
    }

    #[test]
    fn rows_are_independent() {
        let f = HashFamily::new(2, 1 << 20, 7);
        let same = (0..1000u64).filter(|&k| f.bin(0, k) == f.bin(1, k)).count();
        assert!(
            same < 10,
            "rows should be independent, got {same} agreements"
        );
    }

    #[test]
    fn bins_stay_in_range() {
        for cols in [1usize, 2, 3, 17, 1000] {
            let f = HashFamily::new(4, cols, 99);
            for key in 0..500u64 {
                for row in 0..4 {
                    assert!(f.bin(row, key) < cols);
                }
            }
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let cols = 64;
        let n = 64_000u64;
        let f = HashFamily::new(1, cols, 1234);
        let mut counts = vec![0usize; cols];
        for key in 0..n {
            counts[f.bin(0, key)] += 1;
        }
        let expected = (n as usize) / cols;
        for (bin, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected as f64).abs() < expected as f64 * 0.25,
                "bin {bin} count {c} deviates from expected {expected}"
            );
        }
    }

    #[test]
    fn mix64_is_injective_on_sample() {
        let outs: HashSet<u64> = (0..100_000u64).map(mix64).collect();
        assert_eq!(outs.len(), 100_000);
    }

    #[test]
    fn bins_iterator_matches_bin() {
        let f = HashFamily::new(5, 37, 5);
        let collected: Vec<usize> = f.bins(12345).collect();
        let direct: Vec<usize> = (0..5).map(|r| f.bin(r, 12345)).collect();
        assert_eq!(collected, direct);
    }

    #[test]
    fn raw_seed_path_matches_family() {
        let f = HashFamily::new(3, 1000, 77);
        let mut seeds = Vec::new();
        push_row_seeds(3, 77, &mut seeds);
        assert_eq!(seeds, f.seeds());
        for key in 0..500u64 {
            for (row, &s) in seeds.iter().enumerate() {
                assert_eq!(HashFamily::bin_for(s, 1000, key), f.bin(row, key));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_rows_panics() {
        let _ = HashFamily::new(0, 10, 0);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn zero_cols_panics() {
        let _ = HashFamily::new(1, 0, 0);
    }
}
