//! Seeded hash functions for the frequency-style sketches.
//!
//! Both [`crate::countmin::CountMinSketch`] and [`crate::minmax::MinMaxSketch`]
//! need a family of independent hash functions, one per row (paper §2.4:
//! "associated with each row is a separate hash function `h_i(-)`"). We use a
//! strong 64-bit finalizer (the SplitMix64 mixer) keyed with a per-row seed;
//! its avalanche behaviour gives output bits that are empirically
//! indistinguishable from pairwise independent, which is the assumption made
//! by the Appendix A.2 analysis.

use serde::{Deserialize, Serialize};

/// A family of `rows` seeded 64-bit hash functions mapping keys into
/// `[0, cols)` bins.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashFamily {
    seeds: Vec<u64>,
    cols: usize,
}

/// SplitMix64 finalizer: a bijective mixer with full avalanche.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Appends the `rows` per-row seeds a [`HashFamily`] built from `seed` would
/// use. Exposed so a flat scratch-buffer hot path can derive seeds without
/// constructing (allocating) a family; the derivation is shared with
/// [`HashFamily::new`], so bin mappings are guaranteed identical.
pub fn push_row_seeds(rows: usize, seed: u64, out: &mut Vec<u64>) {
    // Derive well-separated per-row seeds by iterating the mixer.
    let mut s = mix64(seed ^ 0xA076_1D64_78BD_642F);
    for _ in 0..rows {
        s = mix64(s);
        out.push(s);
    }
}

impl HashFamily {
    /// Creates `rows` hash functions over `cols` bins, derived
    /// deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if `rows == 0` or `cols == 0`; sketches validate their shape
    /// before constructing the family.
    pub fn new(rows: usize, cols: usize, seed: u64) -> Self {
        assert!(rows > 0, "hash family needs at least one row");
        assert!(cols > 0, "hash family needs at least one column");
        let mut seeds = Vec::with_capacity(rows);
        push_row_seeds(rows, seed, &mut seeds);
        HashFamily { seeds, cols }
    }

    /// Number of hash functions (sketch rows).
    #[inline]
    pub fn rows(&self) -> usize {
        self.seeds.len()
    }

    /// Number of bins each function maps into (sketch columns).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Per-row seeds; row `i` hashes with `seeds()[i]` via [`Self::bin_for`].
    #[inline]
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// Bin chosen by row `row` for `key`.
    #[inline]
    pub fn bin(&self, row: usize, key: u64) -> usize {
        debug_assert!(row < self.seeds.len());
        Self::bin_for(self.seeds[row], self.cols, key)
    }

    /// Bin computed from a raw row seed (see [`Self::seeds`]). This is the
    /// whole hash function, exposed statically so batch loops can hoist the
    /// seed and column loads out of their inner loop.
    #[inline]
    pub fn bin_for(row_seed: u64, cols: usize, key: u64) -> usize {
        // Multiply-then-take-high via widening keeps the modulo bias
        // negligible for any practical `cols`.
        let h = mix64(key ^ row_seed);
        ((h as u128 * cols as u128) >> 64) as usize
    }

    /// Iterator over the bin chosen by every row for `key`.
    #[inline]
    pub fn bins<'a>(&'a self, key: u64) -> impl Iterator<Item = usize> + 'a {
        (0..self.rows()).map(move |row| self.bin(row, key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_for_same_seed() {
        let a = HashFamily::new(3, 100, 42);
        let b = HashFamily::new(3, 100, 42);
        for key in 0..1000u64 {
            for row in 0..3 {
                assert_eq!(a.bin(row, key), b.bin(row, key));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = HashFamily::new(1, 1 << 20, 1);
        let b = HashFamily::new(1, 1 << 20, 2);
        let same = (0..1000u64).filter(|&k| a.bin(0, k) == b.bin(0, k)).count();
        assert!(
            same < 10,
            "seeds should decorrelate bins, got {same} collisions"
        );
    }

    #[test]
    fn rows_are_independent() {
        let f = HashFamily::new(2, 1 << 20, 7);
        let same = (0..1000u64).filter(|&k| f.bin(0, k) == f.bin(1, k)).count();
        assert!(
            same < 10,
            "rows should be independent, got {same} agreements"
        );
    }

    #[test]
    fn bins_stay_in_range() {
        for cols in [1usize, 2, 3, 17, 1000] {
            let f = HashFamily::new(4, cols, 99);
            for key in 0..500u64 {
                for row in 0..4 {
                    assert!(f.bin(row, key) < cols);
                }
            }
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let cols = 64;
        let n = 64_000u64;
        let f = HashFamily::new(1, cols, 1234);
        let mut counts = vec![0usize; cols];
        for key in 0..n {
            counts[f.bin(0, key)] += 1;
        }
        let expected = (n as usize) / cols;
        for (bin, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected as f64).abs() < expected as f64 * 0.25,
                "bin {bin} count {c} deviates from expected {expected}"
            );
        }
    }

    #[test]
    fn mix64_is_injective_on_sample() {
        let outs: HashSet<u64> = (0..100_000u64).map(mix64).collect();
        assert_eq!(outs.len(), 100_000);
    }

    #[test]
    fn bins_iterator_matches_bin() {
        let f = HashFamily::new(5, 37, 5);
        let collected: Vec<usize> = f.bins(12345).collect();
        let direct: Vec<usize> = (0..5).map(|r| f.bin(r, 12345)).collect();
        assert_eq!(collected, direct);
    }

    #[test]
    fn raw_seed_path_matches_family() {
        let f = HashFamily::new(3, 1000, 77);
        let mut seeds = Vec::new();
        push_row_seeds(3, 77, &mut seeds);
        assert_eq!(seeds, f.seeds());
        for key in 0..500u64 {
            for (row, &s) in seeds.iter().enumerate() {
                assert_eq!(HashFamily::bin_for(s, 1000, key), f.bin(row, key));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_rows_panics() {
        let _ = HashFamily::new(0, 10, 0);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn zero_cols_panics() {
        let _ = HashFamily::new(1, 0, 0);
    }
}
