//! Property-based tests for the sketch invariants the SketchML pipeline
//! relies on (paper §3.3, Appendix A).

use proptest::collection::vec;
use proptest::prelude::*;
use sketchml_sketches::quantile::{GkSummary, MergingQuantileSketch, QuantileSketch};
use sketchml_sketches::{CountMinSketch, GroupedMinMaxSketch, MinMaxSketch};

fn exact_rank(sorted: &[f64], value: f64) -> usize {
    sorted.iter().filter(|&&x| x <= value).count()
}

proptest! {
    /// GK rank error never exceeds εn (+1 rounding slack) on arbitrary data.
    #[test]
    fn gk_rank_error_bounded(
        data in vec(-1e3f64..1e3, 100..2000),
        phi in 0.0f64..=1.0,
    ) {
        let eps = 0.05;
        let mut gk = GkSummary::new(eps).unwrap();
        gk.extend_from_slice(&data);
        let est = gk.query(phi).unwrap();
        let mut sorted = data.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = exact_rank(&sorted, est) as f64;
        let n = data.len() as f64;
        prop_assert!((rank - phi * n).abs() <= eps * n + 1.0,
            "phi={phi}: rank {rank} vs {} (n={n})", phi * n);
    }

    /// The mergeable sketch returns values inside the observed range and is
    /// monotone in phi.
    #[test]
    fn merging_query_within_range_and_monotone(
        data in vec(-1e6f64..1e6, 1..3000),
    ) {
        let mut s = MergingQuantileSketch::new(32).unwrap();
        s.extend_from_slice(&data);
        let min = s.min().unwrap();
        let max = s.max().unwrap();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let v = s.query(i as f64 / 10.0).unwrap();
            prop_assert!(v >= min && v <= max);
            prop_assert!(v >= prev, "quantiles must be monotone in phi");
            prev = v;
        }
    }

    /// Splits are monotone, bracket the data, and have length q + 1.
    #[test]
    fn merging_splits_shape(
        data in vec(-10f64..10.0, 1..2000),
        q in 1usize..64,
    ) {
        let mut s = MergingQuantileSketch::new(64).unwrap();
        s.extend_from_slice(&data);
        let splits = s.splits(q).unwrap();
        prop_assert_eq!(splits.len(), q + 1);
        prop_assert_eq!(splits[0], s.min().unwrap());
        prop_assert_eq!(splits[q], s.max().unwrap());
        for w in splits.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// Count-Min never underestimates (§2.4: overestimated error only).
    #[test]
    fn countmin_never_underestimates(
        keys in vec(0u64..200, 1..2000),
        rows in 1usize..5,
        cols in 1usize..64,
    ) {
        let mut cm = CountMinSketch::new(rows, cols, 42).unwrap();
        let mut truth = std::collections::HashMap::new();
        for &k in &keys {
            cm.insert(k);
            *truth.entry(k).or_insert(0u64) += 1;
        }
        for (&k, &f) in &truth {
            prop_assert!(cm.query(k) >= f);
        }
    }

    /// MinMaxSketch never overestimates (§3.3: underestimated error only),
    /// regardless of shape, seed or workload.
    #[test]
    fn minmax_never_overestimates(
        items in vec((0u64..10_000, 0u16..1024), 1..2000),
        rows in 1usize..4,
        cols in 1usize..128,
        seed in any::<u64>(),
    ) {
        let mut mm = MinMaxSketch::new(rows, cols, seed).unwrap();
        // Last write wins in the truth map, but the sketch keeps the min
        // across duplicate inserts, so compare against the per-key minimum.
        let mut min_inserted = std::collections::HashMap::new();
        for &(k, b) in &items {
            mm.insert(k, b);
            min_inserted
                .entry(k)
                .and_modify(|m: &mut u16| *m = (*m).min(b))
                .or_insert(b);
        }
        for (&k, &m) in &min_inserted {
            let got = mm.query(k).expect("inserted key present");
            prop_assert!(got <= m, "key {k}: queried {got} > min inserted {m}");
        }
    }

    /// Grouped sketch confines the decode error to the owning group.
    #[test]
    fn grouped_minmax_error_within_group(
        items in vec((0u64..5_000, 0u16..256), 1..1000),
        r in 1usize..16,
        seed in any::<u64>(),
    ) {
        let q = 256u16;
        let mut g = GroupedMinMaxSketch::new(q, r, 2, 16, seed).unwrap();
        let width = g.group_width();
        let mut per_key_group = std::collections::HashMap::new();
        for &(k, b) in &items {
            let gi = g.insert(k, b);
            prop_assert_eq!(gi, g.group_of(b));
            per_key_group.insert((k, gi), b);
        }
        for &(k, gi) in per_key_group.keys() {
            let got = g.query(gi, k).expect("inserted key present");
            // Result must lie inside group gi's index range.
            let lo = gi as u16 * width;
            prop_assert!(got >= lo && got < lo.saturating_add(width).max(q.min(lo + width)));
        }
    }

    /// GK merge is value-safe: min/max of the merged summary bracket both
    /// inputs and the count is the sum.
    #[test]
    fn gk_merge_counts_and_extremes(
        a in vec(-100f64..100.0, 1..500),
        b in vec(-100f64..100.0, 1..500),
    ) {
        let mut sa = GkSummary::new(0.05).unwrap();
        let mut sb = GkSummary::new(0.05).unwrap();
        sa.extend_from_slice(&a);
        sb.extend_from_slice(&b);
        let (amin, amax) = (sa.min().unwrap(), sa.max().unwrap());
        let (bmin, bmax) = (sb.min().unwrap(), sb.max().unwrap());
        sa.merge(&sb);
        prop_assert_eq!(sa.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(sa.min().unwrap(), amin.min(bmin));
        prop_assert_eq!(sa.max().unwrap(), amax.max(bmax));
    }
}
