//! libsvm text-format IO.
//!
//! KDD10/KDD12 (paper Table 1) are distributed in libsvm format:
//! `label index:value index:value …` per line, 1-based indices. This module
//! parses and writes that format so real datasets drop in for the synthetic
//! presets when available.

use sketchml_ml::{Instance, MlError, SparseVector};
use std::io::{BufRead, Write};

/// Parses libsvm lines from a reader. Indices are converted to 0-based.
/// Blank lines and `#` comments are skipped.
///
/// # Errors
/// [`MlError::InvalidInput`] describing the offending line and token.
pub fn read_libsvm(reader: impl BufRead) -> Result<Vec<Instance>, MlError> {
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| MlError::InvalidInput(format!("I/O error: {e}")))?;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut tokens = body.split_whitespace();
        let label: f64 = tokens
            .next()
            .expect("non-empty body has a first token")
            .parse()
            .map_err(|e| MlError::InvalidInput(format!("line {}: bad label: {e}", lineno + 1)))?;
        let mut pairs: Vec<(u32, f64)> = Vec::new();
        for tok in tokens {
            let (idx, val) = tok.split_once(':').ok_or_else(|| {
                MlError::InvalidInput(format!(
                    "line {}: expected index:value, got `{tok}`",
                    lineno + 1
                ))
            })?;
            let idx: u32 = idx.parse().map_err(|e| {
                MlError::InvalidInput(format!("line {}: bad index `{idx}`: {e}", lineno + 1))
            })?;
            if idx == 0 {
                return Err(MlError::InvalidInput(format!(
                    "line {}: libsvm indices are 1-based, got 0",
                    lineno + 1
                )));
            }
            let val: f64 = val.parse().map_err(|e| {
                MlError::InvalidInput(format!("line {}: bad value `{val}`: {e}", lineno + 1))
            })?;
            pairs.push((idx - 1, val));
        }
        pairs.sort_unstable_by_key(|&(i, _)| i);
        pairs.dedup_by_key(|&mut (i, _)| i);
        let features = SparseVector::from_pairs(&pairs)?;
        out.push(Instance::new(features, label));
    }
    Ok(out)
}

/// Writes instances in libsvm format (1-based indices).
///
/// # Errors
/// [`MlError::InvalidInput`] wrapping I/O failures.
pub fn write_libsvm(instances: &[Instance], mut writer: impl Write) -> Result<(), MlError> {
    for inst in instances {
        write!(writer, "{}", inst.label)
            .map_err(|e| MlError::InvalidInput(format!("I/O error: {e}")))?;
        for (i, v) in inst.features.iter() {
            write!(writer, " {}:{}", i + 1, v)
                .map_err(|e| MlError::InvalidInput(format!("I/O error: {e}")))?;
        }
        writeln!(writer).map_err(|e| MlError::InvalidInput(format!("I/O error: {e}")))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_basic_lines() {
        let text = "1 3:0.5 10:1.0\n-1 1:2\n\n# comment\n0.5 2:1 # trailing\n";
        let data = read_libsvm(Cursor::new(text)).unwrap();
        assert_eq!(data.len(), 3);
        assert_eq!(data[0].label, 1.0);
        assert_eq!(data[0].features.indices(), &[2, 9]);
        assert_eq!(data[1].features.indices(), &[0]);
        assert_eq!(data[2].label, 0.5);
    }

    #[test]
    fn rejects_malformed() {
        assert!(read_libsvm(Cursor::new("abc 1:2")).is_err());
        assert!(read_libsvm(Cursor::new("1 xx")).is_err());
        assert!(read_libsvm(Cursor::new("1 a:2")).is_err());
        assert!(read_libsvm(Cursor::new("1 3:b")).is_err());
        assert!(
            read_libsvm(Cursor::new("1 0:2")).is_err(),
            "0 index is invalid"
        );
    }

    #[test]
    fn unsorted_indices_are_fixed() {
        let data = read_libsvm(Cursor::new("1 10:1 3:2 10:9")).unwrap();
        assert_eq!(data[0].features.indices(), &[2, 9]);
    }

    #[test]
    fn roundtrip() {
        let text = "1 1:0.5 7:-2\n-1 3:1\n";
        let data = read_libsvm(Cursor::new(text)).unwrap();
        let mut buf = Vec::new();
        write_libsvm(&data, &mut buf).unwrap();
        let again = read_libsvm(Cursor::new(buf)).unwrap();
        assert_eq!(data, again);
    }
}
