//! Synthetic sparse datasets with power-law feature popularity.
//!
//! The substitution rule (DESIGN.md): what SketchML cares about in a dataset
//! is (a) instance sparsity — it drives gradient sparsity, the key-encoding
//! cost, and the comm/compute balance — and (b) feature-popularity skew,
//! which yields the nonuniform, near-zero-concentrated gradient values of
//! Figure 4. Power-law (Zipf) feature sampling with a planted linear model
//! reproduces both.

use crate::split::split_train_test;
use rand::prelude::*;
use rand::rngs::StdRng;
use rand_distr::{Distribution, Zipf};
use serde::{Deserialize, Serialize};
use sketchml_ml::{Instance, SparseVector};

/// Learning task of a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Task {
    /// ±1 labels from a planted separating hyperplane (LR/SVM).
    Classification,
    /// Real labels from a planted linear model plus noise (Linear).
    Regression,
}

/// Shape parameters of a synthetic sparse dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseDatasetSpec {
    /// Display name used in experiment tables.
    pub name: String,
    /// Number of instances `N`.
    pub instances: usize,
    /// Feature dimensionality `D`.
    pub features: u32,
    /// Average nonzeros per instance.
    pub avg_nnz: usize,
    /// Zipf exponent of feature popularity (> 0; larger = more skew).
    pub skew: f64,
    /// Label-flip probability (classification) or noise std (regression).
    pub label_noise: f64,
    /// Task type.
    pub task: Task,
    /// Generation seed.
    pub seed: u64,
}

impl SparseDatasetSpec {
    /// KDD10-like preset (paper Table 1: 19M × 29M, used on Cluster-1),
    /// scaled to laptop size while keeping `N/D` and sparsity ratios.
    pub fn kdd10_like() -> Self {
        SparseDatasetSpec {
            name: "kdd10-like".into(),
            instances: 16_000,
            features: 300_000,
            avg_nnz: 60,
            skew: 1.1,
            label_noise: 0.05,
            task: Task::Classification,
            seed: 0xDD10,
        }
    }

    /// KDD12-like preset (149M × 54M; sparser than CTR — §4.3.2 "KDD12 is
    /// sparser than CTR").
    pub fn kdd12_like() -> Self {
        SparseDatasetSpec {
            name: "kdd12-like".into(),
            instances: 20_000,
            features: 800_000,
            avg_nnz: 40,
            skew: 1.1,
            label_noise: 0.05,
            task: Task::Classification,
            seed: 0xDD12,
        }
    }

    /// CTR-like preset (proprietary 300M × 58M; denser per instance, so
    /// computation-heavier — §4.3.2 "each instance of CTR generates more
    /// nonzero gradient pairs").
    pub fn ctr_like() -> Self {
        SparseDatasetSpec {
            name: "ctr-like".into(),
            instances: 150_000,
            features: 15_000,
            avg_nnz: 320,
            skew: 1.6,
            label_noise: 0.1,
            task: Task::Classification,
            seed: 0xC70,
        }
    }

    /// Same shape, regression labels (for the Linear model runs).
    pub fn as_regression(mut self) -> Self {
        self.task = Task::Regression;
        self
    }

    /// Same shape, different seed (for multi-run averaging).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scales instance count by `factor` (fast CI runs).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.instances = ((self.instances as f64 * factor).ceil() as usize).max(10);
        self
    }

    /// Generates the dataset.
    ///
    /// # Panics
    /// Panics if `features == 0` or `avg_nnz == 0` (programmer error in a
    /// preset).
    pub fn generate(&self) -> Vec<Instance> {
        assert!(self.features > 0, "features must be positive");
        assert!(self.avg_nnz > 0, "avg_nnz must be positive");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let zipf = Zipf::new(self.features as u64, self.skew).expect("valid Zipf parameters");

        // Planted ground-truth model: popular features get stable weights.
        let truth: Vec<f64> = {
            let mut t_rng = StdRng::seed_from_u64(self.seed ^ 0x7247);
            (0..self.features)
                .map(|_| t_rng.sample::<f64, _>(rand_distr::StandardNormal))
                .collect()
        };

        (0..self.instances)
            .map(|_| {
                // Draw ~avg_nnz distinct features, Zipf-weighted.
                let target = {
                    let jitter = rng.gen_range(0.5..1.5);
                    ((self.avg_nnz as f64 * jitter).round() as usize).max(1)
                };
                let mut idx: Vec<u32> = Vec::with_capacity(target * 2);
                // Rejection-light loop: Zipf repeats head features often.
                // Real datasets cluster related dimensions into consecutive
                // keys (Appendix A.3: "dimensions with strong relationship
                // happen to appear in consecutive keys"), so each Zipf
                // anchor emits a short run of nearby features.
                while idx.len() < target {
                    let f = zipf.sample(&mut rng) as u64 - 1; // Zipf is 1-based
                    idx.push(f as u32);
                    let run = rng.gen_range(0..3usize);
                    let mut cur = f;
                    for _ in 0..run {
                        if idx.len() >= target {
                            break;
                        }
                        cur += rng.gen_range(1..8u64);
                        if cur < self.features as u64 {
                            idx.push(cur as u32);
                        }
                    }
                }
                idx.sort_unstable();
                idx.dedup();

                // Feature values: CTR-style mixture of binary indicators and
                // small reals.
                let vals: Vec<f64> = idx
                    .iter()
                    .map(|_| {
                        if rng.gen_bool(0.7) {
                            1.0
                        } else {
                            rng.gen_range(0.1..2.0)
                        }
                    })
                    .collect();
                let x = SparseVector::new(idx, vals).expect("sorted deduped indices");

                let score: f64 = x.iter().map(|(i, v)| truth[i as usize] * v).sum();
                let label = match self.task {
                    Task::Classification => {
                        let mut y = if score > 0.0 { 1.0 } else { -1.0 };
                        if rng.gen_bool(self.label_noise.clamp(0.0, 1.0)) {
                            y = -y;
                        }
                        y
                    }
                    Task::Regression => {
                        score * 0.05
                            + rng.sample::<f64, _>(rand_distr::StandardNormal) * self.label_noise
                    }
                };
                Instance::new(x, label)
            })
            .collect()
    }

    /// Generates and splits 75/25 (§4.1 "Protocol": "75% as the train
    /// dataset and 25% as the test dataset").
    pub fn generate_split(&self) -> (Vec<Instance>, Vec<Instance>) {
        let all = self.generate();
        split_train_test(all, 0.75, self.seed ^ 0x5117)
    }

    /// Expected sparsity `avg_nnz / D` of one instance.
    pub fn instance_sparsity(&self) -> f64 {
        self.avg_nnz as f64 / self.features as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let spec = SparseDatasetSpec {
            name: "t".into(),
            instances: 500,
            features: 10_000,
            avg_nnz: 20,
            skew: 1.1,
            label_noise: 0.0,
            task: Task::Classification,
            seed: 1,
        };
        let data = spec.generate();
        assert_eq!(data.len(), 500);
        let mean_nnz: f64 = data.iter().map(|i| i.features.nnz() as f64).sum::<f64>() / 500.0;
        assert!(
            (10.0..=30.0).contains(&mean_nnz),
            "mean nnz {mean_nnz} far from requested 20"
        );
        for inst in &data {
            assert!(inst.label == 1.0 || inst.label == -1.0);
            assert!(inst.features.indices().iter().all(|&i| i < 10_000));
        }
    }

    #[test]
    fn feature_popularity_is_skewed() {
        let spec = SparseDatasetSpec::kdd10_like().scaled(0.2);
        let data = spec.generate();
        let mut counts = std::collections::HashMap::new();
        for inst in &data {
            for (i, _) in inst.features.iter() {
                *counts.entry(i).or_insert(0usize) += 1;
            }
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // Power law: the top feature should be much more popular than the
        // median one.
        let top = freqs[0];
        let median = freqs[freqs.len() / 2];
        assert!(
            top > median * 10,
            "popularity not skewed: top {top}, median {median}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = SparseDatasetSpec::kdd12_like().scaled(0.05);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b);
        let c = spec.clone().with_seed(99).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn labels_are_learnable() {
        // A linear model trained on the generated data must beat chance —
        // the planted hyperplane is real signal.
        use sketchml_ml::{Adam, AdamConfig, GlmLoss, GlmModel};
        let spec = SparseDatasetSpec {
            name: "learnable".into(),
            instances: 2_000,
            features: 2_000,
            avg_nnz: 15,
            skew: 1.1,
            label_noise: 0.02,
            task: Task::Classification,
            seed: 3,
        };
        let (train, test) = spec.generate_split();
        let mut model = GlmModel::new(2_000, GlmLoss::Logistic, 0.0001).unwrap();
        let mut opt = Adam::new(2_000, AdamConfig::with_lr(0.05)).unwrap();
        for _ in 0..60 {
            let g = model.batch_gradient(&train);
            model.apply_gradient(&mut opt, &g.keys, &g.values);
        }
        let acc = model.accuracy(&test).unwrap();
        assert!(acc > 0.75, "test accuracy {acc} barely above chance");
    }

    #[test]
    fn regression_labels_track_planted_model() {
        let spec = SparseDatasetSpec::kdd10_like().scaled(0.05).as_regression();
        let data = spec.generate();
        let var: f64 = {
            let mean: f64 = data.iter().map(|i| i.label).sum::<f64>() / data.len() as f64;
            data.iter()
                .map(|i| (i.label - mean) * (i.label - mean))
                .sum::<f64>()
                / data.len() as f64
        };
        assert!(var > 0.0, "regression labels must vary");
        assert!(data.iter().all(|i| i.label.is_finite()));
    }

    #[test]
    fn presets_have_paper_relationships() {
        let kdd12 = SparseDatasetSpec::kdd12_like();
        let ctr = SparseDatasetSpec::ctr_like();
        // §4.3.2: KDD12 sparser than CTR.
        assert!(kdd12.instance_sparsity() < ctr.instance_sparsity());
        // CTR denser per instance → more compute per instance.
        assert!(ctr.avg_nnz > kdd12.avg_nnz);
    }

    #[test]
    fn split_follows_protocol() {
        let spec = SparseDatasetSpec::kdd10_like().scaled(0.1);
        let (train, test) = spec.generate_split();
        let total = train.len() + test.len();
        assert_eq!(total, spec.instances);
        let ratio = train.len() as f64 / total as f64;
        assert!((ratio - 0.75).abs() < 0.01, "train ratio {ratio}");
    }
}
