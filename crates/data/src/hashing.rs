//! The feature-hashing trick — fold a huge, sparse feature space into a
//! fixed-width one.
//!
//! CTR systems (the paper's third workload) routinely hash raw categorical
//! features into a model of fixed dimension `2^b`; collisions act as mild
//! regularization. This transform lets any dataset be re-targeted to a
//! smaller model — handy for quick experiments — while preserving the
//! sparse, skewed structure SketchML exploits.

use sketchml_ml::{Instance, MlError, SparseVector};
use sketchml_sketches::hash::mix64;

/// Hashes a sparse vector's indices into `[0, width)`, summing values on
/// collision, with a deterministic ±1 sign per index to keep the expected
/// inner product unbiased (Weinberger et al.'s signed hashing trick).
///
/// # Errors
/// [`MlError::InvalidConfig`] if `width == 0`.
pub fn hash_features(x: &SparseVector, width: u32, seed: u64) -> Result<SparseVector, MlError> {
    if width == 0 {
        return Err(MlError::InvalidConfig("hash width must be positive".into()));
    }
    let mut acc: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
    for (i, v) in x.iter() {
        let h = mix64(i as u64 ^ seed);
        let bucket = (h % width as u64) as u32;
        let sign = if h & (1 << 63) == 0 { 1.0 } else { -1.0 };
        *acc.entry(bucket).or_insert(0.0) += sign * v;
    }
    let pairs: Vec<(u32, f64)> = acc.into_iter().filter(|&(_, v)| v != 0.0).collect();
    SparseVector::from_pairs(&pairs)
}

/// Hashes every instance of a dataset into a `width`-dimensional space.
///
/// # Errors
/// See [`hash_features`].
pub fn hash_dataset(data: &[Instance], width: u32, seed: u64) -> Result<Vec<Instance>, MlError> {
    data.iter()
        .map(|inst| {
            Ok(Instance::new(
                hash_features(&inst.features, width, seed)?,
                inst.label,
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SparseDatasetSpec;
    use sketchml_ml::{Adam, AdamConfig, GlmLoss, GlmModel};

    #[test]
    fn output_stays_in_range_and_is_deterministic() {
        let x = SparseVector::new(vec![5, 100, 2_000_000], vec![1.0, -2.0, 0.5]).unwrap();
        let a = hash_features(&x, 64, 7).unwrap();
        let b = hash_features(&x, 64, 7).unwrap();
        assert_eq!(a, b);
        assert!(a.indices().iter().all(|&i| i < 64));
        assert!(a.nnz() <= 3);
        let c = hash_features(&x, 64, 8).unwrap();
        assert_ne!(a, c, "different seeds hash differently");
    }

    #[test]
    fn signed_hashing_keeps_inner_products_roughly() {
        // <h(x), h(x)> ≈ <x, x> in expectation; with few collisions at a
        // wide width it is near-exact.
        let x = SparseVector::new(
            (0..50u32).map(|i| i * 97).collect(),
            (0..50).map(|i| (i as f64 * 0.1).sin()).collect(),
        )
        .unwrap();
        let norm2: f64 = x.values().iter().map(|v| v * v).sum();
        let h = hash_features(&x, 1 << 16, 3).unwrap();
        let hnorm2: f64 = h.values().iter().map(|v| v * v).sum();
        assert!(
            (norm2 - hnorm2).abs() / norm2 < 0.05,
            "norm {norm2} vs hashed {hnorm2}"
        );
    }

    #[test]
    fn zero_width_rejected() {
        let x = SparseVector::new(vec![1], vec![1.0]).unwrap();
        assert!(hash_features(&x, 0, 0).is_err());
    }

    #[test]
    fn hashed_dataset_is_still_learnable() {
        // Hash a 300k-dim dataset into 16k dims and verify a model still
        // beats chance — the CTR-style pipeline end to end.
        let spec = SparseDatasetSpec::kdd10_like().scaled(0.25);
        let (train, test) = spec.generate_split();
        let width = 16_384u32;
        let train_h = hash_dataset(&train, width, 11).unwrap();
        let test_h = hash_dataset(&test, width, 11).unwrap();
        let mut model = GlmModel::new(width as usize, GlmLoss::Logistic, 1e-4).unwrap();
        let mut opt = Adam::new(width as usize, AdamConfig::with_lr(0.05)).unwrap();
        for _ in 0..60 {
            let g = model.batch_gradient(&train_h);
            model.apply_gradient(&mut opt, &g.keys, &g.values);
        }
        let acc = model.accuracy(&test_h).unwrap();
        assert!(
            acc > 0.65,
            "hashed-feature accuracy {acc} barely above chance"
        );
    }
}
