//! Synthetic MNIST stand-in for the §B.3 MLP experiment.
//!
//! The paper trains a 20×20-input MLP on MNIST (60k train / 10k test
//! images, 10 classes). We cannot ship MNIST, so we generate images from
//! ten fixed class prototypes — smooth pseudo-random intensity fields —
//! plus per-image Gaussian noise. The classes are separable but not
//! trivially so (prototypes overlap), which is all the §B.3 experiment
//! needs: a dense-gradient multiclass task that distinguishes the
//! convergence behaviour of SketchML, Adam, and ZipML.

use rand::prelude::*;
use rand::rngs::StdRng;
use rand_distr::StandardNormal;
use serde::{Deserialize, Serialize};
use sketchml_ml::mlp::MlpInstance;

/// Shape parameters of the synthetic image dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MnistLikeSpec {
    /// Image side length (paper: 20 → 400 pixels).
    pub side: usize,
    /// Number of classes (paper: 10).
    pub classes: usize,
    /// Number of images to generate.
    pub instances: usize,
    /// Per-pixel Gaussian noise standard deviation.
    pub noise: f64,
    /// Generation seed.
    pub seed: u64,
}

impl Default for MnistLikeSpec {
    fn default() -> Self {
        MnistLikeSpec {
            side: 20,
            classes: 10,
            instances: 2_000,
            noise: 0.25,
            seed: 0xB3,
        }
    }
}

impl MnistLikeSpec {
    /// A scaled-down spec for fast tests.
    pub fn small() -> Self {
        MnistLikeSpec {
            side: 8,
            classes: 4,
            instances: 400,
            ..MnistLikeSpec::default()
        }
    }

    /// Pixels per image.
    pub fn pixels(&self) -> usize {
        self.side * self.side
    }

    /// Generates the class prototypes (one smooth field per class).
    fn prototypes(&self) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9670);
        (0..self.classes)
            .map(|_| {
                // Low-frequency field: sum of a few random sinusoids.
                let (fx, fy, phase): (f64, f64, f64) = (
                    rng.gen_range(0.5..2.5),
                    rng.gen_range(0.5..2.5),
                    rng.gen_range(0.0..std::f64::consts::TAU),
                );
                (0..self.pixels())
                    .map(|p| {
                        let x = (p % self.side) as f64 / self.side as f64;
                        let y = (p / self.side) as f64 / self.side as f64;
                        ((fx * x + fy * y) * std::f64::consts::TAU + phase).sin() * 0.5 + 0.5
                    })
                    .collect()
            })
            .collect()
    }

    /// Generates the dataset.
    ///
    /// # Panics
    /// Panics on a zero-sized spec (programmer error).
    pub fn generate(&self) -> Vec<MlpInstance> {
        assert!(self.side > 0 && self.classes > 0, "degenerate spec");
        let protos = self.prototypes();
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.instances)
            .map(|_| {
                let label = rng.gen_range(0..self.classes);
                let pixels: Vec<f64> = protos[label]
                    .iter()
                    .map(|&p| {
                        (p + rng.sample::<f64, _>(StandardNormal) * self.noise).clamp(0.0, 1.0)
                    })
                    .collect();
                MlpInstance { pixels, label }
            })
            .collect()
    }

    /// Generates and splits into `(train, test)` with 6:1 proportions
    /// (mirroring MNIST's 60k/10k).
    pub fn generate_split(&self) -> (Vec<MlpInstance>, Vec<MlpInstance>) {
        let mut all = self.generate();
        let cut = self.instances * 6 / 7;
        let test = all.split_off(cut);
        (all, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchml_ml::{Adam, AdamConfig, Mlp, MlpConfig};

    #[test]
    fn shapes_and_ranges() {
        let spec = MnistLikeSpec::small();
        let data = spec.generate();
        assert_eq!(data.len(), 400);
        for img in &data {
            assert_eq!(img.pixels.len(), 64);
            assert!(img.label < 4);
            assert!(img.pixels.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn deterministic() {
        let spec = MnistLikeSpec::small();
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn all_classes_present() {
        let data = MnistLikeSpec::small().generate();
        let mut seen = [false; 4];
        for img in &data {
            seen[img.label] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mlp_learns_the_classes() {
        let spec = MnistLikeSpec::small();
        let (train, test) = spec.generate_split();
        let mut mlp = Mlp::new(&MlpConfig::small(spec.pixels(), 16, spec.classes)).unwrap();
        let mut opt = Adam::new(mlp.num_params(), AdamConfig::with_lr(0.02)).unwrap();
        for _ in 0..40 {
            let (g, _) = mlp.batch_gradient(&train);
            mlp.apply_dense_gradient(&mut opt, &g);
        }
        let acc = mlp.accuracy(&test);
        assert!(
            acc > 0.8,
            "test accuracy {acc} too low for separable classes"
        );
    }
}
