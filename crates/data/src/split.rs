//! Train/test splitting and mini-batching (paper §4.1 "Protocol").
//!
//! "The input dataset is partitioned into two subsets — 75% as the train
//! dataset and 25% as the test dataset. … we adopt a popular trick of SGD
//! that uses a batch of instances instead of only one instance. … we set
//! the batch size as 10% of the size of the train dataset."

use rand::prelude::*;
use rand::rngs::StdRng;
use sketchml_ml::Instance;

/// Shuffles `data` deterministically and splits it into
/// `(train, test)` with `train_fraction` of the instances in the first
/// part.
pub fn split_train_test(
    mut data: Vec<Instance>,
    train_fraction: f64,
    seed: u64,
) -> (Vec<Instance>, Vec<Instance>) {
    let mut rng = StdRng::seed_from_u64(seed);
    data.shuffle(&mut rng);
    let cut = ((data.len() as f64) * train_fraction.clamp(0.0, 1.0)).round() as usize;
    let test = data.split_off(cut.min(data.len()));
    (data, test)
}

/// Deterministic epoch-wise mini-batcher: each epoch re-shuffles the index
/// permutation and yields `ceil(1 / batch_ratio)` batches covering the
/// whole training set.
#[derive(Debug, Clone)]
pub struct Batcher {
    batch_size: usize,
    order: Vec<usize>,
    rng: StdRng,
}

impl Batcher {
    /// Creates a batcher producing batches of `batch_ratio * n` instances.
    ///
    /// # Panics
    /// Panics if `batch_ratio` is not in `(0, 1]` or `n == 0`.
    pub fn new(n: usize, batch_ratio: f64, seed: u64) -> Self {
        assert!(n > 0, "cannot batch an empty dataset");
        assert!(
            batch_ratio > 0.0 && batch_ratio <= 1.0,
            "batch_ratio must be in (0, 1], got {batch_ratio}"
        );
        let batch_size = ((n as f64 * batch_ratio).round() as usize).clamp(1, n);
        Batcher {
            batch_size,
            order: (0..n).collect(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Instances per batch.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of batches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }

    /// Reshuffles and returns this epoch's batches as index slices.
    pub fn epoch(&mut self) -> Vec<Vec<usize>> {
        self.order.shuffle(&mut self.rng);
        self.order
            .chunks(self.batch_size)
            .map(<[usize]>::to_vec)
            .collect()
    }

    /// Materializes one batch of instances by cloning the indexed rows.
    pub fn gather(data: &[Instance], batch: &[usize]) -> Vec<Instance> {
        batch.iter().map(|&i| data[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchml_ml::SparseVector;

    fn dummy(n: usize) -> Vec<Instance> {
        (0..n)
            .map(|i| {
                Instance::new(
                    SparseVector::new(vec![i as u32], vec![1.0]).unwrap(),
                    if i % 2 == 0 { 1.0 } else { -1.0 },
                )
            })
            .collect()
    }

    #[test]
    fn split_fractions() {
        let (train, test) = split_train_test(dummy(100), 0.75, 1);
        assert_eq!(train.len(), 75);
        assert_eq!(test.len(), 25);
        // No instance lost or duplicated.
        let mut all: Vec<u32> = train
            .iter()
            .chain(&test)
            .map(|i| i.features.indices()[0])
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic_and_shuffled() {
        let (a, _) = split_train_test(dummy(100), 0.75, 7);
        let (b, _) = split_train_test(dummy(100), 0.75, 7);
        assert_eq!(a, b);
        // Shuffled: first train element unlikely to be instance 0.
        let first: Vec<u32> = a.iter().take(10).map(|i| i.features.indices()[0]).collect();
        assert_ne!(first, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn batcher_covers_everything() {
        let mut b = Batcher::new(103, 0.1, 2);
        assert_eq!(b.batch_size(), 10);
        assert_eq!(b.batches_per_epoch(), 11);
        let batches = b.epoch();
        let mut seen: Vec<usize> = batches.concat();
        seen.sort_unstable();
        assert_eq!(seen, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn batcher_reshuffles_between_epochs() {
        let mut b = Batcher::new(50, 0.2, 3);
        let e1 = b.epoch();
        let e2 = b.epoch();
        assert_ne!(e1, e2, "epochs should be differently shuffled");
    }

    #[test]
    fn gather_clones_rows() {
        let data = dummy(5);
        let batch = Batcher::gather(&data, &[4, 0]);
        assert_eq!(batch[0], data[4]);
        assert_eq!(batch[1], data[0]);
    }

    #[test]
    #[should_panic(expected = "batch_ratio")]
    fn bad_ratio_panics() {
        let _ = Batcher::new(10, 0.0, 0);
    }

    #[test]
    fn full_batch_ratio() {
        let mut b = Batcher::new(10, 1.0, 0);
        assert_eq!(b.batch_size(), 10);
        assert_eq!(b.epoch().len(), 1);
    }
}
