//! Dataset substrate for the SketchML reproduction (paper §4.1, Table 1).
//!
//! The paper evaluates on KDD10 (19M × 29M), KDD12 (149M × 54M) and a
//! proprietary Tencent CTR dataset (300M × 58M). None of those are shippable
//! here, so this crate provides **synthetic generators with matched shape
//! parameters** — power-law feature popularity (which produces the skewed,
//! near-zero gradient value distribution of Figure 4), controlled average
//! nonzeros per instance, and a planted ground-truth model — scaled to
//! laptop size. The named presets keep the *relationships* the paper's
//! analysis depends on (KDD12 sparser than CTR, CTR computation-heavier).
//!
//! Also included: a synthetic MNIST stand-in for the §B.3 MLP experiment,
//! libsvm-format IO for real datasets, and §4.1's 75/25 split plus
//! mini-batching by ratio.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod hashing;
pub mod libsvm;
pub mod mnist_like;
pub mod split;
pub mod synthetic;

pub use hashing::{hash_dataset, hash_features};
pub use mnist_like::MnistLikeSpec;
pub use split::{split_train_test, Batcher};
pub use synthetic::{SparseDatasetSpec, Task};
