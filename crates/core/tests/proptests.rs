//! Property-based tests of the compressor invariants (paper §3.3/§3.4):
//! for *arbitrary* sparse gradients, keys decode exactly, signs never flip,
//! and the decode never panics on corrupted bytes.

use bytes::BytesMut;
use proptest::collection::btree_map;
use proptest::prelude::*;
use sketchml_core::{
    roundtrip_error, CompressScratch, GradientCompressor, KeyCompressor, QuantCompressor,
    RawCompressor, ShardedCompressor, SketchMlCompressor, SketchMlConfig, SparseGradient,
    TruncationCompressor, ZipMlCompressor,
};

/// Arbitrary sparse gradients: up to 300 pairs over a 100k-dim model with
/// values in a gradient-like range, never exactly zero.
fn arb_gradient() -> impl Strategy<Value = SparseGradient> {
    btree_map(0u64..100_000, -2.0f64..2.0, 1..300).prop_map(|m| {
        let keys: Vec<u64> = m.keys().copied().collect();
        let values: Vec<f64> = m
            .values()
            .map(|&v| if v == 0.0 { 1e-9 } else { v })
            .collect();
        SparseGradient::new(100_000, keys, values).expect("btree map keys are ascending")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline §3.4 property: SketchML keys decode exactly, always.
    #[test]
    fn sketchml_keys_always_lossless(grad in arb_gradient(), seed in any::<u64>()) {
        let cfg = SketchMlConfig { seed, ..SketchMlConfig::default() };
        let c = SketchMlCompressor::new(cfg).unwrap();
        let decoded = c.decompress(&c.compress(&grad).unwrap().payload).unwrap();
        prop_assert_eq!(decoded.keys(), grad.keys());
        prop_assert_eq!(decoded.dim(), grad.dim());
    }

    /// §3.3 Solution 1: decoded values never reverse sign, and magnitudes
    /// never exceed the side's maximum (underestimate-only decay).
    #[test]
    fn sketchml_never_reverses_or_amplifies(grad in arb_gradient(), seed in any::<u64>()) {
        let cfg = SketchMlConfig { seed, ..SketchMlConfig::default() };
        let c = SketchMlCompressor::new(cfg).unwrap();
        let decoded = c.decompress(&c.compress(&grad).unwrap().payload).unwrap();
        let max_mag = grad.values().iter().fold(0f64, |a, v| a.max(v.abs()));
        for ((_, o), (_, d)) in grad.iter().zip(decoded.iter()) {
            prop_assert!(o.signum() == d.signum() || d == 0.0,
                "sign flip {o} -> {d}");
            prop_assert!(d.abs() <= max_mag + 1e-12,
                "amplified {o} -> {d} (max {max_mag})");
        }
    }

    /// Shrinking the sketch must degrade *accuracy*, never *correctness*:
    /// even a 1-column-per-group sketch decodes valid in-range values.
    #[test]
    fn sketchml_extreme_shapes_stay_valid(
        grad in arb_gradient(),
        rows in 1usize..4,
        groups in 1usize..12,
    ) {
        let cfg = SketchMlConfig {
            rows,
            groups,
            col_ratio: 1e-6, // force min_cols_per_group
            min_cols_per_group: 1,
            ..SketchMlConfig::default()
        };
        let c = SketchMlCompressor::new(cfg).unwrap();
        let decoded = c.decompress(&c.compress(&grad).unwrap().payload).unwrap();
        prop_assert_eq!(decoded.keys(), grad.keys());
        let max_mag = grad.values().iter().fold(0f64, |a, v| a.max(v.abs()));
        for (_, d) in decoded.iter() {
            prop_assert!(d.abs() <= max_mag + 1e-12);
        }
    }

    /// Every lossless compressor is exactly lossless (modulo f32 width).
    #[test]
    fn lossless_baselines_roundtrip(grad in arb_gradient()) {
        let raw = RawCompressor::default();
        let d = raw.decompress(&raw.compress(&grad).unwrap().payload).unwrap();
        prop_assert_eq!(&d, &grad);
        let key = KeyCompressor;
        let d = key.decompress(&key.compress(&grad).unwrap().payload).unwrap();
        prop_assert_eq!(&d, &grad);
    }

    /// ZipML error is bounded by one level width; keys exact.
    #[test]
    fn zipml_error_within_level(grad in arb_gradient()) {
        let c = ZipMlCompressor::paper_default();
        let d = c.decompress(&c.compress(&grad).unwrap().payload).unwrap();
        prop_assert_eq!(d.keys(), grad.keys());
        let min = grad.values().iter().copied().fold(f64::INFINITY, f64::min);
        let max = grad.values().iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let width = (max - min).max(f64::MIN_POSITIVE) / 65_535.0;
        for ((_, o), (_, v)) in grad.iter().zip(d.iter()) {
            prop_assert!((o - v).abs() <= width + 1e-12);
        }
    }

    /// Truncation keeps a subset of the original pairs with exact keys.
    #[test]
    fn truncation_keeps_subset(grad in arb_gradient(), ratio in 0.01f64..1.0) {
        let c = TruncationCompressor { keep_ratio: ratio };
        let d = c.decompress(&c.compress(&grad).unwrap().payload).unwrap();
        prop_assert!(d.nnz() <= grad.nnz());
        let orig: std::collections::HashMap<u64, f64> = grad.iter().collect();
        for (k, v) in d.iter() {
            let o = orig.get(&k);
            prop_assert!(o.is_some(), "key {k} not in original");
            prop_assert!((o.unwrap() - v).abs() < 1e-6);
        }
    }

    /// Quant compressor: keys exact, values within their bucket's span.
    #[test]
    fn quant_compressor_error_within_value_range(grad in arb_gradient()) {
        let c = QuantCompressor::default();
        let d = c.decompress(&c.compress(&grad).unwrap().payload).unwrap();
        prop_assert_eq!(d.keys(), grad.keys());
        let min = grad.values().iter().copied().fold(f64::INFINITY, f64::min);
        let max = grad.values().iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for (_, v) in d.iter() {
            prop_assert!(v >= min - 1e-12 && v <= max + 1e-12);
        }
    }

    /// The sharded engine is a pure transport: its decode equals decoding
    /// each serially-compressed shard and stitching them back together, for
    /// arbitrary gradients, shard counts, and thread counts.
    #[test]
    fn sharded_decode_equals_serial_per_shard(
        grad in arb_gradient(),
        seed in any::<u64>(),
        shards in 1usize..9,
        threads in 1usize..5,
    ) {
        let cfg = SketchMlConfig { seed, ..SketchMlConfig::default() };
        let inner = SketchMlCompressor::new(cfg).unwrap();
        let engine = ShardedCompressor::new(inner, shards)
            .unwrap()
            .with_threads(threads)
            .unwrap();

        // Reference: compress every shard serially, decode each, stitch.
        let mut ref_keys = Vec::new();
        let mut ref_values = Vec::new();
        for msg in engine.compress_shards_serial(&grad).unwrap() {
            let part = engine.inner().decompress(&msg.payload).unwrap();
            prop_assert_eq!(part.dim(), grad.dim());
            ref_keys.extend_from_slice(part.keys());
            ref_values.extend_from_slice(part.values());
        }

        let decoded = engine.decompress(&engine.compress(&grad).unwrap().payload).unwrap();
        prop_assert_eq!(decoded.keys(), &ref_keys[..]);
        prop_assert_eq!(decoded.values(), &ref_values[..]);
        prop_assert_eq!(decoded.keys(), grad.keys(), "keys stay lossless through shards");
    }

    /// Sharding preserves §3.3 Solution 1: no decoded value ever flips sign,
    /// whatever the shard/thread configuration.
    #[test]
    fn sharded_sketchml_never_flips_signs(
        grad in arb_gradient(),
        seed in any::<u64>(),
        shards in 1usize..9,
        threads in 1usize..5,
    ) {
        let cfg = SketchMlConfig { seed, ..SketchMlConfig::default() };
        let engine = ShardedCompressor::new(SketchMlCompressor::new(cfg).unwrap(), shards)
            .unwrap()
            .with_threads(threads)
            .unwrap();
        let stats = roundtrip_error(&engine, &grad).unwrap();
        prop_assert_eq!(stats.sign_flips, 0usize, "sharded SketchML flipped a sign");
        prop_assert_eq!(stats.pairs_out, grad.nnz());
    }

    /// The scratch fast path is byte-identical to the allocating path for
    /// every compressor that overrides it, with one scratch and one output
    /// buffer reused across compressors (so stale state from a previous
    /// encode can never leak into the next payload).
    #[test]
    fn compress_into_matches_compress_bytes(
        grad in arb_gradient(),
        seed in any::<u64>(),
        shards in 1usize..6,
        threads in 1usize..4,
    ) {
        let cfg = SketchMlConfig { seed, ..SketchMlConfig::default() };
        let compressors: Vec<Box<dyn GradientCompressor>> = vec![
            Box::new(SketchMlCompressor::new(cfg).unwrap()),
            Box::new(QuantCompressor::default()),
            Box::new(ZipMlCompressor::paper_default()),
            Box::new(
                ShardedCompressor::new(SketchMlCompressor::new(cfg).unwrap(), shards)
                    .unwrap()
                    .with_threads(threads)
                    .unwrap(),
            ),
        ];
        let mut scratch = CompressScratch::new();
        let mut out = BytesMut::new();
        for c in &compressors {
            let msg = c.compress(&grad).unwrap();
            let report = c.compress_into(&grad, &mut scratch, &mut out).unwrap();
            prop_assert_eq!(&out[..], &msg.payload[..], "{} bytes differ", c.name());
            prop_assert_eq!(report, msg.report, "{} report differs", c.name());
        }
    }

    /// `decompress_into` with pooled scratch round-trips exactly like the
    /// allocating decode: keys lossless, zero sign flips, and the pooled
    /// output gradient matches `decompress` even when reused across calls.
    #[test]
    fn decompress_into_roundtrips_without_sign_flips(
        grad in arb_gradient(),
        seed in any::<u64>(),
        shards in 1usize..6,
    ) {
        let cfg = SketchMlConfig { seed, ..SketchMlConfig::default() };
        let compressors: Vec<Box<dyn GradientCompressor>> = vec![
            Box::new(SketchMlCompressor::new(cfg).unwrap()),
            Box::new(ZipMlCompressor::paper_default()),
            Box::new(ShardedCompressor::new(SketchMlCompressor::new(cfg).unwrap(), shards).unwrap()),
        ];
        let mut scratch = CompressScratch::new();
        let mut wire = BytesMut::new();
        let mut decoded = SparseGradient::empty(0);
        for c in &compressors {
            c.compress_into(&grad, &mut scratch, &mut wire).unwrap();
            c.decompress_into(&wire, &mut scratch, &mut decoded).unwrap();
            let reference = c.decompress(&wire).unwrap();
            prop_assert_eq!(&decoded, &reference, "{} scratch decode differs", c.name());
            prop_assert_eq!(decoded.keys(), grad.keys(), "{} keys not lossless", c.name());
            // §3.3 Solution 1 is a SketchML guarantee; ZipML's nearest-level
            // rounding may legitimately cross zero.
            if !c.name().starts_with("ZipML") {
                for ((_, o), (_, d)) in grad.iter().zip(decoded.iter()) {
                    prop_assert!(
                        o.signum() == d.signum() || d == 0.0,
                        "{} flipped sign {} -> {}", c.name(), o, d
                    );
                }
            }
        }
    }

    /// No compressor panics on arbitrary garbage input.
    #[test]
    fn decoders_never_panic_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..400)) {
        let compressors: Vec<Box<dyn GradientCompressor>> = vec![
            Box::new(SketchMlCompressor::default()),
            Box::new(QuantCompressor::default()),
            Box::new(KeyCompressor),
            Box::new(RawCompressor::default()),
            Box::new(ZipMlCompressor::paper_default()),
            Box::new(TruncationCompressor::default()),
        ];
        for c in &compressors {
            let _ = c.decompress(&data);
        }
    }
}
