//! Integration tests of the full SketchML pipeline (paper §3, Figure 2):
//! encode → wire bytes → decode, checking every correctness property the
//! paper claims.

use bytes::BytesMut;
use rand::prelude::*;
use rand::rngs::StdRng;
use sketchml_core::{
    roundtrip_error, CompressScratch, GradientCompressor, MeanPrecision, QuantileBackend,
    SketchMlCompressor, SketchMlConfig, SparseGradient,
};

/// A gradient shaped like Figure 4: sparse keys over a large model, values
/// concentrated near zero with both signs.
fn paperlike_gradient(nnz: usize, dim: u64, seed: u64) -> SparseGradient {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys: Vec<u64> = Vec::with_capacity(nnz * 2);
    while keys.len() < nnz * 2 {
        keys.push(rng.gen_range(0..dim));
    }
    keys.sort_unstable();
    keys.dedup();
    keys.truncate(nnz);
    let values: Vec<f64> = keys
        .iter()
        .map(|_| {
            let sign = if rng.gen_bool(0.45) { -1.0 } else { 1.0 };
            sign * rng.gen::<f64>().powi(6) * 0.35 + 1e-9
        })
        .collect();
    SparseGradient::new(dim, keys, values).unwrap()
}

#[test]
fn keys_are_lossless() {
    let grad = paperlike_gradient(5_000, 1_000_000, 1);
    let c = SketchMlCompressor::default();
    let msg = c.compress(&grad).unwrap();
    let decoded = c.decompress(&msg.payload).unwrap();
    assert_eq!(
        decoded.keys(),
        grad.keys(),
        "§3.4: keys must decode exactly"
    );
    assert_eq!(decoded.dim(), grad.dim());
    assert_eq!(decoded.nnz(), grad.nnz());
}

#[test]
fn no_sign_reversal_and_no_magnitude_amplification_beyond_bucket() {
    // §3.3 Solution 1: the decoded value must have the original's sign;
    // the min/max protocol may only *decay* the index, so the decoded
    // magnitude is at most the original bucket's mean magnitude, which is
    // bounded by the side's maximum |value|.
    let grad = paperlike_gradient(8_000, 500_000, 2);
    let c = SketchMlCompressor::default();
    let decoded = c.decompress(&c.compress(&grad).unwrap().payload).unwrap();
    let max_mag = grad.values().iter().fold(0f64, |acc, v| acc.max(v.abs()));
    for ((_, orig), (_, dec)) in grad.iter().zip(decoded.iter()) {
        assert!(
            orig.signum() == dec.signum() || dec == 0.0,
            "sign reversed: {orig} -> {dec}"
        );
        assert!(
            dec.abs() <= max_mag + 1e-12,
            "decoded magnitude {dec} exceeds max original {max_mag}"
        );
    }
}

#[test]
fn decoded_magnitude_is_underestimated_relative_to_bucket_mean() {
    // The MinMaxSketch can only decrease the normalized index, so the
    // decoded |value| never exceeds the mean of the *true* bucket by more
    // than the quantization step. We check the aggregate: mean decoded
    // magnitude <= mean original magnitude + small quantization slack.
    let grad = paperlike_gradient(10_000, 500_000, 3);
    let c = SketchMlCompressor::default();
    let decoded = c.decompress(&c.compress(&grad).unwrap().payload).unwrap();
    let mean_in: f64 = grad.values().iter().map(|v| v.abs()).sum::<f64>() / grad.nnz() as f64;
    let mean_out: f64 =
        decoded.values().iter().map(|v| v.abs()).sum::<f64>() / decoded.nnz() as f64;
    assert!(
        mean_out <= mean_in * 1.1,
        "vanishing-gradient direction violated: out {mean_out} vs in {mean_in}"
    );
}

#[test]
fn compression_rate_matches_paper_ballpark() {
    // Figure 8(b): SketchML compresses LR gradients ~7x vs raw 12d.
    let grad = paperlike_gradient(30_000, 2_000_000, 4);
    let c = SketchMlCompressor::default();
    let msg = c.compress(&grad).unwrap();
    let rate = msg.report.compression_rate();
    assert!(
        rate > 4.0,
        "compression rate {rate} below the paper's 5.4-7.2x band"
    );
    assert!(
        rate < 20.0,
        "rate {rate} suspiciously high — check accounting"
    );
}

#[test]
fn bytes_per_key_near_paper_figure() {
    // Figure 8(d): ~1.25-1.27 bytes per key for sparse gradients.
    let grad = paperlike_gradient(50_000, 2_000_000, 5);
    let c = SketchMlCompressor::default();
    let msg = c.compress(&grad).unwrap();
    let bpk = msg.report.bytes_per_key();
    assert!(
        (1.0..=2.0).contains(&bpk),
        "bytes/key {bpk} outside the paper's ~1.27 regime"
    );
}

#[test]
fn roundtrip_error_is_bounded_and_small() {
    let grad = paperlike_gradient(10_000, 1_000_000, 6);
    let c = SketchMlCompressor::default();
    let stats = roundtrip_error(&c, &grad).unwrap();
    assert_eq!(stats.sign_flips, 0, "§3.3: no reversed gradients");
    assert_eq!(stats.pairs_in, stats.pairs_out);
    // Relative L2 error should be < 1 (decayed, not destroyed).
    let rel = stats.squared_error.sqrt() / grad.l2_norm();
    assert!(rel < 1.0, "relative decode error {rel}");
}

#[test]
fn all_positive_and_all_negative_gradients() {
    let mut rng = StdRng::seed_from_u64(7);
    for sign in [1.0f64, -1.0] {
        let keys: Vec<u64> = (0..1000u64).map(|i| i * 17).collect();
        let values: Vec<f64> = keys
            .iter()
            .map(|_| sign * rng.gen::<f64>().max(1e-6))
            .collect();
        let grad = SparseGradient::new(100_000, keys, values).unwrap();
        let c = SketchMlCompressor::default();
        let decoded = c.decompress(&c.compress(&grad).unwrap().payload).unwrap();
        assert_eq!(decoded.keys(), grad.keys());
        for (_, v) in decoded.iter() {
            assert_eq!(v.signum(), sign, "one-sided gradient must keep its sign");
        }
    }
}

#[test]
fn tiny_gradients() {
    let c = SketchMlCompressor::default();
    for n in [1usize, 2, 3, 7] {
        let keys: Vec<u64> = (0..n as u64).map(|i| i * 1000 + 5).collect();
        let values: Vec<f64> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    0.1 * (i + 1) as f64
                } else {
                    -0.05 * i as f64
                }
            })
            .collect();
        let grad = SparseGradient::new(100_000, keys, values).unwrap();
        let decoded = c.decompress(&c.compress(&grad).unwrap().payload).unwrap();
        assert_eq!(decoded.keys(), grad.keys(), "n={n}");
    }
}

#[test]
fn empty_gradient() {
    let c = SketchMlCompressor::default();
    let msg = c.compress(&SparseGradient::empty(123)).unwrap();
    let decoded = c.decompress(&msg.payload).unwrap();
    assert!(decoded.is_empty());
    assert_eq!(decoded.dim(), 123);
}

#[test]
fn deterministic_given_seed() {
    let grad = paperlike_gradient(2_000, 100_000, 8);
    let c = SketchMlCompressor::default();
    let a = c.compress(&grad).unwrap();
    let b = c.compress(&grad).unwrap();
    assert_eq!(a.payload, b.payload, "compression must be deterministic");
}

#[test]
fn config_validation() {
    let bad = |f: fn(&mut SketchMlConfig)| {
        let mut cfg = SketchMlConfig::default();
        f(&mut cfg);
        SketchMlCompressor::new(cfg)
    };
    assert!(bad(|c| c.quantile_sketch_capacity = 1).is_err());
    assert!(bad(|c| c.buckets_per_sign = 0).is_err());
    assert!(bad(|c| c.buckets_per_sign = u16::MAX).is_err());
    assert!(bad(|c| c.rows = 0).is_err());
    assert!(bad(|c| c.col_ratio = 0.0).is_err());
    assert!(bad(|c| c.col_ratio = -1.0).is_err());
    assert!(bad(|c| c.min_cols_per_group = 0).is_err());
    assert!(bad(|c| c.groups = 0).is_err());
    assert!(SketchMlCompressor::new(SketchMlConfig::default()).is_ok());
}

#[test]
fn corrupt_and_truncated_messages_error_not_panic() {
    let grad = paperlike_gradient(300, 50_000, 9);
    let c = SketchMlCompressor::default();
    let msg = c.compress(&grad).unwrap();
    assert!(c.decompress(&[]).is_err());
    assert!(c.decompress(&[0x00; 16]).is_err());
    for cut in 0..msg.payload.len() {
        let _ = c.decompress(&msg.payload[..cut]);
    }
    // Bit flips in the body must never panic (may or may not error).
    let mut flipped = msg.payload.to_vec();
    for i in (0..flipped.len()).step_by(7) {
        flipped[i] ^= 0xFF;
        let _ = c.decompress(&flipped);
        flipped[i] ^= 0xFF;
    }
}

#[test]
fn grouping_improves_decode_accuracy() {
    // §3.3 Solution 2: with undersized sketches, r=8 must beat r=1.
    let grad = paperlike_gradient(20_000, 1_000_000, 10);
    let err_for = |groups: usize| {
        let cfg = SketchMlConfig {
            groups,
            col_ratio: 0.05, // deliberately tight to force collisions
            ..SketchMlConfig::default()
        };
        let c = SketchMlCompressor::new(cfg).unwrap();
        roundtrip_error(&c, &grad).unwrap().squared_error
    };
    let e1 = err_for(1);
    let e8 = err_for(8);
    assert!(
        e8 < e1,
        "grouping should reduce decode error: r=8 {e8} !< r=1 {e1}"
    );
}

#[test]
fn wider_sketch_improves_decode_accuracy() {
    // §B.2 "Column of MinMaxSketch": d/2 columns beat d/5.
    let grad = paperlike_gradient(20_000, 1_000_000, 11);
    let err_for = |ratio: f64| {
        let cfg = SketchMlConfig {
            col_ratio: ratio,
            ..SketchMlConfig::default()
        };
        let c = SketchMlCompressor::new(cfg).unwrap();
        roundtrip_error(&c, &grad).unwrap().squared_error
    };
    let narrow = err_for(0.05);
    let wide = err_for(0.5);
    assert!(
        wide < narrow,
        "more columns should reduce error: {wide} !< {narrow}"
    );
}

#[test]
fn more_buckets_improve_value_fidelity() {
    let grad = paperlike_gradient(10_000, 500_000, 12);
    let err_for = |q: u16| {
        let cfg = SketchMlConfig {
            buckets_per_sign: q,
            col_ratio: 1.0, // wide sketch isolates quantization error
            ..SketchMlConfig::default()
        };
        let c = SketchMlCompressor::new(cfg).unwrap();
        roundtrip_error(&c, &grad).unwrap().squared_error
    };
    let coarse = err_for(16);
    let fine = err_for(256);
    assert!(fine < coarse, "q=256 {fine} !< q=16 {coarse}");
}

#[test]
fn duplicate_values_compress_fine() {
    let keys: Vec<u64> = (0..500u64).map(|i| i * 3).collect();
    let values = vec![0.25f64; 500];
    let grad = SparseGradient::new(10_000, keys, values).unwrap();
    let c = SketchMlCompressor::default();
    let decoded = c.decompress(&c.compress(&grad).unwrap().payload).unwrap();
    assert_eq!(decoded.keys(), grad.keys());
    for (_, v) in decoded.iter() {
        assert!(
            (v - 0.25).abs() < 0.05,
            "constant values should survive: {v}"
        );
    }
}

#[test]
fn all_quantile_backends_keep_the_contract() {
    let grad = paperlike_gradient(6_000, 400_000, 77);
    for backend in [
        QuantileBackend::Merging,
        QuantileBackend::Gk,
        QuantileBackend::TDigest,
    ] {
        let cfg = SketchMlConfig {
            quantile_backend: backend,
            ..SketchMlConfig::default()
        };
        let c = SketchMlCompressor::new(cfg).unwrap();
        let stats = roundtrip_error(&c, &grad).unwrap();
        assert_eq!(stats.sign_flips, 0, "{backend:?}");
        assert_eq!(stats.pairs_in, stats.pairs_out, "{backend:?}");
        let rel = stats.squared_error.sqrt() / grad.l2_norm();
        assert!(rel < 1.0, "{backend:?}: rel err {rel}");
        let decoded = c.decompress(&c.compress(&grad).unwrap().payload).unwrap();
        assert_eq!(decoded.keys(), grad.keys(), "{backend:?}");
    }
}

#[test]
fn scratch_path_is_byte_identical_across_reuse() {
    // The fused `compress_into` / `decompress_into` hot path must produce
    // the exact bytes and gradient of the allocating path — including when
    // one scratch is reused across gradients, configs, and backends.
    let mut scratch = CompressScratch::new();
    let mut out = BytesMut::new();
    let mut decoded = SparseGradient::empty(0);
    let configs = [
        SketchMlConfig::default(),
        SketchMlConfig {
            mean_precision: MeanPrecision::F32,
            groups: 1,
            ..SketchMlConfig::default()
        },
        SketchMlConfig {
            quantile_backend: QuantileBackend::Gk,
            buckets_per_sign: 16,
            ..SketchMlConfig::default()
        },
        SketchMlConfig {
            quantile_backend: QuantileBackend::TDigest,
            col_ratio: 0.05,
            ..SketchMlConfig::default()
        },
    ];
    let grads = [
        paperlike_gradient(3_000, 400_000, 21),
        paperlike_gradient(37, 1_000, 22),
        SparseGradient::empty(123),
        SparseGradient::new(100, vec![0, 7, 9], vec![0.5, 0.25, 0.125]).unwrap(),
        SparseGradient::new(100, vec![3, 5], vec![-0.5, -0.25]).unwrap(),
    ];
    for cfg in configs {
        let c = SketchMlCompressor::new(cfg).unwrap();
        for grad in &grads {
            let msg = c.compress(grad).unwrap();
            let report = c.compress_into(grad, &mut scratch, &mut out).unwrap();
            assert_eq!(&out[..], &msg.payload[..], "scratch payload differs");
            assert_eq!(report.key_bytes, msg.report.key_bytes);
            assert_eq!(report.value_bytes, msg.report.value_bytes);
            assert_eq!(report.header_bytes, msg.report.header_bytes);
            assert_eq!(report.pairs, msg.report.pairs);
            c.decompress_into(&out, &mut scratch, &mut decoded).unwrap();
            let reference = c.decompress(&msg.payload).unwrap();
            assert_eq!(decoded.dim(), reference.dim());
            assert_eq!(decoded.keys(), reference.keys());
            assert_eq!(decoded.values(), reference.values());
        }
    }
}

#[test]
fn f32_means_shrink_messages_with_negligible_error() {
    let grad = paperlike_gradient(8_000, 400_000, 88);
    let f64c = SketchMlCompressor::default();
    let f32c = SketchMlCompressor::new(SketchMlConfig {
        mean_precision: MeanPrecision::F32,
        ..SketchMlConfig::default()
    })
    .unwrap();
    let m64 = f64c.compress(&grad).unwrap();
    let m32 = f32c.compress(&grad).unwrap();
    assert!(m32.len() < m64.len(), "f32 means must shrink the message");
    let d64 = f64c.decompress(&m64.payload).unwrap();
    let d32 = f32c.decompress(&m32.payload).unwrap();
    assert_eq!(d32.keys(), grad.keys());
    // The extra error from f32 means is float rounding only.
    for ((_, a), (_, b)) in d64.iter().zip(d32.iter()) {
        assert!((a - b).abs() <= a.abs().max(1.0) * 1e-6, "{a} vs {b}");
    }
}
