//! Error type of the compression framework.

use sketchml_encoding::EncodingError;
use sketchml_sketches::SketchError;
use std::fmt;

/// Errors produced while compressing or decompressing gradients.
#[derive(Debug, Clone, PartialEq)]
pub enum CompressError {
    /// The input gradient violated a structural precondition.
    InvalidGradient(String),
    /// A compressor parameter is out of range.
    InvalidConfig(String),
    /// An underlying sketch failed.
    Sketch(SketchError),
    /// An underlying codec failed.
    Encoding(EncodingError),
    /// A compressed message was structurally invalid.
    Corrupt(String),
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::InvalidGradient(msg) => write!(f, "invalid gradient: {msg}"),
            CompressError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            CompressError::Sketch(e) => write!(f, "sketch error: {e}"),
            CompressError::Encoding(e) => write!(f, "encoding error: {e}"),
            CompressError::Corrupt(msg) => write!(f, "corrupt message: {msg}"),
        }
    }
}

impl std::error::Error for CompressError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompressError::Sketch(e) => Some(e),
            CompressError::Encoding(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SketchError> for CompressError {
    fn from(e: SketchError) -> Self {
        CompressError::Sketch(e)
    }
}

impl From<EncodingError> for CompressError {
    fn from(e: EncodingError) -> Self {
        CompressError::Encoding(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CompressError = SketchError::Empty.into();
        assert!(matches!(e, CompressError::Sketch(_)));
        assert!(e.to_string().contains("sketch error"));
        let e: CompressError = EncodingError::UnexpectedEof { context: "x" }.into();
        assert!(matches!(e, CompressError::Encoding(_)));
        assert!(CompressError::Corrupt("bad".into())
            .to_string()
            .contains("bad"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e: CompressError = SketchError::Empty.into();
        assert!(e.source().is_some());
        assert!(CompressError::InvalidGradient("x".into())
            .source()
            .is_none());
    }
}
