//! Name-based compressor construction, for CLIs and config files.

use crate::baselines::{KeyCompressor, RawCompressor, TruncationCompressor, ValueWidth};
use crate::compressor::GradientCompressor;
use crate::error::CompressError;
use crate::quantify::QuantCompressor;
use crate::sketchml::{MeanPrecision, SketchMlCompressor, SketchMlConfig};
use crate::zipml::{Rounding, ZipMlCompressor};

/// Names accepted by [`by_name`], in canonical form.
pub const KNOWN_COMPRESSORS: &[&str] = &[
    "sketchml",
    "sketchml-f32",
    "adam",
    "adam-float",
    "adam+key",
    "adam+key+quan",
    "zipml",
    "zipml-8bit",
    "zipml-16bit",
    "zipml-stochastic",
    "truncation",
];

/// Builds a compressor from its canonical (case-insensitive) name.
///
/// # Errors
/// [`CompressError::InvalidConfig`] listing the known names on a miss.
pub fn by_name(name: &str) -> Result<Box<dyn GradientCompressor>, CompressError> {
    let c: Box<dyn GradientCompressor> = match name.to_ascii_lowercase().as_str() {
        "sketchml" => Box::new(SketchMlCompressor::default()),
        "sketchml-f32" => Box::new(SketchMlCompressor::new(SketchMlConfig {
            mean_precision: MeanPrecision::F32,
            ..SketchMlConfig::default()
        })?),
        "adam" | "adam-double" | "raw" => Box::new(RawCompressor::default()),
        "adam-float" => Box::new(RawCompressor {
            width: ValueWidth::F32,
        }),
        "adam+key" | "key" => Box::new(KeyCompressor),
        "adam+key+quan" | "quan" => Box::new(QuantCompressor::default()),
        "zipml" | "zipml-16bit" => Box::new(ZipMlCompressor::paper_default()),
        "zipml-8bit" => Box::new(ZipMlCompressor::new(8, Rounding::Deterministic)?),
        "zipml-stochastic" => Box::new(ZipMlCompressor::new(16, Rounding::Stochastic)?),
        "truncation" | "1bit" => Box::new(TruncationCompressor::default()),
        other => {
            return Err(CompressError::InvalidConfig(format!(
                "unknown compressor `{other}`; known: {}",
                KNOWN_COMPRESSORS.join(", ")
            )))
        }
    };
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient::SparseGradient;

    #[test]
    fn all_known_names_build_and_roundtrip() {
        let grad = SparseGradient::new(1000, vec![1, 5, 900], vec![0.5, -0.25, 0.125]).unwrap();
        for &name in KNOWN_COMPRESSORS {
            let c = by_name(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            let msg = c.compress(&grad).expect(name);
            let decoded = c.decompress(&msg.payload).expect(name);
            assert_eq!(decoded.dim(), grad.dim(), "{name}");
        }
    }

    #[test]
    fn aliases_and_case_insensitivity() {
        assert_eq!(by_name("SketchML").unwrap().name(), "SketchML");
        assert_eq!(by_name("RAW").unwrap().name(), "Adam");
        assert_eq!(by_name("quan").unwrap().name(), "Adam+Key+Quan");
    }

    #[test]
    fn unknown_name_lists_options() {
        let Err(err) = by_name("gzip") else {
            panic!("gzip should be unknown");
        };
        let msg = err.to_string();
        assert!(msg.contains("gzip"));
        assert!(msg.contains("sketchml"));
    }
}
