//! Name-based compressor construction, for CLIs and config files.

use crate::baselines::{KeyCompressor, RawCompressor, TruncationCompressor, ValueWidth};
use crate::compressor::GradientCompressor;
use crate::count_sketch::{CountSketchCompressor, CountSketchConfig};
use crate::error::CompressError;
use crate::fastsgd::FastSgdCompressor;
use crate::quantify::QuantCompressor;
use crate::sharded::ShardedCompressor;
use crate::sketchml::{MeanPrecision, SketchMlCompressor, SketchMlConfig};
use crate::zipml::{Rounding, ZipMlCompressor};
use sketchml_encoding::framing::FrameVersion;

/// Names accepted by [`by_name`], in canonical form. Any of them also
/// accepts an `@N` suffix (e.g. `sketchml@8`) selecting the parallel sharded
/// engine with `N` shards and `N` worker threads; appending `c` to the shard
/// count (e.g. `sketchml@4c`) switches the frame to the CRC-carrying v2
/// format so in-flight corruption is detected.
///
/// `countsketch` additionally takes a parameter grammar:
/// `countsketch[:<rows>x<cols>:<k>][:m<rho>]` — table shape, heavy hitters
/// extracted per decode, and optional sketched momentum `ρ ∈ [0, 1)`. The
/// `<k>` slot (or a standalone `countsketch:auto`) accepts the literal
/// `auto`, which adapts the per-round heavy-hitter count to each gradient's
/// observed nnz (clamped to `cols/4`) instead of a fixed `k`.
///
/// `fastsgd[:<bits>]` selects exponent-only log quantization with
/// `bits ∈ 2..=16` per-value code width (default 6).
pub const KNOWN_COMPRESSORS: &[&str] = &[
    "sketchml",
    "sketchml-f32",
    "sketchml@4",
    "sketchml@4c",
    "adam",
    "adam-float",
    "adam+key",
    "adam+key+quan",
    "zipml",
    "zipml-8bit",
    "zipml-16bit",
    "zipml-stochastic",
    "zipml@4",
    "truncation",
    "countsketch",
    "countsketch:8x2048:512",
    "countsketch:8x2048:512@4",
    "countsketch:4x1024:256:m0.9",
    "countsketch:auto",
    "countsketch:8x2048:auto",
    "fastsgd",
    "fastsgd:8",
    "fastsgd@4",
];

/// Parses `countsketch[:<rows>x<cols>:<k|auto>][:m<rho>]` (or the shapeless
/// `countsketch:auto`) into a config.
fn count_sketch_config(name: &str, spec: &str) -> Result<CountSketchConfig, CompressError> {
    let bad = |what: &str| {
        CompressError::InvalidConfig(format!(
            "`{name}`: {what}; expected countsketch[:<rows>x<cols>:<k|auto>][:m<rho>]"
        ))
    };
    let mut config = CountSketchConfig::default();
    let mut parts = spec.split(':').filter(|p| !p.is_empty()).peekable();
    if parts.peek().is_some_and(|p| p.eq_ignore_ascii_case("auto")) {
        // Default shape, adaptive k.
        config.auto_k = true;
        parts.next();
    } else if let Some(shape) = parts.peek().filter(|p| !p.starts_with(['m', 'M'])) {
        let (rows, cols) = shape
            .split_once(['x', 'X'])
            .ok_or_else(|| bad("malformed shape"))?;
        config.rows = rows.parse().map_err(|_| bad("rows must be an integer"))?;
        config.cols = cols.parse().map_err(|_| bad("cols must be an integer"))?;
        parts.next();
        let k = parts.next().ok_or_else(|| bad("missing k after shape"))?;
        if k.eq_ignore_ascii_case("auto") {
            config.auto_k = true;
        } else {
            config.k = k
                .parse()
                .map_err(|_| bad("k must be an integer or `auto`"))?;
        }
    }
    if let Some(tail) = parts.next() {
        let rho = tail
            .strip_prefix(['m', 'M'])
            .ok_or_else(|| bad("unexpected trailing component"))?;
        config.momentum = Some(rho.parse().map_err(|_| bad("rho must be a number"))?);
    }
    if parts.next().is_some() {
        return Err(bad("too many components"));
    }
    Ok(config)
}

/// Builds a compressor from its canonical (case-insensitive) name.
///
/// A trailing `@N` wraps the named compressor in a [`ShardedCompressor`]
/// with `N` shards and `N` threads: `by_name("sketchml@8")` compresses
/// 8 key-range shards concurrently. `@Nc` additionally selects the v2
/// checksummed frame ([`FrameVersion::V2`]).
///
/// # Errors
/// [`CompressError::InvalidConfig`] listing the known names on a miss, or if
/// the `@N` suffix is not a positive integer.
pub fn by_name(name: &str) -> Result<Box<dyn GradientCompressor>, CompressError> {
    if let Some((base, suffix)) = name.rsplit_once('@') {
        let (digits, frame) = match suffix.strip_suffix(['c', 'C']) {
            Some(digits) => (digits, FrameVersion::V2),
            None => (suffix, FrameVersion::V1),
        };
        let shards: usize = digits.parse().map_err(|_| {
            CompressError::InvalidConfig(format!(
                "`{name}`: shard suffix `@{suffix}` must be a positive integer, \
                 optionally followed by `c` for the checksummed v2 frame"
            ))
        })?;
        let inner = by_name(base)?;
        return Ok(Box::new(
            ShardedCompressor::new(inner, shards)?.with_frame(frame),
        ));
    }
    let lower = name.to_ascii_lowercase();
    if let Some(spec) = lower.strip_prefix("countsketch") {
        let config = count_sketch_config(name, spec)?;
        return Ok(Box::new(CountSketchCompressor::new(config)?));
    }
    if let Some(spec) = lower.strip_prefix("fastsgd") {
        let bits = if spec.is_empty() {
            FastSgdCompressor::DEFAULT_BITS
        } else {
            spec.strip_prefix(':')
                .and_then(|b| b.parse().ok())
                .ok_or_else(|| {
                    CompressError::InvalidConfig(format!(
                        "`{name}`: expected fastsgd[:<bits>] with bits in 2..=16"
                    ))
                })?
        };
        return Ok(Box::new(FastSgdCompressor::new(bits)?));
    }
    let c: Box<dyn GradientCompressor> = match lower.as_str() {
        "sketchml" => Box::new(SketchMlCompressor::default()),
        "sketchml-f32" => Box::new(SketchMlCompressor::new(SketchMlConfig {
            mean_precision: MeanPrecision::F32,
            ..SketchMlConfig::default()
        })?),
        "adam" | "adam-double" | "raw" => Box::new(RawCompressor::default()),
        "adam-float" => Box::new(RawCompressor {
            width: ValueWidth::F32,
        }),
        "adam+key" | "key" => Box::new(KeyCompressor),
        "adam+key+quan" | "quan" => Box::new(QuantCompressor::default()),
        "zipml" | "zipml-16bit" => Box::new(ZipMlCompressor::paper_default()),
        "zipml-8bit" => Box::new(ZipMlCompressor::new(8, Rounding::Deterministic)?),
        "zipml-stochastic" => Box::new(ZipMlCompressor::new(16, Rounding::Stochastic)?),
        "truncation" | "1bit" => Box::new(TruncationCompressor::default()),
        other => {
            return Err(CompressError::InvalidConfig(format!(
                "unknown compressor `{other}`; known: {}",
                KNOWN_COMPRESSORS.join(", ")
            )))
        }
    };
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient::SparseGradient;

    #[test]
    fn all_known_names_build_and_roundtrip() {
        let grad = SparseGradient::new(1000, vec![1, 5, 900], vec![0.5, -0.25, 0.125]).unwrap();
        for &name in KNOWN_COMPRESSORS {
            let c = by_name(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            let msg = c.compress(&grad).expect(name);
            let decoded = c.decompress(&msg.payload).expect(name);
            assert_eq!(decoded.dim(), grad.dim(), "{name}");
        }
    }

    #[test]
    fn aliases_and_case_insensitivity() {
        assert_eq!(by_name("SketchML").unwrap().name(), "SketchML");
        assert_eq!(by_name("RAW").unwrap().name(), "Adam");
        assert_eq!(by_name("quan").unwrap().name(), "Adam+Key+Quan");
    }

    #[test]
    fn sharded_suffix_builds_parallel_engine() {
        let keys: Vec<u64> = (0..200).map(|i| i * 37).collect();
        let values: Vec<f64> = (0..200).map(|i| (i as f64 - 100.0) * 0.001).collect();
        let grad = SparseGradient::new(10_000, keys, values).unwrap();
        let sharded = by_name("sketchml@8").unwrap();
        assert_eq!(sharded.name(), "SketchML");
        let msg = sharded.compress(&grad).unwrap();
        let decoded = sharded.decompress(&msg.payload).unwrap();
        assert_eq!(decoded.keys(), grad.keys());
        // The sharded frame is its own wire format.
        assert!(by_name("sketchml")
            .unwrap()
            .decompress(&msg.payload)
            .is_err());
    }

    #[test]
    fn bad_shard_suffixes_are_rejected() {
        assert!(by_name("sketchml@0").is_err());
        assert!(by_name("sketchml@x").is_err());
        assert!(by_name("sketchml@").is_err());
        assert!(by_name("nope@4").is_err());
        assert!(by_name("sketchml@c").is_err());
        assert!(by_name("sketchml@0c").is_err());
    }

    #[test]
    fn checksum_suffix_selects_v2_frame() {
        let keys: Vec<u64> = (0..64).map(|i| i * 5).collect();
        let values: Vec<f64> = (0..64).map(|i| (i as f64 - 32.0) * 0.01).collect();
        let grad = SparseGradient::new(1_000, keys, values).unwrap();
        let checked = by_name("sketchml@4c").unwrap();
        let msg = checked.compress(&grad).unwrap();
        // The v2 sentinel leads the frame and the plain engine rejects it.
        assert_eq!(msg.payload[0], 0x00);
        let decoded = checked.decompress(&msg.payload).unwrap();
        assert_eq!(decoded.keys(), grad.keys());
        // A flipped payload byte is detected by the CRC.
        let mut bad = msg.payload.to_vec();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(checked.decompress(&bad).is_err());
    }

    #[test]
    fn countsketch_grammar_parses_and_rejects() {
        assert_eq!(by_name("countsketch").unwrap().name(), "CountSketch");
        assert_eq!(
            by_name("CountSketch:8X2048:512").unwrap().name(),
            "CountSketch"
        );
        assert_eq!(
            by_name("countsketch:4x1024:256:m0.9").unwrap().name(),
            "CountSketch"
        );
        assert_eq!(by_name("countsketch:m0.5").unwrap().name(), "CountSketch");
        for bad in [
            "countsketch:4x1024",          // shape without k
            "countsketchx",                // junk tail
            "countsketch:0x1024:4",        // rows out of range
            "countsketch:4x1024:256:z",    // unknown trailing component
            "countsketch:4x1024:256:m1.5", // rho out of range
            "countsketch:4x1024:256:m0.9:m0.9",
        ] {
            assert!(by_name(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn countsketch_auto_k_parses_and_rejects() {
        // Auto-k roundtrips a tiny gradient exactly: per-round k follows the
        // observed nnz, where the fixed default (k=512 of a 2048-col table)
        // would still roundtrip but prove nothing about adaptation.
        let grad = SparseGradient::new(1000, vec![1, 5, 900], vec![0.5, -0.25, 0.125]).unwrap();
        for name in ["countsketch:auto", "countsketch:8x2048:AUTO"] {
            let c = by_name(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            let decoded = c.decompress(&c.compress(&grad).unwrap().payload).unwrap();
            assert_eq!(decoded.keys(), grad.keys(), "{name}");
        }
        // Composes with momentum and sharding.
        assert!(by_name("countsketch:4x1024:auto:m0.9").is_ok());
        assert!(by_name("countsketch:auto:m0.5").is_ok());
        assert!(by_name("countsketch:8x2048:auto@4c").is_ok());
        for bad in [
            "countsketch:auto:512",      // k after shapeless auto
            "countsketch:autox",         // junk tail on the literal
            "countsketch:4x1024:auto:z", // unknown trailing component
            "countsketch:auto:auto",
        ] {
            assert!(by_name(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn fastsgd_grammar_parses_and_rejects() {
        assert_eq!(by_name("fastsgd").unwrap().name(), "FastSGD");
        assert_eq!(by_name("FastSGD:8").unwrap().name(), "FastSGD");
        assert_eq!(by_name("fastsgd:16@2").unwrap().name(), "FastSGD");
        for bad in [
            "fastsgd:",
            "fastsgd:1",
            "fastsgd:17",
            "fastsgdx",
            "fastsgd:8:8",
        ] {
            assert!(by_name(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn unknown_name_lists_options() {
        let Err(err) = by_name("gzip") else {
            panic!("gzip should be unknown");
        };
        let msg = err.to_string();
        assert!(msg.contains("gzip"));
        assert!(msg.contains("sketchml"));
    }
}
