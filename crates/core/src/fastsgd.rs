//! FastSGD-style exponent-only log quantization (Yang et al., "FastSGD: A
//! Fast Compressed SGD Framework", arXiv:2112.04291) — a value codec that
//! keeps **only the sign and the binary exponent** of each gradient value.
//!
//! Every value `v` is snapped to the nearest power of two in log space:
//! `v ≈ ±2^e` with `e` read straight out of the `f64` bit pattern (the
//! 11-bit biased exponent, rounded up when the mantissa exceeds √2, the
//! geometric midpoint of the octave). The codes shipped per value are then
//! mantissa-free: a sign bit plus the small non-negative *offset*
//! `d = e_max − e` from the message's largest exponent. Gradient magnitudes
//! cluster within a few octaves of their maximum, so the offsets are small
//! and geometrically distributed — the encoder picks per message between
//! fixed-width bit packing ([`sketchml_encoding::bitpack`]) and Golomb–Rice
//! coding ([`sketchml_encoding::rice`]), whichever is smaller. Keys travel
//! losslessly via the same delta-binary codec SketchML uses (§3.4).
//!
//! The quantizer is deterministic and biased toward zero (relative error is
//! at most `√2 − 1 ≈ 41%`, never a sign flip); wrapping it in
//! [`crate::ErrorFeedback`] carries the dropped mantissa mass forward, which
//! is how the FastSGD paper closes the convergence gap. Values whose offset
//! exceeds the code range clamp to the smallest representable level, and
//! exact zeros (plus subnormals, far below any gradient scale) take a
//! reserved all-ones code.

use crate::compressor::{CompressedGradient, GradientCompressor};
use crate::error::CompressError;
use crate::gradient::SparseGradient;
use crate::scratch::CompressScratch;
use bytes::{Buf, BufMut, BytesMut};
use sketchml_encoding::stats::SizeReport;
use sketchml_encoding::{bitpack, delta_binary, rice, varint};

/// Wire magic of the FastSGD frame (distinct from every other codec's).
const MAGIC: u8 = 0xF5;

/// Exponent offset of the wire's `e_max` field: `e_max ∈ [-1022, 1023]` is
/// stored as `e_max + OFFSET`, keeping varint 0 free as the all-zero
/// sentinel.
const E_OFFSET: i32 = 1100;

/// Mantissa bits of √2 — the geometric midpoint of an octave. A value whose
/// mantissa exceeds this rounds its exponent up.
const SQRT2_MANT: u64 = 0x6_A09E_667F_3BCD;

/// Sentinel exponent marking a value that quantizes to exactly zero.
const EXP_ZERO: i32 = i32::MIN;

/// Code-stream encodings selectable per message.
const MODE_BITPACK: u8 = 0;
const MODE_RICE: u8 = 1;

/// Exponent-only log quantizer: each value costs one sign bit plus a
/// `bits`-wide (or Rice-coded) exponent offset; keys are delta-binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastSgdCompressor {
    /// Width of the exponent-offset codes in bits (`2..=16`). The all-ones
    /// code is reserved for zero, leaving `2^bits − 1` exponent levels, i.e.
    /// a dynamic range of `2^bits − 2` octaves below the largest magnitude.
    pub bits: u8,
}

impl Default for FastSgdCompressor {
    fn default() -> Self {
        FastSgdCompressor {
            bits: Self::DEFAULT_BITS,
        }
    }
}

impl FastSgdCompressor {
    /// Default code width: 6 bits = 62 octaves of dynamic range, ~1.9× the
    /// f32 exponent span, at under a byte per value before Rice coding.
    pub const DEFAULT_BITS: u8 = 6;

    /// Creates a quantizer with `bits ∈ 2..=16`.
    ///
    /// # Errors
    /// [`CompressError::InvalidConfig`] for widths outside that range.
    pub fn new(bits: u8) -> Result<Self, CompressError> {
        if !(2..=16).contains(&bits) {
            return Err(CompressError::InvalidConfig(format!(
                "FastSGD code width must be in 2..=16 bits, got {bits}"
            )));
        }
        Ok(FastSgdCompressor { bits })
    }

    /// The rounded binary exponent of `v`, or [`EXP_ZERO`] when `v` flushes
    /// to zero (exact zeros and subnormals). `v` must be finite
    /// ([`SparseGradient`] guarantees it).
    #[inline]
    fn exponent_of(v: f64) -> i32 {
        let b = v.to_bits();
        let biased = ((b >> 52) & 0x7FF) as i32;
        if biased == 0 {
            return EXP_ZERO;
        }
        debug_assert!(biased != 0x7FF, "gradients are validated finite");
        // Round up past the geometric midpoint, capping at f64's top octave.
        let up = ((b & ((1u64 << 52) - 1)) > SQRT2_MANT) as i32;
        (biased - 1023 + up).min(1023)
    }

    /// Shared encoder behind `compress` and `compress_into`: both paths
    /// write through here, so their bytes agree by construction.
    fn encode_into(
        &self,
        grad: &SparseGradient,
        scratch: &mut CompressScratch,
        out: &mut BytesMut,
    ) -> Result<SizeReport, CompressError> {
        out.clear();
        out.put_u8(MAGIC);
        out.put_u8(self.bits);
        varint::write_u64(out, grad.dim());
        let nnz = grad.nnz();
        varint::write_u64(out, nnz as u64);
        let mut report = SizeReport {
            pairs: nnz,
            ..SizeReport::default()
        };
        report.header_bytes = out.len();
        if grad.is_empty() {
            return Ok(report);
        }

        report.key_bytes = delta_binary::encode_keys_into(grad.keys(), out)?;

        // Pass 1: rounded exponents and their maximum.
        let values = grad.values();
        scratch.fs_exps.clear();
        scratch.fs_exps.reserve(nnz);
        let mut e_max = EXP_ZERO;
        for &v in values {
            let e = Self::exponent_of(v);
            e_max = e_max.max(e);
            scratch.fs_exps.push(e);
        }
        let value_start = out.len();
        varint::write_u64(
            out,
            if e_max == EXP_ZERO {
                0 // every value flushed to zero
            } else {
                (e_max + E_OFFSET) as u64
            },
        );

        // Sign bitmap, LSB-first (zero-flushed values carry sign 0 so the
        // payload is a pure function of the quantized gradient).
        let zero_code = (1u32 << self.bits) - 1;
        for chunk in values.chunks(8) {
            let mut byte = 0u8;
            for (j, &v) in chunk.iter().enumerate() {
                let flushed = Self::exponent_of(v) == EXP_ZERO;
                byte |= (((v.to_bits() >> 63) as u8) & !(flushed as u8)) << j;
            }
            out.put_u8(byte);
        }

        // Pass 2: exponent-offset codes. Offsets past the code range clamp
        // to the deepest level that still decodes to a normal f64.
        let d_max = (zero_code - 1).min((e_max + 1022).max(0) as u32);
        scratch.fs_codes.clear();
        scratch.fs_codes.reserve(nnz);
        scratch.fs_codes32.clear();
        scratch.fs_codes32.reserve(nnz);
        for &e in &scratch.fs_exps {
            let code = if e == EXP_ZERO {
                zero_code
            } else {
                ((e_max - e) as u32).min(d_max)
            };
            scratch.fs_codes.push(code as u16);
            scratch.fs_codes32.push(code);
        }

        // Ship whichever code stream is smaller; ties go to bit packing
        // (cheaper decode). Rice is self-delimiting only from the front, so
        // it must stay the final field of the frame.
        let packed = bitpack::packed_len(nnz, self.bits as u32);
        let riced = rice::encoded_len_rice(&scratch.fs_codes32);
        if riced < packed {
            out.put_u8(MODE_RICE);
            rice::encode_rice_into(&scratch.fs_codes32, out);
        } else {
            out.put_u8(MODE_BITPACK);
            bitpack::pack_u16_into(&scratch.fs_codes, self.bits as u32, out)?;
        }
        report.value_bytes = out.len() - value_start;
        Ok(report)
    }

    /// Shared decoder behind `decompress` and `decompress_into`.
    fn decode_into(
        &self,
        payload: &[u8],
        scratch: &mut CompressScratch,
        out: &mut SparseGradient,
    ) -> Result<(), CompressError> {
        let mut buf = payload;
        if buf.remaining() < 2 || buf.get_u8() != MAGIC {
            return Err(CompressError::Corrupt("bad FastSGD magic".into()));
        }
        let bits = buf.get_u8();
        if !(2..=16).contains(&bits) {
            return Err(CompressError::Corrupt(format!(
                "bad FastSGD code width {bits}"
            )));
        }
        let dim = varint::read_u64(&mut buf)?;
        let nnz = varint::read_u64(&mut buf)? as usize;
        if nnz == 0 {
            return out.assign(dim, &[], &[]);
        }
        delta_binary::decode_keys_into(&mut buf, &mut scratch.dec_keys)?;
        if scratch.dec_keys.len() != nnz {
            return Err(CompressError::Corrupt(format!(
                "FastSGD key stream holds {} keys, header says {nnz}",
                scratch.dec_keys.len()
            )));
        }
        let e_max_off = varint::read_u64(&mut buf)?;
        let e_max = match e_max_off {
            0 => None,
            off @ 78..=2123 => Some(off as i32 - E_OFFSET),
            off => {
                return Err(CompressError::Corrupt(format!(
                    "FastSGD max exponent field {off} out of range"
                )))
            }
        };
        let sign_bytes = nnz.div_ceil(8);
        if buf.remaining() < sign_bytes + 1 {
            return Err(CompressError::Corrupt("truncated FastSGD body".into()));
        }
        // `buf` is a plain byte slice here, so the sign bitmap can stay
        // borrowed in place while the tail decodes.
        let (signs, rest) = buf.split_at(sign_bytes);
        let mut buf = rest;
        let mode = buf.get_u8();
        let zero_code = (1u32 << bits) - 1;
        match mode {
            MODE_BITPACK => {
                bitpack::unpack_u16_into(&mut buf, nnz, bits as u32, &mut scratch.dec_idx)?;
                scratch.fs_codes32.clear();
                scratch.fs_codes32.reserve(nnz);
                scratch
                    .fs_codes32
                    .extend(scratch.dec_idx.iter().map(|&c| c as u32));
            }
            MODE_RICE => {
                rice::decode_rice_into(&mut buf, &mut scratch.fs_codes32)?;
                if scratch.fs_codes32.len() != nnz {
                    return Err(CompressError::Corrupt(format!(
                        "FastSGD code stream holds {} codes, header says {nnz}",
                        scratch.fs_codes32.len()
                    )));
                }
            }
            other => {
                return Err(CompressError::Corrupt(format!(
                    "unknown FastSGD code mode {other}"
                )))
            }
        }
        scratch.dec_vals.clear();
        scratch.dec_vals.reserve(nnz);
        for (i, &code) in scratch.fs_codes32.iter().enumerate() {
            let v = if code == zero_code {
                0.0
            } else {
                let e_max = e_max.ok_or_else(|| {
                    CompressError::Corrupt("FastSGD nonzero code in all-zero message".into())
                })?;
                let e = e_max - code as i32;
                if !(-1022..=1023).contains(&e) || code > zero_code {
                    return Err(CompressError::Corrupt(format!(
                        "FastSGD code {code} decodes past the exponent range"
                    )));
                }
                let sign = ((signs[i / 8] >> (i % 8)) & 1) as u64;
                f64::from_bits((sign << 63) | (((e + 1023) as u64) << 52))
            };
            scratch.dec_vals.push(v);
        }
        out.assign(dim, &scratch.dec_keys, &scratch.dec_vals)
    }
}

impl GradientCompressor for FastSgdCompressor {
    fn name(&self) -> &'static str {
        "FastSGD"
    }

    fn compress(&self, grad: &SparseGradient) -> Result<CompressedGradient, CompressError> {
        let mut scratch = CompressScratch::new();
        let mut buf = BytesMut::new();
        let report = self.encode_into(grad, &mut scratch, &mut buf)?;
        Ok(CompressedGradient {
            payload: buf.freeze(),
            report,
        })
    }

    fn decompress(&self, payload: &[u8]) -> Result<SparseGradient, CompressError> {
        let mut scratch = CompressScratch::new();
        let mut out = SparseGradient::empty(0);
        self.decode_into(payload, &mut scratch, &mut out)?;
        Ok(out)
    }

    fn compress_into(
        &self,
        grad: &SparseGradient,
        scratch: &mut CompressScratch,
        out: &mut BytesMut,
    ) -> Result<SizeReport, CompressError> {
        self.encode_into(grad, scratch, out)
    }

    fn decompress_into(
        &self,
        payload: &[u8],
        scratch: &mut CompressScratch,
        out: &mut SparseGradient,
    ) -> Result<(), CompressError> {
        self.decode_into(payload, scratch, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressor::roundtrip_error;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample(n: usize, dim: u64, seed: u64) -> SparseGradient {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut keys: Vec<u64> = (0..n as u64 * 2).map(|_| rng.gen_range(0..dim)).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.truncate(n);
        let values: Vec<f64> = keys
            .iter()
            .map(|_| {
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                sign * rng.gen::<f64>().powi(4) * 0.3
            })
            .collect();
        SparseGradient::new(dim, keys, values).unwrap()
    }

    #[test]
    fn roundtrip_keeps_keys_and_bounds_relative_error() {
        let c = FastSgdCompressor::default();
        let grad = sample(2000, 100_000, 41);
        let msg = c.compress(&grad).unwrap();
        let decoded = c.decompress(&msg.payload).unwrap();
        assert_eq!(decoded.keys(), grad.keys());
        for ((_, v), (_, d)) in grad.iter().zip(decoded.iter()) {
            assert_eq!(v.signum(), d.signum(), "sign flipped: {v} -> {d}");
            // Nearest power of two in log space: d/v ∈ [1/√2, √2].
            let ratio = (d / v).abs();
            assert!(
                (0.7..=1.42).contains(&ratio),
                "|{d}/{v}| = {ratio} outside the octave bound"
            );
        }
    }

    #[test]
    fn quantized_levels_are_powers_of_two() {
        let c = FastSgdCompressor::default();
        let grad = sample(500, 10_000, 7);
        let decoded = c.decompress(&c.compress(&grad).unwrap().payload).unwrap();
        for (_, v) in decoded.iter() {
            if v != 0.0 {
                let m = v.abs().to_bits() & ((1u64 << 52) - 1);
                assert_eq!(m, 0, "decoded value {v} is not a power of two");
            }
        }
    }

    #[test]
    fn exact_powers_of_two_roundtrip_exactly() {
        let keys: Vec<u64> = (0..20).collect();
        let values: Vec<f64> = (0..20)
            .map(|i| {
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                sign * (2.0f64).powi(i - 10)
            })
            .collect();
        let grad = SparseGradient::new(100, keys, values.clone()).unwrap();
        let c = FastSgdCompressor::default();
        let decoded = c.decompress(&c.compress(&grad).unwrap().payload).unwrap();
        assert_eq!(decoded.values(), &values[..]);
    }

    #[test]
    fn zeros_and_tiny_values_take_the_reserved_code() {
        let grad = SparseGradient::new(
            100,
            vec![1, 2, 3, 4],
            vec![0.0, 1.0, 1e-300, f64::MIN_POSITIVE / 4.0],
        )
        .unwrap();
        let c = FastSgdCompressor::new(4).unwrap();
        let decoded = c.decompress(&c.compress(&grad).unwrap().payload).unwrap();
        assert_eq!(decoded.values()[0], 0.0);
        assert_eq!(decoded.values()[1], 1.0);
        // 1e-300 is ~996 octaves below 1.0 — far past 4-bit range, so it
        // clamps to the deepest level rather than flipping sign or dying.
        assert!(decoded.values()[2] > 0.0);
        // A subnormal flushes to zero.
        assert_eq!(decoded.values()[3], 0.0);
    }

    #[test]
    fn all_zero_gradient_roundtrips() {
        let grad = SparseGradient::new(50, vec![3, 9], vec![0.0, 0.0]).unwrap();
        let c = FastSgdCompressor::default();
        let decoded = c.decompress(&c.compress(&grad).unwrap().payload).unwrap();
        assert_eq!(decoded.values(), &[0.0, 0.0]);
        let empty = c
            .decompress(&c.compress(&SparseGradient::empty(42)).unwrap().payload)
            .unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.dim(), 42);
    }

    #[test]
    fn scratch_path_is_byte_identical() {
        let c = FastSgdCompressor::default();
        let mut scratch = CompressScratch::new();
        let mut out = BytesMut::new();
        for seed in 0..5u64 {
            let grad = sample(300, 20_000, seed);
            let msg = c.compress(&grad).unwrap();
            let report = c.compress_into(&grad, &mut scratch, &mut out).unwrap();
            assert_eq!(&out[..], &msg.payload[..]);
            assert_eq!(report.key_bytes, msg.report.key_bytes);
            assert_eq!(report.value_bytes, msg.report.value_bytes);
            let mut dec = SparseGradient::empty(0);
            c.decompress_into(&msg.payload, &mut scratch, &mut dec)
                .unwrap();
            assert_eq!(dec, c.decompress(&msg.payload).unwrap());
        }
    }

    #[test]
    fn wide_exponent_spread_selects_bitpack_and_narrow_selects_rice() {
        // Narrow spread: every magnitude in one octave → tiny Rice codes.
        let keys: Vec<u64> = (0..512).collect();
        let narrow: Vec<f64> = (0..512).map(|i| 0.5 + (i as f64) * 1e-4).collect();
        let g_narrow = SparseGradient::new(1000, keys.clone(), narrow).unwrap();
        let c = FastSgdCompressor::new(12).unwrap();
        let msg = c.compress(&g_narrow).unwrap();
        // 512 near-zero offsets Rice-code to ~1 bit each, far under 12-bit
        // packing; mode byte sits right after the sign bitmap.
        let decoded = c.decompress(&msg.payload).unwrap();
        assert_eq!(decoded.keys(), g_narrow.keys());
        let wide: Vec<f64> = (0..512)
            .map(|i: i32| (2.0f64).powi(-(i % 40)) * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let g_wide = SparseGradient::new(1000, keys, wide).unwrap();
        let msg_w = c.compress(&g_wide).unwrap();
        let dec_w = c.decompress(&msg_w.payload).unwrap();
        for ((_, v), (_, d)) in g_wide.iter().zip(dec_w.iter()) {
            assert_eq!(v, d, "powers of two must round-trip exactly");
        }
        // Both messages decode through both paths; the narrow one is smaller
        // per pair on the value side.
        assert!(msg.report.value_bytes < msg_w.report.value_bytes);
    }

    #[test]
    fn code_width_trades_size_for_range() {
        let grad = sample(2000, 100_000, 17);
        let small = FastSgdCompressor::new(3).unwrap();
        let large = FastSgdCompressor::new(10).unwrap();
        let s = roundtrip_error(&small, &grad).unwrap();
        let l = roundtrip_error(&large, &grad).unwrap();
        assert!(s.compressed_bytes <= l.compressed_bytes);
        // The wider code never clamps here, so its error is no worse.
        assert!(l.squared_error <= s.squared_error + 1e-12);
        assert_eq!(s.sign_flips, 0);
        assert_eq!(l.sign_flips, 0);
    }

    #[test]
    fn invalid_configs_and_corrupt_buffers() {
        assert!(FastSgdCompressor::new(1).is_err());
        assert!(FastSgdCompressor::new(17).is_err());
        let c = FastSgdCompressor::default();
        assert!(c.decompress(&[]).is_err());
        assert!(c.decompress(&[0x00]).is_err());
        let grad = sample(100, 1000, 3);
        let msg = c.compress(&grad).unwrap();
        for cut in 0..msg.payload.len() {
            let _ = c.decompress(&msg.payload[..cut]); // must not panic
        }
        let mut bad = msg.payload.to_vec();
        bad[1] = 40; // absurd code width
        assert!(c.decompress(&bad).is_err());
    }

    #[test]
    fn error_feedback_recovers_dropped_mantissa() {
        use crate::feedback::ErrorFeedback;
        let c = ErrorFeedback::new(FastSgdCompressor::default());
        let grad = SparseGradient::new(10, vec![1], vec![0.3]).unwrap();
        // 0.3 quantizes to 0.25; the 0.05 residual must carry forward and
        // push a later round's estimate up an octave.
        let msg = c.compress(&grad).unwrap();
        assert_eq!(c.decompress(&msg.payload).unwrap().values()[0], 0.25);
        assert!(c.residual_l1() > 0.049);
        // Round 2 compensates to 0.35 — still under the √2·0.25 ≈ 0.3536
        // boundary, so the level holds and the residual grows to 0.1.
        let msg2 = c.compress(&grad).unwrap();
        assert_eq!(c.decompress(&msg2.payload).unwrap().values()[0], 0.25);
        // Round 3's compensated 0.4 crosses the boundary: the carried
        // residual changed the quantization level.
        let msg3 = c.compress(&grad).unwrap();
        assert_eq!(c.decompress(&msg3.payload).unwrap().values()[0], 0.5);
    }
}
