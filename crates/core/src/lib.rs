//! # SketchML gradient compression
//!
//! A from-scratch Rust implementation of **SketchML** (Jiang, Fu, Yang, Cui —
//! SIGMOD 2018): a compression framework for the sparse key-value gradients
//! exchanged by distributed SGD.
//!
//! The framework (paper Figure 2) composes three components:
//!
//! 1. **Quantile-bucket quantification** ([`quantify`]) — gradient *values*
//!    are sorted into `q` equi-depth buckets by a quantile sketch and
//!    represented by small bucket indexes (§3.2);
//! 2. **MinMaxSketch** ([`sketchml`], over
//!    [`sketchml_sketches::minmax`]) — the bucket indexes are further
//!    compressed into hash tables whose collision rules only ever *decay*
//!    gradients (§3.3);
//! 3. **Delta-binary encoding** ([`sketchml_encoding::delta_binary`]) —
//!    gradient *keys* are compressed losslessly as variable-width increments
//!    (§3.4).
//!
//! Every compression method the paper evaluates implements the
//! [`GradientCompressor`] trait:
//!
//! | Type | Paper name | Figures |
//! |---|---|---|
//! | [`SketchMlCompressor`] | SketchML (Adam+Key+Quan+MinMax) | 8–11, Tables 2/4 |
//! | [`QuantCompressor`] | Adam+Key+Quan | 8 |
//! | [`KeyCompressor`] | Adam+Key | 8 |
//! | [`RawCompressor`] | Adam (double/float) | 8–11, Table 4 |
//! | [`ZipMlCompressor`] | ZipML (8/16-bit) | 9–11, Tables 2/4 |
//! | [`TruncationCompressor`] | threshold truncation (§1.1) | ablations |
//! | [`ErrorFeedback`] | residual compensation (extension) | `ext_error_feedback` |
//!
//! ## Quick example
//!
//! ```
//! use sketchml_core::{GradientCompressor, SketchMlCompressor, SparseGradient};
//!
//! let grad = SparseGradient::new(
//!     1_000_000,
//!     vec![702, 735, 1244, 2516, 3536, 3786, 4187, 4195],
//!     vec![-0.01, 0.21, 0.08, -0.05, -0.12, 0.29, 0.02, -0.27],
//! )?;
//! let compressor = SketchMlCompressor::default();
//! let message = compressor.compress(&grad)?;
//! let decoded = compressor.decompress(&message.payload)?;
//! assert_eq!(decoded.keys(), grad.keys()); // keys are lossless
//! # Ok::<(), sketchml_core::CompressError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod baselines;
pub mod compressor;
pub mod count_sketch;
pub mod error;
pub mod fastsgd;
pub mod feedback;
pub mod gradient;
pub mod gradient_io;
pub mod merge;
mod pool;
pub mod quantify;
pub mod registry;
pub mod scratch;
pub mod sharded;
pub mod simd;
pub mod sketchml;
pub mod space;
pub mod zipml;

pub use baselines::{KeyCompressor, RawCompressor, TruncationCompressor, ValueWidth};
pub use compressor::{roundtrip_error, CompressedGradient, GradientCompressor, RoundtripStats};
pub use count_sketch::{CountSketchCompressor, CountSketchConfig};
pub use error::CompressError;
pub use fastsgd::FastSgdCompressor;
pub use feedback::ErrorFeedback;
pub use gradient::SparseGradient;
pub use merge::{MergeAcc, MergePolicy, MergeableCompressor};
pub use quantify::{QuantCompressor, QuantileBackend};
pub use registry::by_name as compressor_by_name;
pub use scratch::CompressScratch;
pub use sharded::{split_gradient, ShardedCompressor};
pub use sketchml::{MeanPrecision, SketchMlCompressor, SketchMlConfig};
pub use sketchml_encoding::framing::FrameVersion;
pub use zipml::{Rounding, ZipMlCompressor};
