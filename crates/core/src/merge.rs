//! Mergeable compression: the wire-level operations collective aggregation
//! (ring / tree allreduce) performs on *compressed* gradient payloads
//! instead of decompressing everything at a central driver.
//!
//! Two hop-payload policies are supported, because exactness and per-link
//! bytes pull in opposite directions:
//!
//! * [`MergePolicy::Exact`] — intermediate hops carry **AGG frames**: the
//!   delta-binary key union plus full-precision `f64` partial sums. The
//!   final aggregate is numerically the driver's instance-weighted mean
//!   (modulo floating-point reassociation from the hop order), so training
//!   trajectories match the star topology to ~1e-12 per round. Partial sums
//!   cannot be compressed below ~8 bytes/key without losing exactness, so
//!   hop frames are larger than native SketchML payloads.
//! * [`MergePolicy::Resketch`] — every hop decodes, accumulates, and
//!   **re-compresses** the running partial aggregate with the native
//!   compressor, so each link carries a genuinely sketch-compressed payload
//!   (~2 bytes/key for SketchML). Quantization error compounds once per
//!   merge hop, but the MinMaxSketch underestimate-only rule keeps every
//!   hop's error conservative: magnitudes decay, signs never flip.
//!
//! [`MergeAcc`] is the accumulator both policies share; the
//! [`MergeableCompressor`] trait plugs any [`GradientCompressor`] into it.

use crate::compressor::GradientCompressor;
use crate::error::CompressError;
use crate::gradient::SparseGradient;
use crate::scratch::CompressScratch;
use bytes::BytesMut;
use sketchml_encoding::{delta_binary, varint};

/// Lead byte of an AGG (exact partial-aggregate) frame. Distinct from every
/// native compressor magic (`0x0D`/`0x0E`/`0x0F` baselines, `0xA5` Quan,
/// `0xA7` SketchML, `0x21` ZipML) and from the sharded framing's `0x00` v2
/// sentinel, so [`MergeableCompressor::accumulate`] can sniff frame kinds.
pub const AGG_MAGIC: u8 = 0xAC;

/// Version byte of the AGG frame format.
pub const AGG_VERSION: u8 = 1;

/// How intermediate hops of a collective represent partial aggregates.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum MergePolicy {
    /// Hops carry exact `f64` partial sums in AGG frames: bit-faithful to
    /// driver aggregation modulo summation order, at ~9 bytes/key per hop.
    #[default]
    Exact,
    /// Hops re-compress the partial aggregate with the native compressor:
    /// sketch-sized links, conservatively lossy (one quantization per hop).
    Resketch,
}

impl MergePolicy {
    /// Short name used in benches and config files.
    pub fn name(self) -> &'static str {
        match self {
            MergePolicy::Exact => "exact",
            MergePolicy::Resketch => "resketch",
        }
    }
}

/// Accumulator for partial gradient aggregates: a sorted key-union with one
/// running `f64` sum per key. Buffers persist across [`reset`](Self::reset)
/// calls so steady-state accumulation does not allocate.
#[derive(Debug, Clone)]
pub struct MergeAcc {
    dim: u64,
    keys: Vec<u64>,
    sums: Vec<f64>,
    // Union scratch, swapped with the live buffers each accumulate.
    tmp_keys: Vec<u64>,
    tmp_sums: Vec<f64>,
    decode: SparseGradient,
}

impl Default for MergeAcc {
    fn default() -> Self {
        Self::new()
    }
}

impl MergeAcc {
    /// Creates an empty accumulator over a zero-dimensional space; call
    /// [`reset`](Self::reset) before use.
    pub fn new() -> Self {
        Self {
            dim: 0,
            keys: Vec::new(),
            sums: Vec::new(),
            tmp_keys: Vec::new(),
            tmp_sums: Vec::new(),
            decode: SparseGradient::empty(0),
        }
    }

    /// Clears the accumulator for a new aggregation over `dim` keys.
    pub fn reset(&mut self, dim: u64) {
        self.dim = dim;
        self.keys.clear();
        self.sums.clear();
    }

    /// Gradient dimension this accumulator aggregates over.
    pub fn dim(&self) -> u64 {
        self.dim
    }

    /// Number of distinct keys accumulated so far.
    pub fn nnz(&self) -> usize {
        self.keys.len()
    }

    /// Sorted distinct keys.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Running per-key sums, parallel to [`keys`](Self::keys).
    pub fn sums(&self) -> &[f64] {
        &self.sums
    }

    /// Folds `scale * values` into the running sums by sorted key-union.
    ///
    /// # Errors
    /// [`CompressError::InvalidGradient`] on unsorted/duplicate keys, a
    /// length mismatch, or a key at or beyond the accumulator's dimension —
    /// the signatures of a corrupt upstream payload.
    pub fn accumulate_pairs(
        &mut self,
        keys: &[u64],
        values: &[f64],
        scale: f64,
    ) -> Result<(), CompressError> {
        if keys.len() != values.len() {
            return Err(CompressError::InvalidGradient(format!(
                "{} keys vs {} values",
                keys.len(),
                values.len()
            )));
        }
        if let Some(&last) = keys.last() {
            if last >= self.dim {
                return Err(CompressError::InvalidGradient(format!(
                    "key {last} outside dimension {}",
                    self.dim
                )));
            }
        }
        for w in keys.windows(2) {
            if w[1] <= w[0] {
                return Err(CompressError::InvalidGradient(format!(
                    "keys must be strictly ascending: {} then {}",
                    w[0], w[1]
                )));
            }
        }
        self.tmp_keys.clear();
        self.tmp_sums.clear();
        self.tmp_keys.reserve(self.keys.len() + keys.len());
        self.tmp_sums.reserve(self.keys.len() + keys.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.keys.len() && j < keys.len() {
            match self.keys[i].cmp(&keys[j]) {
                std::cmp::Ordering::Less => {
                    self.tmp_keys.push(self.keys[i]);
                    self.tmp_sums.push(self.sums[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    self.tmp_keys.push(keys[j]);
                    self.tmp_sums.push(scale * values[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    self.tmp_keys.push(self.keys[i]);
                    self.tmp_sums.push(self.sums[i] + scale * values[j]);
                    i += 1;
                    j += 1;
                }
            }
        }
        while i < self.keys.len() {
            self.tmp_keys.push(self.keys[i]);
            self.tmp_sums.push(self.sums[i]);
            i += 1;
        }
        while j < keys.len() {
            self.tmp_keys.push(keys[j]);
            self.tmp_sums.push(scale * values[j]);
            j += 1;
        }
        std::mem::swap(&mut self.keys, &mut self.tmp_keys);
        std::mem::swap(&mut self.sums, &mut self.tmp_sums);
        Ok(())
    }

    /// [`accumulate_pairs`](Self::accumulate_pairs) from a decoded gradient.
    ///
    /// # Errors
    /// As [`accumulate_pairs`](Self::accumulate_pairs), plus a dimension
    /// mismatch against the accumulator.
    pub fn accumulate_gradient(
        &mut self,
        grad: &SparseGradient,
        scale: f64,
    ) -> Result<(), CompressError> {
        if grad.dim() != self.dim {
            return Err(CompressError::InvalidGradient(format!(
                "gradient dimension {} does not match accumulator {}",
                grad.dim(),
                self.dim
            )));
        }
        self.accumulate_pairs(grad.keys(), grad.values(), scale)
    }

    /// Materializes the aggregate as a gradient, dropping keys whose sum is
    /// exactly zero — the same canonical form [`SparseGradient::aggregate`]
    /// produces, so collective and driver aggregation agree on key sets.
    ///
    /// # Errors
    /// Propagates gradient validation (non-finite sums).
    pub fn to_gradient(&self) -> Result<SparseGradient, CompressError> {
        let mut keys = Vec::with_capacity(self.keys.len());
        let mut values = Vec::with_capacity(self.sums.len());
        for (&k, &s) in self.keys.iter().zip(&self.sums) {
            if s != 0.0 {
                keys.push(k);
                values.push(s);
            }
        }
        SparseGradient::new(self.dim, keys, values)
    }

    /// Serializes the accumulator as an AGG frame:
    ///
    /// ```text
    /// 0xAC | version | varint dim | varint nnz | delta-binary keys | nnz f64 LE sums
    /// ```
    ///
    /// `out` is cleared first. Returns the frame length in bytes.
    ///
    /// # Errors
    /// Propagates key-encoding failures ([`CompressError::Encoding`]).
    pub fn write_agg(&self, out: &mut BytesMut) -> Result<usize, CompressError> {
        out.clear();
        out.extend_from_slice(&[AGG_MAGIC, AGG_VERSION]);
        varint::write_u64(out, self.dim);
        varint::write_u64(out, self.keys.len() as u64);
        delta_binary::encode_keys_into(&self.keys, out)?;
        for &s in &self.sums {
            out.extend_from_slice(&s.to_le_bytes());
        }
        Ok(out.len())
    }

    /// Folds a serialized AGG frame into the accumulator with weight
    /// `scale` (hop payloads already carry their scales, so relays pass 1.0).
    /// Returns the number of key-value pairs the frame carried.
    ///
    /// # Errors
    /// [`CompressError::Corrupt`] on a malformed frame; accumulation errors
    /// as [`accumulate_pairs`](Self::accumulate_pairs).
    pub fn read_agg(&mut self, payload: &[u8], scale: f64) -> Result<usize, CompressError> {
        let mut buf = payload;
        if buf.len() < 2 || buf[0] != AGG_MAGIC {
            return Err(CompressError::Corrupt("AGG frame: bad magic".into()));
        }
        if buf[1] != AGG_VERSION {
            return Err(CompressError::Corrupt(format!(
                "AGG frame: unsupported version {}",
                buf[1]
            )));
        }
        buf = &buf[2..];
        let dim = varint::read_u64(&mut buf).map_err(CompressError::Encoding)?;
        if dim != self.dim {
            return Err(CompressError::Corrupt(format!(
                "AGG frame: dimension {dim} does not match accumulator {}",
                self.dim
            )));
        }
        let nnz = varint::read_u64(&mut buf).map_err(CompressError::Encoding)? as usize;
        if nnz > payload.len() {
            // Every key costs at least one byte on the wire.
            return Err(CompressError::Corrupt(format!(
                "AGG frame: {nnz} keys exceed the {} payload bytes",
                payload.len()
            )));
        }
        let mut keys = std::mem::take(&mut self.tmp_keys);
        let result = (|| {
            delta_binary::decode_keys_into(&mut buf, &mut keys).map_err(CompressError::Encoding)?;
            if keys.len() != nnz {
                return Err(CompressError::Corrupt(format!(
                    "AGG frame: key section holds {} keys, header says {nnz}",
                    keys.len()
                )));
            }
            if buf.len() != 8 * nnz {
                return Err(CompressError::Corrupt(format!(
                    "AGG frame: {} sum bytes left for {nnz} keys",
                    buf.len()
                )));
            }
            let mut sums = std::mem::take(&mut self.tmp_sums);
            sums.clear();
            for chunk in buf.chunks_exact(8) {
                sums.push(f64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
            }
            let r = self.accumulate_pairs(&keys, &sums, scale).map(|()| nnz);
            // `accumulate_pairs` used (and swapped) tmp_sums via the union;
            // hand the decode buffer back regardless of outcome.
            self.tmp_sums = sums;
            self.tmp_sums.clear();
            r
        })();
        keys.clear();
        self.tmp_keys = keys;
        result
    }
}

/// A compressor whose payloads can be merged hop-by-hop inside a collective.
///
/// The default methods implement both policies on top of the
/// [`GradientCompressor`] contract, so `impl MergeableCompressor for X {}`
/// suffices for any compressor; the trait exists as an explicit capability
/// marker (and extension point) for the collective executor, which only
/// accepts compressors that opted in.
pub trait MergeableCompressor: GradientCompressor {
    /// Folds a hop payload into `acc` with weight `scale`, returning the
    /// number of key-value pairs the payload carried (the decode work done,
    /// which cost models charge for). AGG frames are recognized by their
    /// magic; anything else is decoded by the native compressor.
    ///
    /// # Errors
    /// Decode or accumulation failures ([`CompressError`]).
    fn accumulate(
        &self,
        acc: &mut MergeAcc,
        payload: &[u8],
        scale: f64,
        scratch: &mut CompressScratch,
    ) -> Result<u64, CompressError> {
        if payload.first() == Some(&AGG_MAGIC) {
            return acc.read_agg(payload, scale).map(|n| n as u64);
        }
        let mut decoded = std::mem::replace(&mut acc.decode, SparseGradient::empty(0));
        let result = self
            .decompress_into(payload, scratch, &mut decoded)
            .and_then(|()| acc.accumulate_gradient(&decoded, scale))
            .map(|()| decoded.nnz() as u64);
        acc.decode = decoded;
        result
    }

    /// Serializes the accumulator as the next hop's payload under `policy`:
    /// an AGG frame for [`MergePolicy::Exact`], a re-compressed native
    /// payload for [`MergePolicy::Resketch`]. `out` is cleared first.
    ///
    /// # Errors
    /// Encoding failures ([`CompressError`]).
    fn emit_hop(
        &self,
        acc: &MergeAcc,
        policy: MergePolicy,
        scratch: &mut CompressScratch,
        out: &mut BytesMut,
    ) -> Result<(), CompressError> {
        match policy {
            MergePolicy::Exact => {
                acc.write_agg(out)?;
            }
            MergePolicy::Resketch => {
                let grad = acc.to_gradient()?;
                self.compress_into(&grad, scratch, out)?;
            }
        }
        Ok(())
    }
}

impl<T: MergeableCompressor + ?Sized> MergeableCompressor for &T {}

impl MergeableCompressor for crate::sketchml::SketchMlCompressor {}
impl MergeableCompressor for crate::baselines::RawCompressor {}
impl MergeableCompressor for crate::baselines::KeyCompressor {}
impl MergeableCompressor for crate::baselines::TruncationCompressor {}
impl MergeableCompressor for crate::quantify::QuantCompressor {}
impl MergeableCompressor for crate::zipml::ZipMlCompressor {}
impl<C: GradientCompressor> MergeableCompressor for crate::sharded::ShardedCompressor<C> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::RawCompressor;
    use crate::sketchml::SketchMlCompressor;

    fn grad(dim: u64, pairs: &[(u64, f64)]) -> SparseGradient {
        SparseGradient::new(
            dim,
            pairs.iter().map(|&(k, _)| k).collect(),
            pairs.iter().map(|&(_, v)| v).collect(),
        )
        .unwrap()
    }

    #[test]
    fn accumulate_unions_and_sums() {
        let mut acc = MergeAcc::new();
        acc.reset(100);
        acc.accumulate_gradient(&grad(100, &[(1, 1.0), (5, 2.0)]), 1.0)
            .unwrap();
        acc.accumulate_gradient(&grad(100, &[(5, 3.0), (9, -1.0)]), 2.0)
            .unwrap();
        assert_eq!(acc.keys(), &[1, 5, 9]);
        assert_eq!(acc.sums(), &[1.0, 8.0, -2.0]);
        let g = acc.to_gradient().unwrap();
        assert_eq!(g.keys(), &[1, 5, 9]);
    }

    #[test]
    fn to_gradient_drops_exact_zero_sums() {
        let mut acc = MergeAcc::new();
        acc.reset(10);
        acc.accumulate_pairs(&[2, 4], &[1.5, 2.0], 1.0).unwrap();
        acc.accumulate_pairs(&[2], &[-1.5], 1.0).unwrap();
        let g = acc.to_gradient().unwrap();
        assert_eq!(g.keys(), &[4]);
    }

    #[test]
    fn accumulate_rejects_corrupt_inputs() {
        let mut acc = MergeAcc::new();
        acc.reset(10);
        assert!(acc.accumulate_pairs(&[3, 3], &[1.0, 1.0], 1.0).is_err());
        assert!(acc.accumulate_pairs(&[5, 2], &[1.0, 1.0], 1.0).is_err());
        assert!(acc.accumulate_pairs(&[11], &[1.0], 1.0).is_err());
        assert!(acc.accumulate_pairs(&[1], &[1.0, 2.0], 1.0).is_err());
        assert!(acc
            .accumulate_gradient(&grad(20, &[(1, 1.0)]), 1.0)
            .is_err());
    }

    #[test]
    fn agg_frame_roundtrips() {
        let mut acc = MergeAcc::new();
        acc.reset(1_000);
        acc.accumulate_pairs(&[7, 90, 900], &[0.5, -0.25, 1.75], 1.0)
            .unwrap();
        let mut frame = BytesMut::new();
        let len = acc.write_agg(&mut frame).unwrap();
        assert_eq!(len, frame.len());
        assert_eq!(frame[0], AGG_MAGIC);

        let mut back = MergeAcc::new();
        back.reset(1_000);
        back.read_agg(&frame, 1.0).unwrap();
        assert_eq!(back.keys(), acc.keys());
        assert_eq!(back.sums(), acc.sums());

        // Scaled read applies the weight.
        let mut scaled = MergeAcc::new();
        scaled.reset(1_000);
        scaled.read_agg(&frame, 2.0).unwrap();
        assert_eq!(scaled.sums(), &[1.0, -0.5, 3.5]);
    }

    #[test]
    fn agg_frame_rejects_corruption() {
        let mut acc = MergeAcc::new();
        acc.reset(50);
        acc.accumulate_pairs(&[3, 9], &[1.0, 2.0], 1.0).unwrap();
        let mut frame = BytesMut::new();
        acc.write_agg(&mut frame).unwrap();

        let mut back = MergeAcc::new();
        back.reset(50);
        assert!(back.read_agg(&[], 1.0).is_err());
        assert!(back.read_agg(&[0xFF, 1], 1.0).is_err());
        assert!(back.read_agg(&[AGG_MAGIC, 99], 1.0).is_err());
        for cut in 0..frame.len() {
            let _ = back.read_agg(&frame[..cut], 1.0); // must not panic
        }
        // Dimension mismatch is typed.
        let mut wrong = MergeAcc::new();
        wrong.reset(51);
        assert!(wrong.read_agg(&frame, 1.0).is_err());
    }

    #[test]
    fn exact_policy_matches_driver_style_aggregation() {
        let c = SketchMlCompressor::default();
        let dim = 4_096u64;
        let g1 = grad(dim, &[(3, 0.5), (700, -0.25), (900, 0.125)]);
        let g2 = grad(dim, &[(3, 0.25), (800, 1.0)]);
        let p1 = c.compress(&g1).unwrap();
        let p2 = c.compress(&g2).unwrap();

        // Driver-style: decode each, scale, aggregate.
        let mut d1 = c.decompress(&p1.payload).unwrap();
        let mut d2 = c.decompress(&p2.payload).unwrap();
        d1.scale(0.5);
        d2.scale(0.5);
        let reference = SparseGradient::aggregate(&[d1, d2]).unwrap();

        // Collective-style: accumulate both payloads, relay as AGG, finish.
        let mut scratch = CompressScratch::default();
        let mut acc = MergeAcc::new();
        acc.reset(dim);
        c.accumulate(&mut acc, &p1.payload, 0.5, &mut scratch)
            .unwrap();
        let mut hop = BytesMut::new();
        c.emit_hop(&acc, MergePolicy::Exact, &mut scratch, &mut hop)
            .unwrap();

        let mut acc2 = MergeAcc::new();
        acc2.reset(dim);
        c.accumulate(&mut acc2, &hop, 1.0, &mut scratch).unwrap();
        c.accumulate(&mut acc2, &p2.payload, 0.5, &mut scratch)
            .unwrap();
        let got = acc2.to_gradient().unwrap();
        assert_eq!(got.keys(), reference.keys());
        assert_eq!(got.values(), reference.values());
    }

    #[test]
    fn resketch_policy_emits_native_payloads() {
        let c = SketchMlCompressor::default();
        let dim = 4_096u64;
        let g = grad(dim, &[(3, 0.5), (700, -0.25), (900, 0.125)]);
        let p = c.compress(&g).unwrap();

        let mut scratch = CompressScratch::default();
        let mut acc = MergeAcc::new();
        acc.reset(dim);
        c.accumulate(&mut acc, &p.payload, 1.0, &mut scratch)
            .unwrap();
        let mut hop = BytesMut::new();
        c.emit_hop(&acc, MergePolicy::Resketch, &mut scratch, &mut hop)
            .unwrap();
        // The hop payload is a native SketchML message: decodable, keys are
        // lossless, and signs never flip versus the accumulated partial
        // (values land on bucket means, so magnitudes may wobble).
        let decoded = c.decompress(&hop).unwrap();
        assert_eq!(decoded.keys(), acc.keys());
        for (sum, dec) in acc.sums().iter().zip(decoded.values()) {
            assert!(sum.signum() == dec.signum() || *dec == 0.0);
        }
    }

    #[test]
    fn raw_compressor_is_mergeable_via_defaults() {
        let c = RawCompressor::default();
        let dim = 64u64;
        let g = grad(dim, &[(1, 1.0), (2, -2.0)]);
        let p = c.compress(&g).unwrap();
        let mut scratch = CompressScratch::default();
        let mut acc = MergeAcc::new();
        acc.reset(dim);
        c.accumulate(&mut acc, &p.payload, 1.0, &mut scratch)
            .unwrap();
        c.accumulate(&mut acc, &p.payload, 1.0, &mut scratch)
            .unwrap();
        assert_eq!(acc.sums(), &[2.0, -4.0]);
    }
}
