//! Mergeable compression: the wire-level operations collective aggregation
//! (ring / tree allreduce) performs on *compressed* gradient payloads
//! instead of decompressing everything at a central driver.
//!
//! Three hop-payload policies are supported, because exactness and per-link
//! bytes pull in opposite directions:
//!
//! * [`MergePolicy::Exact`] — intermediate hops carry **AGG frames**: the
//!   delta-binary key union plus full-precision `f64` partial sums. The
//!   final aggregate is numerically the driver's instance-weighted mean
//!   (modulo floating-point reassociation from the hop order), so training
//!   trajectories match the star topology to ~1e-12 per round. Partial sums
//!   cannot be compressed below ~8 bytes/key without losing exactness, so
//!   hop frames are larger than native SketchML payloads.
//! * [`MergePolicy::Resketch`] — every hop decodes, accumulates, and
//!   **re-compresses** the running partial aggregate with the native
//!   compressor, so each link carries a genuinely sketch-compressed payload
//!   (~2 bytes/key for SketchML). Quantization error compounds once per
//!   merge hop, but the MinMaxSketch underestimate-only rule keeps every
//!   hop's error conservative: magnitudes decay, signs never flip.
//! * [`MergePolicy::Linear`] — hops carry raw **Count-Sketch cell tables**
//!   (CSK frames, [`sketchml_encoding::csk`]) merged element-wise: no key
//!   union, no resketch, and heavy-hitter extraction is deferred to the
//!   final hop. Because the sketch is linear, the merged table is
//!   *bit-identical* to the single-node sketch of the summed gradient
//!   (modulo f64 reassociation, which vanishes for dyadic inputs). Only
//!   compressors whose payloads are linear opt in via
//!   [`MergeableCompressor::supports_linear`].
//!
//! [`MergeAcc`] is the accumulator all policies share; the
//! [`MergeableCompressor`] trait plugs any [`GradientCompressor`] into it.

use crate::compressor::GradientCompressor;
use crate::error::CompressError;
use crate::gradient::SparseGradient;
use crate::scratch::CompressScratch;
use bytes::BytesMut;
use sketchml_encoding::csk::{self, CskHeader};
use sketchml_encoding::{delta_binary, varint};
use sketchml_telemetry as telemetry;

/// Lead byte of an AGG (exact partial-aggregate) frame. Distinct from every
/// native compressor magic (`0x0D`/`0x0E`/`0x0F` baselines, `0xA5` Quan,
/// `0xA7` SketchML, `0x21` ZipML) and from the sharded framing's `0x00` v2
/// sentinel, so [`MergeableCompressor::accumulate`] can sniff frame kinds.
pub const AGG_MAGIC: u8 = 0xAC;

/// Version byte of the AGG frame format.
pub const AGG_VERSION: u8 = 1;

/// How intermediate hops of a collective represent partial aggregates.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum MergePolicy {
    /// Hops carry exact `f64` partial sums in AGG frames: bit-faithful to
    /// driver aggregation modulo summation order, at ~9 bytes/key per hop.
    #[default]
    Exact,
    /// Hops re-compress the partial aggregate with the native compressor:
    /// sketch-sized links, conservatively lossy (one quantization per hop).
    Resketch,
    /// Hops merge raw Count-Sketch cell tables element-wise (CSK frames),
    /// deferring heavy-hitter extraction to the final hop. Requires a
    /// compressor with [`MergeableCompressor::supports_linear`].
    Linear,
}

impl MergePolicy {
    /// Short name used in benches and config files.
    pub fn name(self) -> &'static str {
        match self {
            MergePolicy::Exact => "exact",
            MergePolicy::Resketch => "resketch",
            MergePolicy::Linear => "linear",
        }
    }
}

/// The linear-merge state of a [`MergeAcc`]: a full Count-Sketch cell table
/// plus the window of cells this accumulator is responsible for emitting.
/// The table always allocates `rows · cols` cells — cells outside every
/// folded window stay exactly `0.0`, so additions commute bit-exactly — and
/// the emit window is the union of all folded windows.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearTable {
    dim: u64,
    rows: u32,
    cols: u32,
    k: u32,
    seed: u64,
    nnz: u64,
    key_lo: u64,
    key_end: u64,
    win_start: u64,
    win_end: u64,
    cells: Vec<f64>,
}

impl LinearTable {
    /// Gradient dimension the table summarizes.
    pub fn dim(&self) -> u64 {
        self.dim
    }

    /// Sketch rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Sketch columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Heavy hitters to extract at the final hop — the max over every folded
    /// frame's `k` (auto-k hops stamp a per-round value).
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Hash-family seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total pair count folded in so far (reporting only).
    pub fn nnz(&self) -> u64 {
        self.nnz
    }

    /// `[lo, end)` union of every folded frame's key range — the bound for
    /// the final heavy-hitter extraction.
    pub fn key_range(&self) -> (u64, u64) {
        (self.key_lo, self.key_end)
    }

    /// Total cells of the full table.
    pub fn table_len(&self) -> u64 {
        u64::from(self.rows) * u64::from(self.cols)
    }

    /// The full cell table (row-major, `rows · cols` long).
    pub fn cells(&self) -> &[f64] {
        &self.cells
    }

    /// The `[start, end)` cell window this accumulator emits.
    pub fn window(&self) -> (u64, u64) {
        (self.win_start, self.win_end)
    }

    fn header(&self) -> CskHeader {
        CskHeader {
            dim: self.dim,
            rows: self.rows,
            cols: self.cols,
            k: self.k,
            seed: self.seed,
            nnz: self.nnz,
            key_lo: self.key_lo,
            key_end: self.key_end,
            cell_start: self.win_start,
            cell_count: self.win_end - self.win_start,
        }
    }

    fn check_compatible(&self, h: &CskHeader) -> Result<(), CompressError> {
        // `k` is deliberately NOT compared: auto-k frames carry a per-round
        // heavy-hitter count, and the fold keeps the max of every hop's k.
        if self.dim != h.dim || self.rows != h.rows || self.cols != h.cols || self.seed != h.seed {
            return Err(CompressError::Corrupt(format!(
                "CSK frame shape {}x{} seed={} dim={} does not match \
                 accumulated table {}x{} seed={} dim={}",
                h.rows, h.cols, h.seed, h.dim, self.rows, self.cols, self.seed, self.dim
            )));
        }
        Ok(())
    }
}

/// Accumulator for partial gradient aggregates: a sorted key-union with one
/// running `f64` sum per key. Buffers persist across [`reset`](Self::reset)
/// calls so steady-state accumulation does not allocate.
#[derive(Debug, Clone)]
pub struct MergeAcc {
    dim: u64,
    keys: Vec<u64>,
    sums: Vec<f64>,
    // Union scratch, swapped with the live buffers each accumulate.
    tmp_keys: Vec<u64>,
    tmp_sums: Vec<f64>,
    decode: SparseGradient,
    // Linear-policy state: present once a CSK frame has been folded.
    linear: Option<LinearTable>,
}

impl Default for MergeAcc {
    fn default() -> Self {
        Self::new()
    }
}

impl MergeAcc {
    /// Creates an empty accumulator over a zero-dimensional space; call
    /// [`reset`](Self::reset) before use.
    pub fn new() -> Self {
        Self {
            dim: 0,
            keys: Vec::new(),
            sums: Vec::new(),
            tmp_keys: Vec::new(),
            tmp_sums: Vec::new(),
            decode: SparseGradient::empty(0),
            linear: None,
        }
    }

    /// Clears the accumulator for a new aggregation over `dim` keys.
    pub fn reset(&mut self, dim: u64) {
        self.dim = dim;
        self.keys.clear();
        self.sums.clear();
        self.linear = None;
    }

    /// The linear-merge cell table, if any CSK frame has been folded since
    /// the last [`reset`](Self::reset).
    pub fn linear(&self) -> Option<&LinearTable> {
        self.linear.as_ref()
    }

    /// True when nothing — neither pairs nor a linear table — has been
    /// accumulated.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty() && self.linear.is_none()
    }

    /// Gradient dimension this accumulator aggregates over.
    pub fn dim(&self) -> u64 {
        self.dim
    }

    /// Number of distinct keys accumulated so far.
    pub fn nnz(&self) -> usize {
        self.keys.len()
    }

    /// Sorted distinct keys.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Running per-key sums, parallel to [`keys`](Self::keys).
    pub fn sums(&self) -> &[f64] {
        &self.sums
    }

    /// Folds `scale * values` into the running sums by sorted key-union.
    ///
    /// # Errors
    /// [`CompressError::InvalidGradient`] on unsorted/duplicate keys, a
    /// length mismatch, or a key at or beyond the accumulator's dimension —
    /// the signatures of a corrupt upstream payload.
    pub fn accumulate_pairs(
        &mut self,
        keys: &[u64],
        values: &[f64],
        scale: f64,
    ) -> Result<(), CompressError> {
        if keys.len() != values.len() {
            return Err(CompressError::InvalidGradient(format!(
                "{} keys vs {} values",
                keys.len(),
                values.len()
            )));
        }
        if let Some(&last) = keys.last() {
            if last >= self.dim {
                return Err(CompressError::InvalidGradient(format!(
                    "key {last} outside dimension {}",
                    self.dim
                )));
            }
        }
        for w in keys.windows(2) {
            if w[1] <= w[0] {
                return Err(CompressError::InvalidGradient(format!(
                    "keys must be strictly ascending: {} then {}",
                    w[0], w[1]
                )));
            }
        }
        self.tmp_keys.clear();
        self.tmp_sums.clear();
        self.tmp_keys.reserve(self.keys.len() + keys.len());
        self.tmp_sums.reserve(self.keys.len() + keys.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.keys.len() && j < keys.len() {
            match self.keys[i].cmp(&keys[j]) {
                std::cmp::Ordering::Less => {
                    self.tmp_keys.push(self.keys[i]);
                    self.tmp_sums.push(self.sums[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    self.tmp_keys.push(keys[j]);
                    self.tmp_sums.push(scale * values[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    self.tmp_keys.push(self.keys[i]);
                    self.tmp_sums.push(self.sums[i] + scale * values[j]);
                    i += 1;
                    j += 1;
                }
            }
        }
        while i < self.keys.len() {
            self.tmp_keys.push(self.keys[i]);
            self.tmp_sums.push(self.sums[i]);
            i += 1;
        }
        while j < keys.len() {
            self.tmp_keys.push(keys[j]);
            self.tmp_sums.push(scale * values[j]);
            j += 1;
        }
        std::mem::swap(&mut self.keys, &mut self.tmp_keys);
        std::mem::swap(&mut self.sums, &mut self.tmp_sums);
        Ok(())
    }

    /// [`accumulate_pairs`](Self::accumulate_pairs) from a decoded gradient.
    ///
    /// # Errors
    /// As [`accumulate_pairs`](Self::accumulate_pairs), plus a dimension
    /// mismatch against the accumulator.
    pub fn accumulate_gradient(
        &mut self,
        grad: &SparseGradient,
        scale: f64,
    ) -> Result<(), CompressError> {
        if grad.dim() != self.dim {
            return Err(CompressError::InvalidGradient(format!(
                "gradient dimension {} does not match accumulator {}",
                grad.dim(),
                self.dim
            )));
        }
        self.accumulate_pairs(grad.keys(), grad.values(), scale)
    }

    /// Materializes the aggregate as a gradient, dropping keys whose sum is
    /// exactly zero — the same canonical form [`SparseGradient::aggregate`]
    /// produces, so collective and driver aggregation agree on key sets.
    ///
    /// # Errors
    /// Propagates gradient validation (non-finite sums).
    pub fn to_gradient(&self) -> Result<SparseGradient, CompressError> {
        let mut keys = Vec::with_capacity(self.keys.len());
        let mut values = Vec::with_capacity(self.sums.len());
        for (&k, &s) in self.keys.iter().zip(&self.sums) {
            if s != 0.0 {
                keys.push(k);
                values.push(s);
            }
        }
        SparseGradient::new(self.dim, keys, values)
    }

    /// Serializes the accumulator as an AGG frame:
    ///
    /// ```text
    /// 0xAC | version | varint dim | varint nnz | delta-binary keys | nnz f64 LE sums
    /// ```
    ///
    /// `out` is cleared first. Returns the frame length in bytes.
    ///
    /// # Errors
    /// Propagates key-encoding failures ([`CompressError::Encoding`]).
    pub fn write_agg(&self, out: &mut BytesMut) -> Result<usize, CompressError> {
        out.clear();
        out.extend_from_slice(&[AGG_MAGIC, AGG_VERSION]);
        varint::write_u64(out, self.dim);
        varint::write_u64(out, self.keys.len() as u64);
        delta_binary::encode_keys_into(&self.keys, out)?;
        for &s in &self.sums {
            out.extend_from_slice(&s.to_le_bytes());
        }
        Ok(out.len())
    }

    /// Folds a serialized AGG frame into the accumulator with weight
    /// `scale` (hop payloads already carry their scales, so relays pass 1.0).
    /// Returns the number of key-value pairs the frame carried.
    ///
    /// # Errors
    /// [`CompressError::Corrupt`] on a malformed frame; accumulation errors
    /// as [`accumulate_pairs`](Self::accumulate_pairs).
    pub fn read_agg(&mut self, payload: &[u8], scale: f64) -> Result<usize, CompressError> {
        let mut buf = payload;
        if buf.len() < 2 || buf[0] != AGG_MAGIC {
            return Err(CompressError::Corrupt("AGG frame: bad magic".into()));
        }
        if buf[1] != AGG_VERSION {
            return Err(CompressError::Corrupt(format!(
                "AGG frame: unsupported version {}",
                buf[1]
            )));
        }
        buf = &buf[2..];
        let dim = varint::read_u64(&mut buf).map_err(CompressError::Encoding)?;
        if dim != self.dim {
            return Err(CompressError::Corrupt(format!(
                "AGG frame: dimension {dim} does not match accumulator {}",
                self.dim
            )));
        }
        let nnz = varint::read_u64(&mut buf).map_err(CompressError::Encoding)? as usize;
        if nnz > payload.len() {
            // Every key costs at least one byte on the wire.
            return Err(CompressError::Corrupt(format!(
                "AGG frame: {nnz} keys exceed the {} payload bytes",
                payload.len()
            )));
        }
        let mut keys = std::mem::take(&mut self.tmp_keys);
        let result = (|| {
            delta_binary::decode_keys_into(&mut buf, &mut keys).map_err(CompressError::Encoding)?;
            if keys.len() != nnz {
                return Err(CompressError::Corrupt(format!(
                    "AGG frame: key section holds {} keys, header says {nnz}",
                    keys.len()
                )));
            }
            if buf.len() != 8 * nnz {
                return Err(CompressError::Corrupt(format!(
                    "AGG frame: {} sum bytes left for {nnz} keys",
                    buf.len()
                )));
            }
            let mut sums = std::mem::take(&mut self.tmp_sums);
            sums.clear();
            for chunk in buf.chunks_exact(8) {
                sums.push(f64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
            }
            let r = self.accumulate_pairs(&keys, &sums, scale).map(|()| nnz);
            // `accumulate_pairs` used (and swapped) tmp_sums via the union;
            // hand the decode buffer back regardless of outcome.
            self.tmp_sums = sums;
            self.tmp_sums.clear();
            r
        })();
        keys.clear();
        self.tmp_keys = keys;
        result
    }

    /// Folds `scale · cells` (a window `[h.cell_start, h.cell_start +
    /// h.cell_count)` of a Count-Sketch table described by `h`) into the
    /// linear table, creating it on first fold. The emit window grows to the
    /// union of all folded windows.
    ///
    /// # Errors
    /// [`CompressError::Corrupt`] if `h` disagrees with the accumulator's
    /// dimension, an already-folded table's shape/seed, or `cells`' length.
    pub fn fold_linear(
        &mut self,
        h: &CskHeader,
        cells: &[f64],
        scale: f64,
    ) -> Result<(), CompressError> {
        if h.dim != self.dim {
            return Err(CompressError::Corrupt(format!(
                "CSK frame dimension {} does not match accumulator {}",
                h.dim, self.dim
            )));
        }
        if cells.len() as u64 != h.cell_count {
            return Err(CompressError::Corrupt(format!(
                "CSK frame declares {} cells but {} were supplied",
                h.cell_count,
                cells.len()
            )));
        }
        let table = match &mut self.linear {
            Some(t) => {
                t.check_compatible(h)?;
                // Auto-k hops adapt k per round; extraction honours the
                // widest request seen across the fold.
                t.k = t.k.max(h.k);
                t
            }
            None => {
                let len = usize::try_from(h.table_len())
                    .ok()
                    .filter(|&n| n <= u32::MAX as usize)
                    .ok_or_else(|| {
                        CompressError::Corrupt("CSK table exceeds u32::MAX cells".into())
                    })?;
                self.linear.insert(LinearTable {
                    dim: h.dim,
                    rows: h.rows,
                    cols: h.cols,
                    k: h.k,
                    seed: h.seed,
                    nnz: 0,
                    key_lo: h.key_lo,
                    key_end: h.key_end,
                    win_start: h.cell_start,
                    win_end: h.cell_start + h.cell_count,
                    cells: vec![0.0; len],
                })
            }
        };
        let start = h.cell_start as usize;
        for (dst, &src) in table.cells[start..start + cells.len()]
            .iter_mut()
            .zip(cells)
        {
            *dst += scale * src;
        }
        table.nnz = table.nnz.saturating_add(h.nnz);
        // Union the key ranges; an empty range ([lo, lo)) is the identity.
        if h.key_lo != h.key_end {
            if table.key_lo == table.key_end {
                (table.key_lo, table.key_end) = (h.key_lo, h.key_end);
            } else {
                table.key_lo = table.key_lo.min(h.key_lo);
                table.key_end = table.key_end.max(h.key_end);
            }
        }
        table.win_start = table.win_start.min(h.cell_start);
        table.win_end = table.win_end.max(h.cell_start + h.cell_count);
        if telemetry::enabled() {
            telemetry::inc(telemetry::Counter::CollectiveLinearFolds);
        }
        Ok(())
    }

    /// Parses a CSK frame and [`fold_linear`](Self::fold_linear)s it in.
    /// Returns the pair count the frame declared.
    ///
    /// # Errors
    /// [`CompressError::Corrupt`] on a malformed frame or an incompatible
    /// table.
    pub fn read_csk(&mut self, payload: &[u8], scale: f64) -> Result<u64, CompressError> {
        let mut cells = std::mem::take(&mut self.tmp_sums);
        let result = csk::read_frame(payload, &mut cells)
            .map_err(|e| CompressError::Corrupt(format!("CSK frame: {e}")))
            .and_then(|h| self.fold_linear(&h, &cells, scale).map(|()| h.nnz));
        cells.clear();
        self.tmp_sums = cells;
        result
    }

    /// Serializes the linear table's emit window as a CSK frame (`out` is
    /// cleared first). Returns the frame length.
    ///
    /// # Errors
    /// [`CompressError::InvalidConfig`] if no linear table is present.
    pub fn write_csk(&self, out: &mut BytesMut) -> Result<usize, CompressError> {
        let t = self.linear.as_ref().ok_or_else(|| {
            CompressError::InvalidConfig("no linear table accumulated to emit".into())
        })?;
        out.clear();
        let (start, end) = (t.win_start as usize, t.win_end as usize);
        csk::write_frame(&t.header(), &t.cells[start..end], out)
            .map_err(CompressError::Encoding)?;
        Ok(out.len())
    }

    /// Copies the cell window `[start, start + len)` of `src` into this
    /// accumulator as its own emit window — the reduce-scatter split: each
    /// ring chunk gets a per-chunk accumulator covering a disjoint cell
    /// range of the same table.
    ///
    /// # Errors
    /// [`CompressError::Corrupt`] if the window is out of range or conflicts
    /// with an existing fold.
    pub fn fold_linear_slice(
        &mut self,
        src: &LinearTable,
        start: u64,
        len: u64,
    ) -> Result<(), CompressError> {
        if start + len > src.table_len() || len == 0 {
            return Err(CompressError::Corrupt(format!(
                "cell window [{start}, {}) outside table of {} cells",
                start + len,
                src.table_len()
            )));
        }
        let h = CskHeader {
            cell_start: start,
            cell_count: len,
            ..src.header()
        };
        let range = start as usize..(start + len) as usize;
        self.fold_linear(&h, &src.cells[range], 1.0)
    }
}

/// A compressor whose payloads can be merged hop-by-hop inside a collective.
///
/// The default methods implement both policies on top of the
/// [`GradientCompressor`] contract, so `impl MergeableCompressor for X {}`
/// suffices for any compressor; the trait exists as an explicit capability
/// marker (and extension point) for the collective executor, which only
/// accepts compressors that opted in.
pub trait MergeableCompressor: GradientCompressor {
    /// True when this compressor's native payloads are CSK frames that can
    /// be merged element-wise under [`MergePolicy::Linear`]. The collective
    /// executor rejects `Linear` for compressors that return `false`.
    fn supports_linear(&self) -> bool {
        false
    }

    /// Folds a hop payload into `acc` with weight `scale`, returning the
    /// number of key-value pairs the payload carried (the decode work done,
    /// which cost models charge for). AGG frames are recognized by their
    /// magic; anything else is decoded by the native compressor.
    ///
    /// # Errors
    /// Decode or accumulation failures ([`CompressError`]).
    fn accumulate(
        &self,
        acc: &mut MergeAcc,
        payload: &[u8],
        scale: f64,
        scratch: &mut CompressScratch,
    ) -> Result<u64, CompressError> {
        if payload.first() == Some(&AGG_MAGIC) {
            return acc.read_agg(payload, scale).map(|n| n as u64);
        }
        let mut decoded = std::mem::replace(&mut acc.decode, SparseGradient::empty(0));
        let result = self
            .decompress_into(payload, scratch, &mut decoded)
            .and_then(|()| acc.accumulate_gradient(&decoded, scale))
            .map(|()| decoded.nnz() as u64);
        acc.decode = decoded;
        result
    }

    /// Policy-aware [`accumulate`](Self::accumulate): under
    /// [`MergePolicy::Linear`], CSK frames fold element-wise into the
    /// accumulator's table instead of being decoded to top-k pairs — the
    /// lossless one-pass merge. Every other (payload, policy) combination
    /// defers to `accumulate`.
    ///
    /// # Errors
    /// Decode or accumulation failures ([`CompressError`]).
    fn accumulate_hop(
        &self,
        acc: &mut MergeAcc,
        payload: &[u8],
        scale: f64,
        policy: MergePolicy,
        scratch: &mut CompressScratch,
    ) -> Result<u64, CompressError> {
        if policy == MergePolicy::Linear && payload.first() == Some(&csk::CSK_MAGIC) {
            return acc.read_csk(payload, scale);
        }
        self.accumulate(acc, payload, scale, scratch)
    }

    /// Serializes the accumulator as the next hop's payload under `policy`:
    /// an AGG frame for [`MergePolicy::Exact`], a re-compressed native
    /// payload for [`MergePolicy::Resketch`], a raw cell-table CSK frame for
    /// [`MergePolicy::Linear`] (falling back to an AGG frame when nothing
    /// linear was folded, so empty contributions stay representable).
    /// `out` is cleared first.
    ///
    /// # Errors
    /// Encoding failures ([`CompressError`]).
    fn emit_hop(
        &self,
        acc: &MergeAcc,
        policy: MergePolicy,
        scratch: &mut CompressScratch,
        out: &mut BytesMut,
    ) -> Result<(), CompressError> {
        match policy {
            MergePolicy::Exact => {
                acc.write_agg(out)?;
            }
            MergePolicy::Resketch => {
                let grad = acc.to_gradient()?;
                self.compress_into(&grad, scratch, out)?;
            }
            MergePolicy::Linear => {
                if acc.linear().is_some() {
                    acc.write_csk(out)?;
                } else {
                    acc.write_agg(out)?;
                }
            }
        }
        Ok(())
    }

    /// Materializes the final aggregate. With a linear table present this is
    /// where heavy-hitter extraction happens (overridden by the Count-Sketch
    /// compressor); the default is the exact pair aggregate.
    ///
    /// # Errors
    /// [`CompressError::InvalidConfig`] if a linear table was accumulated
    /// but this compressor cannot extract from it; gradient validation
    /// otherwise.
    fn finish(&self, acc: &MergeAcc) -> Result<SparseGradient, CompressError> {
        if acc.linear().is_some() {
            return Err(CompressError::InvalidConfig(format!(
                "{} cannot extract heavy hitters from a linear cell table",
                self.name()
            )));
        }
        acc.to_gradient()
    }
}

// Forward every method through references explicitly: a bare `impl {}`
// would hand `&T` the *default* bodies and silently drop any overrides
// (e.g. the Count-Sketch compressor's `supports_linear`/`finish`).
impl<T: MergeableCompressor + ?Sized> MergeableCompressor for &T {
    fn supports_linear(&self) -> bool {
        (**self).supports_linear()
    }

    fn accumulate(
        &self,
        acc: &mut MergeAcc,
        payload: &[u8],
        scale: f64,
        scratch: &mut CompressScratch,
    ) -> Result<u64, CompressError> {
        (**self).accumulate(acc, payload, scale, scratch)
    }

    fn accumulate_hop(
        &self,
        acc: &mut MergeAcc,
        payload: &[u8],
        scale: f64,
        policy: MergePolicy,
        scratch: &mut CompressScratch,
    ) -> Result<u64, CompressError> {
        (**self).accumulate_hop(acc, payload, scale, policy, scratch)
    }

    fn emit_hop(
        &self,
        acc: &MergeAcc,
        policy: MergePolicy,
        scratch: &mut CompressScratch,
        out: &mut BytesMut,
    ) -> Result<(), CompressError> {
        (**self).emit_hop(acc, policy, scratch, out)
    }

    fn finish(&self, acc: &MergeAcc) -> Result<SparseGradient, CompressError> {
        (**self).finish(acc)
    }
}

impl MergeableCompressor for crate::sketchml::SketchMlCompressor {}
impl MergeableCompressor for crate::baselines::RawCompressor {}
impl MergeableCompressor for crate::baselines::KeyCompressor {}
impl MergeableCompressor for crate::baselines::TruncationCompressor {}
impl MergeableCompressor for crate::quantify::QuantCompressor {}
impl MergeableCompressor for crate::zipml::ZipMlCompressor {}
impl MergeableCompressor for crate::fastsgd::FastSgdCompressor {}
impl<C: GradientCompressor> MergeableCompressor for crate::sharded::ShardedCompressor<C> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::RawCompressor;
    use crate::sketchml::SketchMlCompressor;

    fn grad(dim: u64, pairs: &[(u64, f64)]) -> SparseGradient {
        SparseGradient::new(
            dim,
            pairs.iter().map(|&(k, _)| k).collect(),
            pairs.iter().map(|&(_, v)| v).collect(),
        )
        .unwrap()
    }

    #[test]
    fn accumulate_unions_and_sums() {
        let mut acc = MergeAcc::new();
        acc.reset(100);
        acc.accumulate_gradient(&grad(100, &[(1, 1.0), (5, 2.0)]), 1.0)
            .unwrap();
        acc.accumulate_gradient(&grad(100, &[(5, 3.0), (9, -1.0)]), 2.0)
            .unwrap();
        assert_eq!(acc.keys(), &[1, 5, 9]);
        assert_eq!(acc.sums(), &[1.0, 8.0, -2.0]);
        let g = acc.to_gradient().unwrap();
        assert_eq!(g.keys(), &[1, 5, 9]);
    }

    #[test]
    fn to_gradient_drops_exact_zero_sums() {
        let mut acc = MergeAcc::new();
        acc.reset(10);
        acc.accumulate_pairs(&[2, 4], &[1.5, 2.0], 1.0).unwrap();
        acc.accumulate_pairs(&[2], &[-1.5], 1.0).unwrap();
        let g = acc.to_gradient().unwrap();
        assert_eq!(g.keys(), &[4]);
    }

    #[test]
    fn accumulate_rejects_corrupt_inputs() {
        let mut acc = MergeAcc::new();
        acc.reset(10);
        assert!(acc.accumulate_pairs(&[3, 3], &[1.0, 1.0], 1.0).is_err());
        assert!(acc.accumulate_pairs(&[5, 2], &[1.0, 1.0], 1.0).is_err());
        assert!(acc.accumulate_pairs(&[11], &[1.0], 1.0).is_err());
        assert!(acc.accumulate_pairs(&[1], &[1.0, 2.0], 1.0).is_err());
        assert!(acc
            .accumulate_gradient(&grad(20, &[(1, 1.0)]), 1.0)
            .is_err());
    }

    #[test]
    fn empty_acc_emits_an_empty_agg_frame_under_every_policy() {
        let c = RawCompressor::default();
        let acc = MergeAcc::new();
        assert!(acc.is_empty());
        let mut scratch = CompressScratch::new();
        for policy in [MergePolicy::Exact, MergePolicy::Linear] {
            let mut out = BytesMut::new();
            c.emit_hop(&acc, policy, &mut scratch, &mut out).unwrap();
            assert_eq!(out[0], AGG_MAGIC, "{policy:?}");
            // The empty frame folds back into a still-empty accumulator.
            let mut back = MergeAcc::new();
            back.reset(0);
            c.accumulate_hop(&mut back, &out, 1.0, policy, &mut scratch)
                .unwrap();
            assert!(back.is_empty());
            assert_eq!(c.finish(&back).unwrap().nnz(), 0);
        }
    }

    #[test]
    fn single_key_accumulates_and_roundtrips() {
        let mut acc = MergeAcc::new();
        acc.reset(10);
        acc.accumulate_pairs(&[7], &[0.25], 4.0).unwrap();
        assert_eq!(acc.keys(), &[7]);
        assert_eq!(acc.sums(), &[1.0]);
        let mut frame = BytesMut::new();
        acc.write_agg(&mut frame).unwrap();
        let mut back = MergeAcc::new();
        back.reset(10);
        back.read_agg(&frame, 1.0).unwrap();
        let g = back.to_gradient().unwrap();
        assert_eq!(g.keys(), &[7]);
        assert_eq!(g.values(), &[1.0]);
    }

    #[test]
    fn duplicate_keys_are_a_typed_error() {
        let mut acc = MergeAcc::new();
        acc.reset(10);
        let err = acc.accumulate_pairs(&[3, 3], &[1.0, 1.0], 1.0).unwrap_err();
        assert!(matches!(err, CompressError::InvalidGradient(_)));
        assert!(err.to_string().contains('3'));
        // The failed fold must not have half-applied: the acc stays empty.
        assert!(acc.is_empty());
    }

    #[test]
    fn dim_mismatch_is_a_typed_error() {
        let mut acc = MergeAcc::new();
        acc.reset(10);
        let err = acc
            .accumulate_gradient(&grad(20, &[(1, 1.0)]), 1.0)
            .unwrap_err();
        assert!(matches!(err, CompressError::InvalidGradient(_)));
        // Key at/beyond the accumulator's own dimension is equally typed.
        let err = acc.accumulate_pairs(&[10], &[1.0], 1.0).unwrap_err();
        assert!(matches!(err, CompressError::InvalidGradient(_)));
    }

    #[test]
    fn linear_fold_rejects_incompatible_tables() {
        let header = |dim, rows, cols, seed| CskHeader {
            dim,
            rows,
            cols,
            k: 4,
            seed,
            nnz: 1,
            key_lo: 0,
            key_end: dim,
            cell_start: 0,
            cell_count: u64::from(rows) * u64::from(cols),
        };
        let mut acc = MergeAcc::new();
        acc.reset(100);
        acc.fold_linear(&header(100, 2, 4, 9), &[1.0; 8], 1.0)
            .unwrap();
        assert!(!acc.is_empty());
        assert!(acc.linear().is_some());
        // Dim, shape and seed mismatches are all typed errors.
        assert!(acc
            .fold_linear(&header(50, 2, 4, 9), &[1.0; 8], 1.0)
            .is_err());
        assert!(acc
            .fold_linear(&header(100, 4, 2, 9), &[1.0; 8], 1.0)
            .is_err());
        assert!(acc
            .fold_linear(&header(100, 2, 4, 8), &[1.0; 8], 1.0)
            .is_err());
        // Cell-count vs slice-length mismatch too.
        assert!(acc
            .fold_linear(&header(100, 2, 4, 9), &[1.0; 7], 1.0)
            .is_err());
        // `reset` clears the table so the acc is reusable.
        acc.reset(100);
        assert!(acc.linear().is_none());
        assert!(acc.is_empty());
    }

    #[test]
    fn agg_frame_roundtrips() {
        let mut acc = MergeAcc::new();
        acc.reset(1_000);
        acc.accumulate_pairs(&[7, 90, 900], &[0.5, -0.25, 1.75], 1.0)
            .unwrap();
        let mut frame = BytesMut::new();
        let len = acc.write_agg(&mut frame).unwrap();
        assert_eq!(len, frame.len());
        assert_eq!(frame[0], AGG_MAGIC);

        let mut back = MergeAcc::new();
        back.reset(1_000);
        back.read_agg(&frame, 1.0).unwrap();
        assert_eq!(back.keys(), acc.keys());
        assert_eq!(back.sums(), acc.sums());

        // Scaled read applies the weight.
        let mut scaled = MergeAcc::new();
        scaled.reset(1_000);
        scaled.read_agg(&frame, 2.0).unwrap();
        assert_eq!(scaled.sums(), &[1.0, -0.5, 3.5]);
    }

    #[test]
    fn agg_frame_rejects_corruption() {
        let mut acc = MergeAcc::new();
        acc.reset(50);
        acc.accumulate_pairs(&[3, 9], &[1.0, 2.0], 1.0).unwrap();
        let mut frame = BytesMut::new();
        acc.write_agg(&mut frame).unwrap();

        let mut back = MergeAcc::new();
        back.reset(50);
        assert!(back.read_agg(&[], 1.0).is_err());
        assert!(back.read_agg(&[0xFF, 1], 1.0).is_err());
        assert!(back.read_agg(&[AGG_MAGIC, 99], 1.0).is_err());
        for cut in 0..frame.len() {
            let _ = back.read_agg(&frame[..cut], 1.0); // must not panic
        }
        // Dimension mismatch is typed.
        let mut wrong = MergeAcc::new();
        wrong.reset(51);
        assert!(wrong.read_agg(&frame, 1.0).is_err());
    }

    #[test]
    fn exact_policy_matches_driver_style_aggregation() {
        let c = SketchMlCompressor::default();
        let dim = 4_096u64;
        let g1 = grad(dim, &[(3, 0.5), (700, -0.25), (900, 0.125)]);
        let g2 = grad(dim, &[(3, 0.25), (800, 1.0)]);
        let p1 = c.compress(&g1).unwrap();
        let p2 = c.compress(&g2).unwrap();

        // Driver-style: decode each, scale, aggregate.
        let mut d1 = c.decompress(&p1.payload).unwrap();
        let mut d2 = c.decompress(&p2.payload).unwrap();
        d1.scale(0.5);
        d2.scale(0.5);
        let reference = SparseGradient::aggregate(&[d1, d2]).unwrap();

        // Collective-style: accumulate both payloads, relay as AGG, finish.
        let mut scratch = CompressScratch::default();
        let mut acc = MergeAcc::new();
        acc.reset(dim);
        c.accumulate(&mut acc, &p1.payload, 0.5, &mut scratch)
            .unwrap();
        let mut hop = BytesMut::new();
        c.emit_hop(&acc, MergePolicy::Exact, &mut scratch, &mut hop)
            .unwrap();

        let mut acc2 = MergeAcc::new();
        acc2.reset(dim);
        c.accumulate(&mut acc2, &hop, 1.0, &mut scratch).unwrap();
        c.accumulate(&mut acc2, &p2.payload, 0.5, &mut scratch)
            .unwrap();
        let got = acc2.to_gradient().unwrap();
        assert_eq!(got.keys(), reference.keys());
        assert_eq!(got.values(), reference.values());
    }

    #[test]
    fn resketch_policy_emits_native_payloads() {
        let c = SketchMlCompressor::default();
        let dim = 4_096u64;
        let g = grad(dim, &[(3, 0.5), (700, -0.25), (900, 0.125)]);
        let p = c.compress(&g).unwrap();

        let mut scratch = CompressScratch::default();
        let mut acc = MergeAcc::new();
        acc.reset(dim);
        c.accumulate(&mut acc, &p.payload, 1.0, &mut scratch)
            .unwrap();
        let mut hop = BytesMut::new();
        c.emit_hop(&acc, MergePolicy::Resketch, &mut scratch, &mut hop)
            .unwrap();
        // The hop payload is a native SketchML message: decodable, keys are
        // lossless, and signs never flip versus the accumulated partial
        // (values land on bucket means, so magnitudes may wobble).
        let decoded = c.decompress(&hop).unwrap();
        assert_eq!(decoded.keys(), acc.keys());
        for (sum, dec) in acc.sums().iter().zip(decoded.values()) {
            assert!(sum.signum() == dec.signum() || *dec == 0.0);
        }
    }

    #[test]
    fn raw_compressor_is_mergeable_via_defaults() {
        let c = RawCompressor::default();
        let dim = 64u64;
        let g = grad(dim, &[(1, 1.0), (2, -2.0)]);
        let p = c.compress(&g).unwrap();
        let mut scratch = CompressScratch::default();
        let mut acc = MergeAcc::new();
        acc.reset(dim);
        c.accumulate(&mut acc, &p.payload, 1.0, &mut scratch)
            .unwrap();
        c.accumulate(&mut acc, &p.payload, 1.0, &mut scratch)
            .unwrap();
        assert_eq!(acc.sums(), &[2.0, -4.0]);
    }
}
