//! Plain-text gradient IO for the command-line tools.
//!
//! Format — one header line, then one `key value` pair per line, ascending:
//!
//! ```text
//! dim 1000000
//! 702 -0.01
//! 735 0.21
//! # comments and blank lines are ignored
//! ```

use crate::error::CompressError;
use crate::gradient::SparseGradient;
use std::io::{BufRead, Write};

/// Reads a gradient from the text format.
///
/// # Errors
/// [`CompressError::InvalidGradient`] with the offending line number.
pub fn read_gradient(reader: impl BufRead) -> Result<SparseGradient, CompressError> {
    let mut dim: Option<u64> = None;
    let mut pairs: Vec<(u64, f64)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| CompressError::InvalidGradient(format!("I/O error: {e}")))?;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut tokens = body.split_whitespace();
        let first = tokens.next().expect("non-empty body");
        if first == "dim" {
            let d = tokens
                .next()
                .ok_or_else(|| {
                    CompressError::InvalidGradient(format!(
                        "line {}: `dim` needs a value",
                        lineno + 1
                    ))
                })?
                .parse()
                .map_err(|e| {
                    CompressError::InvalidGradient(format!("line {}: bad dim: {e}", lineno + 1))
                })?;
            dim = Some(d);
            continue;
        }
        let key: u64 = first.parse().map_err(|e| {
            CompressError::InvalidGradient(format!("line {}: bad key `{first}`: {e}", lineno + 1))
        })?;
        let value: f64 = tokens
            .next()
            .ok_or_else(|| {
                CompressError::InvalidGradient(format!(
                    "line {}: missing value for key {key}",
                    lineno + 1
                ))
            })?
            .parse()
            .map_err(|e| {
                CompressError::InvalidGradient(format!("line {}: bad value: {e}", lineno + 1))
            })?;
        pairs.push((key, value));
    }
    let dim =
        dim.ok_or_else(|| CompressError::InvalidGradient("missing `dim <D>` header line".into()))?;
    pairs.sort_unstable_by_key(|&(k, _)| k);
    SparseGradient::new(
        dim,
        pairs.iter().map(|&(k, _)| k).collect(),
        pairs.iter().map(|&(_, v)| v).collect(),
    )
}

/// Writes a gradient in the text format.
///
/// # Errors
/// [`CompressError::InvalidGradient`] wrapping I/O failures.
pub fn write_gradient(grad: &SparseGradient, mut writer: impl Write) -> Result<(), CompressError> {
    let io_err = |e: std::io::Error| CompressError::InvalidGradient(format!("I/O error: {e}"));
    writeln!(writer, "dim {}", grad.dim()).map_err(io_err)?;
    for (k, v) in grad.iter() {
        writeln!(writer, "{k} {v}").map_err(io_err)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let g = SparseGradient::new(1000, vec![7, 42, 999], vec![0.5, -1.25, 3.0]).unwrap();
        let mut buf = Vec::new();
        write_gradient(&g, &mut buf).unwrap();
        let back = read_gradient(Cursor::new(buf)).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn parses_comments_and_unsorted_pairs() {
        let text = "# header comment\ndim 100\n50 1.5 # inline\n\n10 -2.0\n";
        let g = read_gradient(Cursor::new(text)).unwrap();
        assert_eq!(g.keys(), &[10, 50]);
        assert_eq!(g.values(), &[-2.0, 1.5]);
    }

    #[test]
    fn rejects_malformed() {
        assert!(read_gradient(Cursor::new("10 1.0")).is_err(), "missing dim");
        assert!(read_gradient(Cursor::new("dim\n")).is_err());
        assert!(read_gradient(Cursor::new("dim x\n")).is_err());
        assert!(read_gradient(Cursor::new("dim 10\nabc 1.0")).is_err());
        assert!(read_gradient(Cursor::new("dim 10\n5")).is_err());
        assert!(read_gradient(Cursor::new("dim 10\n5 zz")).is_err());
        assert!(
            read_gradient(Cursor::new("dim 10\n50 1.0")).is_err(),
            "key > dim"
        );
        assert!(
            read_gradient(Cursor::new("dim 10\n5 1.0\n5 2.0")).is_err(),
            "dup key"
        );
    }
}
