//! The compressor abstraction every method in the paper's evaluation
//! implements: Adam (raw), Adam+Key, Adam+Key+Quan, full SketchML, ZipML and
//! threshold truncation (Figures 8–11, Tables 2 & 4).

use crate::error::CompressError;
use crate::gradient::SparseGradient;
use crate::scratch::CompressScratch;
use bytes::{Bytes, BytesMut};
use sketchml_encoding::stats::SizeReport;

/// A compressed gradient message plus its size accounting.
#[derive(Debug, Clone)]
pub struct CompressedGradient {
    /// Self-describing wire bytes.
    pub payload: Bytes,
    /// Byte breakdown used by the Figure 8(b)/(d) experiments.
    pub report: SizeReport,
}

impl CompressedGradient {
    /// Total wire size in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

/// A gradient compression method.
///
/// `decompress(compress(g))` must return a gradient over the same dimension;
/// lossy methods may perturb values (and truncation may drop pairs), but —
/// per §3.4 — any key that survives must be decoded *exactly*.
pub trait GradientCompressor: Send + Sync {
    /// Short name used in experiment tables (e.g. `"SketchML"`, `"ZipML"`).
    fn name(&self) -> &'static str;

    /// Encodes a gradient into a self-describing message.
    ///
    /// # Errors
    /// Implementations reject structurally invalid gradients and
    /// out-of-range configurations with [`CompressError`].
    fn compress(&self, grad: &SparseGradient) -> Result<CompressedGradient, CompressError>;

    /// Decodes a message produced by this compressor's `compress`.
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] (never panics) on truncated or
    /// malformed payloads.
    fn decompress(&self, payload: &[u8]) -> Result<SparseGradient, CompressError>;

    /// Encodes a gradient into `out` (cleared first), reusing `scratch`'s
    /// pooled buffers across calls. The payload written to `out` is
    /// **byte-identical** to [`Self::compress`]'s; the returned report is the
    /// same size accounting.
    ///
    /// The default implementation delegates to the allocating `compress`;
    /// compressors with a fused hot path (SketchML, ZipML, quantification,
    /// the sharded engine) override it to run allocation-free in steady
    /// state.
    ///
    /// # Errors
    /// Same contract as [`Self::compress`]. On error `out`'s contents are
    /// unspecified.
    fn compress_into(
        &self,
        grad: &SparseGradient,
        scratch: &mut CompressScratch,
        out: &mut BytesMut,
    ) -> Result<SizeReport, CompressError> {
        let _ = scratch;
        let msg = self.compress(grad)?;
        out.clear();
        out.extend_from_slice(&msg.payload);
        Ok(msg.report)
    }

    /// Decodes a message into `out` (overwritten), reusing `scratch`'s
    /// pooled buffers across calls. Produces exactly [`Self::decompress`]'s
    /// gradient.
    ///
    /// # Errors
    /// Same contract as [`Self::decompress`]. On error `out`'s contents are
    /// unspecified.
    fn decompress_into(
        &self,
        payload: &[u8],
        scratch: &mut CompressScratch,
        out: &mut SparseGradient,
    ) -> Result<(), CompressError> {
        let _ = scratch;
        *out = self.decompress(payload)?;
        Ok(())
    }
}

impl<T: GradientCompressor + ?Sized> GradientCompressor for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn compress(&self, grad: &SparseGradient) -> Result<CompressedGradient, CompressError> {
        (**self).compress(grad)
    }
    fn decompress(&self, payload: &[u8]) -> Result<SparseGradient, CompressError> {
        (**self).decompress(payload)
    }
    fn compress_into(
        &self,
        grad: &SparseGradient,
        scratch: &mut CompressScratch,
        out: &mut BytesMut,
    ) -> Result<SizeReport, CompressError> {
        (**self).compress_into(grad, scratch, out)
    }
    fn decompress_into(
        &self,
        payload: &[u8],
        scratch: &mut CompressScratch,
        out: &mut SparseGradient,
    ) -> Result<(), CompressError> {
        (**self).decompress_into(payload, scratch, out)
    }
}

impl<T: GradientCompressor + ?Sized> GradientCompressor for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn compress(&self, grad: &SparseGradient) -> Result<CompressedGradient, CompressError> {
        (**self).compress(grad)
    }
    fn decompress(&self, payload: &[u8]) -> Result<SparseGradient, CompressError> {
        (**self).decompress(payload)
    }
    fn compress_into(
        &self,
        grad: &SparseGradient,
        scratch: &mut CompressScratch,
        out: &mut BytesMut,
    ) -> Result<SizeReport, CompressError> {
        (**self).compress_into(grad, scratch, out)
    }
    fn decompress_into(
        &self,
        payload: &[u8],
        scratch: &mut CompressScratch,
        out: &mut SparseGradient,
    ) -> Result<(), CompressError> {
        (**self).decompress_into(payload, scratch, out)
    }
}

/// Round-trips a gradient and reports the element-wise value error — the
/// harness used by the Appendix A.1 validation and several tests.
///
/// # Errors
/// Propagates compressor failures.
pub fn roundtrip_error(
    compressor: &dyn GradientCompressor,
    grad: &SparseGradient,
) -> Result<RoundtripStats, CompressError> {
    let msg = compressor.compress(grad)?;
    let decoded = compressor.decompress(&msg.payload)?;
    let orig = grad.to_dense();
    let got = decoded.to_dense();
    let mut sq_err = 0.0;
    let mut max_err: f64 = 0.0;
    let mut sign_flips = 0usize;
    for (o, g) in orig.iter().zip(&got) {
        let e = o - g;
        sq_err += e * e;
        max_err = max_err.max(e.abs());
        if *o != 0.0 && *g != 0.0 && o.signum() != g.signum() {
            sign_flips += 1;
        }
    }
    Ok(RoundtripStats {
        compressed_bytes: msg.len(),
        report: msg.report,
        squared_error: sq_err,
        max_abs_error: max_err,
        sign_flips,
        pairs_in: grad.nnz(),
        pairs_out: decoded.nnz(),
    })
}

/// Output of [`roundtrip_error`].
#[derive(Debug, Clone, Copy)]
pub struct RoundtripStats {
    /// Wire size of the compressed message.
    pub compressed_bytes: usize,
    /// Byte breakdown.
    pub report: SizeReport,
    /// `‖g − ĝ‖²` — the Appendix A.1 variance quantity.
    pub squared_error: f64,
    /// Largest absolute per-element error.
    pub max_abs_error: f64,
    /// Count of decoded values whose sign flipped (must be 0 for SketchML
    /// after the §3.3 Solution 1 fix).
    pub sign_flips: usize,
    /// Input pair count.
    pub pairs_in: usize,
    /// Output pair count (smaller only for truncation).
    pub pairs_out: usize,
}
