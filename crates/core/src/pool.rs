//! Persistent worker pool for the sharded engine.
//!
//! The sharded scratch path promises **zero heap allocations per op** once
//! warm, but `crossbeam::thread::scope` spawns fresh OS threads (stacks,
//! handles, scope bookkeeping) on every call — both a per-op allocation and
//! tens of microseconds of spawn latency. This module keeps a small set of
//! detached worker threads alive for the life of the process and dispatches
//! work to them through a mutex/condvar handshake that touches no heap:
//! publishing a job writes an erased closure pointer into a pre-existing
//! slot, and workers claim item indexes one at a time under the lock.
//!
//! The caller always participates (a run with `threads == 1` never touches
//! the pool), item order of *completion* is irrelevant to callers — results
//! land in per-item slots — so payload bytes remain independent of the
//! thread count, and a run blocks until every item has finished, which is
//! what makes the borrowed-closure erasure sound.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};

/// Hard cap on persistent workers, over and above the participating caller.
/// Shard counts beyond this still complete; excess shards just queue.
const MAX_WORKERS: usize = 31;

/// Type-erased borrowed job: `&dyn Fn(usize)` with the lifetime transmuted
/// away. Sound because [`run`] never returns (or unwinds) before every item
/// has finished executing, so the pointee outlives every use.
#[derive(Clone, Copy)]
struct JobRef(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` and `run` keeps it alive for the whole
// dispatch, so sharing the pointer with worker threads is safe.
unsafe impl Send for JobRef {}

impl JobRef {
    /// # Safety
    /// Caller must guarantee the original closure is still alive.
    unsafe fn call(&self, i: usize) {
        (*self.0)(i)
    }
}

#[derive(Default)]
struct State {
    /// Current job, `None` between runs. At most one run is active at a
    /// time: `run` is re-entrancy-guarded and callers are single-threaded
    /// per scratch.
    job: Option<JobRef>,
    /// Bumped once per run so sleeping workers can tell a new job from a
    /// spurious wakeup and enroll against `helpers_budget` exactly once.
    epoch: u64,
    next_item: usize,
    n_items: usize,
    done: usize,
    /// How many pool workers may still enroll in the current epoch — this is
    /// what makes `with_threads(n)` an upper bound on concurrency.
    helpers_budget: usize,
    /// Set when any item's closure panicked; re-raised by the caller.
    panicked: bool,
    /// Workers spawned so far (monotone, capped at [`MAX_WORKERS`]).
    spawned: usize,
}

struct Pool {
    state: Mutex<State>,
    /// Serializes concurrent callers: the pool holds exactly one job at a
    /// time, so a second caller thread queues here until the first drains.
    run_lock: Mutex<()>,
    /// Signals workers that a new job (or more items) is available.
    work_cv: Condvar,
    /// Signals the caller that the last outstanding item finished.
    done_cv: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// True on pool worker threads and inside an active `run` on the caller
    /// thread; nested runs (e.g. a sharded compressor wrapping another
    /// sharded compressor) fall back to serial execution instead of
    /// corrupting the single-job state.
    static BUSY: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        state: Mutex::new(State::default()),
        run_lock: Mutex::new(()),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
    })
}

fn worker_loop(pool: &'static Pool) {
    BUSY.with(|b| b.set(true));
    let mut last_epoch = 0u64;
    let mut enrolled = false;
    let mut st = pool.state.lock().expect("pool mutex");
    loop {
        if let Some(job) = st.job {
            if st.next_item < st.n_items {
                if st.epoch != last_epoch {
                    last_epoch = st.epoch;
                    enrolled = st.helpers_budget > 0;
                    if enrolled {
                        st.helpers_budget -= 1;
                    }
                }
                if enrolled {
                    let i = st.next_item;
                    st.next_item += 1;
                    drop(st);
                    // SAFETY: the publishing `run` blocks until `done`
                    // reaches `n_items`, so the closure outlives this call.
                    let r = catch_unwind(AssertUnwindSafe(|| unsafe { job.call(i) }));
                    st = pool.state.lock().expect("pool mutex");
                    st.done += 1;
                    if r.is_err() {
                        st.panicked = true;
                    }
                    if st.done == st.n_items {
                        pool.done_cv.notify_all();
                    }
                    continue;
                }
            }
        }
        st = pool.work_cv.wait(st).expect("pool mutex");
    }
}

/// Runs `job(i)` for every `i in 0..n`, using the calling thread plus up to
/// `threads - 1` persistent pool workers. Blocks until all items complete;
/// panics from any item are re-raised here. Item *completion* order is
/// unspecified — callers must write results into per-item slots.
pub(crate) fn run(n: usize, threads: usize, job: &(dyn Fn(usize) + Sync)) {
    let helpers = threads.clamp(1, n.max(1)) - 1;
    if n <= 1 || helpers == 0 || BUSY.with(|b| b.get()) {
        for i in 0..n {
            job(i);
        }
        return;
    }
    let pool = pool();
    // A panicked run re-raises while still holding this guard's stack slot,
    // so tolerate poison — the protected state is the job slot, which a
    // panicked run always clears before unwinding.
    let run_guard = pool
        .run_lock
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // SAFETY: erasing the closure's lifetime; `run` does not return or
    // unwind until every dispatched item has finished, so no worker ever
    // dereferences the pointer after the closure is gone.
    let jr = JobRef(unsafe {
        std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync + 'static)>(
            job,
        )
    });
    let mut st = pool.state.lock().expect("pool mutex");
    debug_assert!(st.job.is_none(), "pool::run re-entered");
    // Lazily grow the worker set toward the requested concurrency.
    let target = helpers.min(MAX_WORKERS);
    while st.spawned < target {
        st.spawned += 1;
        std::thread::Builder::new()
            .name("sketchml-shard".into())
            .spawn(move || worker_loop(pool))
            .expect("spawn shard worker");
    }
    st.epoch = st.epoch.wrapping_add(1);
    st.n_items = n;
    st.next_item = 0;
    st.done = 0;
    st.helpers_budget = helpers;
    st.panicked = false;
    st.job = Some(jr);
    pool.work_cv.notify_all();

    BUSY.with(|b| b.set(true));
    let mut caller_panic = None;
    loop {
        if st.next_item < st.n_items {
            let i = st.next_item;
            st.next_item += 1;
            drop(st);
            let r = catch_unwind(AssertUnwindSafe(|| job(i)));
            st = pool.state.lock().expect("pool mutex");
            st.done += 1;
            if let Err(p) = r {
                caller_panic = Some(p);
                st.panicked = true;
            }
        } else if st.done == st.n_items {
            break;
        } else {
            st = pool.done_cv.wait(st).expect("pool mutex");
        }
    }
    st.job = None;
    let worker_panicked = st.panicked;
    drop(st);
    drop(run_guard);
    BUSY.with(|b| b.set(false));
    if let Some(p) = caller_panic {
        resume_unwind(p);
    }
    if worker_panicked {
        panic!("sharded pool worker panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_item_exactly_once() {
        for threads in [1usize, 2, 4, 9] {
            for n in [0usize, 1, 2, 7, 64] {
                let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                run(n, threads, &|i| {
                    hits[i].fetch_add(1, Ordering::SeqCst);
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                    "threads={threads} n={n}"
                );
            }
        }
    }

    #[test]
    fn nested_runs_fall_back_to_serial() {
        let total = AtomicUsize::new(0);
        run(4, 4, &|_| {
            run(3, 4, &|_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), 12);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            run(8, 4, &|i| {
                if i == 5 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err());
        // Pool is reusable after a panicked run.
        let total = AtomicUsize::new(0);
        run(8, 4, &|_| {
            total.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(total.load(Ordering::SeqCst), 8);
    }
}
