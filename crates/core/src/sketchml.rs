//! The full SketchML compressor (paper §3, Figure 2).
//!
//! Encode phase, exactly as §3.1 lists it — with the §3.3 refinements:
//!
//! 1. Values are split by sign and each side is summarized by its own
//!    quantile sketch (§3.3 Solution 1: "Separation of Positive/Negative
//!    Gradients"), producing equi-depth buckets whose splits never straddle
//!    zero.
//! 2. Bucket indexes are *normalized by magnitude*: index 0 is the bucket
//!    closest to zero on either side. The MinMaxSketch's insert-min rule
//!    then decays gradient **magnitude**, which implements "choose the
//!    bucket index closest to the minimum bucket" and eliminates both
//!    reversed-gradient cases of Figure 6.
//! 3. Indexes are inserted into a **grouped** MinMaxSketch (§3.3 Solution 2,
//!    `r` groups) keyed by the gradient keys.
//! 4. Keys are partitioned into `(sign, group)` sections and each section is
//!    delta-binary encoded (§3.4; Appendix A.3's `d/r` keys-per-group and
//!    `rD/d` expected-gap analysis describes precisely this sectioning). The
//!    section a key sits in tells the decoder which group's sketch to query.
//!
//! Decode phase (§3.1): restore keys per section, query the section's
//! MinMaxSketch for the (underestimated) bucket index, and map it to the
//! bucket mean.

use crate::compressor::{CompressedGradient, GradientCompressor};
use crate::error::CompressError;
use crate::gradient::SparseGradient;
use crate::quantify::{quantize_into, quantize_with, QuantileBackend};
use crate::scratch::CompressScratch;
use bytes::{Buf, BufMut, BytesMut};
use serde::{Deserialize, Serialize};
use sketchml_encoding::stats::SizeReport;
use sketchml_encoding::{bitpack, delta_binary, varint};
use sketchml_sketches::hash::push_row_seeds;
use sketchml_sketches::minmax::{
    group_seed, insert_batch_raw, query_batch_raw, GroupedMinMaxSketch, MinMaxSketch, EMPTY_CELL,
};
use sketchml_telemetry as telemetry;

/// Branchless stable sign partition (§3.3 Solution 1). Gradient signs are
/// ~50/50 and uncorrelated, so the obvious `if v < 0.0` loop mispredicts on
/// every other pair; instead each pair is written to *both* sides' spare
/// capacity and only the matching cursor advances (a predicated add the
/// compiler keeps branch-free). Output order and the NaN/-0.0 placement are
/// exactly those of the branchy loop: anything not `< 0.0` goes positive.
fn partition_signs(
    keys: &[u64],
    values: &[f64],
    pos_keys: &mut Vec<u64>,
    pos_vals: &mut Vec<f64>,
    neg_keys: &mut Vec<u64>,
    neg_vals: &mut Vec<f64>,
) {
    let n = keys.len();
    debug_assert_eq!(values.len(), n);
    pos_keys.clear();
    pos_vals.clear();
    neg_keys.clear();
    neg_vals.clear();
    pos_keys.reserve(n);
    pos_vals.reserve(n);
    neg_keys.reserve(n);
    neg_vals.reserve(n);
    let (mut p, mut m) = (0usize, 0usize);
    // SAFETY: both sides reserved `n` slots and `p + m == i <= n` at every
    // step, so all writes land in spare capacity (the AVX2 block stores 4
    // slots at cursor `p <= i <= n - 4`, still within the reserved `n`);
    // `set_len` only exposes slots that were written (every slot below the
    // final cursor was the "matching" write of some iteration). u64/f64 are
    // Copy with no drop.
    unsafe {
        let pk = pos_keys.as_mut_ptr();
        let pv = pos_vals.as_mut_ptr();
        let nk = neg_keys.as_mut_ptr();
        let nv = neg_vals.as_mut_ptr();
        let mut i = 0usize;
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if sketchml_sketches::simd::lanes_active() {
            (p, m, i) = partition_avx2(keys, values, pk, pv, nk, nv);
        }
        while i < n {
            let k = *keys.get_unchecked(i);
            let v = *values.get_unchecked(i);
            let is_neg = (v < 0.0) as usize;
            *pk.add(p) = k;
            *pv.add(p) = v;
            *nk.add(m) = k;
            *nv.add(m) = v;
            p += 1 - is_neg;
            m += is_neg;
            i += 1;
        }
        pos_keys.set_len(p);
        pos_vals.set_len(p);
        neg_keys.set_len(m);
        neg_vals.set_len(m);
    }
    #[cfg(debug_assertions)]
    {
        let mut ep = 0usize;
        let mut em = 0usize;
        for (&k, &v) in keys.iter().zip(values) {
            if v < 0.0 {
                assert!(neg_keys[em] == k && neg_vals[em].to_bits() == v.to_bits());
                em += 1;
            } else {
                assert!(pos_keys[ep] == k && pos_vals[ep].to_bits() == v.to_bits());
                ep += 1;
            }
        }
        assert!(ep == pos_keys.len() && em == neg_keys.len());
    }
}

/// AVX2 body of [`partition_signs`]: four pairs per iteration. The sign
/// mask (`v < 0.0`, so NaN and -0.0 land positive exactly like the scalar
/// compare) indexes two compaction LUTs of `vpermd` lane patterns — one
/// packing the positive pairs front-first, one the negatives — and each
/// side gets one full-vector store at its cursor, of which only the packed
/// prefix is later exposed. Returns `(p, m, i)` cursors for the scalar tail.
///
/// # Safety
/// Caller must have verified AVX2 support, reserved `keys.len()` slots
/// behind each output pointer, and `values.len() == keys.len()`.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn partition_avx2(
    keys: &[u64],
    values: &[f64],
    pk: *mut u64,
    pv: *mut f64,
    nk: *mut u64,
    nv: *mut f64,
) -> (usize, usize, usize) {
    use core::arch::x86_64::*;
    // `PACK[m][side]` = epi32 lane indices moving the u64 lanes whose mask
    // bit is clear (side 0) / set (side 1) to the front, in order.
    const PACK: [[[u32; 8]; 2]; 16] = {
        let mut luts = [[[0u32; 8]; 2]; 16];
        let mut msk = 0usize;
        while msk < 16 {
            let mut cur = [0usize; 2];
            let mut lane = 0u32;
            while lane < 4 {
                let side = (msk >> lane) & 1;
                luts[msk][side][2 * cur[side]] = 2 * lane;
                luts[msk][side][2 * cur[side] + 1] = 2 * lane + 1;
                cur[side] += 1;
                lane += 1;
            }
            msk += 1;
        }
        luts
    };
    let n = keys.len();
    let zero = _mm256_setzero_pd();
    let (mut p, mut m) = (0usize, 0usize);
    let mut i = 0usize;
    while i + 4 <= n {
        let kv = _mm256_loadu_si256(keys.as_ptr().add(i).cast());
        let vv = _mm256_loadu_pd(values.as_ptr().add(i));
        let msk = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LT_OQ>(vv, zero)) as usize;
        let pos_idx = _mm256_loadu_si256(PACK[msk][0].as_ptr().cast());
        let neg_idx = _mm256_loadu_si256(PACK[msk][1].as_ptr().cast());
        _mm256_storeu_si256(pk.add(p).cast(), _mm256_permutevar8x32_epi32(kv, pos_idx));
        _mm256_storeu_pd(
            pv.add(p),
            _mm256_castps_pd(_mm256_permutevar8x32_ps(_mm256_castpd_ps(vv), pos_idx)),
        );
        _mm256_storeu_si256(nk.add(m).cast(), _mm256_permutevar8x32_epi32(kv, neg_idx));
        _mm256_storeu_pd(
            nv.add(m),
            _mm256_castps_pd(_mm256_permutevar8x32_ps(_mm256_castpd_ps(vv), neg_idx)),
        );
        let neg = msk.count_ones() as usize;
        p += 4 - neg;
        m += neg;
        i += 4;
    }
    (p, m, i)
}

/// Precision of the bucket-means table on the wire (§3.5 charges `8q`
/// bytes for f64 means; f32 halves that at ~1e-7 relative value error —
/// the §B.4 "weight types" trade applied to SketchML's own metadata).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MeanPrecision {
    /// 8-byte means (the paper's accounting; default).
    #[default]
    F64,
    /// 4-byte means.
    F32,
}

/// Hyper-parameters of the SketchML pipeline (defaults follow §4.1/§B.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SketchMlConfig {
    /// Quantile sketch size `m` (default 128 — §4.1 "The size of quantile
    /// sketch is 128 by default").
    pub quantile_sketch_capacity: usize,
    /// Buckets per sign; both sides together give the paper's `q = 256`
    /// ("we find that q = 256 is often enough", §3.2).
    pub buckets_per_sign: u16,
    /// MinMaxSketch rows `s` (default 2 — §4.1 sizes the sketch `2 × d/5`;
    /// §B.2 shows rows = 4 converges *slower* due to extra bytes).
    pub rows: usize,
    /// Total MinMaxSketch columns as a fraction of `d` (default 1/5 — the
    /// §4.1 "column of MinMaxSketch (default d/5)").
    pub col_ratio: f64,
    /// Lower bound on columns per group so tiny gradients stay decodable.
    pub min_cols_per_group: usize,
    /// Bucket groups `r` **per sign**. The default of 4 gives 8 key
    /// sections overall (4 groups × 2 signs), matching the paper's `r = 8`
    /// on `q = 256` total buckets exactly: the decoded-index error bound is
    /// `q_sign / groups = 128 / 4 = 32 = q / r`, and the Appendix A.3 key
    /// sectioning has the same `d / 8` keys (gap `8D/d`) per section.
    pub groups: usize,
    /// Quantile sketch backend for split computation (§3.2 Step 1).
    pub quantile_backend: QuantileBackend,
    /// Wire precision of the bucket means.
    pub mean_precision: MeanPrecision,
    /// Divisor of the adaptive bucket cap `q_eff <= max(8, d_side /
    /// bucket_cap_divisor)` (default 32 — keeps the `8q` means table at the
    /// same relative overhead as the paper's full-scale gradients).
    pub bucket_cap_divisor: usize,
    /// Hash seed; recorded in the message so decoding is self-contained.
    pub seed: u64,
}

impl Default for SketchMlConfig {
    fn default() -> Self {
        SketchMlConfig {
            quantile_sketch_capacity: 128,
            buckets_per_sign: 128,
            rows: 2,
            col_ratio: 0.2,
            min_cols_per_group: 4,
            groups: 4,
            quantile_backend: QuantileBackend::Merging,
            mean_precision: MeanPrecision::F64,
            bucket_cap_divisor: 32,
            seed: 0x5EED_0001,
        }
    }
}

impl SketchMlConfig {
    /// Validates parameter ranges.
    ///
    /// # Errors
    /// [`CompressError::InvalidConfig`] with the offending parameter.
    pub fn validate(&self) -> Result<(), CompressError> {
        if self.quantile_sketch_capacity < 2 {
            return Err(CompressError::InvalidConfig(
                "quantile_sketch_capacity must be >= 2".into(),
            ));
        }
        if self.buckets_per_sign == 0 || self.buckets_per_sign == EMPTY_CELL {
            return Err(CompressError::InvalidConfig(format!(
                "buckets_per_sign must be in 1..{EMPTY_CELL}"
            )));
        }
        if self.rows == 0 {
            return Err(CompressError::InvalidConfig("rows must be positive".into()));
        }
        if self.col_ratio <= 0.0 || !self.col_ratio.is_finite() {
            return Err(CompressError::InvalidConfig(
                "col_ratio must be positive".into(),
            ));
        }
        if self.min_cols_per_group == 0 {
            return Err(CompressError::InvalidConfig(
                "min_cols_per_group must be positive".into(),
            ));
        }
        if self.groups == 0 {
            return Err(CompressError::InvalidConfig(
                "groups must be positive".into(),
            ));
        }
        if self.bucket_cap_divisor == 0 {
            return Err(CompressError::InvalidConfig(
                "bucket_cap_divisor must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// The full SketchML pipeline: quantile-bucket quantification +
/// grouped/sign-separated MinMaxSketch + sectioned delta-binary keys.
#[derive(Debug, Clone, Default)]
pub struct SketchMlCompressor {
    /// Pipeline hyper-parameters.
    pub config: SketchMlConfig,
}

impl SketchMlCompressor {
    /// Creates a compressor after validating `config`.
    ///
    /// # Errors
    /// See [`SketchMlConfig::validate`].
    pub fn new(config: SketchMlConfig) -> Result<Self, CompressError> {
        config.validate()?;
        Ok(SketchMlCompressor { config })
    }
}

const MAGIC: u8 = 0xA7;
const VERSION: u8 = 1;
/// Salt separating the negative side's hash seed from the positive side's.
const NEG_SALT: u64 = 0x4E45_4741_5449_5645; // "NEGATIVE"

/// Message-level pipeline counters (input vs. payload bytes; a sparse pair
/// costs 12 raw bytes, matching [`SizeReport`]'s accounting).
fn record_encode(pairs: usize, payload_bytes: usize) {
    if telemetry::enabled() {
        telemetry::inc(telemetry::Counter::PipelineEncodes);
        telemetry::add(telemetry::Counter::PipelineInputPairs, pairs as u64);
        telemetry::add(telemetry::Counter::PipelineInputBytes, 12 * pairs as u64);
        telemetry::add(
            telemetry::Counter::PipelinePayloadBytes,
            payload_bytes as u64,
        );
    }
}

/// One sign's worth of pairs, quantized and normalized.
struct Side {
    /// `(key, normalized_index)` in ascending key order.
    pairs: Vec<(u64, u16)>,
    /// Bucket means in normalized order (index 0 closest to zero).
    means: Vec<f64>,
}

impl SketchMlCompressor {
    /// Quantizes one side's values and normalizes indexes by magnitude.
    fn build_side(
        &self,
        keys: &[u64],
        values: &[f64],
        negative: bool,
    ) -> Result<Side, CompressError> {
        let quant = quantize_with(
            values,
            self.config.buckets_per_sign,
            self.config.quantile_sketch_capacity,
            self.config.bucket_cap_divisor,
            self.config.quantile_backend,
        )?;
        let q = quant.q();
        let normalize = |idx: u16| if negative { q - 1 - idx } else { idx };
        let pairs: Vec<(u64, u16)> = keys
            .iter()
            .zip(&quant.indexes)
            .map(|(&k, &b)| (k, normalize(b)))
            .collect();
        let means: Vec<f64> = if negative {
            quant.means.iter().rev().copied().collect()
        } else {
            quant.means
        };
        Ok(Side { pairs, means })
    }

    /// Serializes one side into `buf`, returning `(key_bytes, value_bytes)`.
    fn encode_side(
        &self,
        side: Option<&Side>,
        side_seed: u64,
        buf: &mut BytesMut,
    ) -> Result<(usize, usize), CompressError> {
        let Some(side) = side else {
            varint::write_u64(buf, 0);
            return Ok((0, 0));
        };
        let n = side.pairs.len();
        varint::write_u64(buf, n as u64);
        if n == 0 {
            return Ok((0, 0));
        }
        let q = side.means.len() as u16;
        let r_eff = self.config.groups.min(q as usize);
        let total_cols = ((n as f64 * self.config.col_ratio) / r_eff as f64).ceil() as usize;
        let cols = total_cols.max(self.config.min_cols_per_group);

        let mut sketch = GroupedMinMaxSketch::new(q, r_eff, self.config.rows, cols, side_seed)?;
        let mut group_keys: Vec<Vec<u64>> = vec![Vec::new(); r_eff];
        {
            let _t = telemetry::time(telemetry::Stage::SketchEncode);
            for &(k, idx) in &side.pairs {
                let g = sketch.insert(k, idx);
                group_keys[g].push(k);
            }
        }
        if telemetry::enabled() {
            for (g, keys) in group_keys.iter().enumerate() {
                if keys.is_empty() {
                    continue;
                }
                let table = sketch.group(g).expect("group in range");
                let occupied = table.cells().iter().filter(|&&c| c != EMPTY_CELL).count() as u64;
                let inserts = (keys.len() * self.config.rows) as u64;
                telemetry::add(telemetry::Counter::SketchInserts, inserts);
                telemetry::add(telemetry::Counter::SketchCells, table.cells().len() as u64);
                telemetry::add(telemetry::Counter::SketchCellsOccupied, occupied);
                telemetry::add(
                    telemetry::Counter::SketchCollisions,
                    inserts.saturating_sub(occupied),
                );
            }
            // Bucket-index error (Appendix A.2's underestimation): re-query
            // every inserted key against its own group.
            for &(k, idx) in &side.pairs {
                let decoded = sketch.query(sketch.group_of(idx), k).unwrap_or(idx);
                telemetry::observe(
                    telemetry::Hist::BucketIndexError,
                    (idx as i64 - decoded as i64).unsigned_abs(),
                );
            }
        }

        let mut value_bytes = 0usize;
        varint::write_u64(buf, q as u64);
        match self.config.mean_precision {
            MeanPrecision::F64 => {
                buf.put_u8(8);
                for &m in &side.means {
                    buf.put_f64_le(m);
                }
                value_bytes += 8 * side.means.len();
            }
            MeanPrecision::F32 => {
                buf.put_u8(4);
                for &m in &side.means {
                    buf.put_f32_le(m as f32);
                }
                value_bytes += 4 * side.means.len();
            }
        }
        varint::write_u64(buf, r_eff as u64);
        varint::write_u64(buf, cols as u64);
        let bits = bitpack::bits_for(q.saturating_sub(1));
        buf.put_u8(bits as u8);

        let mut key_bytes = 0usize;
        for (g, keys) in group_keys.iter().enumerate() {
            varint::write_u64(buf, keys.len() as u64);
            if keys.is_empty() {
                continue;
            }
            {
                let _t = telemetry::time(telemetry::Stage::KeyEncode);
                key_bytes += delta_binary::encode_keys(keys, buf)?;
            }
            let _t = telemetry::time(telemetry::Stage::SketchEncode);
            let table = sketch.group(g).expect("group in range");
            // EMPTY cells are never consulted for keys of this section
            // (their own insert wrote all their cells), so they can ship
            // as 0 to stay within `bits`.
            let cells: Vec<u16> = table
                .cells()
                .iter()
                .map(|&c| if c == EMPTY_CELL { 0 } else { c })
                .collect();
            value_bytes += bitpack::pack_u16(&cells, bits, buf)?;
        }
        Ok((key_bytes, value_bytes))
    }

    /// Fused, allocation-free counterpart of [`Self::build_side`] +
    /// [`Self::encode_side`]: quantizes through the pooled
    /// [`crate::quantify::QuantScratch`] (bucket-table index lookup instead
    /// of per-value binary search), normalizes indexes in place, sections
    /// keys per group with a stable counting sort, min-inserts each section
    /// into a flat pooled cell table, and streams keys/cells straight into
    /// `out`. Byte-identical output to the allocating path.
    fn encode_side_into(
        &self,
        keys: &[u64],
        values: &[f64],
        negative: bool,
        side_seed: u64,
        scratch: &mut CompressScratch,
        out: &mut BytesMut,
    ) -> Result<(usize, usize), CompressError> {
        let n = keys.len();
        varint::write_u64(out, n as u64);
        if n == 0 {
            return Ok((0, 0));
        }
        quantize_into(
            values,
            self.config.buckets_per_sign,
            self.config.quantile_sketch_capacity,
            self.config.bucket_cap_divisor,
            self.config.quantile_backend,
            &mut scratch.quant,
        )?;
        let q = scratch.quant.means.len() as u16;
        if negative {
            // Normalize by magnitude: index 0 becomes the bucket closest to
            // zero, mirroring `build_side`'s `q - 1 - idx`.
            for idx in &mut scratch.quant.indexes {
                *idx = q - 1 - *idx;
            }
        }
        let r_eff = self.config.groups.min(q as usize);
        let total_cols = ((n as f64 * self.config.col_ratio) / r_eff as f64).ceil() as usize;
        let cols = total_cols.max(self.config.min_cols_per_group);
        let group_width = (q as usize).div_ceil(r_eff) as u16;
        let rows = self.config.rows;

        // Stable counting sort of (key, index) pairs into per-group
        // sections, so each section keeps ascending key order — the same
        // order `encode_side` accumulates into its per-group Vecs. The
        // bucket→group map is a q-entry LUT so the two hot passes avoid a
        // per-element integer division.
        {
            scratch.group_lut.clear();
            for idx in 0..q {
                scratch.group_lut.push(idx / group_width);
            }
            let group_lut = &scratch.group_lut[..q as usize];
            scratch.counts.clear();
            scratch.counts.resize(r_eff, 0);
            for &idx in &scratch.quant.indexes {
                scratch.counts[group_lut[idx as usize] as usize] += 1;
            }
            scratch.cursor.clear();
            let mut at = 0usize;
            for &c in &scratch.counts {
                scratch.cursor.push(at);
                at += c;
            }
            scratch.sec_keys.clear();
            scratch.sec_keys.resize(n, 0);
            scratch.sec_idx.clear();
            scratch.sec_idx.resize(n, 0);
            let sec_keys = &mut scratch.sec_keys[..n];
            let sec_idx = &mut scratch.sec_idx[..n];
            let cursor = &mut scratch.cursor[..r_eff];
            for (&k, &idx) in keys.iter().zip(&scratch.quant.indexes) {
                let g = group_lut[idx as usize] as usize;
                let p = cursor[g];
                // SAFETY: `p` is group `g`'s cursor, which the counting
                // pass bounds by the group's section end `<= n`.
                unsafe {
                    *sec_keys.get_unchecked_mut(p) = k;
                    *sec_idx.get_unchecked_mut(p) = idx;
                }
                cursor[g] = p + 1;
            }
        }

        // Flat `r_eff × rows × cols` cell table plus per-group row seeds:
        // exactly the tables `GroupedMinMaxSketch` would build (seeds share
        // the derivation in `push_row_seeds`), without constructing it.
        let table = rows * cols;
        scratch.seeds.clear();
        for g in 0..r_eff {
            push_row_seeds(rows, group_seed(side_seed, g), &mut scratch.seeds);
        }
        scratch.cells.clear();
        scratch.cells.resize(r_eff * table, EMPTY_CELL);

        let mut value_bytes = 0usize;
        varint::write_u64(out, q as u64);
        match self.config.mean_precision {
            MeanPrecision::F64 => {
                out.put_u8(8);
                if negative {
                    for &m in scratch.quant.means.iter().rev() {
                        out.put_f64_le(m);
                    }
                } else {
                    for &m in &scratch.quant.means {
                        out.put_f64_le(m);
                    }
                }
                value_bytes += 8 * scratch.quant.means.len();
            }
            MeanPrecision::F32 => {
                out.put_u8(4);
                if negative {
                    for &m in scratch.quant.means.iter().rev() {
                        out.put_f32_le(m as f32);
                    }
                } else {
                    for &m in &scratch.quant.means {
                        out.put_f32_le(m as f32);
                    }
                }
                value_bytes += 4 * scratch.quant.means.len();
            }
        }
        varint::write_u64(out, r_eff as u64);
        varint::write_u64(out, cols as u64);
        let bits = bitpack::bits_for(q.saturating_sub(1));
        out.put_u8(bits as u8);

        let mut key_bytes = 0usize;
        let mut begin = 0usize;
        // Query buffer for the bucket-index-error histogram; only allocated
        // when telemetry is enabled (the zero-alloc contract covers the
        // disabled state).
        let mut probe: Vec<u16> = Vec::new();
        for g in 0..r_eff {
            let end = begin + scratch.counts[g];
            varint::write_u64(out, (end - begin) as u64);
            if begin == end {
                continue;
            }
            let g_keys = &scratch.sec_keys[begin..end];
            let cells = &mut scratch.cells[g * table..(g + 1) * table];
            {
                let _t = telemetry::time(telemetry::Stage::SketchEncode);
                insert_batch_raw(
                    cells,
                    &scratch.seeds[g * rows..(g + 1) * rows],
                    cols,
                    g_keys,
                    &scratch.sec_idx[begin..end],
                );
            }
            if telemetry::enabled() {
                let occupied = cells.iter().filter(|&&c| c != EMPTY_CELL).count() as u64;
                let inserts = (g_keys.len() * rows) as u64;
                telemetry::add(telemetry::Counter::SketchInserts, inserts);
                telemetry::add(telemetry::Counter::SketchCells, table as u64);
                telemetry::add(telemetry::Counter::SketchCellsOccupied, occupied);
                telemetry::add(
                    telemetry::Counter::SketchCollisions,
                    inserts.saturating_sub(occupied),
                );
                // Bucket-index error (Appendix A.2's underestimation):
                // re-query every inserted key before EMPTY cells are zeroed.
                if query_batch_raw(
                    cells,
                    &scratch.seeds[g * rows..(g + 1) * rows],
                    cols,
                    g_keys,
                    &mut probe,
                ) {
                    for (&idx, &decoded) in scratch.sec_idx[begin..end].iter().zip(&probe) {
                        telemetry::observe(
                            telemetry::Hist::BucketIndexError,
                            (idx as i64 - decoded as i64).unsigned_abs(),
                        );
                    }
                }
            }
            key_bytes += {
                let _t = telemetry::time(telemetry::Stage::KeyEncode);
                delta_binary::encode_keys_into(g_keys, out)
            }?;
            value_bytes += {
                let _t = telemetry::time(telemetry::Stage::SketchEncode);
                // EMPTY cells are never consulted for keys of this section
                // (their own insert wrote all their cells), so they can ship
                // as 0 to stay within `bits`.
                for c in cells.iter_mut() {
                    if *c == EMPTY_CELL {
                        *c = 0;
                    }
                }
                bitpack::pack_u16_into(cells, bits, out)
            }?;
            begin = end;
        }
        Ok((key_bytes, value_bytes))
    }

    /// Allocation-free counterpart of [`Self::decode_side`], querying keys
    /// in batch against the pooled cell table.
    fn decode_side_into(
        &self,
        buf: &mut &[u8],
        side_seed: u64,
        rows: usize,
        scratch: &mut CompressScratch,
    ) -> Result<(), CompressError> {
        let n = varint::read_u64(buf)? as usize;
        if n == 0 {
            return Ok(());
        }
        let q = varint::read_u64(buf)? as usize;
        if q == 0 || q >= EMPTY_CELL as usize {
            return Err(CompressError::Corrupt(format!(
                "bucket count {q} out of range"
            )));
        }
        if !buf.has_remaining() {
            return Err(CompressError::Corrupt("missing mean precision".into()));
        }
        let mean_width = buf.get_u8() as usize;
        if mean_width != 4 && mean_width != 8 {
            return Err(CompressError::Corrupt(format!(
                "bad mean precision {mean_width}"
            )));
        }
        if buf.remaining() < q * mean_width {
            return Err(CompressError::Corrupt("truncated bucket means".into()));
        }
        scratch.dec_means.clear();
        scratch.dec_means.reserve(q);
        for _ in 0..q {
            scratch.dec_means.push(if mean_width == 8 {
                buf.get_f64_le()
            } else {
                buf.get_f32_le() as f64
            });
        }
        let r_eff = varint::read_u64(buf)? as usize;
        let cols = varint::read_u64(buf)? as usize;
        if r_eff == 0 || cols == 0 {
            return Err(CompressError::Corrupt("zero sketch shape".into()));
        }
        if !buf.has_remaining() {
            return Err(CompressError::Corrupt("missing bit width".into()));
        }
        let bits = buf.get_u8() as u32;
        if bits == 0 || bits > 16 {
            return Err(CompressError::Corrupt(format!("bad bit width {bits}")));
        }

        let mut decoded = 0usize;
        for g in 0..r_eff {
            let n_g = varint::read_u64(buf)? as usize;
            if n_g == 0 {
                continue;
            }
            delta_binary::decode_keys_into(buf, &mut scratch.dec_keys)?;
            if scratch.dec_keys.len() != n_g {
                return Err(CompressError::Corrupt(format!(
                    "group {g}: declared {n_g} keys, decoded {}",
                    scratch.dec_keys.len()
                )));
            }
            let cells_len = rows.checked_mul(cols).ok_or_else(|| {
                CompressError::Corrupt(format!("sketch shape {rows}x{cols} overflows"))
            })?;
            bitpack::unpack_u16_into(buf, cells_len, bits, &mut scratch.dec_cells)?;
            scratch.seeds.clear();
            push_row_seeds(rows, group_seed(side_seed, g), &mut scratch.seeds);
            if !query_batch_raw(
                &scratch.dec_cells,
                &scratch.seeds,
                cols,
                &scratch.dec_keys,
                &mut scratch.dec_idx,
            ) {
                return Err(CompressError::Corrupt(
                    "sketch cell empty for a section key".into(),
                ));
            }
            for (&k, &idx) in scratch.dec_keys.iter().zip(&scratch.dec_idx) {
                let v = *scratch.dec_means.get(idx as usize).ok_or_else(|| {
                    CompressError::Corrupt(format!("index {idx} out of {q} buckets"))
                })?;
                scratch.pairs.push((k, v));
                decoded += 1;
            }
        }
        if decoded != n {
            return Err(CompressError::Corrupt(format!(
                "side declared {n} pairs, decoded {decoded}"
            )));
        }
        Ok(())
    }

    /// Decodes one side into `(key, value)` pairs.
    fn decode_side(
        &self,
        buf: &mut &[u8],
        side_seed: u64,
        rows: usize,
        out: &mut Vec<(u64, f64)>,
    ) -> Result<(), CompressError> {
        let n = varint::read_u64(buf)? as usize;
        if n == 0 {
            return Ok(());
        }
        let q = varint::read_u64(buf)? as usize;
        if q == 0 || q >= EMPTY_CELL as usize {
            return Err(CompressError::Corrupt(format!(
                "bucket count {q} out of range"
            )));
        }
        if !buf.has_remaining() {
            return Err(CompressError::Corrupt("missing mean precision".into()));
        }
        let mean_width = buf.get_u8() as usize;
        if mean_width != 4 && mean_width != 8 {
            return Err(CompressError::Corrupt(format!(
                "bad mean precision {mean_width}"
            )));
        }
        if buf.remaining() < q * mean_width {
            return Err(CompressError::Corrupt("truncated bucket means".into()));
        }
        let means: Vec<f64> = (0..q)
            .map(|_| {
                if mean_width == 8 {
                    buf.get_f64_le()
                } else {
                    buf.get_f32_le() as f64
                }
            })
            .collect();
        let r_eff = varint::read_u64(buf)? as usize;
        let cols = varint::read_u64(buf)? as usize;
        if r_eff == 0 || cols == 0 {
            return Err(CompressError::Corrupt("zero sketch shape".into()));
        }
        if !buf.has_remaining() {
            return Err(CompressError::Corrupt("missing bit width".into()));
        }
        let bits = buf.get_u8() as u32;
        if bits == 0 || bits > 16 {
            return Err(CompressError::Corrupt(format!("bad bit width {bits}")));
        }

        let mut decoded = 0usize;
        for g in 0..r_eff {
            let n_g = varint::read_u64(buf)? as usize;
            if n_g == 0 {
                continue;
            }
            let keys = delta_binary::decode_keys(buf)?;
            if keys.len() != n_g {
                return Err(CompressError::Corrupt(format!(
                    "group {g}: declared {n_g} keys, decoded {}",
                    keys.len()
                )));
            }
            let cells_len = rows.checked_mul(cols).ok_or_else(|| {
                CompressError::Corrupt(format!("sketch shape {rows}x{cols} overflows"))
            })?;
            let cells = bitpack::unpack_u16(buf, cells_len, bits)?;
            let table = MinMaxSketch::from_cells(rows, cols, group_seed(side_seed, g), cells)?;
            for k in keys {
                let idx = table.query(k).ok_or_else(|| {
                    CompressError::Corrupt("sketch cell empty for a section key".into())
                })?;
                let v = *means.get(idx as usize).ok_or_else(|| {
                    CompressError::Corrupt(format!("index {idx} out of {q} buckets"))
                })?;
                out.push((k, v));
                decoded += 1;
            }
        }
        if decoded != n {
            return Err(CompressError::Corrupt(format!(
                "side declared {n} pairs, decoded {decoded}"
            )));
        }
        Ok(())
    }
}

impl GradientCompressor for SketchMlCompressor {
    fn name(&self) -> &'static str {
        "SketchML"
    }

    fn compress(&self, grad: &SparseGradient) -> Result<CompressedGradient, CompressError> {
        self.config.validate()?;
        let mut buf = BytesMut::new();
        buf.put_u8(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u64_le(self.config.seed);
        varint::write_u64(&mut buf, grad.dim());
        varint::write_u64(&mut buf, grad.nnz() as u64);
        varint::write_u64(&mut buf, self.config.rows as u64);

        let mut report = SizeReport {
            pairs: grad.nnz(),
            ..SizeReport::default()
        };
        if grad.is_empty() {
            varint::write_u64(&mut buf, 0); // pos side
            varint::write_u64(&mut buf, 0); // neg side
            report.header_bytes = buf.len();
            record_encode(0, buf.len());
            return Ok(CompressedGradient {
                payload: buf.freeze(),
                report,
            });
        }

        // §3.3 Solution 1: independent quantile sketches per sign.
        let mut pos_keys = Vec::new();
        let mut pos_vals = Vec::new();
        let mut neg_keys = Vec::new();
        let mut neg_vals = Vec::new();
        for (k, v) in grad.iter() {
            if v < 0.0 {
                neg_keys.push(k);
                neg_vals.push(v);
            } else {
                pos_keys.push(k);
                pos_vals.push(v);
            }
        }
        let pos = if pos_keys.is_empty() {
            None
        } else {
            Some(self.build_side(&pos_keys, &pos_vals, false)?)
        };
        let neg = if neg_keys.is_empty() {
            None
        } else {
            Some(self.build_side(&neg_keys, &neg_vals, true)?)
        };

        let (kb_pos, vb_pos) = self.encode_side(pos.as_ref(), self.config.seed, &mut buf)?;
        let (kb_neg, vb_neg) =
            self.encode_side(neg.as_ref(), self.config.seed ^ NEG_SALT, &mut buf)?;

        report.key_bytes = kb_pos + kb_neg;
        report.value_bytes = vb_pos + vb_neg;
        report.header_bytes = buf.len() - report.key_bytes - report.value_bytes;
        record_encode(grad.nnz(), buf.len());
        Ok(CompressedGradient {
            payload: buf.freeze(),
            report,
        })
    }

    fn decompress(&self, payload: &[u8]) -> Result<SparseGradient, CompressError> {
        let _t = telemetry::time(telemetry::Stage::Decode);
        telemetry::inc(telemetry::Counter::PipelineDecodes);
        let mut buf = payload;
        if buf.remaining() < 10 {
            return Err(CompressError::Corrupt("message shorter than header".into()));
        }
        if buf.get_u8() != MAGIC {
            return Err(CompressError::Corrupt("bad SketchML magic".into()));
        }
        if buf.get_u8() != VERSION {
            return Err(CompressError::Corrupt(
                "unsupported SketchML version".into(),
            ));
        }
        let seed = buf.get_u64_le();
        let dim = varint::read_u64(&mut buf)?;
        let nnz = varint::read_u64(&mut buf)? as usize;
        let rows = varint::read_u64(&mut buf)? as usize;
        if rows == 0 || rows > 64 {
            return Err(CompressError::Corrupt(format!(
                "row count {rows} out of range"
            )));
        }

        // Allocation-bomb guard: delta-binary keys cost ≥ 1 byte per pair, so
        // a declared nnz beyond the whole payload cannot decode.
        if nnz > payload.len() {
            return Err(CompressError::Corrupt(format!(
                "declared {nnz} pairs exceeds the {}-byte payload",
                payload.len()
            )));
        }
        let mut pairs: Vec<(u64, f64)> = Vec::with_capacity(nnz);
        self.decode_side(&mut buf, seed, rows, &mut pairs)?;
        self.decode_side(&mut buf, seed ^ NEG_SALT, rows, &mut pairs)?;
        if pairs.len() != nnz {
            return Err(CompressError::Corrupt(format!(
                "declared {nnz} pairs, decoded {}",
                pairs.len()
            )));
        }
        pairs.sort_unstable_by_key(|&(k, _)| k);
        let keys: Vec<u64> = pairs.iter().map(|&(k, _)| k).collect();
        let values: Vec<f64> = pairs.iter().map(|&(_, v)| v).collect();
        SparseGradient::new(dim, keys, values)
    }

    fn compress_into(
        &self,
        grad: &SparseGradient,
        scratch: &mut CompressScratch,
        out: &mut BytesMut,
    ) -> Result<SizeReport, CompressError> {
        self.config.validate()?;
        out.clear();
        out.put_u8(MAGIC);
        out.put_u8(VERSION);
        out.put_u64_le(self.config.seed);
        varint::write_u64(out, grad.dim());
        varint::write_u64(out, grad.nnz() as u64);
        varint::write_u64(out, self.config.rows as u64);

        let mut report = SizeReport {
            pairs: grad.nnz(),
            ..SizeReport::default()
        };
        if grad.is_empty() {
            varint::write_u64(out, 0); // pos side
            varint::write_u64(out, 0); // neg side
            report.header_bytes = out.len();
            record_encode(0, out.len());
            return Ok(report);
        }

        // §3.3 Solution 1: independent quantile sketches per sign. The
        // partitions are taken out of the scratch so it can be re-borrowed
        // mutably by `encode_side_into`, and restored before any `?`.
        let mut pos_keys = std::mem::take(&mut scratch.pos_keys);
        let mut pos_vals = std::mem::take(&mut scratch.pos_vals);
        let mut neg_keys = std::mem::take(&mut scratch.neg_keys);
        let mut neg_vals = std::mem::take(&mut scratch.neg_vals);
        partition_signs(
            grad.keys(),
            grad.values(),
            &mut pos_keys,
            &mut pos_vals,
            &mut neg_keys,
            &mut neg_vals,
        );
        let sides: Result<(usize, usize), CompressError> = (|| {
            let (kb_pos, vb_pos) =
                self.encode_side_into(&pos_keys, &pos_vals, false, self.config.seed, scratch, out)?;
            let (kb_neg, vb_neg) = self.encode_side_into(
                &neg_keys,
                &neg_vals,
                true,
                self.config.seed ^ NEG_SALT,
                scratch,
                out,
            )?;
            Ok((kb_pos + kb_neg, vb_pos + vb_neg))
        })();
        scratch.pos_keys = pos_keys;
        scratch.pos_vals = pos_vals;
        scratch.neg_keys = neg_keys;
        scratch.neg_vals = neg_vals;
        let (key_bytes, value_bytes) = sides?;

        report.key_bytes = key_bytes;
        report.value_bytes = value_bytes;
        report.header_bytes = out.len() - report.key_bytes - report.value_bytes;
        record_encode(grad.nnz(), out.len());
        Ok(report)
    }

    fn decompress_into(
        &self,
        payload: &[u8],
        scratch: &mut CompressScratch,
        out: &mut SparseGradient,
    ) -> Result<(), CompressError> {
        let _t = telemetry::time(telemetry::Stage::Decode);
        telemetry::inc(telemetry::Counter::PipelineDecodes);
        let mut buf = payload;
        if buf.remaining() < 10 {
            return Err(CompressError::Corrupt("message shorter than header".into()));
        }
        if buf.get_u8() != MAGIC {
            return Err(CompressError::Corrupt("bad SketchML magic".into()));
        }
        if buf.get_u8() != VERSION {
            return Err(CompressError::Corrupt(
                "unsupported SketchML version".into(),
            ));
        }
        let seed = buf.get_u64_le();
        let dim = varint::read_u64(&mut buf)?;
        let nnz = varint::read_u64(&mut buf)? as usize;
        let rows = varint::read_u64(&mut buf)? as usize;
        if rows == 0 || rows > 64 {
            return Err(CompressError::Corrupt(format!(
                "row count {rows} out of range"
            )));
        }

        scratch.pairs.clear();
        self.decode_side_into(&mut buf, seed, rows, scratch)?;
        self.decode_side_into(&mut buf, seed ^ NEG_SALT, rows, scratch)?;
        if scratch.pairs.len() != nnz {
            return Err(CompressError::Corrupt(format!(
                "declared {nnz} pairs, decoded {}",
                scratch.pairs.len()
            )));
        }
        scratch.pairs.sort_unstable_by_key(|&(k, _)| k);
        let pairs = std::mem::take(&mut scratch.pairs);
        let assigned = out.assign_pairs(dim, &pairs);
        scratch.pairs = pairs;
        assigned
    }
}
