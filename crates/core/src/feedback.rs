//! Error feedback (residual compensation) — an **extension beyond the
//! paper** from the gradient-compression literature (Seide et al.'s 1-bit
//! SGD introduced it; later formalized as EF-SGD).
//!
//! A lossy compressor drops part of every gradient. Error feedback keeps
//! the dropped part as a *residual* and adds it back to the next round's
//! gradient before compressing:
//!
//! ```text
//! g'_t = g_t + r_{t-1}
//! m_t  = compress(g'_t)
//! r_t  = g'_t − decompress(m_t)
//! ```
//!
//! No information is permanently lost — it is only delayed — which repairs
//! the convergence of aggressive compressors like threshold truncation.
//!
//! This implementation is the **sparse ("lazy") variant**: the residual of a
//! dimension is folded back only when that dimension appears in a later
//! gradient. Folding *all* residual keys into every message (dense EF) would
//! destroy the gradient's sparsity — inflating the very messages SketchML
//! shrinks — and would also distort the value distribution the quantile
//! buckets adapt to. The `ext_error_feedback` experiment measures the
//! effect on truncation and on SketchML.

use crate::compressor::{CompressedGradient, GradientCompressor};
use crate::error::CompressError;
use crate::gradient::SparseGradient;
use std::collections::HashMap;
use std::sync::Mutex;

/// Wraps any compressor with per-instance residual compensation.
///
/// The residual state lives inside the wrapper, so use one wrapper per
/// worker (exactly like the optimizer state).
#[derive(Debug)]
pub struct ErrorFeedback<C> {
    inner: C,
    residual: Mutex<HashMap<u64, f64>>,
}

impl<C: GradientCompressor> ErrorFeedback<C> {
    /// Wraps `inner` with an empty residual.
    pub fn new(inner: C) -> Self {
        ErrorFeedback {
            inner,
            residual: Mutex::new(HashMap::new()),
        }
    }

    /// Sum of absolute residual mass currently carried forward.
    pub fn residual_l1(&self) -> f64 {
        self.residual
            .lock()
            .expect("residual lock")
            .values()
            .map(|v| v.abs())
            .sum()
    }

    /// Access to the wrapped compressor.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: GradientCompressor> GradientCompressor for ErrorFeedback<C> {
    fn name(&self) -> &'static str {
        "ErrorFeedback"
    }

    fn compress(&self, grad: &SparseGradient) -> Result<CompressedGradient, CompressError> {
        let mut residual = self.residual.lock().expect("residual lock");
        // Sparse EF: g'_k = g_k + r_k only for the keys present in g.
        let mut keys = Vec::with_capacity(grad.nnz());
        let mut values = Vec::with_capacity(grad.nnz());
        for (k, v) in grad.iter() {
            let compensated = v + residual.remove(&k).unwrap_or(0.0);
            if compensated != 0.0 && compensated.is_finite() {
                keys.push(k);
                values.push(compensated);
            }
        }
        let compensated = SparseGradient::new(grad.dim(), keys, values)?;

        let msg = self.inner.compress(&compensated)?;
        let decoded = self.inner.decompress(&msg.payload)?;

        // r_k = g'_k − decode(m)_k for transmitted keys; keys the inner
        // compressor dropped entirely (truncation) keep their whole value.
        let mut sent: HashMap<u64, f64> = decoded.iter().collect();
        for (k, v) in compensated.iter() {
            let err = v - sent.remove(&k).unwrap_or(0.0);
            if err.abs() > 1e-15 {
                residual.insert(k, err);
            }
        }
        Ok(msg)
    }

    fn decompress(&self, payload: &[u8]) -> Result<SparseGradient, CompressError> {
        self.inner.decompress(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::TruncationCompressor;
    use crate::sketchml::SketchMlCompressor;

    fn constant_gradient() -> SparseGradient {
        let keys: Vec<u64> = (0..100u64).map(|i| i * 7).collect();
        let values: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 0.1 } else { -0.05 })
            .collect();
        SparseGradient::new(1_000, keys, values).unwrap()
    }

    #[test]
    fn residual_preserves_dropped_mass() {
        // Truncation keeps only 10% per round; with error feedback the
        // cumulative decoded signal still approaches the cumulative input.
        let ef = ErrorFeedback::new(TruncationCompressor { keep_ratio: 0.1 });
        let grad = constant_gradient();
        let rounds = 60;
        let mut cumulative = vec![0.0f64; grad.dim() as usize];
        for _ in 0..rounds {
            let msg = ef.compress(&grad).unwrap();
            let decoded = ef.decompress(&msg.payload).unwrap();
            for (k, v) in decoded.iter() {
                cumulative[k as usize] += v;
            }
        }
        let target: Vec<f64> = {
            let mut t = vec![0.0; grad.dim() as usize];
            for (k, v) in grad.iter() {
                t[k as usize] = v * rounds as f64;
            }
            t
        };
        let err: f64 = cumulative
            .iter()
            .zip(&target)
            .map(|(c, t)| (c - t).abs())
            .sum();
        let total: f64 = target.iter().map(|t| t.abs()).sum();
        assert!(
            err / total < 0.25,
            "error feedback should recover dropped mass: rel err {}",
            err / total
        );
        // Without feedback, plain 10% truncation loses 90% of the mass.
        let plain = TruncationCompressor { keep_ratio: 0.1 };
        let decoded = plain
            .decompress(&plain.compress(&grad).unwrap().payload)
            .unwrap();
        assert!(decoded.nnz() <= grad.nnz() / 5);
    }

    #[test]
    fn residual_shrinks_for_accurate_compressors() {
        let ef = ErrorFeedback::new(SketchMlCompressor::default());
        let grad = constant_gradient();
        for _ in 0..5 {
            ef.compress(&grad).unwrap();
        }
        // SketchML's decay leaves some residual, but it must stay bounded
        // (the compensation is re-sent, not accumulated forever).
        let r1 = ef.residual_l1();
        for _ in 0..20 {
            ef.compress(&grad).unwrap();
        }
        let r2 = ef.residual_l1();
        assert!(
            r2 < r1 * 3.0 + 1.0,
            "residual must not diverge: {r1} -> {r2}"
        );
    }

    #[test]
    fn decompress_passthrough() {
        let ef = ErrorFeedback::new(SketchMlCompressor::default());
        let grad = constant_gradient();
        let msg = ef.compress(&grad).unwrap();
        let a = ef.decompress(&msg.payload).unwrap();
        let b = SketchMlCompressor::default()
            .decompress(&msg.payload)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(ef.inner().name(), "SketchML");
    }
}
