//! Error feedback (residual compensation) — an **extension beyond the
//! paper** from the gradient-compression literature (Seide et al.'s 1-bit
//! SGD introduced it; later formalized as EF-SGD).
//!
//! A lossy compressor drops part of every gradient. Error feedback keeps
//! the dropped part as a *residual* and adds it back to the next round's
//! gradient before compressing:
//!
//! ```text
//! g'_t = g_t + r_{t-1}
//! m_t  = compress(g'_t)
//! r_t  = g'_t − decompress(m_t)
//! ```
//!
//! No information is permanently lost — it is only delayed — which repairs
//! the convergence of aggressive compressors like threshold truncation.
//!
//! This implementation is the **sparse ("lazy") variant**: the residual of a
//! dimension is folded back only when that dimension appears in a later
//! gradient. Folding *all* residual keys into every message (dense EF) would
//! destroy the gradient's sparsity — inflating the very messages SketchML
//! shrinks — and would also distort the value distribution the quantile
//! buckets adapt to. The `ext_error_feedback` experiment measures the
//! effect on truncation and on SketchML.
//!
//! # Hot path
//!
//! The wrapper keeps its own pooled buffers (compensated gradient, decoded
//! gradient, a [`CompressScratch`] for the residual decode), so both the
//! allocating and the `*_into` entry points compute residuals through the
//! inner compressor's zero-allocation scratch path — wrapping a compressor
//! in `ErrorFeedback` does not fall back to per-round payload reallocation.
//! Residuals are matched by a linear merge over the two key-sorted
//! gradients instead of a per-round `HashMap` of sent values.

use crate::compressor::{CompressedGradient, GradientCompressor};
use crate::error::CompressError;
use crate::gradient::SparseGradient;
use crate::scratch::CompressScratch;
use bytes::BytesMut;
use sketchml_encoding::stats::SizeReport;
use sketchml_telemetry as telemetry;
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

/// Mutable per-wrapper state: the carried residual plus pooled buffers that
/// keep every round allocation-free in steady state.
#[derive(Debug)]
struct EfState {
    residual: HashMap<u64, f64>,
    comp_keys: Vec<u64>,
    comp_vals: Vec<f64>,
    compensated: SparseGradient,
    decoded: SparseGradient,
    scratch: Box<CompressScratch>,
}

impl Default for EfState {
    fn default() -> Self {
        EfState {
            residual: HashMap::new(),
            comp_keys: Vec::new(),
            comp_vals: Vec::new(),
            compensated: SparseGradient::empty(0),
            decoded: SparseGradient::empty(0),
            scratch: Box::default(),
        }
    }
}

/// Wraps any compressor with per-instance residual compensation.
///
/// The residual state lives inside the wrapper, so use one wrapper per
/// worker (exactly like the optimizer state).
#[derive(Debug)]
pub struct ErrorFeedback<C> {
    inner: C,
    state: Mutex<EfState>,
}

impl<C: GradientCompressor> ErrorFeedback<C> {
    /// Wraps `inner` with an empty residual.
    pub fn new(inner: C) -> Self {
        ErrorFeedback {
            inner,
            state: Mutex::new(EfState::default()),
        }
    }

    /// Locks the state, recovering from poisoning: a panic in a previous
    /// round leaves the residual map structurally intact (at worst missing
    /// that round's updates), so clearing the poison flag beats wedging
    /// every later round with a lock panic.
    fn lock_state(&self) -> MutexGuard<'_, EfState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Sum of absolute residual mass currently carried forward.
    pub fn residual_l1(&self) -> f64 {
        self.lock_state().residual.values().map(|v| v.abs()).sum()
    }

    /// Number of keys with a carried residual.
    pub fn residual_len(&self) -> usize {
        self.lock_state().residual.len()
    }

    /// Key-sorted copy of the carried residual map, for diagnostics and for
    /// tests asserting that two wrappers hold identical state.
    pub fn residual_entries(&self) -> Vec<(u64, f64)> {
        let st = self.lock_state();
        let mut entries: Vec<(u64, f64)> = st.residual.iter().map(|(&k, &r)| (k, r)).collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        entries
    }

    /// Access to the wrapped compressor.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    #[cfg(test)]
    fn inject_residual(&self, key: u64, value: f64) {
        self.lock_state().residual.insert(key, value);
    }

    #[cfg(test)]
    fn residual_of(&self, key: u64) -> Option<f64> {
        self.lock_state().residual.get(&key).copied()
    }
}

/// Builds the compensated gradient `g' = g + r` into `keys`/`vals`, removing
/// consumed residuals from `residual`.
///
/// A compensated value that is exactly zero is dropped together with its
/// residual: `r_new = g' − decode = 0 − 0` is genuinely zero, nothing is
/// lost. A compensated value that overflows to a non-finite number cannot be
/// transmitted; its residual is **restored** so the mass is only delayed (or
/// deliberately cleared, when the carried residual itself is non-finite),
/// and the `ef_nonfinite` telemetry counter records the event either way.
fn compensate(
    grad: &SparseGradient,
    residual: &mut HashMap<u64, f64>,
    keys: &mut Vec<u64>,
    vals: &mut Vec<f64>,
) {
    keys.clear();
    vals.clear();
    keys.reserve(grad.nnz());
    vals.reserve(grad.nnz());
    for (k, v) in grad.iter() {
        let r = residual.remove(&k).unwrap_or(0.0);
        let compensated = v + r;
        if compensated == 0.0 {
            continue;
        }
        if !compensated.is_finite() {
            telemetry::inc(telemetry::Counter::EfNonFinite);
            if r != 0.0 && r.is_finite() {
                residual.insert(k, r);
            }
            continue;
        }
        keys.push(k);
        vals.push(compensated);
    }
}

/// Folds `g' − decode(m)` back into `residual`. Both gradients are
/// key-sorted, so the transmitted value for each compensated key is found by
/// a single linear merge; keys the inner compressor dropped entirely
/// (truncation) keep their whole compensated value.
fn update_residual(
    residual: &mut HashMap<u64, f64>,
    compensated: &SparseGradient,
    decoded: &SparseGradient,
) {
    let dec_keys = decoded.keys();
    let dec_vals = decoded.values();
    let mut j = 0usize;
    for (k, v) in compensated.iter() {
        while j < dec_keys.len() && dec_keys[j] < k {
            j += 1;
        }
        let sent = if j < dec_keys.len() && dec_keys[j] == k {
            let s = dec_vals[j];
            j += 1;
            s
        } else {
            0.0
        };
        let err = v - sent;
        if err.abs() > 1e-15 {
            residual.insert(k, err);
        }
    }
}

impl<C: GradientCompressor> GradientCompressor for ErrorFeedback<C> {
    fn name(&self) -> &'static str {
        "ErrorFeedback"
    }

    fn compress(&self, grad: &SparseGradient) -> Result<CompressedGradient, CompressError> {
        let st = &mut *self.lock_state();
        compensate(grad, &mut st.residual, &mut st.comp_keys, &mut st.comp_vals);
        st.compensated
            .assign(grad.dim(), &st.comp_keys, &st.comp_vals)?;

        let msg = self.inner.compress(&st.compensated)?;
        // Residuals need decode(m); route it through the pooled scratch so
        // even the allocating entry point decodes allocation-free.
        self.inner
            .decompress_into(&msg.payload, &mut st.scratch, &mut st.decoded)?;
        update_residual(&mut st.residual, &st.compensated, &st.decoded);
        Ok(msg)
    }

    fn decompress(&self, payload: &[u8]) -> Result<SparseGradient, CompressError> {
        self.inner.decompress(payload)
    }

    fn compress_into(
        &self,
        grad: &SparseGradient,
        scratch: &mut CompressScratch,
        out: &mut BytesMut,
    ) -> Result<SizeReport, CompressError> {
        let st = &mut *self.lock_state();
        compensate(grad, &mut st.residual, &mut st.comp_keys, &mut st.comp_vals);
        st.compensated
            .assign(grad.dim(), &st.comp_keys, &st.comp_vals)?;

        let report = self.inner.compress_into(&st.compensated, scratch, out)?;
        self.inner
            .decompress_into(&out[..], scratch, &mut st.decoded)?;
        update_residual(&mut st.residual, &st.compensated, &st.decoded);
        Ok(report)
    }

    fn decompress_into(
        &self,
        payload: &[u8],
        scratch: &mut CompressScratch,
        out: &mut SparseGradient,
    ) -> Result<(), CompressError> {
        self.inner.decompress_into(payload, scratch, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{RawCompressor, TruncationCompressor};
    use crate::sketchml::SketchMlCompressor;

    fn constant_gradient() -> SparseGradient {
        let keys: Vec<u64> = (0..100u64).map(|i| i * 7).collect();
        let values: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 0.1 } else { -0.05 })
            .collect();
        SparseGradient::new(1_000, keys, values).unwrap()
    }

    #[test]
    fn residual_preserves_dropped_mass() {
        // Truncation keeps only 10% per round; with error feedback the
        // cumulative decoded signal still approaches the cumulative input.
        let ef = ErrorFeedback::new(TruncationCompressor { keep_ratio: 0.1 });
        let grad = constant_gradient();
        let rounds = 60;
        let mut cumulative = vec![0.0f64; grad.dim() as usize];
        for _ in 0..rounds {
            let msg = ef.compress(&grad).unwrap();
            let decoded = ef.decompress(&msg.payload).unwrap();
            for (k, v) in decoded.iter() {
                cumulative[k as usize] += v;
            }
        }
        let target: Vec<f64> = {
            let mut t = vec![0.0; grad.dim() as usize];
            for (k, v) in grad.iter() {
                t[k as usize] = v * rounds as f64;
            }
            t
        };
        let err: f64 = cumulative
            .iter()
            .zip(&target)
            .map(|(c, t)| (c - t).abs())
            .sum();
        let total: f64 = target.iter().map(|t| t.abs()).sum();
        assert!(
            err / total < 0.25,
            "error feedback should recover dropped mass: rel err {}",
            err / total
        );
        // Without feedback, plain 10% truncation loses 90% of the mass.
        let plain = TruncationCompressor { keep_ratio: 0.1 };
        let decoded = plain
            .decompress(&plain.compress(&grad).unwrap().payload)
            .unwrap();
        assert!(decoded.nnz() <= grad.nnz() / 5);
    }

    #[test]
    fn residual_shrinks_for_accurate_compressors() {
        let ef = ErrorFeedback::new(SketchMlCompressor::default());
        let grad = constant_gradient();
        for _ in 0..5 {
            ef.compress(&grad).unwrap();
        }
        // SketchML's decay leaves some residual, but it must stay bounded
        // (the compensation is re-sent, not accumulated forever).
        let r1 = ef.residual_l1();
        for _ in 0..20 {
            ef.compress(&grad).unwrap();
        }
        let r2 = ef.residual_l1();
        assert!(
            r2 < r1 * 3.0 + 1.0,
            "residual must not diverge: {r1} -> {r2}"
        );
    }

    #[test]
    fn decompress_passthrough() {
        let ef = ErrorFeedback::new(SketchMlCompressor::default());
        let grad = constant_gradient();
        let msg = ef.compress(&grad).unwrap();
        let a = ef.decompress(&msg.payload).unwrap();
        let b = SketchMlCompressor::default()
            .decompress(&msg.payload)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(ef.inner().name(), "SketchML");
    }

    #[test]
    fn scratch_path_matches_allocating_path() {
        // Two wrappers fed the same rounds must emit identical payloads and
        // end with identical residual maps, whichever entry point is used.
        let alloc = ErrorFeedback::new(SketchMlCompressor::default());
        let pooled = ErrorFeedback::new(SketchMlCompressor::default());
        let mut scratch = CompressScratch::new();
        let mut out = BytesMut::new();
        let grad = constant_gradient();
        for round in 0..6 {
            let msg = alloc.compress(&grad).unwrap();
            let report = pooled.compress_into(&grad, &mut scratch, &mut out).unwrap();
            assert_eq!(&out[..], &msg.payload[..], "round {round}");
            assert_eq!(report.total(), msg.report.total());
        }
        assert_eq!(alloc.residual_len(), pooled.residual_len());
        assert!((alloc.residual_l1() - pooled.residual_l1()).abs() < 1e-12);
        // decompress_into passes through to the inner scratch decoder.
        let msg = alloc.compress(&grad).unwrap();
        let mut decoded = SparseGradient::empty(0);
        pooled
            .decompress_into(&msg.payload, &mut scratch, &mut decoded)
            .unwrap();
        assert_eq!(decoded, alloc.decompress(&msg.payload).unwrap());
    }

    #[test]
    fn nonfinite_compensation_restores_residual() {
        let ef = ErrorFeedback::new(RawCompressor::default());
        let grad = SparseGradient::new(10, vec![3], vec![f64::MAX]).unwrap();
        ef.inject_residual(3, f64::MAX);
        let session = sketchml_telemetry::TelemetrySession::begin();
        let msg = ef.compress(&grad).unwrap();
        let snap = session.finish();
        // MAX + MAX overflows: the key is skipped this round...
        assert!(ef.decompress(&msg.payload).unwrap().is_empty());
        // ...but the carried residual survives instead of vanishing.
        assert_eq!(ef.residual_of(3), Some(f64::MAX));
        assert_eq!(snap.pipeline.ef_nonfinite, 1);
    }

    #[test]
    fn nonfinite_residual_is_deliberately_cleared() {
        let ef = ErrorFeedback::new(RawCompressor::default());
        let grad = SparseGradient::new(10, vec![3], vec![1.0]).unwrap();
        ef.inject_residual(3, f64::INFINITY);
        let session = sketchml_telemetry::TelemetrySession::begin();
        ef.compress(&grad).unwrap();
        let snap = session.finish();
        // An already-poisoned residual cannot be carried meaningfully; it is
        // dropped and the counter records the loss.
        assert_eq!(ef.residual_of(3), None);
        assert_eq!(snap.pipeline.ef_nonfinite, 1);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let ef = std::sync::Arc::new(ErrorFeedback::new(RawCompressor::default()));
        ef.inject_residual(5, 0.25);
        let poisoner = std::sync::Arc::clone(&ef);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.state.lock().unwrap();
            panic!("poison the residual lock");
        })
        .join();
        // The wrapper keeps working and the residual state survives.
        assert_eq!(ef.residual_of(5), Some(0.25));
        assert!((ef.residual_l1() - 0.25).abs() < 1e-15);
        ef.compress(&constant_gradient()).unwrap();
    }
}
