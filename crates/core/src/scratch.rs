//! Reusable scratch buffers for the zero-allocation compression hot path.
//!
//! §3.5's premise is that compression must cost less CPU than the network
//! time it saves. The allocating [`GradientCompressor::compress`] path
//! re-allocates every intermediate (sign partitions, per-group key vectors,
//! delta arrays, bitpack buffers) on every gradient of every iteration; a
//! [`CompressScratch`] pools all of them so that, once warm, a steady-state
//! training loop performs **zero** heap allocations per compressed message
//! (`crates/bench/src/bin/hotpath.rs` asserts this with a counting
//! allocator). The scratch-path payload is byte-identical to the allocating
//! path — the golden fixtures in `tests/fixtures/` and the differential
//! proptests are the oracle.
//!
//! [`GradientCompressor::compress`]: crate::GradientCompressor::compress

use crate::error::CompressError;
use crate::gradient::SparseGradient;
use crate::quantify::QuantScratch;
use bytes::BytesMut;
use sketchml_encoding::stats::SizeReport;

/// Pooled intermediate buffers shared by every `*_into` compressor method.
///
/// One scratch serves any number of compressors and any mix of
/// `compress_into` / `decompress_into` calls; buffers grow to the high-water
/// mark of the gradients they process and are then reused. The type is
/// `Send`, so a long-lived worker thread can own one across iterations —
/// but it is deliberately not `Sync`: concurrent encoders each need their
/// own (see the per-shard pool used by the sharded engine).
#[derive(Debug, Default)]
pub struct CompressScratch {
    // --- encode: sign partition (§3.3 Solution 1) ---
    pub(crate) pos_keys: Vec<u64>,
    pub(crate) pos_vals: Vec<f64>,
    pub(crate) neg_keys: Vec<u64>,
    pub(crate) neg_vals: Vec<f64>,
    // --- encode: quantification (§3.2) ---
    pub(crate) quant: QuantScratch,
    // --- encode: per-group key sectioning (§3.4 / Appendix A.3) ---
    pub(crate) counts: Vec<usize>,
    pub(crate) cursor: Vec<usize>,
    pub(crate) group_lut: Vec<u16>,
    // --- sharded engine: per-shard CRC32 table of the v2 frame ---
    pub(crate) crcs: Vec<u32>,
    pub(crate) sec_keys: Vec<u64>,
    pub(crate) sec_idx: Vec<u16>,
    // --- encode/decode: flat MinMaxSketch cell tables + row seeds (§3.3) ---
    pub(crate) cells: Vec<u16>,
    pub(crate) seeds: Vec<u64>,
    // --- encode/decode: flat Count-Sketch cell table + sign seeds ---
    pub(crate) csk_cells: Vec<f64>,
    pub(crate) csk_signs: Vec<u64>,
    // --- encode/decode: FastSGD exponent codes ---
    pub(crate) fs_exps: Vec<i32>,
    pub(crate) fs_codes: Vec<u16>,
    pub(crate) fs_codes32: Vec<u32>,
    // --- decode ---
    pub(crate) pairs: Vec<(u64, f64)>,
    pub(crate) dec_keys: Vec<u64>,
    pub(crate) dec_vals: Vec<f64>,
    pub(crate) dec_idx: Vec<u16>,
    pub(crate) dec_cells: Vec<u16>,
    pub(crate) dec_means: Vec<f64>,
    // --- sharded engine: one slot per shard, each with its own scratch.
    // The mutexes are uncontended by construction (each pool worker claims a
    // distinct slot index); they exist so the parallel region stays safe
    // code while the slots live in one reusable Vec.
    pub(crate) shards: Vec<std::sync::Mutex<ShardScratch>>,
}

impl CompressScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures at least `n` shard slots exist, each with its own inner
    /// scratch, reusable gradient, and output buffer.
    pub(crate) fn ensure_shards(&mut self, n: usize) {
        while self.shards.len() < n {
            self.shards.push(std::sync::Mutex::new(ShardScratch::new()));
        }
    }
}

/// Per-shard state pooled inside a [`CompressScratch`] for the sharded
/// engine: worker threads borrow disjoint slots, so PR 1's parallelism
/// composes with zero-alloc (`Box` breaks the recursive type).
#[derive(Debug)]
pub(crate) struct ShardScratch {
    pub(crate) grad: SparseGradient,
    pub(crate) scratch: Box<CompressScratch>,
    pub(crate) out: BytesMut,
    pub(crate) result: Option<Result<SizeReport, CompressError>>,
}

impl ShardScratch {
    fn new() -> Self {
        ShardScratch {
            grad: SparseGradient::empty(0),
            scratch: Box::default(),
            out: BytesMut::new(),
            result: None,
        }
    }
}
