//! Count-Sketch gradient compressor: linear payloads with sketched momentum.
//!
//! Where [`crate::sketchml::SketchMlCompressor`] ships lossless keys plus
//! quantized values, [`CountSketchCompressor`] ships the raw cell table of a
//! [`CountSketch`] (the CSK frame, [`sketchml_encoding::csk`]) and recovers
//! the top-`k` heavy hitters on decode. The payload is *linear*: tables add
//! element-wise, so the collectives layer can merge hop payloads without
//! decoding them ([`MergePolicy::Linear`]) and extract once at the end —
//! sketch-of-sum equals sum-of-sketches, bit-for-bit when the inputs are
//! dyadic.
//!
//! Momentum and error feedback fold *into* the sketch instead of wrapping
//! around the compressor like [`crate::feedback::ErrorFeedback`]: with
//! `momentum = Some(ρ)` the compressor keeps a state sketch `S` and each
//! step computes `S ← ρ·S + S(g_t)`, ships `S`, then subtracts the sketch of
//! the extracted top-`k` — the un-extracted mass *is* the residual, carried
//! in sketch space (SketchSGD, arXiv:1903.04488). With `momentum = None`
//! compression is pure and deterministic, which the exactness tests and the
//! sharded engine rely on.

use crate::compressor::{CompressedGradient, GradientCompressor};
use crate::error::CompressError;
use crate::gradient::SparseGradient;
use crate::merge::{MergeAcc, MergeableCompressor};
use crate::scratch::CompressScratch;
use bytes::BytesMut;
use sketchml_encoding::csk::{self, CskHeader};
use sketchml_encoding::stats::SizeReport;
use sketchml_sketches::count_sketch::{push_sign_seeds, sign_for, CountSketch};
use sketchml_sketches::hash::{push_row_seeds, HashFamily};
use std::sync::{Mutex, MutexGuard};

/// Shape and behaviour of a [`CountSketchCompressor`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct CountSketchConfig {
    /// Sketch rows (independent hash/sign pairs); at most 64.
    pub rows: u32,
    /// Sketch columns (bins per row).
    pub cols: u32,
    /// Heavy hitters extracted on decode (ignored when `auto_k` is set).
    pub k: u32,
    /// Seed for both hash families; sender and receiver must agree.
    pub seed: u64,
    /// `Some(ρ)` enables sketched momentum + error feedback in sketch
    /// space (stateful); `None` is pure deterministic compression.
    pub momentum: Option<f64>,
    /// Adaptive heavy-hitter count (registry `k=auto`): each frame's `k`
    /// is derived from the round's observed nnz instead of the fixed `k`
    /// above — sparse rounds stop extracting ghosts past their own pair
    /// count, dense rounds are clamped to the table's resolving power
    /// (`cols / 4`). The chosen `k` travels in the frame header, so the
    /// decoder follows the encoder round by round.
    pub auto_k: bool,
}

impl Default for CountSketchConfig {
    fn default() -> Self {
        CountSketchConfig {
            rows: 5,
            cols: 2048,
            k: 512,
            seed: 0xC5C5_0001,
            momentum: None,
            auto_k: false,
        }
    }
}

// Hand-written so configs serialized before `auto_k` existed still parse
// (they default to the fixed-k mode) — same pattern as `TrainSpec`.
impl serde::Deserialize for CountSketchConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_obj()
            .ok_or_else(|| serde::Error::custom("CountSketchConfig: expected an object"))?;
        Ok(CountSketchConfig {
            rows: serde::Deserialize::from_value(serde::field(obj, "rows")?)?,
            cols: serde::Deserialize::from_value(serde::field(obj, "cols")?)?,
            k: serde::Deserialize::from_value(serde::field(obj, "k")?)?,
            seed: serde::Deserialize::from_value(serde::field(obj, "seed")?)?,
            momentum: serde::Deserialize::from_value(serde::field(obj, "momentum")?)?,
            auto_k: match serde::field(obj, "auto_k") {
                Ok(val) => serde::Deserialize::from_value(val)?,
                Err(_) => false,
            },
        })
    }
}

impl CountSketchConfig {
    /// Validates shape bounds and the momentum range.
    ///
    /// # Errors
    /// [`CompressError::InvalidConfig`] describing the violated constraint.
    pub fn validate(&self) -> Result<(), CompressError> {
        if self.rows == 0 || self.rows > 64 {
            return Err(CompressError::InvalidConfig(format!(
                "countsketch rows must be in 1..=64, got {}",
                self.rows
            )));
        }
        if self.cols == 0 {
            return Err(CompressError::InvalidConfig(
                "countsketch cols must be >= 1".into(),
            ));
        }
        if u64::from(self.rows) * u64::from(self.cols) > u64::from(u32::MAX) {
            return Err(CompressError::InvalidConfig(format!(
                "countsketch table {}x{} exceeds u32::MAX cells",
                self.rows, self.cols
            )));
        }
        if self.k == 0 {
            return Err(CompressError::InvalidConfig(
                "countsketch k must be >= 1".into(),
            ));
        }
        if let Some(m) = self.momentum {
            if !(0.0..1.0).contains(&m) {
                return Err(CompressError::InvalidConfig(format!(
                    "countsketch momentum must be in [0, 1), got {m}"
                )));
            }
        }
        Ok(())
    }

    fn table_len(&self) -> usize {
        self.rows as usize * self.cols as usize
    }

    /// Ceiling for an adaptive `k`: extracting more than `cols / 4` heavy
    /// hitters from a row of `cols` counters mostly surfaces collision
    /// noise, so auto mode never asks for more.
    fn auto_k_cap(&self) -> u32 {
        (self.cols / 4).max(1)
    }

    /// The heavy-hitter count stamped into a frame for a gradient with
    /// `nnz` pairs: the fixed `k`, or — in auto mode — the observed nnz
    /// clamped to `[1, cols / 4]`.
    pub fn effective_k(&self, nnz: u64) -> u32 {
        if !self.auto_k {
            return self.k;
        }
        nnz.clamp(1, u64::from(self.auto_k_cap())) as u32
    }

    fn header(&self, dim: u64, nnz: u64, key_range: (u64, u64)) -> CskHeader {
        CskHeader {
            dim,
            rows: self.rows,
            cols: self.cols,
            k: self.effective_k(nnz),
            seed: self.seed,
            nnz,
            key_lo: key_range.0,
            key_end: key_range.1,
            cell_start: 0,
            cell_count: self.table_len() as u64,
        }
    }
}

/// `[first, last + 1)`, or `(0, 0)` for an empty gradient — the frame's
/// heavy-hitter scan bound, which also keeps a key-range shard's decode from
/// surfacing ghosts outside the shard.
fn key_range(grad: &SparseGradient) -> (u64, u64) {
    match (grad.keys().first(), grad.keys().last()) {
        (Some(&lo), Some(&hi)) => (lo, hi + 1),
        _ => (0, 0),
    }
}

/// Momentum-mode state: the running sketch `S` after residual subtraction,
/// plus the union of every key range folded in (the residual can live at any
/// key a past round touched).
#[derive(Debug, Default)]
struct CsState {
    sketch: Option<CountSketch>,
    dim: u64,
    key_lo: u64,
    key_end: u64,
}

/// The Count-Sketch compressor. See the module docs for the scheme.
///
/// ```
/// use sketchml_core::{CountSketchCompressor, CountSketchConfig, GradientCompressor, SparseGradient};
///
/// let c = CountSketchCompressor::new(CountSketchConfig::default())?;
/// let grad = SparseGradient::new(10_000, vec![7, 90, 900], vec![0.5, -0.25, 0.125])?;
/// let msg = c.compress(&grad)?;
/// let decoded = c.decompress(&msg.payload)?;
/// assert_eq!(decoded.keys(), grad.keys());
/// assert_eq!(decoded.values(), grad.values()); // nnz « table: exact
/// # Ok::<(), sketchml_core::CompressError>(())
/// ```
#[derive(Debug)]
pub struct CountSketchCompressor {
    config: CountSketchConfig,
    state: Mutex<CsState>,
}

impl CountSketchCompressor {
    /// Creates a compressor after validating `config`.
    ///
    /// # Errors
    /// [`CompressError::InvalidConfig`] from [`CountSketchConfig::validate`].
    pub fn new(config: CountSketchConfig) -> Result<Self, CompressError> {
        config.validate()?;
        Ok(CountSketchCompressor {
            config,
            state: Mutex::new(CsState::default()),
        })
    }

    /// The configuration this compressor was built with.
    pub fn config(&self) -> &CountSketchConfig {
        &self.config
    }

    /// Recovers from a poisoned lock: the state sketch is plain data, valid
    /// under any interleaving (same idiom as `ErrorFeedback`).
    fn lock_state(&self) -> MutexGuard<'_, CsState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Checks a parsed frame against this compressor's configuration. In
    /// auto-`k` mode the frame's `k` is the encoder's per-round choice, so
    /// only its bounds are checked, not equality.
    fn check_frame(&self, h: &CskHeader) -> Result<(), CompressError> {
        let c = &self.config;
        if h.rows != c.rows || h.cols != c.cols || h.seed != c.seed {
            return Err(CompressError::Corrupt(format!(
                "CSK frame {}x{} seed={} does not match configured {}x{} seed={}",
                h.rows, h.cols, h.seed, c.rows, c.cols, c.seed
            )));
        }
        if c.auto_k {
            if h.k == 0 || h.k > c.auto_k_cap() {
                return Err(CompressError::Corrupt(format!(
                    "CSK frame k={} outside auto-k bounds 1..={}",
                    h.k,
                    c.auto_k_cap()
                )));
            }
        } else if h.k != c.k {
            return Err(CompressError::Corrupt(format!(
                "CSK frame k={} does not match configured k={}",
                h.k, c.k
            )));
        }
        if !h.is_full() {
            return Err(CompressError::Corrupt(format!(
                "point decode needs a full table, got window [{}, {})",
                h.cell_start,
                h.cell_start + h.cell_count
            )));
        }
        Ok(())
    }

    /// Minimum fraction of the domain a contiguous key run must cover to
    /// take the dense encode path. Dense gradients (converted embeddings,
    /// `to_dense` round-trips) arrive as one run over `0..d`; short runs
    /// gain nothing from skipping the key scan.
    const DENSE_THRESHOLD_NUM: u64 = 1;
    const DENSE_THRESHOLD_DEN: u64 = 2;

    /// True when the gradient's keys are exactly the contiguous range
    /// `[first, first + nnz)` *and* that run covers at least the density
    /// threshold of the domain — the keys are then implied by position.
    fn is_contiguous_dense(grad: &SparseGradient) -> bool {
        let n = grad.nnz() as u64;
        let keys = grad.keys();
        n > 0
            && keys[keys.len() - 1] - keys[0] + 1 == n
            && n * Self::DENSE_THRESHOLD_DEN >= grad.dim().max(1) * Self::DENSE_THRESHOLD_NUM
    }

    /// Stateless encode into `scratch.csk_cells` (row-major flat loop, no
    /// sketch struct, no allocation once warm). Dense gradients whose keys
    /// are one contiguous run skip the key scan entirely: chunked range
    /// counters feed the batch hash primitives ([`fill_bins`] /
    /// [`fill_sign_flips`]), which vectorize under the `simd` feature. The
    /// scalar per-key loop remains the always-compiled reference; debug
    /// builds assert the fast path produces a bit-identical table.
    ///
    /// [`fill_bins`]: sketchml_sketches::hash::fill_bins
    /// [`fill_sign_flips`]: sketchml_sketches::hash::fill_sign_flips
    fn sketch_into_scratch(&self, grad: &SparseGradient, scratch: &mut CompressScratch) {
        let c = &self.config;
        let (rows, cols) = (c.rows as usize, c.cols as usize);
        scratch.seeds.clear();
        push_row_seeds(rows, c.seed, &mut scratch.seeds);
        scratch.csk_signs.clear();
        push_sign_seeds(rows, c.seed, &mut scratch.csk_signs);
        scratch.csk_cells.clear();
        scratch.csk_cells.resize(rows * cols, 0.0);
        if Self::is_contiguous_dense(grad) {
            Self::sketch_rows_dense(grad, scratch, rows, cols);
            #[cfg(debug_assertions)]
            {
                let mut reference = vec![0.0f64; rows * cols];
                Self::sketch_rows_scalar(grad, scratch, &mut reference, rows, cols);
                debug_assert!(
                    scratch
                        .csk_cells
                        .iter()
                        .zip(&reference)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "dense Count-Sketch path diverged from scalar reference"
                );
            }
            return;
        }
        let mut cells = std::mem::take(&mut scratch.csk_cells);
        Self::sketch_rows_scalar(grad, scratch, &mut cells, rows, cols);
        scratch.csk_cells = cells;
    }

    /// Scalar reference sketch loop over explicit keys.
    fn sketch_rows_scalar(
        grad: &SparseGradient,
        scratch: &CompressScratch,
        cells: &mut [f64],
        rows: usize,
        cols: usize,
    ) {
        for r in 0..rows {
            let bin_seed = scratch.seeds[r];
            let sign_seed = scratch.csk_signs[r];
            let row = &mut cells[r * cols..(r + 1) * cols];
            for (&k, &v) in grad.keys().iter().zip(grad.values()) {
                row[HashFamily::bin_for(bin_seed, cols, k)] += sign_for(sign_seed, k) * v;
            }
        }
    }

    /// Contiguous-range sketch loop: keys come from a chunked counter, not
    /// the key array, and bins/signs are hashed through the batch (lane)
    /// primitives. Bit-identical to [`Self::sketch_rows_scalar`]: the
    /// scatter visits pairs in the same order and XOR-ing the sign-flip mask
    /// equals `±1.0 · v` exactly.
    fn sketch_rows_dense(
        grad: &SparseGradient,
        scratch: &mut CompressScratch,
        rows: usize,
        cols: usize,
    ) {
        use sketchml_sketches::hash::{fill_bins, fill_sign_flips};
        const CHUNK: usize = 256;
        let mut kbuf = [0u64; CHUNK];
        let mut bins = [0u32; CHUNK];
        let mut flips = [0u64; CHUNK];
        let first = grad.keys()[0];
        for r in 0..rows {
            let bin_seed = scratch.seeds[r];
            let sign_seed = scratch.csk_signs[r];
            let row = &mut scratch.csk_cells[r * cols..(r + 1) * cols];
            let mut base = first;
            for vc in grad.values().chunks(CHUNK) {
                let m = vc.len();
                for (j, k) in kbuf[..m].iter_mut().enumerate() {
                    *k = base + j as u64;
                }
                fill_bins(bin_seed, cols, &kbuf[..m], &mut bins[..m]);
                fill_sign_flips(sign_seed, &kbuf[..m], &mut flips[..m]);
                for ((&bin, &flip), &v) in bins[..m].iter().zip(&flips[..m]).zip(vc) {
                    row[bin as usize] += f64::from_bits(v.to_bits() ^ flip);
                }
                base += m as u64;
            }
        }
    }

    /// Momentum-mode encode: `S ← ρ·S + S(g)`, ship `S`, subtract the
    /// extracted top-`k` from `S` (the residual stays in sketch space).
    fn momentum_frame(
        &self,
        rho: f64,
        grad: &SparseGradient,
        out: &mut BytesMut,
    ) -> Result<usize, CompressError> {
        let c = &self.config;
        let mut state = self.lock_state();
        if state.dim != grad.dim() || state.sketch.is_none() {
            state.sketch = Some(
                CountSketch::new(c.rows as usize, c.cols as usize, c.seed)
                    .map_err(|e| CompressError::InvalidConfig(format!("countsketch state: {e}")))?,
            );
            state.dim = grad.dim();
            state.key_lo = 0;
            state.key_end = 0;
        }
        let (lo, end) = key_range(grad);
        if lo != end {
            if state.key_lo == state.key_end {
                (state.key_lo, state.key_end) = (lo, end);
            } else {
                state.key_lo = state.key_lo.min(lo);
                state.key_end = state.key_end.max(end);
            }
        }
        let dim = state.dim;
        let range = (state.key_lo, state.key_end);
        let sketch = state.sketch.as_mut().expect("state sketch just ensured");
        sketch.scale(rho);
        sketch.insert_batch(grad.keys(), grad.values());
        let header = c.header(dim, grad.nnz() as u64, range);
        let frame_k = header.k;
        let header_bytes =
            csk::write_frame(&header, sketch.cells(), out).map_err(CompressError::Encoding)?;
        // Extract what the receiver will extract (the frame's own k, which
        // auto mode adapts per round), and subtract it: the remaining table
        // is exactly the quantization residual.
        let mut keys = Vec::new();
        let mut vals = Vec::new();
        sketch.top_k_range_into(frame_k as usize, range.0..range.1, &mut keys, &mut vals);
        for v in &mut vals {
            *v = -*v;
        }
        sketch.insert_batch(&keys, &vals);
        Ok(header_bytes)
    }

    fn report(&self, header_bytes: usize, nnz: usize) -> SizeReport {
        SizeReport {
            key_bytes: 0,
            value_bytes: self.config.table_len() * 8,
            header_bytes,
            pairs: nnz,
        }
    }
}

impl GradientCompressor for CountSketchCompressor {
    fn name(&self) -> &'static str {
        "CountSketch"
    }

    fn compress(&self, grad: &SparseGradient) -> Result<CompressedGradient, CompressError> {
        let mut scratch = CompressScratch::new();
        let mut out = BytesMut::new();
        let report = self.compress_into(grad, &mut scratch, &mut out)?;
        Ok(CompressedGradient {
            payload: out.freeze(),
            report,
        })
    }

    fn decompress(&self, payload: &[u8]) -> Result<SparseGradient, CompressError> {
        let mut scratch = CompressScratch::new();
        let mut out = SparseGradient::empty(0);
        self.decompress_into(payload, &mut scratch, &mut out)?;
        Ok(out)
    }

    fn compress_into(
        &self,
        grad: &SparseGradient,
        scratch: &mut CompressScratch,
        out: &mut BytesMut,
    ) -> Result<SizeReport, CompressError> {
        out.clear();
        let header_bytes = match self.config.momentum {
            Some(rho) => self.momentum_frame(rho, grad, out)?,
            None => {
                self.sketch_into_scratch(grad, scratch);
                csk::write_frame(
                    &self
                        .config
                        .header(grad.dim(), grad.nnz() as u64, key_range(grad)),
                    &scratch.csk_cells,
                    out,
                )
                .map_err(CompressError::Encoding)?
            }
        };
        Ok(self.report(header_bytes, grad.nnz()))
    }

    fn decompress_into(
        &self,
        payload: &[u8],
        scratch: &mut CompressScratch,
        out: &mut SparseGradient,
    ) -> Result<(), CompressError> {
        let header = csk::read_frame(payload, &mut scratch.csk_cells)
            .map_err(|e| CompressError::Corrupt(format!("CSK frame: {e}")))?;
        self.check_frame(&header)?;
        let cells = std::mem::take(&mut scratch.csk_cells);
        let sketch = CountSketch::from_cells(
            header.rows as usize,
            header.cols as usize,
            header.seed,
            Some(cells),
        )
        .map_err(|e| CompressError::Corrupt(format!("CSK table: {e}")))?;
        sketch.top_k_range_into(
            header.k as usize,
            header.key_lo..header.key_end,
            &mut scratch.dec_keys,
            &mut scratch.dec_vals,
        );
        let result = out.assign(header.dim, &scratch.dec_keys, &scratch.dec_vals);
        scratch.csk_cells = sketch.into_cells();
        result.map_err(|e| CompressError::Corrupt(format!("recovered top-k invalid: {e}")))
    }
}

impl MergeableCompressor for CountSketchCompressor {
    fn supports_linear(&self) -> bool {
        true
    }

    fn finish(&self, acc: &MergeAcc) -> Result<SparseGradient, CompressError> {
        let Some(table) = acc.linear() else {
            return acc.to_gradient();
        };
        let c = &self.config;
        if table.rows() != c.rows || table.cols() != c.cols || table.seed() != c.seed {
            return Err(CompressError::Corrupt(format!(
                "accumulated table {}x{} seed={} does not match configured {}x{} seed={}",
                table.rows(),
                table.cols(),
                table.seed(),
                c.rows,
                c.cols,
                c.seed
            )));
        }
        let sketch = CountSketch::from_cells(
            table.rows() as usize,
            table.cols() as usize,
            table.seed(),
            Some(table.cells().to_vec()),
        )
        .map_err(|e| CompressError::Corrupt(format!("accumulated table: {e}")))?;
        let mut keys = Vec::new();
        let mut vals = Vec::new();
        let (lo, end) = table.key_range();
        // Auto-k hops each stamp a per-round count; the merged gradient's
        // support is bounded by the *total* folded nnz, not any single hop's
        // request, so extraction widens to that (still capped at cols/4).
        // Zero-estimate keys are filtered, so a generous bound stays exact.
        let k = if c.auto_k {
            self.config.effective_k(table.nnz()) as usize
        } else {
            table.k() as usize
        };
        sketch.top_k_range_into(k, lo..end, &mut keys, &mut vals);
        SparseGradient::new(table.dim(), keys, vals)
            .map_err(|e| CompressError::Corrupt(format!("recovered top-k invalid: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::MergePolicy;

    fn grad(dim: u64, pairs: &[(u64, f64)]) -> SparseGradient {
        SparseGradient::new(
            dim,
            pairs.iter().map(|&(k, _)| k).collect(),
            pairs.iter().map(|&(_, v)| v).collect(),
        )
        .unwrap()
    }

    fn compressor() -> CountSketchCompressor {
        CountSketchCompressor::new(CountSketchConfig::default()).unwrap()
    }

    #[test]
    fn config_bounds_enforced() {
        for bad in [
            CountSketchConfig {
                rows: 0,
                ..Default::default()
            },
            CountSketchConfig {
                rows: 65,
                ..Default::default()
            },
            CountSketchConfig {
                cols: 0,
                ..Default::default()
            },
            CountSketchConfig {
                k: 0,
                ..Default::default()
            },
            CountSketchConfig {
                momentum: Some(1.0),
                ..Default::default()
            },
            CountSketchConfig {
                momentum: Some(-0.1),
                ..Default::default()
            },
            CountSketchConfig {
                rows: 64,
                cols: u32::MAX / 2,
                ..Default::default()
            },
        ] {
            assert!(CountSketchCompressor::new(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn sparse_roundtrip_is_exact_below_k() {
        let c = compressor();
        let g = grad(40_000, &[(7, 0.5), (90, -0.25), (900, 0.125)]);
        let msg = c.compress(&g).unwrap();
        let d = c.decompress(&msg.payload).unwrap();
        assert_eq!(d.keys(), g.keys());
        assert_eq!(d.values(), g.values());
        assert_eq!(d.dim(), g.dim());
        assert_eq!(msg.report.total(), msg.payload.len());
        assert_eq!(msg.report.pairs, 3);
    }

    #[test]
    fn payload_size_is_shape_not_nnz() {
        let c = compressor();
        // Same key range (the header encodes it) and varint-width-equal nnz
        // (2 vs 100), so only the pair count differs — frames must match.
        let small = c
            .compress(&grad(40_000, &[(0, 1.0), (99 * 17, 0.5)]))
            .unwrap();
        let pairs: Vec<(u64, f64)> = (0..100).map(|i| (i * 17, 0.001 * i as f64)).collect();
        let big = c.compress(&grad(40_000, &pairs)).unwrap();
        assert_eq!(small.payload.len(), big.payload.len());
    }

    #[test]
    fn sharded_decode_stays_within_each_shards_key_range() {
        // Regression: per-shard top-k used to scan the full domain, so a
        // shard's decode could surface ghost keys outside its key range and
        // the merged shards were no longer ascending. The frame's key window
        // confines each shard's scan.
        let c = crate::ShardedCompressor::new(compressor(), 4).unwrap();
        let pairs: Vec<(u64, f64)> = (0..3_000)
            .map(|i| (i * 13 + 5, ((i % 257) as f64 - 128.0) / 64.0))
            .collect();
        let g = grad(50_000, &pairs);
        let msg = c.compress(&g).unwrap();
        let d = c.decompress(&msg.payload).unwrap();
        assert_eq!(d.dim(), g.dim());
        // Decode is lossy (nnz >> k per shard) but every key must come from
        // the input's range, in strictly ascending order (SparseGradient::new
        // inside decompress already enforces ascending; check the bounds).
        assert!(d.nnz() > 0);
        assert!(*d.keys().first().unwrap() >= 5);
        assert!(*d.keys().last().unwrap() <= 2_999 * 13 + 5);
    }

    #[test]
    fn scratch_path_is_byte_identical() {
        let c = compressor();
        let pairs: Vec<(u64, f64)> = (0..500)
            .map(|i| (i * 31, (i as f64 - 250.0) / 64.0))
            .collect();
        let g = grad(40_000, &pairs);
        let msg = c.compress(&g).unwrap();
        let mut scratch = CompressScratch::new();
        let mut out = BytesMut::new();
        let report = c.compress_into(&g, &mut scratch, &mut out).unwrap();
        assert_eq!(&out[..], &msg.payload[..]);
        assert_eq!(report.total(), msg.report.total());
        let mut decoded = SparseGradient::empty(0);
        c.decompress_into(&out, &mut scratch, &mut decoded).unwrap();
        let reference = c.decompress(&msg.payload).unwrap();
        assert_eq!(decoded.keys(), reference.keys());
        assert_eq!(decoded.values(), reference.values());
    }

    #[test]
    fn dense_fast_path_matches_scalar_reference() {
        let c = compressor();
        // One contiguous key run covering > half the domain: dense path.
        let pairs: Vec<(u64, f64)> = (0..4096u64)
            .map(|i| (i + 7, ((i % 97) as f64 - 48.0) / 16.0))
            .collect();
        let g = grad(5_000, &pairs);
        assert!(CountSketchCompressor::is_contiguous_dense(&g));
        let mut scratch = CompressScratch::new();
        let mut out = BytesMut::new();
        c.compress_into(&g, &mut scratch, &mut out).unwrap();
        let (rows, cols) = (c.config.rows as usize, c.config.cols as usize);
        let mut reference = vec![0.0f64; rows * cols];
        CountSketchCompressor::sketch_rows_scalar(&g, &scratch, &mut reference, rows, cols);
        assert!(
            scratch
                .csk_cells
                .iter()
                .zip(&reference)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "dense path cell table must be bit-identical to the scalar scan"
        );
        // And the frame itself matches the allocating (scalar-scan) encoder.
        assert_eq!(&out[..], &c.compress(&g).unwrap().payload[..]);
        // Non-contiguous keys never take the fast path.
        let sparse = grad(5_000, &[(0, 1.0), (4_999, -1.0)]);
        assert!(!CountSketchCompressor::is_contiguous_dense(&sparse));
        // Contiguous but below the density threshold: keep the key scan.
        let short: Vec<(u64, f64)> = (0..100u64).map(|i| (i, 1.0)).collect();
        assert!(!CountSketchCompressor::is_contiguous_dense(&grad(
            5_000, &short
        )));
    }

    #[test]
    fn empty_gradient_roundtrips() {
        let c = compressor();
        let g = SparseGradient::empty(1_000);
        let msg = c.compress(&g).unwrap();
        let d = c.decompress(&msg.payload).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.dim(), 1_000);
    }

    #[test]
    fn frame_mismatch_is_typed() {
        let c = compressor();
        let other = CountSketchCompressor::new(CountSketchConfig {
            seed: 999,
            ..CountSketchConfig::default()
        })
        .unwrap();
        let msg = other.compress(&grad(100, &[(1, 1.0)])).unwrap();
        assert!(matches!(
            c.decompress(&msg.payload),
            Err(CompressError::Corrupt(_))
        ));
        assert!(c.decompress(&[]).is_err());
        assert!(c.decompress(&[0xC5]).is_err());
    }

    #[test]
    fn auto_k_tracks_observed_nnz_per_round() {
        let c = CountSketchCompressor::new(CountSketchConfig {
            auto_k: true,
            k: 1, // ignored in auto mode
            ..CountSketchConfig::default()
        })
        .unwrap();
        // Round 1: 3 pairs → the frame asks for exactly 3 heavy hitters and
        // the sparse round decodes exactly (k=1 would have dropped two).
        let g = grad(40_000, &[(7, 0.5), (90, -0.25), (900, 0.125)]);
        let d = c.decompress(&c.compress(&g).unwrap().payload).unwrap();
        assert_eq!(d.keys(), g.keys());
        assert_eq!(d.values(), g.values());
        // Round 2 (same compressor, denser): k is clamped to cols/4.
        let cap = (CountSketchConfig::default().cols / 4) as usize;
        let pairs: Vec<(u64, f64)> = (0..2 * cap as u64)
            .map(|i| (i * 7, 1.0 + i as f64))
            .collect();
        let dense = c
            .decompress(&c.compress(&grad(40_000, &pairs)).unwrap().payload)
            .unwrap();
        assert!(dense.nnz() <= cap, "{} extracted, cap {cap}", dense.nnz());
    }

    #[test]
    fn auto_k_decoder_rejects_out_of_bounds_frame_k() {
        let auto = CountSketchCompressor::new(CountSketchConfig {
            auto_k: true,
            ..CountSketchConfig::default()
        })
        .unwrap();
        // A fixed-k peer stamps k=1024, which exceeds the auto cap
        // (cols / 4 = 512) and must be rejected as a typed error, not
        // silently honoured.
        let fixed = CountSketchCompressor::new(CountSketchConfig {
            k: 1024,
            ..CountSketchConfig::default()
        })
        .unwrap();
        let msg = fixed.compress(&grad(100, &[(1, 1.0)])).unwrap();
        assert!(matches!(
            auto.decompress(&msg.payload),
            Err(CompressError::Corrupt(_))
        ));
        // The other direction: a fixed-k decoder rejects an auto frame whose
        // per-round k differs from its configured k.
        let auto_msg = auto.compress(&grad(100, &[(1, 1.0), (2, 2.0)])).unwrap();
        assert!(matches!(
            fixed.decompress(&auto_msg.payload),
            Err(CompressError::Corrupt(_))
        ));
    }

    #[test]
    fn auto_k_linear_merge_takes_max_frame_k() {
        let c = CountSketchCompressor::new(CountSketchConfig {
            auto_k: true,
            ..CountSketchConfig::default()
        })
        .unwrap();
        // Two hops with different per-round k (2 pairs vs 3 pairs): the
        // accumulated table extracts with the max, recovering every key.
        let a = grad(4_096, &[(1, 0.5), (100, -0.25)]);
        let b = grad(4_096, &[(100, 0.75), (500, -2.0), (900, 1.5)]);
        let pa = c.compress(&a).unwrap();
        let pb = c.compress(&b).unwrap();
        let mut scratch = CompressScratch::new();
        let mut acc = MergeAcc::new();
        acc.reset(4_096);
        c.accumulate_hop(
            &mut acc,
            &pa.payload,
            1.0,
            MergePolicy::Linear,
            &mut scratch,
        )
        .unwrap();
        c.accumulate_hop(
            &mut acc,
            &pb.payload,
            1.0,
            MergePolicy::Linear,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(acc.linear().unwrap().k(), 3);
        let merged = c.finish(&acc).unwrap();
        let sum = SparseGradient::aggregate(&[a, b]).unwrap();
        assert_eq!(merged.keys(), sum.keys());
        assert_eq!(merged.values(), sum.values());
    }

    #[test]
    fn momentum_accumulates_and_keeps_residual() {
        let rho = 0.5;
        let c = CountSketchCompressor::new(CountSketchConfig {
            momentum: Some(rho),
            ..CountSketchConfig::default()
        })
        .unwrap();
        let g = grad(10_000, &[(3, 1.0)]);
        // Step 1: S = S(g); extract recovers exactly 1.0 and subtracts it.
        let d1 = c.decompress(&c.compress(&g).unwrap().payload).unwrap();
        assert_eq!(d1.keys(), &[3]);
        assert_eq!(d1.values(), &[1.0]);
        // Step 2: S = ρ·0 + S(g) again — full extraction last step means no
        // residual carries, so the decoded value is 1.0 again, not 1.5.
        let d2 = c.decompress(&c.compress(&g).unwrap().payload).unwrap();
        assert_eq!(d2.values(), &[1.0]);
    }

    #[test]
    fn momentum_rho_carries_unextracted_mass() {
        // k=1 forces partial extraction: with two heavy keys only the
        // heavier ships each round; the other decays by ρ but compounds
        // with the fresh contribution (all dyadic → exact arithmetic).
        let c = CountSketchCompressor::new(CountSketchConfig {
            k: 1,
            momentum: Some(0.5),
            ..CountSketchConfig::default()
        })
        .unwrap();
        let g = grad(10_000, &[(3, 1.0), (70, 0.75)]);
        let d1 = c.decompress(&c.compress(&g).unwrap().payload).unwrap();
        assert_eq!(d1.keys(), &[3]); // the heavier key ships first
                                     // Round 2: S = ρ·{70: 0.75} + {3: 1.0, 70: 0.75} → 1.125 beats 1.0.
        let d2 = c.decompress(&c.compress(&g).unwrap().payload).unwrap();
        assert_eq!(d2.keys(), &[70]);
        assert_eq!(d2.values(), &[1.125]);
    }

    #[test]
    fn momentum_state_resets_on_dim_change() {
        let c = CountSketchCompressor::new(CountSketchConfig {
            momentum: Some(0.9),
            ..CountSketchConfig::default()
        })
        .unwrap();
        c.compress(&grad(100, &[(1, 1.0)])).unwrap();
        let d = c
            .decompress(&c.compress(&grad(200, &[(5, 2.0)])).unwrap().payload)
            .unwrap();
        assert_eq!(d.keys(), &[5]);
        assert_eq!(d.values(), &[2.0]);
    }

    #[test]
    fn linear_merge_matches_sketch_of_sum_bit_for_bit() {
        let c = compressor();
        // Dyadic values: every f64 addition below is exact.
        let a = grad(4_096, &[(1, 0.5), (100, -0.25), (900, 1.5)]);
        let b = grad(4_096, &[(100, 0.75), (500, -2.0)]);
        let pa = c.compress(&a).unwrap();
        let pb = c.compress(&b).unwrap();

        let mut scratch = CompressScratch::new();
        let mut acc = MergeAcc::new();
        acc.reset(4_096);
        c.accumulate_hop(
            &mut acc,
            &pa.payload,
            1.0,
            MergePolicy::Linear,
            &mut scratch,
        )
        .unwrap();
        c.accumulate_hop(
            &mut acc,
            &pb.payload,
            1.0,
            MergePolicy::Linear,
            &mut scratch,
        )
        .unwrap();
        let merged = c.finish(&acc).unwrap();

        let sum = SparseGradient::aggregate(&[a, b]).unwrap();
        let reference = c.decompress(&c.compress(&sum).unwrap().payload).unwrap();
        assert_eq!(merged.keys(), reference.keys());
        assert_eq!(merged.values(), reference.values());
    }

    #[test]
    fn linear_hop_payload_is_a_csk_frame() {
        let c = compressor();
        let g = grad(4_096, &[(1, 0.5), (9, -0.25)]);
        let p = c.compress(&g).unwrap();
        let mut scratch = CompressScratch::new();
        let mut acc = MergeAcc::new();
        acc.reset(4_096);
        c.accumulate_hop(&mut acc, &p.payload, 1.0, MergePolicy::Linear, &mut scratch)
            .unwrap();
        let mut hop = BytesMut::new();
        c.emit_hop(&acc, MergePolicy::Linear, &mut scratch, &mut hop)
            .unwrap();
        assert_eq!(hop[0], csk::CSK_MAGIC);
        // The re-emitted frame folds back losslessly.
        let mut acc2 = MergeAcc::new();
        acc2.reset(4_096);
        c.accumulate_hop(&mut acc2, &hop, 1.0, MergePolicy::Linear, &mut scratch)
            .unwrap();
        let d = c.finish(&acc2).unwrap();
        assert_eq!(d.keys(), g.keys());
        assert_eq!(d.values(), g.values());
    }

    #[test]
    fn non_linear_policies_still_work() {
        let c = compressor();
        let g = grad(4_096, &[(1, 0.5), (9, -0.25)]);
        let p = c.compress(&g).unwrap();
        let mut scratch = CompressScratch::new();
        let mut acc = MergeAcc::new();
        acc.reset(4_096);
        // Exact policy decodes the payload to pairs (extraction per hop).
        c.accumulate_hop(&mut acc, &p.payload, 1.0, MergePolicy::Exact, &mut scratch)
            .unwrap();
        assert!(acc.linear().is_none());
        assert_eq!(acc.keys(), g.keys());
        let d = c.finish(&acc).unwrap();
        assert_eq!(d.values(), g.values());
    }

    #[test]
    fn default_mergeables_reject_linear_tables() {
        use crate::baselines::RawCompressor;
        let cs = compressor();
        let raw = RawCompressor::default();
        let g = grad(4_096, &[(1, 0.5)]);
        let p = cs.compress(&g).unwrap();
        let mut scratch = CompressScratch::new();
        let mut acc = MergeAcc::new();
        acc.reset(4_096);
        cs.accumulate_hop(&mut acc, &p.payload, 1.0, MergePolicy::Linear, &mut scratch)
            .unwrap();
        assert!(!raw.supports_linear());
        assert!(matches!(
            raw.finish(&acc),
            Err(CompressError::InvalidConfig(_))
        ));
    }
}
