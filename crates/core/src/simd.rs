//! Combined SIMD dispatch switch for the whole compression stack.
//!
//! The sketches and encoding crates each carry their own lane toggle (they
//! do not depend on one another); this module flips both at once so
//! differential tests can pin every vectorized routine — hashing, bucket
//! lookup, sorting, sign partition, delta-binary packing — to its scalar
//! reference with one call.

/// Forces the scalar reference implementations across all crates, even when
/// the `simd` feature and AVX2/AVX-512 are available. A no-op without the
/// feature.
pub fn force_scalar(on: bool) {
    sketchml_sketches::simd::force_scalar(on);
    sketchml_encoding::simd::force_scalar(on);
}

/// True when any vector lane in the stack is compiled in, supported by this
/// CPU, and not forced off by [`force_scalar`].
pub fn lanes_active() -> bool {
    sketchml_sketches::simd::lanes_active()
        || sketchml_sketches::simd::lanes512_active()
        || sketchml_encoding::simd::lanes_active()
}
