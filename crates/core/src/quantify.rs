//! Quantile-bucket quantification (paper §3.2, Figure 3).
//!
//! Uniform quantification "equally divides the range of gradient values"
//! and therefore snaps the near-zero mass of a skewed gradient (Figure 4)
//! to zero. Quantile-bucket quantification instead **equally divides the
//! values by count**: a quantile sketch supplies `q + 1` equi-depth split
//! points, every value is bucket-sorted between two splits, each bucket is
//! represented by the mean of its two splits, and values are shipped as
//! small bucket *indexes*.
//!
//! This module implements the quantization math and the `Adam+Key+Quan`
//! ablation compressor of Figure 8 (delta-binary keys + bit-packed exact
//! bucket indexes, no MinMaxSketch).

use crate::compressor::{CompressedGradient, GradientCompressor};
use crate::error::CompressError;
use crate::gradient::SparseGradient;
use crate::scratch::CompressScratch;
use bytes::{Buf, BufMut, BytesMut};
use serde::{Deserialize, Serialize};
use sketchml_encoding::stats::SizeReport;
use sketchml_encoding::{bitpack, delta_binary, varint};
use sketchml_sketches::quantile::{GkSummary, MergingQuantileSketch, QuantileSketch, TDigest};
use sketchml_telemetry as telemetry;

/// Result of quantile-bucket quantification over one value array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Quantization {
    /// `q + 1` monotone split points (§3.2 Step 1).
    pub splits: Vec<f64>,
    /// `q` bucket means, `means[i] = (splits[i] + splits[i+1]) / 2`
    /// (§3.2 Step 2).
    pub means: Vec<f64>,
    /// Per-input bucket index in `[0, q)`, ascending-value order
    /// (§3.2 Step 3).
    pub indexes: Vec<u16>,
}

impl Quantization {
    /// Number of buckets `q`.
    pub fn q(&self) -> u16 {
        self.means.len() as u16
    }

    /// Decodes index `i` back to its bucket mean (§3.1 Decode step 4).
    pub fn decode(&self, index: u16) -> Option<f64> {
        self.means.get(index as usize).copied()
    }
}

/// Which quantile sketch drives the split computation (§3.2 Step 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum QuantileBackend {
    /// Mergeable compactor sketch (the DataSketches stand-in; default).
    #[default]
    Merging,
    /// Greenwald–Khanna summary (deterministic εn rank error).
    Gk,
    /// t-digest (tail-accurate centroids).
    TDigest,
}

/// Assigns `value` to a bucket given `q + 1` splits: bucket `i` covers
/// `[splits[i], splits[i+1])`, the last bucket closed above.
#[inline]
pub fn bucket_of(splits: &[f64], value: f64) -> u16 {
    debug_assert!(splits.len() >= 2);
    let q = splits.len() - 1;
    // Interior splits are splits[1..q]; count how many are <= value.
    let idx = splits[1..q].partition_point(|&s| s <= value);
    idx as u16
}

/// Maps a finite f64 to a u64 whose unsigned order matches f64 `<=` order.
/// `v + 0.0` first canonicalizes `-0.0` to `+0.0`, so the two zero bit
/// patterns (equal under `<=` but 2^63 apart as raw bits) share one key.
#[inline]
fn order_key(v: f64) -> u64 {
    let b = (v + 0.0).to_bits();
    // Branchless sign transform: an arithmetic shift smears the sign bit
    // into `s` (all-ones for negatives, zero otherwise), so the xor below
    // is `!b` for negatives and `b | MSB` for positives — value signs are
    // data-dependent, so a conditional here would mispredict.
    let s = ((b as i64) >> 63) as u64;
    b ^ (s | (1 << 63))
}

/// Flat lookup table replacing [`bucket_of`]'s per-value binary search on
/// the hot path. Built once per quantization: interior splits are mapped to
/// monotone [`order_key`]s, and a slot table over the key range stores, per
/// slot, how many interior splits precede it. A lookup is then one key
/// transform, one shift, one table load, and a short linear fixup — no
/// branch mispredictions from a log₂ q search per value.
///
/// In debug builds every lookup asserts agreement with the binary-search
/// slow path.
#[derive(Debug, Default)]
pub struct BucketTable {
    base: u64,
    shift: u32,
    /// `order_key` of each interior split, ascending, followed by
    /// [`INTERIOR_PAD`] `u64::MAX` sentinels so the batch fixup can read a
    /// fixed-width window without bounds checks (no finite f64 maps to
    /// `u64::MAX` — that would be a NaN bit pattern).
    interior: Vec<u64>,
    /// Number of real (non-sentinel) interior keys.
    m: usize,
    /// `slots[i]` = number of interior keys mapping to a slot `< i`.
    slots: Vec<u16>,
}

/// Sentinel entries appended to [`BucketTable::interior`]; also the width of
/// the branch-free fixup window in [`BucketTable::resolve`].
const INTERIOR_PAD: usize = 4;

impl BucketTable {
    /// Rebuilds the table for a monotone `q + 1` split array, reusing the
    /// existing buffers.
    pub fn rebuild(&mut self, splits: &[f64]) {
        debug_assert!(splits.len() >= 2);
        let q = splits.len() - 1;
        self.interior.clear();
        self.slots.clear();
        self.interior
            .extend(splits[1..q].iter().map(|&s| order_key(s)));
        self.m = self.interior.len();
        let (Some(&first), Some(&last)) = (self.interior.first(), self.interior.last()) else {
            return; // q == 1: everything is bucket 0.
        };
        debug_assert!(self.interior.windows(2).all(|w| w[0] <= w[1]));
        self.interior.extend([u64::MAX; INTERIOR_PAD]);
        let span = last - first;
        // ~4 slots per split keeps the linear fixup under one step on
        // average; the cap bounds rebuild cost for adversarial ranges.
        let cap = (4 * self.interior.len())
            .next_power_of_two()
            .clamp(64, 4096) as u64;
        let mut shift = 0u32;
        while (span >> shift) + 1 > cap {
            shift += 1;
        }
        self.base = first;
        self.shift = shift;
        let nslots = ((span >> shift) + 1) as usize;
        self.slots.resize(nslots + 1, 0);
        for &k in &self.interior[..self.m] {
            self.slots[((k - first) >> shift) as usize + 1] += 1;
        }
        for i in 1..self.slots.len() {
            self.slots[i] += self.slots[i - 1];
        }
    }

    /// Bucket of `value`; identical to `bucket_of(splits, value)` for the
    /// `splits` this table was rebuilt from (debug-asserted).
    #[inline]
    pub fn lookup(&self, splits: &[f64], value: f64) -> u16 {
        let got = self.lookup_fast(value);
        debug_assert_eq!(
            got,
            bucket_of(splits, value),
            "bucket table fast path disagrees with binary search for {value}"
        );
        got
    }

    #[inline]
    fn lookup_fast(&self, value: f64) -> u16 {
        if self.m == 0 {
            return 0;
        }
        let k = order_key(value);
        if k < self.base {
            return 0;
        }
        let slot = (((k - self.base) >> self.shift) as usize).min(self.slots.len() - 2);
        self.resolve(self.slots[slot] as usize, k)
    }

    /// Walks `interior` forward from the slot-table starting point `idx` to
    /// the number of interior keys `<= k`. The first [`INTERIOR_PAD`] steps
    /// are a branch-free window of predicated adds (the slot table keeps the
    /// true distance under one step on average, but *which* values need a
    /// step is a coin flip the branchy loop mispredicts on); the sentinel
    /// padding makes the window reads in-bounds for every `idx <= m`. Only
    /// when the window saturates — rare, well-predicted — does the open
    /// loop run.
    #[inline]
    fn resolve(&self, mut idx: usize, k: u64) -> u16 {
        debug_assert!(k < u64::MAX, "u64::MAX order key is a NaN bit pattern");
        let w = &self.interior[idx..idx + INTERIOR_PAD];
        let c = (w[0] <= k) as usize
            + (w[1] <= k) as usize
            + (w[2] <= k) as usize
            + (w[3] <= k) as usize;
        idx += c;
        if c == INTERIOR_PAD {
            while idx < self.m && self.interior[idx] <= k {
                idx += 1;
            }
        }
        idx as u16
    }

    /// Batch counterpart of [`Self::lookup`]: clears `out` and fills it with
    /// the bucket of every value, dispatching to the AVX2 lane when the
    /// `simd` feature is active (scalar path debug-asserted identical).
    pub fn lookup_into(&self, splits: &[f64], values: &[f64], out: &mut Vec<u16>) {
        out.clear();
        out.resize(values.len(), 0);
        if self.m == 0 {
            debug_assert!(values.iter().all(|&v| bucket_of(splits, v) == 0));
            return;
        }
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if sketchml_sketches::simd::lanes_active() {
            // SAFETY: `lanes_active` verified AVX2 at runtime.
            unsafe { self.lookup_avx2(values, out) };
            #[cfg(debug_assertions)]
            {
                let mut reference = vec![0u16; values.len()];
                self.lookup_scalar(values, &mut reference);
                assert_eq!(out.as_slice(), reference.as_slice());
            }
            debug_assert!(out
                .iter()
                .zip(values)
                .all(|(&got, &v)| got == bucket_of(splits, v)));
            return;
        }
        self.lookup_scalar(values, out);
        debug_assert!(out
            .iter()
            .zip(values)
            .all(|(&got, &v)| got == bucket_of(splits, v)));
    }

    /// Scalar reference for [`Self::lookup_into`]: same transform as
    /// [`Self::lookup_fast`] but with the below-range early-out replaced by
    /// a mask (out-of-range keys wrap on subtract, but the clamped slot stays
    /// in bounds and the masked start index is 0, which [`Self::resolve`]
    /// leaves untouched because `k < interior[0]`).
    fn lookup_scalar(&self, values: &[f64], out: &mut [u16]) {
        let maxslot = self.slots.len() - 2;
        for (o, &v) in out.iter_mut().zip(values) {
            let k = order_key(v);
            let mask = ((k >= self.base) as usize).wrapping_neg();
            let slot = ((k.wrapping_sub(self.base) >> self.shift) as usize).min(maxslot);
            let idx = self.slots[slot] as usize & mask;
            *o = self.resolve(idx, k);
        }
    }

    /// AVX2 lane: order-key transform, range mask, and slot computation for
    /// four values per iteration; the slot-table load and window fixup stay
    /// scalar (u16 gathers don't exist, and the fixup window is already
    /// branch-free).
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[target_feature(enable = "avx2")]
    unsafe fn lookup_avx2(&self, values: &[f64], out: &mut [u16]) {
        use core::arch::x86_64::*;
        let msb = _mm256_set1_epi64x(i64::MIN);
        let zero = _mm256_setzero_si256();
        let basev = _mm256_set1_epi64x(self.base as i64);
        let basef = _mm256_xor_si256(basev, msb);
        let shiftv = _mm256_set1_epi64x(self.shift as i64);
        let maxslot = (self.slots.len() - 2) as u64;
        let maxv = _mm256_set1_epi64x(maxslot as i64);
        let maxf = _mm256_xor_si256(maxv, msb);
        let n = values.len();
        let mut i = 0;
        while i + 4 <= n {
            let v = _mm256_loadu_pd(values.as_ptr().add(i));
            // `+ 0.0` canonicalizes -0.0, exactly as `order_key` does.
            let b = _mm256_castpd_si256(_mm256_add_pd(v, _mm256_setzero_pd()));
            let sign = _mm256_cmpgt_epi64(zero, b);
            let k = _mm256_xor_si256(b, _mm256_or_si256(sign, msb));
            // Unsigned compares via the sign-flip trick (AVX2 only has
            // signed 64-bit compares).
            let kf = _mm256_xor_si256(k, msb);
            let below = _mm256_cmpgt_epi64(basef, kf);
            let t = _mm256_sub_epi64(k, basev);
            let slot = _mm256_srlv_epi64(t, shiftv);
            let slotf = _mm256_xor_si256(slot, msb);
            let over = _mm256_cmpgt_epi64(slotf, maxf);
            let slot = _mm256_blendv_epi8(slot, maxv, over);
            let mut ks = [0u64; 4];
            let mut ss = [0u64; 4];
            let mut bs = [0u64; 4];
            _mm256_storeu_si256(ks.as_mut_ptr().cast(), k);
            _mm256_storeu_si256(ss.as_mut_ptr().cast(), slot);
            _mm256_storeu_si256(bs.as_mut_ptr().cast(), below);
            for j in 0..4 {
                let idx = self.slots[ss[j] as usize] as usize & !(bs[j] as usize);
                out[i + j] = self.resolve(idx, ks[j]);
            }
            i += 4;
        }
        self.lookup_scalar(&values[i..], &mut out[i..]);
    }
}

/// Runs quantile-bucket quantification over `values` with (at most) `q`
/// buckets using a quantile sketch of `sketch_capacity` (§3.2 Steps 1–3).
///
/// The effective bucket count is capped at `max(8, n / cap_divisor)` (and
/// never above `n`): the paper's `q = 256` assumes gradients with millions
/// of pairs, where the `8q`-byte means table is negligible (§3.5, "q << d
/// in most cases"). A scaled-down gradient keeps the same *relative*
/// overhead by scaling `q` down with it; accuracy is unaffected in practice
/// because a gradient with few values needs few equi-depth buckets to
/// describe. `cap_divisor = 32` reproduces the paper's overhead regime;
/// smaller divisors trade bytes for finer buckets (the Figure 13
/// sensitivity axis).
///
/// # Errors
/// [`CompressError::InvalidConfig`] if `q == 0` or `cap_divisor == 0`;
/// [`CompressError::InvalidGradient`] if `values` is empty.
pub fn quantize(
    values: &[f64],
    q: u16,
    sketch_capacity: usize,
    cap_divisor: usize,
) -> Result<Quantization, CompressError> {
    quantize_with(
        values,
        q,
        sketch_capacity,
        cap_divisor,
        QuantileBackend::Merging,
    )
}

/// [`quantize`] with an explicit quantile-sketch backend.
///
/// # Errors
/// Same contract as [`quantize`].
pub fn quantize_with(
    values: &[f64],
    q: u16,
    sketch_capacity: usize,
    cap_divisor: usize,
    backend: QuantileBackend,
) -> Result<Quantization, CompressError> {
    if q == 0 {
        return Err(CompressError::InvalidConfig("q must be positive".into()));
    }
    if cap_divisor == 0 {
        return Err(CompressError::InvalidConfig(
            "cap_divisor must be positive".into(),
        ));
    }
    if values.is_empty() {
        return Err(CompressError::InvalidGradient(
            "cannot quantize an empty value array".into(),
        ));
    }
    let q_eff = (q as usize)
        .min((values.len() / cap_divisor).max(8))
        .min(values.len()) as u16;
    let splits = {
        let _t = telemetry::time(telemetry::Stage::QuantileBuild);
        match backend {
            QuantileBackend::Merging => {
                let mut sketch = MergingQuantileSketch::new(sketch_capacity.max(2))?;
                sketch.extend_from_slice(values);
                sketch.splits(q_eff as usize)?
            }
            QuantileBackend::Gk => {
                let mut sketch = GkSummary::for_buckets(q_eff as usize)?;
                sketch.extend_from_slice(values);
                sketch.splits(q_eff as usize)?
            }
            QuantileBackend::TDigest => {
                let mut sketch = TDigest::new((sketch_capacity.max(16)) as f64)?;
                sketch.extend_from_slice(values);
                sketch.splits(q_eff as usize)?
            }
        }
    };
    let _t = telemetry::time(telemetry::Stage::Bucketize);
    let means: Vec<f64> = splits.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect();
    let indexes: Vec<u16> = values.iter().map(|&v| bucket_of(&splits, v)).collect();
    Ok(Quantization {
        splits,
        means,
        indexes,
    })
}

/// Pooled buffers for [`quantize_into`]: the quantile sketch, its weighted-
/// item scratch, and the split/mean/index outputs, all reused across calls.
#[derive(Debug, Default)]
pub struct QuantScratch {
    sketch: Option<MergingQuantileSketch>,
    items: Vec<(f64, u64)>,
    pub(crate) splits: Vec<f64>,
    pub(crate) means: Vec<f64>,
    pub(crate) indexes: Vec<u16>,
    table: BucketTable,
}

/// [`quantize_with`] into pooled buffers: fills `qs.splits` / `qs.means` /
/// `qs.indexes` with *exactly* the values the allocating path produces
/// (the reused Merging sketch is [`MergingQuantileSketch::reset`] so its
/// compaction parity replays identically), while performing zero heap
/// allocations in steady state for the Merging backend. Bucket indexes are
/// assigned through a [`BucketTable`] instead of a per-value binary search.
///
/// # Errors
/// Same contract as [`quantize`].
pub fn quantize_into(
    values: &[f64],
    q: u16,
    sketch_capacity: usize,
    cap_divisor: usize,
    backend: QuantileBackend,
    qs: &mut QuantScratch,
) -> Result<(), CompressError> {
    if q == 0 {
        return Err(CompressError::InvalidConfig("q must be positive".into()));
    }
    if cap_divisor == 0 {
        return Err(CompressError::InvalidConfig(
            "cap_divisor must be positive".into(),
        ));
    }
    if values.is_empty() {
        return Err(CompressError::InvalidGradient(
            "cannot quantize an empty value array".into(),
        ));
    }
    let q_eff = (q as usize)
        .min((values.len() / cap_divisor).max(8))
        .min(values.len()) as u16;
    {
        let _t = telemetry::time(telemetry::Stage::QuantileBuild);
        match backend {
            QuantileBackend::Merging => {
                let cap = sketch_capacity.max(2);
                let sketch = match &mut qs.sketch {
                    Some(s) if s.capacity() == cap => {
                        s.reset();
                        s
                    }
                    slot => slot.insert(MergingQuantileSketch::new(cap)?),
                };
                sketch.extend_from_slice(values);
                sketch.splits_into(q_eff as usize, &mut qs.items, &mut qs.splits)?;
            }
            QuantileBackend::Gk => {
                let mut sketch = GkSummary::for_buckets(q_eff as usize)?;
                sketch.extend_from_slice(values);
                qs.splits.clear();
                qs.splits.extend_from_slice(&sketch.splits(q_eff as usize)?);
            }
            QuantileBackend::TDigest => {
                let mut sketch = TDigest::new((sketch_capacity.max(16)) as f64)?;
                sketch.extend_from_slice(values);
                qs.splits.clear();
                qs.splits.extend_from_slice(&sketch.splits(q_eff as usize)?);
            }
        }
    }
    let _t = telemetry::time(telemetry::Stage::Bucketize);
    qs.means.clear();
    qs.means
        .extend(qs.splits.windows(2).map(|w| (w[0] + w[1]) / 2.0));
    qs.table.rebuild(&qs.splits);
    qs.table.lookup_into(&qs.splits, values, &mut qs.indexes);
    Ok(())
}

/// Appendix A.1 variance bound: `E‖g − ĝ‖² <= d/(4q) · (φ²min + φ²max)`.
pub fn variance_bound(d: usize, q: u16, phi_min: f64, phi_max: f64) -> f64 {
    d as f64 / (4.0 * q as f64) * (phi_min * phi_min + phi_max * phi_max)
}

/// Empirical quantification variance `Σ (v_i − mean(bucket(v_i)))²`.
pub fn empirical_variance(values: &[f64], quant: &Quantization) -> f64 {
    values
        .iter()
        .zip(&quant.indexes)
        .map(|(&v, &b)| {
            let m = quant.means[b as usize];
            (v - m) * (v - m)
        })
        .sum()
}

/// The `Adam+Key+Quan` ablation compressor (Figure 8): delta-binary keys +
/// quantile-bucket quantification with **exact** bit-packed indexes (the
/// MinMaxSketch stage is bypassed).
///
/// Unlike the full pipeline, this variant quantifies positive and negative
/// values together, exactly as Figure 3 depicts — which is what exposes the
/// "reversed gradient, Case 1" hazard that §3.3's Solution 1 later fixes.
#[derive(Debug, Clone)]
pub struct QuantCompressor {
    /// Maximum bucket count `q` (default 256).
    pub buckets: u16,
    /// Quantile sketch capacity `m` (default 128).
    pub sketch_capacity: usize,
}

impl Default for QuantCompressor {
    fn default() -> Self {
        QuantCompressor {
            buckets: 256,
            sketch_capacity: 128,
        }
    }
}

const QUANT_MAGIC: u8 = 0xA5;

impl GradientCompressor for QuantCompressor {
    fn name(&self) -> &'static str {
        "Adam+Key+Quan"
    }

    fn compress(&self, grad: &SparseGradient) -> Result<CompressedGradient, CompressError> {
        if self.buckets == 0 {
            return Err(CompressError::InvalidConfig(
                "buckets must be positive".into(),
            ));
        }
        let mut buf = BytesMut::new();
        buf.put_u8(QUANT_MAGIC);
        varint::write_u64(&mut buf, grad.dim());
        varint::write_u64(&mut buf, grad.nnz() as u64);
        let mut report = SizeReport {
            pairs: grad.nnz(),
            ..SizeReport::default()
        };
        if grad.is_empty() {
            report.header_bytes = buf.len();
            return Ok(CompressedGradient {
                payload: buf.freeze(),
                report,
            });
        }
        let header_so_far = buf.len();
        let key_bytes = delta_binary::encode_keys(grad.keys(), &mut buf)?;

        let quant = quantize(grad.values(), self.buckets, self.sketch_capacity, 32)?;
        let q = quant.q();
        let before_values = buf.len();
        varint::write_u64(&mut buf, q as u64);
        for &m in &quant.means {
            buf.put_f64_le(m);
        }
        let bits = bitpack::bits_for(q.saturating_sub(1));
        buf.put_u8(bits as u8);
        bitpack::pack_u16(&quant.indexes, bits, &mut buf)?;

        report.key_bytes = key_bytes;
        report.value_bytes = buf.len() - before_values;
        report.header_bytes = header_so_far;
        Ok(CompressedGradient {
            payload: buf.freeze(),
            report,
        })
    }

    fn decompress(&self, payload: &[u8]) -> Result<SparseGradient, CompressError> {
        let mut buf = payload;
        if !buf.has_remaining() || buf.get_u8() != QUANT_MAGIC {
            return Err(CompressError::Corrupt("bad Adam+Key+Quan magic".into()));
        }
        let dim = varint::read_u64(&mut buf)?;
        let nnz = varint::read_u64(&mut buf)? as usize;
        if nnz == 0 {
            return Ok(SparseGradient::empty(dim));
        }
        let keys = delta_binary::decode_keys(&mut buf)?;
        if keys.len() != nnz {
            return Err(CompressError::Corrupt(format!(
                "declared {nnz} pairs but decoded {} keys",
                keys.len()
            )));
        }
        let q = varint::read_u64(&mut buf)? as usize;
        // Checked multiply: a wire-controlled q must not wrap past the
        // remaining-bytes test (each mean costs 8 bytes + 1 bit-width byte).
        let means_need = q
            .checked_mul(8)
            .and_then(|b| b.checked_add(1))
            .ok_or_else(|| CompressError::Corrupt(format!("bucket count {q} overflows")))?;
        if q == 0 || buf.remaining() < means_need {
            return Err(CompressError::Corrupt("truncated bucket means".into()));
        }
        let means: Vec<f64> = (0..q).map(|_| buf.get_f64_le()).collect();
        let bits = buf.get_u8() as u32;
        let indexes = bitpack::unpack_u16(&mut buf, nnz, bits)?;
        let values: Vec<f64> = indexes
            .iter()
            .map(|&i| {
                means.get(i as usize).copied().ok_or_else(|| {
                    CompressError::Corrupt(format!("bucket index {i} out of range {q}"))
                })
            })
            .collect::<Result<_, _>>()?;
        SparseGradient::new(dim, keys, values)
    }

    fn compress_into(
        &self,
        grad: &SparseGradient,
        scratch: &mut CompressScratch,
        out: &mut BytesMut,
    ) -> Result<SizeReport, CompressError> {
        if self.buckets == 0 {
            return Err(CompressError::InvalidConfig(
                "buckets must be positive".into(),
            ));
        }
        out.clear();
        out.put_u8(QUANT_MAGIC);
        varint::write_u64(out, grad.dim());
        varint::write_u64(out, grad.nnz() as u64);
        let mut report = SizeReport {
            pairs: grad.nnz(),
            ..SizeReport::default()
        };
        if grad.is_empty() {
            report.header_bytes = out.len();
            return Ok(report);
        }
        let header_so_far = out.len();
        let key_bytes = delta_binary::encode_keys_into(grad.keys(), out)?;

        quantize_into(
            grad.values(),
            self.buckets,
            self.sketch_capacity,
            32,
            QuantileBackend::Merging,
            &mut scratch.quant,
        )?;
        let q = scratch.quant.means.len() as u16;
        let before_values = out.len();
        varint::write_u64(out, q as u64);
        for &m in &scratch.quant.means {
            out.put_f64_le(m);
        }
        let bits = bitpack::bits_for(q.saturating_sub(1));
        out.put_u8(bits as u8);
        bitpack::pack_u16_into(&scratch.quant.indexes, bits, out)?;

        report.key_bytes = key_bytes;
        report.value_bytes = out.len() - before_values;
        report.header_bytes = header_so_far;
        Ok(report)
    }

    fn decompress_into(
        &self,
        payload: &[u8],
        scratch: &mut CompressScratch,
        out: &mut SparseGradient,
    ) -> Result<(), CompressError> {
        let mut buf = payload;
        if !buf.has_remaining() || buf.get_u8() != QUANT_MAGIC {
            return Err(CompressError::Corrupt("bad Adam+Key+Quan magic".into()));
        }
        let dim = varint::read_u64(&mut buf)?;
        let nnz = varint::read_u64(&mut buf)? as usize;
        if nnz == 0 {
            return out.assign(dim, &[], &[]);
        }
        delta_binary::decode_keys_into(&mut buf, &mut scratch.dec_keys)?;
        if scratch.dec_keys.len() != nnz {
            return Err(CompressError::Corrupt(format!(
                "declared {nnz} pairs but decoded {} keys",
                scratch.dec_keys.len()
            )));
        }
        let q = varint::read_u64(&mut buf)? as usize;
        // Checked multiply: a wire-controlled q must not wrap past the
        // remaining-bytes test (each mean costs 8 bytes + 1 bit-width byte).
        let means_need = q
            .checked_mul(8)
            .and_then(|b| b.checked_add(1))
            .ok_or_else(|| CompressError::Corrupt(format!("bucket count {q} overflows")))?;
        if q == 0 || buf.remaining() < means_need {
            return Err(CompressError::Corrupt("truncated bucket means".into()));
        }
        scratch.dec_means.clear();
        scratch.dec_means.reserve(q);
        for _ in 0..q {
            scratch.dec_means.push(buf.get_f64_le());
        }
        let bits = buf.get_u8() as u32;
        bitpack::unpack_u16_into(&mut buf, nnz, bits, &mut scratch.dec_idx)?;
        scratch.dec_vals.clear();
        scratch.dec_vals.reserve(nnz);
        for &i in &scratch.dec_idx {
            let m = scratch.dec_means.get(i as usize).copied().ok_or_else(|| {
                CompressError::Corrupt(format!("bucket index {i} out of range {q}"))
            })?;
            scratch.dec_vals.push(m);
        }
        out.assign(dim, &scratch.dec_keys, &scratch.dec_vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn skewed_values(n: usize, seed: u64) -> Vec<f64> {
        // Figure 4-like distribution: dense near zero, thin tails.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                sign * rng.gen::<f64>().powi(6) * 0.35
            })
            .collect()
    }

    #[test]
    fn bucket_of_respects_split_boundaries() {
        let splits = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(bucket_of(&splits, -0.5), 0);
        assert_eq!(bucket_of(&splits, 0.0), 0);
        assert_eq!(bucket_of(&splits, 0.99), 0);
        assert_eq!(bucket_of(&splits, 1.0), 1);
        assert_eq!(bucket_of(&splits, 2.5), 2);
        assert_eq!(bucket_of(&splits, 3.0), 2);
        assert_eq!(bucket_of(&splits, 99.0), 2);
    }

    #[test]
    fn bucket_table_agrees_with_binary_search() {
        let mut rng = StdRng::seed_from_u64(71);
        let mut table = BucketTable::default();
        for _ in 0..50 {
            let n = rng.gen_range(2..40usize);
            let mut splits: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
            splits.sort_by(f64::total_cmp);
            // Inject duplicate splits (clamped-monotone outputs have them).
            if n > 4 {
                splits[2] = splits[1];
            }
            table.rebuild(&splits);
            for _ in 0..500 {
                let v = rng.gen::<f64>() * 6.0 - 3.0;
                assert_eq!(table.lookup(&splits, v), bucket_of(&splits, v), "v={v}");
            }
            for &s in &splits {
                assert_eq!(table.lookup(&splits, s), bucket_of(&splits, s));
                let lo = f64::from_bits(s.to_bits().wrapping_sub(1));
                let hi = f64::from_bits(s.to_bits().wrapping_add(1));
                for probe in [lo, hi] {
                    if probe.is_finite() {
                        assert_eq!(table.lookup(&splits, probe), bucket_of(&splits, probe));
                    }
                }
            }
        }
    }

    #[test]
    fn bucket_table_handles_signed_zero_and_degenerate_splits() {
        let mut table = BucketTable::default();
        // -0.0 and 0.0 compare equal under f64 <= but have distant bit
        // patterns; the order-key canonicalization must agree with bucket_of.
        let splits = [-1.0, -0.0, 1.0];
        table.rebuild(&splits);
        for v in [-2.0, -0.5, -0.0, 0.0, 0.5, 2.0, -1.0, 1.0] {
            assert_eq!(table.lookup(&splits, v), bucket_of(&splits, v), "v={v}");
        }
        let splits = [0.0, -0.0, 5.0]; // interior split is -0.0 itself
        table.rebuild(&splits);
        for v in [-0.0, 0.0, 1.0, -1.0] {
            assert_eq!(table.lookup(&splits, v), bucket_of(&splits, v), "v={v}");
        }
        // q = 1: no interior splits, everything is bucket 0.
        let splits = [3.0, 7.0];
        table.rebuild(&splits);
        assert_eq!(table.lookup(&splits, 100.0), 0);
        // All splits identical (constant gradient side).
        let splits = [2.0, 2.0, 2.0, 2.0];
        table.rebuild(&splits);
        for v in [1.0, 2.0, 3.0] {
            assert_eq!(table.lookup(&splits, v), bucket_of(&splits, v), "v={v}");
        }
    }

    #[test]
    fn quantize_into_matches_quantize_bitwise_across_reuse() {
        let mut qs = QuantScratch::default();
        for (i, n) in [500usize, 3_000, 120, 9_000].iter().enumerate() {
            let values = skewed_values(*n, 80 + i as u64);
            let reference = quantize(&values, 256, 128, 32).unwrap();
            quantize_into(&values, 256, 128, 32, QuantileBackend::Merging, &mut qs).unwrap();
            assert_eq!(qs.splits, reference.splits, "round {i}: splits diverged");
            assert_eq!(qs.means, reference.means, "round {i}: means diverged");
            assert_eq!(qs.indexes, reference.indexes, "round {i}: indexes diverged");
        }
        assert!(quantize_into(&[], 8, 128, 32, QuantileBackend::Merging, &mut qs).is_err());
        assert!(quantize_into(&[1.0], 0, 128, 32, QuantileBackend::Merging, &mut qs).is_err());
        assert!(quantize_into(&[1.0], 8, 128, 0, QuantileBackend::Merging, &mut qs).is_err());
    }

    #[test]
    fn quantize_produces_consistent_shapes() {
        let values = skewed_values(5_000, 61);
        let q = quantize(&values, 64, 128, 32).unwrap();
        assert_eq!(q.q(), 64);
        assert_eq!(q.splits.len(), 65);
        assert_eq!(q.means.len(), 64);
        assert_eq!(q.indexes.len(), values.len());
        for w in q.splits.windows(2) {
            assert!(w[0] <= w[1]);
        }
        for (i, &m) in q.means.iter().enumerate() {
            assert!(m >= q.splits[i] && m <= q.splits[i + 1]);
        }
    }

    #[test]
    fn quantize_caps_buckets_at_value_count() {
        let q = quantize(&[1.0, 2.0, 3.0], 256, 128, 32).unwrap();
        assert_eq!(q.q(), 3);
        assert_eq!(quantize(&[5.0], 256, 128, 32).unwrap().q(), 1);
    }

    #[test]
    fn quantize_rejects_bad_inputs() {
        assert!(quantize(&[], 8, 128, 32).is_err());
        assert!(quantize(&[1.0], 0, 128, 32).is_err());
        assert!(quantize(&[1.0], 8, 128, 0).is_err());
    }

    #[test]
    fn buckets_are_equi_depth_on_skewed_data() {
        // The whole point vs uniform quantification: each bucket holds
        // roughly n/q values even when the distribution is skewed.
        let values = skewed_values(20_000, 62);
        let q = quantize(&values, 16, 256, 32).unwrap();
        let mut counts = [0usize; 16];
        for &i in &q.indexes {
            counts[i as usize] += 1;
        }
        let expect = values.len() / 16;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect as f64).abs() < expect as f64 * 0.5,
                "bucket {b}: {c} vs ~{expect}"
            );
        }
    }

    #[test]
    fn variance_within_appendix_a1_bound() {
        let values = skewed_values(10_000, 63);
        for q in [16u16, 64, 256] {
            let quant = quantize(&values, q, 256, 32).unwrap();
            let observed = empirical_variance(&values, &quant);
            let phi_min = values.iter().copied().fold(f64::INFINITY, f64::min);
            let phi_max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let bound = variance_bound(values.len(), quant.q(), phi_min, phi_max);
            assert!(
                observed <= bound,
                "q={q}: observed variance {observed} exceeds A.1 bound {bound}"
            );
        }
    }

    #[test]
    fn more_buckets_reduce_variance() {
        let values = skewed_values(10_000, 64);
        let v16 = empirical_variance(&values, &quantize(&values, 16, 256, 32).unwrap());
        let v256 = empirical_variance(&values, &quantize(&values, 256, 256, 32).unwrap());
        assert!(v256 < v16, "q=256 variance {v256} !< q=16 variance {v16}");
    }

    #[test]
    fn quant_compressor_roundtrip_preserves_keys_exactly() {
        let mut rng = StdRng::seed_from_u64(65);
        let dim = 100_000u64;
        let mut keys: Vec<u64> = (0..2_000u64).map(|_| rng.gen_range(0..dim)).collect();
        keys.sort_unstable();
        keys.dedup();
        let values = skewed_values(keys.len(), 66);
        let grad = SparseGradient::new(dim, keys.clone(), values).unwrap();

        let c = QuantCompressor::default();
        let msg = c.compress(&grad).unwrap();
        let decoded = c.decompress(&msg.payload).unwrap();
        assert_eq!(decoded.keys(), grad.keys(), "keys must be lossless");
        assert_eq!(decoded.dim(), dim);
        // Values land on bucket means: bounded error.
        for ((_, v), (_, d)) in grad.iter().zip(decoded.iter()) {
            assert!((v - d).abs() < 0.35, "error too large: {v} vs {d}");
        }
    }

    #[test]
    fn quant_compressor_compresses_well() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 13).collect();
        let values = skewed_values(keys.len(), 67);
        let grad = SparseGradient::new(200_000, keys, values).unwrap();
        let msg = QuantCompressor::default().compress(&grad).unwrap();
        // 12 bytes/pair raw → expect > 4x compression.
        assert!(
            msg.report.compression_rate() > 4.0,
            "rate {}",
            msg.report.compression_rate()
        );
    }

    #[test]
    fn quant_compressor_empty_gradient() {
        let g = SparseGradient::empty(1000);
        let c = QuantCompressor::default();
        let msg = c.compress(&g).unwrap();
        let decoded = c.decompress(&msg.payload).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(decoded.dim(), 1000);
    }

    #[test]
    fn quant_compressor_rejects_garbage() {
        let c = QuantCompressor::default();
        assert!(c.decompress(&[]).is_err());
        assert!(c.decompress(&[0xFF, 1, 2, 3]).is_err());
        // Truncations of a valid message must error, never panic.
        let grad = SparseGradient::new(100, vec![1, 5, 9], vec![0.1, -0.2, 0.3]).unwrap();
        let msg = c.compress(&grad).unwrap();
        for cut in 0..msg.payload.len() {
            let _ = c.decompress(&msg.payload[..cut]);
        }
    }

    #[test]
    fn quantization_decode_maps_indexes_to_means() {
        let values = skewed_values(1_000, 99);
        let q = quantize(&values, 16, 128, 32).unwrap();
        for (i, &m) in q.means.iter().enumerate() {
            assert_eq!(q.decode(i as u16), Some(m));
        }
        assert_eq!(q.decode(q.q()), None);
    }

    #[test]
    fn backends_agree_on_equi_depth_shape() {
        use super::QuantileBackend;
        let values = skewed_values(20_000, 101);
        for backend in [
            QuantileBackend::Merging,
            QuantileBackend::Gk,
            QuantileBackend::TDigest,
        ] {
            let quant = quantize_with(&values, 16, 256, 32, backend).unwrap();
            let mut counts = vec![0usize; quant.q() as usize];
            for &i in &quant.indexes {
                counts[i as usize] += 1;
            }
            let expect = values.len() / quant.q() as usize;
            for (b, &c) in counts.iter().enumerate() {
                assert!(
                    (c as f64 - expect as f64).abs() < expect as f64 * 0.6,
                    "{backend:?} bucket {b}: {c} vs ~{expect}"
                );
            }
        }
    }
}
