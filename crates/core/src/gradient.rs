//! Sparse gradient representation (paper §2.2 data model).
//!
//! A gradient `g ∈ R^D` produced from sparse training data is itself sparse;
//! SketchML stores the nonzero elements as key-value pairs `{(k_j, v_j)}`
//! with keys in ascending order — the property the delta-binary key codec
//! exploits (§3.4).

use crate::error::CompressError;
use serde::{Deserialize, Serialize};

/// A sparse gradient vector: ascending keys (model dimensions) and their
/// nonzero values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseGradient {
    dim: u64,
    keys: Vec<u64>,
    values: Vec<f64>,
}

impl SparseGradient {
    /// Builds a gradient from parallel key/value arrays.
    ///
    /// # Errors
    /// [`CompressError::InvalidGradient`] if lengths differ, keys are not
    /// strictly ascending, any key `>= dim`, or any value is non-finite.
    pub fn new(dim: u64, keys: Vec<u64>, values: Vec<f64>) -> Result<Self, CompressError> {
        if keys.len() != values.len() {
            return Err(CompressError::InvalidGradient(format!(
                "{} keys but {} values",
                keys.len(),
                values.len()
            )));
        }
        let mut prev: Option<u64> = None;
        for (i, &k) in keys.iter().enumerate() {
            if k >= dim {
                return Err(CompressError::InvalidGradient(format!(
                    "key {k} at position {i} out of range for dimension {dim}"
                )));
            }
            if let Some(p) = prev {
                if k <= p {
                    return Err(CompressError::InvalidGradient(format!(
                        "keys must be strictly ascending (position {i})"
                    )));
                }
            }
            prev = Some(k);
        }
        if let Some((i, v)) = values.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(CompressError::InvalidGradient(format!(
                "non-finite value {v} at position {i}"
            )));
        }
        Ok(SparseGradient { dim, keys, values })
    }

    /// Builds a gradient from a dense vector, keeping entries with
    /// `|v| > threshold` (use `0.0` to keep every nonzero).
    pub fn from_dense(dense: &[f64], threshold: f64) -> Self {
        let mut keys = Vec::new();
        let mut values = Vec::new();
        for (k, &v) in dense.iter().enumerate() {
            if v.abs() > threshold && v != 0.0 {
                keys.push(k as u64);
                values.push(v);
            }
        }
        SparseGradient {
            dim: dense.len() as u64,
            keys,
            values,
        }
    }

    /// Overwrites this gradient in place from parallel key/value slices,
    /// reusing its existing buffer capacity — the allocation-free counterpart
    /// of [`Self::new`], with the identical validation contract.
    ///
    /// # Errors
    /// See [`Self::new`]. On error the gradient is left empty (dimension
    /// `dim`).
    pub fn assign(&mut self, dim: u64, keys: &[u64], values: &[f64]) -> Result<(), CompressError> {
        self.dim = dim;
        self.keys.clear();
        self.values.clear();
        if keys.len() != values.len() {
            return Err(CompressError::InvalidGradient(format!(
                "{} keys but {} values",
                keys.len(),
                values.len()
            )));
        }
        let mut prev: Option<u64> = None;
        for (i, &k) in keys.iter().enumerate() {
            if k >= dim {
                return Err(CompressError::InvalidGradient(format!(
                    "key {k} at position {i} out of range for dimension {dim}"
                )));
            }
            if let Some(p) = prev {
                if k <= p {
                    return Err(CompressError::InvalidGradient(format!(
                        "keys must be strictly ascending (position {i})"
                    )));
                }
            }
            prev = Some(k);
        }
        if let Some((i, v)) = values.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(CompressError::InvalidGradient(format!(
                "non-finite value {v} at position {i}"
            )));
        }
        self.keys.extend_from_slice(keys);
        self.values.extend_from_slice(values);
        Ok(())
    }

    /// [`Self::assign`] from `(key, value)` pairs (must already be in
    /// ascending key order).
    ///
    /// # Errors
    /// See [`Self::assign`].
    pub fn assign_pairs(&mut self, dim: u64, pairs: &[(u64, f64)]) -> Result<(), CompressError> {
        self.dim = dim;
        self.keys.clear();
        self.values.clear();
        let mut prev: Option<u64> = None;
        for (i, &(k, v)) in pairs.iter().enumerate() {
            if k >= dim {
                return Err(CompressError::InvalidGradient(format!(
                    "key {k} at position {i} out of range for dimension {dim}"
                )));
            }
            if let Some(p) = prev {
                if k <= p {
                    return Err(CompressError::InvalidGradient(format!(
                        "keys must be strictly ascending (position {i})"
                    )));
                }
            }
            prev = Some(k);
            if !v.is_finite() {
                return Err(CompressError::InvalidGradient(format!(
                    "non-finite value {v} at position {i}"
                )));
            }
        }
        self.keys.extend(pairs.iter().map(|&(k, _)| k));
        self.values.extend(pairs.iter().map(|&(_, v)| v));
        Ok(())
    }

    /// Builds an empty gradient over `dim` dimensions.
    pub fn empty(dim: u64) -> Self {
        SparseGradient {
            dim,
            keys: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Model dimensionality `D`.
    pub fn dim(&self) -> u64 {
        self.dim
    }

    /// Number of nonzero entries `d`.
    pub fn nnz(&self) -> usize {
        self.keys.len()
    }

    /// Whether the gradient has no nonzero entries.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Ascending keys of the nonzero entries.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Values aligned with [`Self::keys`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Gradient sparsity `d / D` (the Figure 8(d) metric).
    pub fn sparsity(&self) -> f64 {
        if self.dim == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.dim as f64
        }
    }

    /// Iterator over `(key, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.keys.iter().copied().zip(self.values.iter().copied())
    }

    /// Euclidean norm of the values.
    pub fn l2_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Materializes the dense vector (test/diagnostic helper).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.dim as usize];
        for (k, v) in self.iter() {
            out[k as usize] = v;
        }
        out
    }

    /// Merges `others` into an element-wise **sum** (driver-side gradient
    /// aggregation over workers, §2.2: "we need to aggregate gradients
    /// proposed by W workers").
    ///
    /// # Errors
    /// [`CompressError::InvalidGradient`] if dimensions differ.
    pub fn aggregate(parts: &[SparseGradient]) -> Result<SparseGradient, CompressError> {
        let Some(first) = parts.first() else {
            return Err(CompressError::InvalidGradient(
                "cannot aggregate zero gradients".into(),
            ));
        };
        let dim = first.dim;
        if let Some(bad) = parts.iter().find(|g| g.dim != dim) {
            return Err(CompressError::InvalidGradient(format!(
                "dimension mismatch: {} vs {dim}",
                bad.dim
            )));
        }
        // k-way merge via a flat collect + sort: simple and fast enough for
        // the worker counts the simulator uses.
        let mut pairs: Vec<(u64, f64)> = parts.iter().flat_map(|g| g.iter()).collect();
        pairs.sort_unstable_by_key(|&(k, _)| k);
        let mut keys = Vec::with_capacity(pairs.len());
        let mut values = Vec::with_capacity(pairs.len());
        for (k, v) in pairs {
            if keys.last() == Some(&k) {
                *values.last_mut().expect("values parallel to keys") += v;
            } else {
                keys.push(k);
                values.push(v);
            }
        }
        // Summing can cancel to exactly zero; keep representation canonical.
        let mut fk = Vec::with_capacity(keys.len());
        let mut fv = Vec::with_capacity(values.len());
        for (k, v) in keys.into_iter().zip(values) {
            if v != 0.0 {
                fk.push(k);
                fv.push(v);
            }
        }
        Ok(SparseGradient {
            dim,
            keys: fk,
            values: fv,
        })
    }

    /// Scales all values by `factor` (e.g. `1/W` for averaging).
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.values {
            *v *= factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates() {
        assert!(SparseGradient::new(10, vec![1, 2], vec![1.0, 2.0]).is_ok());
        assert!(SparseGradient::new(10, vec![1], vec![1.0, 2.0]).is_err());
        assert!(SparseGradient::new(10, vec![2, 1], vec![1.0, 2.0]).is_err());
        assert!(SparseGradient::new(10, vec![1, 1], vec![1.0, 2.0]).is_err());
        assert!(SparseGradient::new(2, vec![2], vec![1.0]).is_err());
        assert!(SparseGradient::new(10, vec![1], vec![f64::NAN]).is_err());
        assert!(SparseGradient::new(10, vec![1], vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn from_dense_filters() {
        let g = SparseGradient::from_dense(&[0.0, 0.5, -0.001, 0.0, 2.0], 0.01);
        assert_eq!(g.keys(), &[1, 4]);
        assert_eq!(g.values(), &[0.5, 2.0]);
        assert_eq!(g.dim(), 5);
        let all = SparseGradient::from_dense(&[0.0, 0.5, -0.001], 0.0);
        assert_eq!(all.nnz(), 2);
    }

    #[test]
    fn dense_roundtrip() {
        let dense = vec![0.0, 1.5, 0.0, -2.5, 0.0];
        let g = SparseGradient::from_dense(&dense, 0.0);
        assert_eq!(g.to_dense(), dense);
    }

    #[test]
    fn sparsity_and_norm() {
        let g = SparseGradient::new(100, vec![0, 1], vec![3.0, 4.0]).unwrap();
        assert!((g.sparsity() - 0.02).abs() < 1e-12);
        assert!((g.l2_norm() - 5.0).abs() < 1e-12);
        assert_eq!(SparseGradient::empty(0).sparsity(), 0.0);
    }

    #[test]
    fn aggregate_merges_and_sums() {
        let a = SparseGradient::new(10, vec![1, 3, 5], vec![1.0, 1.0, 1.0]).unwrap();
        let b = SparseGradient::new(10, vec![3, 5, 7], vec![2.0, -1.0, 4.0]).unwrap();
        let sum = SparseGradient::aggregate(&[a, b]).unwrap();
        assert_eq!(sum.keys(), &[1, 3, 7]); // key 5 cancels to zero
        assert_eq!(sum.values(), &[1.0, 3.0, 4.0]);
    }

    #[test]
    fn aggregate_rejects_mismatch_and_empty() {
        let a = SparseGradient::empty(10);
        let b = SparseGradient::empty(20);
        assert!(SparseGradient::aggregate(&[a, b]).is_err());
        assert!(SparseGradient::aggregate(&[]).is_err());
    }

    #[test]
    fn scale_applies() {
        let mut g = SparseGradient::new(4, vec![0, 2], vec![2.0, -4.0]).unwrap();
        g.scale(0.5);
        assert_eq!(g.values(), &[1.0, -2.0]);
    }
}
