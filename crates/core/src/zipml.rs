//! ZipML-style uniform fixed-point quantification (paper §4.1 baseline;
//! Zhang et al., "ZipML: An End-to-end Bitwise Framework").
//!
//! The value range `[min, max]` is divided into `2^bits - 1` **equal-width**
//! intervals and every value is mapped to its nearest level (deterministic
//! rounding, the paper's observed behaviour: "methods such as ZipML quantify
//! [near-zero gradients] to zero. Therefore, many gradient values are
//! ignored, causing slower convergence") or to a probabilistically unbiased
//! neighbour (stochastic rounding, QSGD-style, provided for the ablation
//! benches).
//!
//! Keys are shipped as raw 4-byte integers — §4.3.1: "ZipML is unable to
//! compress the gradient keys."

use crate::compressor::{CompressedGradient, GradientCompressor};
use crate::error::CompressError;
use crate::gradient::SparseGradient;
use crate::scratch::CompressScratch;
use bytes::{Buf, BufMut, BytesMut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sketchml_encoding::stats::SizeReport;
use sketchml_encoding::varint;
use std::sync::atomic::{AtomicU64, Ordering};

/// Rounding mode of the quantizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rounding {
    /// Round to the nearest level (the behaviour the paper evaluates).
    Deterministic,
    /// Round up/down with probability proportional to proximity, making the
    /// quantizer unbiased in expectation (QSGD-style).
    Stochastic,
}

/// Uniform fixed-point quantizer with 8- or 16-bit levels (Table 4 compares
/// `ZipML-8bit` and `ZipML-16bit`).
#[derive(Debug)]
pub struct ZipMlCompressor {
    /// Bits per value: 8 or 16.
    pub bits: u8,
    /// Rounding mode.
    pub rounding: Rounding,
    /// Seed for stochastic rounding (deterministic runs).
    seed: AtomicU64,
}

impl Clone for ZipMlCompressor {
    fn clone(&self) -> Self {
        ZipMlCompressor {
            bits: self.bits,
            rounding: self.rounding,
            seed: AtomicU64::new(self.seed.load(Ordering::Relaxed)),
        }
    }
}

impl ZipMlCompressor {
    /// Creates a quantizer with `bits ∈ {8, 16}`.
    ///
    /// # Errors
    /// [`CompressError::InvalidConfig`] for other widths.
    pub fn new(bits: u8, rounding: Rounding) -> Result<Self, CompressError> {
        if bits != 8 && bits != 16 {
            return Err(CompressError::InvalidConfig(format!(
                "ZipML supports 8 or 16 bits, got {bits}"
            )));
        }
        Ok(ZipMlCompressor {
            bits,
            rounding,
            seed: AtomicU64::new(0x21F0_CAFE),
        })
    }

    /// The paper's evaluated configuration: 16-bit deterministic ("we set it
    /// to be two bytes via fine tuning", §4.1).
    pub fn paper_default() -> Self {
        Self::new(16, Rounding::Deterministic).expect("16 bits is valid")
    }

    fn levels(&self) -> u32 {
        (1u32 << self.bits) - 1
    }

    /// Shared encoder behind `compress` and `compress_into`: both paths
    /// write through here, so their bytes agree by construction. Writes into
    /// `out` (cleared first) without allocating.
    fn encode_into(
        &self,
        grad: &SparseGradient,
        out: &mut BytesMut,
    ) -> Result<SizeReport, CompressError> {
        out.clear();
        out.put_u8(MAGIC);
        out.put_u8(self.bits);
        varint::write_u64(out, grad.dim());
        varint::write_u64(out, grad.nnz() as u64);
        let mut report = SizeReport {
            pairs: grad.nnz(),
            ..SizeReport::default()
        };
        if grad.is_empty() {
            report.header_bytes = out.len();
            return Ok(report);
        }
        let header = out.len();

        // Raw 4-byte keys: ZipML does not compress keys.
        for &k in grad.keys() {
            let k32 = u32::try_from(k)
                .map_err(|_| CompressError::InvalidGradient(format!("key {k} exceeds u32")))?;
            out.put_u32_le(k32);
        }
        report.key_bytes = 4 * grad.nnz();

        let values = grad.values();
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        out.put_f64_le(min);
        out.put_f64_le(max);
        let span = (max - min).max(f64::MIN_POSITIVE);
        let levels = self.levels() as f64;
        // The seed counter advances exactly as before, but the rng is only
        // materialized when stochastic rounding actually draws from it.
        let rng_seed = self.seed.fetch_add(1, Ordering::Relaxed);
        let mut rng = match self.rounding {
            Rounding::Stochastic => Some(StdRng::seed_from_u64(rng_seed)),
            Rounding::Deterministic => None,
        };
        for &v in values {
            let exact = (v - min) / span * levels;
            let level = match self.rounding {
                Rounding::Deterministic => exact.round(),
                Rounding::Stochastic => {
                    let floor = exact.floor();
                    let frac = exact - floor;
                    if rng.as_mut().expect("stochastic rng").gen::<f64>() < frac {
                        floor + 1.0
                    } else {
                        floor
                    }
                }
            }
            .clamp(0.0, levels);
            match self.bits {
                8 => out.put_u8(level as u8),
                _ => out.put_u16_le(level as u16),
            }
        }
        report.value_bytes = 16 + grad.nnz() * (self.bits as usize / 8);
        report.header_bytes = header;
        Ok(report)
    }
}

const MAGIC: u8 = 0x21;

impl GradientCompressor for ZipMlCompressor {
    fn name(&self) -> &'static str {
        match self.bits {
            8 => "ZipML-8bit",
            _ => "ZipML",
        }
    }

    fn compress(&self, grad: &SparseGradient) -> Result<CompressedGradient, CompressError> {
        let mut buf = BytesMut::new();
        let report = self.encode_into(grad, &mut buf)?;
        Ok(CompressedGradient {
            payload: buf.freeze(),
            report,
        })
    }

    fn decompress(&self, payload: &[u8]) -> Result<SparseGradient, CompressError> {
        let mut buf = payload;
        if buf.remaining() < 2 || buf.get_u8() != MAGIC {
            return Err(CompressError::Corrupt("bad ZipML magic".into()));
        }
        let bits = buf.get_u8();
        if bits != 8 && bits != 16 {
            return Err(CompressError::Corrupt(format!("bad ZipML width {bits}")));
        }
        let dim = varint::read_u64(&mut buf)?;
        let nnz = varint::read_u64(&mut buf)? as usize;
        if nnz == 0 {
            return Ok(SparseGradient::empty(dim));
        }
        // Checked arithmetic: a wire-controlled nnz must not wrap past the
        // remaining-bytes test.
        let need = nnz
            .checked_mul(4 + bits as usize / 8)
            .and_then(|b| b.checked_add(16))
            .ok_or_else(|| CompressError::Corrupt(format!("ZipML nnz {nnz} overflows")))?;
        if buf.remaining() < need {
            return Err(CompressError::Corrupt("truncated ZipML body".into()));
        }
        let keys: Vec<u64> = (0..nnz).map(|_| buf.get_u32_le() as u64).collect();
        let min = buf.get_f64_le();
        let max = buf.get_f64_le();
        if !min.is_finite() || !max.is_finite() || min > max {
            return Err(CompressError::Corrupt("bad ZipML value range".into()));
        }
        let span = (max - min).max(f64::MIN_POSITIVE);
        let levels = ((1u32 << bits) - 1) as f64;
        let values: Vec<f64> = (0..nnz)
            .map(|_| {
                let level = match bits {
                    8 => buf.get_u8() as f64,
                    _ => buf.get_u16_le() as f64,
                };
                min + level / levels * span
            })
            .collect();
        SparseGradient::new(dim, keys, values)
    }

    fn compress_into(
        &self,
        grad: &SparseGradient,
        _scratch: &mut CompressScratch,
        out: &mut BytesMut,
    ) -> Result<SizeReport, CompressError> {
        self.encode_into(grad, out)
    }

    fn decompress_into(
        &self,
        payload: &[u8],
        scratch: &mut CompressScratch,
        out: &mut SparseGradient,
    ) -> Result<(), CompressError> {
        let mut buf = payload;
        if buf.remaining() < 2 || buf.get_u8() != MAGIC {
            return Err(CompressError::Corrupt("bad ZipML magic".into()));
        }
        let bits = buf.get_u8();
        if bits != 8 && bits != 16 {
            return Err(CompressError::Corrupt(format!("bad ZipML width {bits}")));
        }
        let dim = varint::read_u64(&mut buf)?;
        let nnz = varint::read_u64(&mut buf)? as usize;
        if nnz == 0 {
            return out.assign(dim, &[], &[]);
        }
        // Checked arithmetic: a wire-controlled nnz must not wrap past the
        // remaining-bytes test.
        let need = nnz
            .checked_mul(4 + bits as usize / 8)
            .and_then(|b| b.checked_add(16))
            .ok_or_else(|| CompressError::Corrupt(format!("ZipML nnz {nnz} overflows")))?;
        if buf.remaining() < need {
            return Err(CompressError::Corrupt("truncated ZipML body".into()));
        }
        scratch.dec_keys.clear();
        scratch.dec_keys.reserve(nnz);
        for _ in 0..nnz {
            scratch.dec_keys.push(buf.get_u32_le() as u64);
        }
        let min = buf.get_f64_le();
        let max = buf.get_f64_le();
        if !min.is_finite() || !max.is_finite() || min > max {
            return Err(CompressError::Corrupt("bad ZipML value range".into()));
        }
        let span = (max - min).max(f64::MIN_POSITIVE);
        let levels = ((1u32 << bits) - 1) as f64;
        scratch.dec_vals.clear();
        scratch.dec_vals.reserve(nnz);
        for _ in 0..nnz {
            let level = match bits {
                8 => buf.get_u8() as f64,
                _ => buf.get_u16_le() as f64,
            };
            scratch.dec_vals.push(min + level / levels * span);
        }
        out.assign(dim, &scratch.dec_keys, &scratch.dec_vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_gradient(n: usize, dim: u64, seed: u64) -> SparseGradient {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut keys: Vec<u64> = (0..n as u64 * 2).map(|_| rng.gen_range(0..dim)).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.truncate(n);
        let values: Vec<f64> = keys
            .iter()
            .map(|_| {
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                sign * rng.gen::<f64>().powi(6) * 0.35
            })
            .collect();
        SparseGradient::new(dim, keys, values).unwrap()
    }

    #[test]
    fn roundtrip_bounds_error_by_level_width() {
        for bits in [8u8, 16] {
            let c = ZipMlCompressor::new(bits, Rounding::Deterministic).unwrap();
            let grad = skewed_gradient(1000, 50_000, 71);
            let msg = c.compress(&grad).unwrap();
            let decoded = c.decompress(&msg.payload).unwrap();
            assert_eq!(decoded.keys(), grad.keys());
            let span = 0.7; // value range ~[-0.35, 0.35]
            let level_width = span / ((1u32 << bits) - 1) as f64;
            for ((_, v), (_, d)) in grad.iter().zip(decoded.iter()) {
                assert!(
                    (v - d).abs() <= level_width,
                    "bits={bits}: |{v} - {d}| > level width {level_width}"
                );
            }
        }
    }

    #[test]
    fn deterministic_rounding_zeroes_small_gradients() {
        // The §3.2/§4.3 critique: most values sit near zero; with 8-bit
        // uniform levels over a wide range they all collapse onto the same
        // level, i.e. the information is lost.
        let mut keys = Vec::new();
        let mut values = Vec::new();
        for i in 0..1000u64 {
            keys.push(i);
            values.push(if i == 0 {
                -1.0 // one big outlier stretches the range
            } else if i == 1 {
                1.0
            } else {
                1e-4 * ((i % 7) as f64 - 3.0) // tiny near-zero mass
            });
        }
        let grad = SparseGradient::new(2000, keys, values).unwrap();
        let c = ZipMlCompressor::new(8, Rounding::Deterministic).unwrap();
        let decoded = c.decompress(&c.compress(&grad).unwrap().payload).unwrap();
        // The 7 distinct tiny input values collapse onto at most 2 levels —
        // the near-zero structure is destroyed.
        let mut decoded_small: Vec<f64> = decoded.values()[2..].to_vec();
        decoded_small.sort_by(f64::total_cmp);
        decoded_small.dedup();
        assert!(
            decoded_small.len() <= 2,
            "expected near-zero collapse, got {} distinct levels",
            decoded_small.len()
        );
    }

    #[test]
    fn stochastic_rounding_is_unbiased() {
        let _grad = SparseGradient::new(10, vec![0], vec![0.3]).unwrap();
        let c = ZipMlCompressor::new(8, Rounding::Stochastic).unwrap();
        // Single value: min == max == 0.3, span degenerate → decodes to min.
        // Use two anchor values so the range is [-1, 1].
        let grad = SparseGradient::new(10, vec![0, 1, 2], vec![-1.0, 0.298, 1.0]).unwrap();
        let _ = grad;
        let mut sum = 0.0;
        let trials = 400;
        for _ in 0..trials {
            let g = SparseGradient::new(10, vec![0, 1, 2], vec![-1.0, 0.298, 1.0]).unwrap();
            let d = c.decompress(&c.compress(&g).unwrap().payload).unwrap();
            sum += d.values()[1];
        }
        let mean = sum / trials as f64;
        assert!(
            (mean - 0.298).abs() < 0.01,
            "stochastic rounding should be unbiased, mean {mean}"
        );
    }

    #[test]
    fn key_bytes_are_uncompressed() {
        let grad = skewed_gradient(5000, 100_000, 72);
        let c = ZipMlCompressor::paper_default();
        let msg = c.compress(&grad).unwrap();
        assert_eq!(msg.report.key_bytes, 4 * grad.nnz());
        // 16-bit: 4 key + 2 value bytes per pair → rate = 12/6 ≈ 2 (minus headers).
        let rate = msg.report.compression_rate();
        assert!((1.8..=2.1).contains(&rate), "rate {rate}");
    }

    #[test]
    fn empty_gradient_roundtrip() {
        let c = ZipMlCompressor::paper_default();
        let msg = c.compress(&SparseGradient::empty(42)).unwrap();
        let d = c.decompress(&msg.payload).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.dim(), 42);
    }

    #[test]
    fn invalid_configs_and_corrupt_buffers() {
        assert!(ZipMlCompressor::new(4, Rounding::Deterministic).is_err());
        assert!(ZipMlCompressor::new(32, Rounding::Deterministic).is_err());
        let c = ZipMlCompressor::paper_default();
        assert!(c.decompress(&[]).is_err());
        assert!(c.decompress(&[0x00]).is_err());
        let grad = skewed_gradient(100, 1000, 73);
        let msg = c.compress(&grad).unwrap();
        for cut in 0..msg.payload.len() {
            let _ = c.decompress(&msg.payload[..cut]); // must not panic
        }
    }

    #[test]
    fn constant_values_roundtrip() {
        let grad = SparseGradient::new(10, vec![1, 3, 5], vec![0.5, 0.5, 0.5]).unwrap();
        let c = ZipMlCompressor::paper_default();
        let d = c.decompress(&c.compress(&grad).unwrap().payload).unwrap();
        for (_, v) in d.iter() {
            assert!((v - 0.5).abs() < 1e-9);
        }
    }
}
