//! Space-cost model (paper §3.5) and its validation against real messages.
//!
//! §3.5 derives the total SketchML message size
//!
//! ```text
//! d · (⌈(1/8)·log2(rD/d)⌉ + 1/4)  +  8q  +  s·t·⌈(1/8)·log2 q⌉
//! ```
//!
//! against the uncompressed `12d`. The closed forms live in
//! [`sketchml_sketches::theory`]; this module binds them to a
//! [`SketchMlConfig`] and actual gradients so tests
//! and the `appendix_a_bounds` harness can compare model vs. measurement.

use crate::error::CompressError;
use crate::sketchml::SketchMlConfig;
pub use sketchml_sketches::theory::{raw_space_cost, sketchml_space_cost};

/// Predicted message size in bytes for a gradient with `nnz` nonzeros of a
/// `dim`-dimensional model under `config` (§3.5 formula).
///
/// # Errors
/// [`CompressError::Sketch`] when the derived shape is out of the model's
/// domain (e.g. a zero model dimension).
pub fn predicted_message_bytes(
    config: &SketchMlConfig,
    nnz: usize,
    dim: u64,
) -> Result<f64, CompressError> {
    let q_total = 2 * config.buckets_per_sign as usize; // both signs
    let t_total = ((nnz as f64) * config.col_ratio).ceil() as usize;
    // Keys are sectioned per (sign, group): 2 × groups sections (A.3's r).
    Ok(sketchml_space_cost(
        nnz as u64,
        dim,
        q_total.min(nnz.max(1)),
        config.rows,
        t_total.max(config.min_cols_per_group * config.groups),
        2 * config.groups,
    )?)
}

/// Predicted compression rate vs. the raw `12d` representation.
///
/// # Errors
/// Same contract as [`predicted_message_bytes`].
pub fn predicted_compression_rate(
    config: &SketchMlConfig,
    nnz: usize,
    dim: u64,
) -> Result<f64, CompressError> {
    let predicted = predicted_message_bytes(config, nnz, dim)?;
    if predicted <= 0.0 {
        return Ok(1.0);
    }
    Ok(raw_space_cost(nnz as u64) / predicted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressor::GradientCompressor;
    use crate::gradient::SparseGradient;
    use crate::sketchml::SketchMlCompressor;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn model_tracks_measurement_within_2x() {
        let mut rng = StdRng::seed_from_u64(91);
        let dim = 1_000_000u64;
        let mut keys: Vec<u64> = (0..40_000).map(|_| rng.gen_range(0..dim)).collect();
        keys.sort_unstable();
        keys.dedup();
        let values: Vec<f64> = keys
            .iter()
            .map(|_| {
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                sign * rng.gen::<f64>().powi(4) * 0.3
            })
            .collect();
        let nnz = keys.len();
        let grad = SparseGradient::new(dim, keys, values).unwrap();
        let c = SketchMlCompressor::default();
        let measured = c.compress(&grad).unwrap().len() as f64;
        let predicted = predicted_message_bytes(&c.config, nnz, dim).unwrap();
        let ratio = measured / predicted;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "measured {measured} vs predicted {predicted} (ratio {ratio})"
        );
    }

    #[test]
    fn predicted_rate_is_high_for_sparse_high_dim() {
        let config = SketchMlConfig::default();
        let rate = predicted_compression_rate(&config, 100_000, 50_000_000).unwrap();
        assert!(rate > 3.0, "predicted rate {rate}");
    }

    #[test]
    fn zero_dim_is_a_typed_error() {
        let config = SketchMlConfig::default();
        assert!(predicted_message_bytes(&config, 100, 0).is_err());
    }
}
