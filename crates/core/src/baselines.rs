//! Non-sketch baselines of the evaluation: uncompressed Adam messages
//! (double and float weight types, Table 4), the `Adam+Key` ablation stage
//! (Figure 8), and threshold truncation (the "too aggressive" lossy method
//! of §1.1/§5, after Seide et al.'s 1-bit SGD).

use crate::compressor::{CompressedGradient, GradientCompressor};
use crate::error::CompressError;
use crate::gradient::SparseGradient;
use bytes::{Buf, BufMut, BytesMut};
use sketchml_encoding::stats::SizeReport;
use sketchml_encoding::{delta_binary, varint};

/// Floating-point width for raw value transfer (Table 4's weight types).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueWidth {
    /// 4-byte `f32` ("Adam-float").
    F32,
    /// 8-byte `f64` ("Adam-double", the default Adam baseline).
    F64,
}

impl ValueWidth {
    fn bytes(self) -> usize {
        match self {
            ValueWidth::F32 => 4,
            ValueWidth::F64 => 8,
        }
    }
}

/// The uncompressed baseline ("Adam" in every figure): raw 4-byte keys and
/// raw floating-point values — the `12d` bytes reference point of §3.5.
#[derive(Debug, Clone, Copy)]
pub struct RawCompressor {
    /// Value precision.
    pub width: ValueWidth,
}

impl Default for RawCompressor {
    fn default() -> Self {
        RawCompressor {
            width: ValueWidth::F64,
        }
    }
}

const RAW_MAGIC: u8 = 0x0D;

impl GradientCompressor for RawCompressor {
    fn name(&self) -> &'static str {
        match self.width {
            ValueWidth::F32 => "Adam-float",
            ValueWidth::F64 => "Adam",
        }
    }

    fn compress(&self, grad: &SparseGradient) -> Result<CompressedGradient, CompressError> {
        let mut buf = BytesMut::new();
        buf.put_u8(RAW_MAGIC);
        buf.put_u8(self.width.bytes() as u8);
        varint::write_u64(&mut buf, grad.dim());
        varint::write_u64(&mut buf, grad.nnz() as u64);
        let header = buf.len();
        for &k in grad.keys() {
            let k32 = u32::try_from(k)
                .map_err(|_| CompressError::InvalidGradient(format!("key {k} exceeds u32")))?;
            buf.put_u32_le(k32);
        }
        for &v in grad.values() {
            match self.width {
                ValueWidth::F32 => buf.put_f32_le(v as f32),
                ValueWidth::F64 => buf.put_f64_le(v),
            }
        }
        Ok(CompressedGradient {
            payload: buf.freeze(),
            report: SizeReport {
                key_bytes: 4 * grad.nnz(),
                value_bytes: self.width.bytes() * grad.nnz(),
                header_bytes: header,
                pairs: grad.nnz(),
            },
        })
    }

    fn decompress(&self, payload: &[u8]) -> Result<SparseGradient, CompressError> {
        let mut buf = payload;
        if buf.remaining() < 2 || buf.get_u8() != RAW_MAGIC {
            return Err(CompressError::Corrupt("bad raw magic".into()));
        }
        let width = buf.get_u8() as usize;
        if width != 4 && width != 8 {
            return Err(CompressError::Corrupt(format!("bad value width {width}")));
        }
        let dim = varint::read_u64(&mut buf)?;
        let nnz = varint::read_u64(&mut buf)? as usize;
        let need = nnz
            .checked_mul(4 + width)
            .ok_or_else(|| CompressError::Corrupt(format!("raw nnz {nnz} overflows")))?;
        if buf.remaining() < need {
            return Err(CompressError::Corrupt("truncated raw body".into()));
        }
        let keys: Vec<u64> = (0..nnz).map(|_| buf.get_u32_le() as u64).collect();
        let values: Vec<f64> = (0..nnz)
            .map(|_| {
                if width == 4 {
                    buf.get_f32_le() as f64
                } else {
                    buf.get_f64_le()
                }
            })
            .collect();
        SparseGradient::new(dim, keys, values)
    }
}

/// The `Adam+Key` ablation stage (Figure 8): delta-binary keys, raw `f64`
/// values — isolates the benefit of key compression alone.
#[derive(Debug, Clone, Copy, Default)]
pub struct KeyCompressor;

const KEY_MAGIC: u8 = 0x0E;

impl GradientCompressor for KeyCompressor {
    fn name(&self) -> &'static str {
        "Adam+Key"
    }

    fn compress(&self, grad: &SparseGradient) -> Result<CompressedGradient, CompressError> {
        let mut buf = BytesMut::new();
        buf.put_u8(KEY_MAGIC);
        varint::write_u64(&mut buf, grad.dim());
        varint::write_u64(&mut buf, grad.nnz() as u64);
        let header = buf.len();
        let key_bytes = delta_binary::encode_keys(grad.keys(), &mut buf)?;
        for &v in grad.values() {
            buf.put_f64_le(v);
        }
        Ok(CompressedGradient {
            payload: buf.freeze(),
            report: SizeReport {
                key_bytes,
                value_bytes: 8 * grad.nnz(),
                header_bytes: header,
                pairs: grad.nnz(),
            },
        })
    }

    fn decompress(&self, payload: &[u8]) -> Result<SparseGradient, CompressError> {
        let mut buf = payload;
        if !buf.has_remaining() || buf.get_u8() != KEY_MAGIC {
            return Err(CompressError::Corrupt("bad Adam+Key magic".into()));
        }
        let dim = varint::read_u64(&mut buf)?;
        let nnz = varint::read_u64(&mut buf)? as usize;
        let keys = delta_binary::decode_keys(&mut buf)?;
        if keys.len() != nnz {
            return Err(CompressError::Corrupt("key count mismatch".into()));
        }
        if buf.remaining() < 8 * nnz {
            return Err(CompressError::Corrupt("truncated values".into()));
        }
        let values: Vec<f64> = (0..nnz).map(|_| buf.get_f64_le()).collect();
        SparseGradient::new(dim, keys, values)
    }
}

/// Threshold-based truncation (§1.1: "too aggressive to make ML algorithm
/// converged"; §5 after Seide et al.): only the `keep_ratio` fraction of
/// pairs with the largest magnitudes survive; they ship as delta-binary keys
/// plus `f32` values.
#[derive(Debug, Clone, Copy)]
pub struct TruncationCompressor {
    /// Fraction of pairs to keep, in `(0, 1]`.
    pub keep_ratio: f64,
}

impl Default for TruncationCompressor {
    fn default() -> Self {
        TruncationCompressor { keep_ratio: 0.1 }
    }
}

const TRUNC_MAGIC: u8 = 0x0F;

impl GradientCompressor for TruncationCompressor {
    fn name(&self) -> &'static str {
        "Truncation"
    }

    fn compress(&self, grad: &SparseGradient) -> Result<CompressedGradient, CompressError> {
        if !(self.keep_ratio > 0.0 && self.keep_ratio <= 1.0) {
            return Err(CompressError::InvalidConfig(format!(
                "keep_ratio must be in (0, 1], got {}",
                self.keep_ratio
            )));
        }
        let keep = ((grad.nnz() as f64 * self.keep_ratio).ceil() as usize).min(grad.nnz());
        // Select the magnitude threshold, then keep pairs (ascending keys).
        let mut mags: Vec<f64> = grad.values().iter().map(|v| v.abs()).collect();
        mags.sort_by(f64::total_cmp);
        let threshold = if keep == 0 {
            f64::INFINITY
        } else {
            mags[mags.len() - keep]
        };
        let mut keys = Vec::with_capacity(keep);
        let mut values = Vec::with_capacity(keep);
        for (k, v) in grad.iter() {
            if v.abs() >= threshold && keys.len() < keep {
                keys.push(k);
                values.push(v);
            }
        }

        let mut buf = BytesMut::new();
        buf.put_u8(TRUNC_MAGIC);
        varint::write_u64(&mut buf, grad.dim());
        varint::write_u64(&mut buf, keys.len() as u64);
        let header = buf.len();
        let key_bytes = delta_binary::encode_keys(&keys, &mut buf)?;
        for &v in &values {
            buf.put_f32_le(v as f32);
        }
        Ok(CompressedGradient {
            payload: buf.freeze(),
            report: SizeReport {
                key_bytes,
                value_bytes: 4 * values.len(),
                header_bytes: header,
                pairs: grad.nnz(),
            },
        })
    }

    fn decompress(&self, payload: &[u8]) -> Result<SparseGradient, CompressError> {
        let mut buf = payload;
        if !buf.has_remaining() || buf.get_u8() != TRUNC_MAGIC {
            return Err(CompressError::Corrupt("bad truncation magic".into()));
        }
        let dim = varint::read_u64(&mut buf)?;
        let kept = varint::read_u64(&mut buf)? as usize;
        let keys = delta_binary::decode_keys(&mut buf)?;
        if keys.len() != kept {
            return Err(CompressError::Corrupt("kept count mismatch".into()));
        }
        if buf.remaining() < 4 * kept {
            return Err(CompressError::Corrupt("truncated values".into()));
        }
        let values: Vec<f64> = (0..kept).map(|_| buf.get_f32_le() as f64).collect();
        SparseGradient::new(dim, keys, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn gradient(n: usize, dim: u64, seed: u64) -> SparseGradient {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut keys: Vec<u64> = (0..n as u64 * 2).map(|_| rng.gen_range(0..dim)).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.truncate(n);
        let values: Vec<f64> = keys.iter().map(|_| rng.gen_range(-1.0..1.0)).collect();
        SparseGradient::new(dim, keys, values).unwrap()
    }

    #[test]
    fn raw_f64_is_lossless_and_costs_12d() {
        let g = gradient(1000, 100_000, 81);
        let c = RawCompressor::default();
        let msg = c.compress(&g).unwrap();
        assert_eq!(c.decompress(&msg.payload).unwrap(), g);
        assert_eq!(msg.report.key_bytes + msg.report.value_bytes, 12 * g.nnz());
        assert!((msg.report.compression_rate() - 1.0).abs() < 0.01);
    }

    #[test]
    fn raw_f32_loses_only_float_precision() {
        let g = gradient(500, 10_000, 82);
        let c = RawCompressor {
            width: ValueWidth::F32,
        };
        let d = c.decompress(&c.compress(&g).unwrap().payload).unwrap();
        assert_eq!(d.keys(), g.keys());
        for ((_, v), (_, w)) in g.iter().zip(d.iter()) {
            assert!((v - w).abs() < 1e-6);
        }
    }

    #[test]
    fn key_compressor_lossless_with_smaller_keys() {
        let g = gradient(5000, 200_000, 83);
        let c = KeyCompressor;
        let msg = c.compress(&g).unwrap();
        assert_eq!(c.decompress(&msg.payload).unwrap(), g);
        assert!(
            msg.report.key_bytes < 2 * g.nnz(),
            "delta keys should be < 2 B/key, got {}",
            msg.report.key_bytes as f64 / g.nnz() as f64
        );
        // §4.2: key compression alone gives a material rate (~1.3x).
        assert!(msg.report.compression_rate() > 1.2);
    }

    #[test]
    fn truncation_keeps_largest_magnitudes() {
        let g = SparseGradient::new(100, vec![1, 2, 3, 4, 5], vec![0.01, -0.9, 0.05, 0.8, -0.02])
            .unwrap();
        let c = TruncationCompressor { keep_ratio: 0.4 };
        let d = c.decompress(&c.compress(&g).unwrap().payload).unwrap();
        assert_eq!(d.keys(), &[2, 4]);
        assert!(d.values()[0] < -0.89 && d.values()[1] > 0.79);
    }

    #[test]
    fn truncation_drops_information() {
        // The §1.1 critique, measurable: most of the l2 mass can survive but
        // most *pairs* are gone.
        let g = gradient(1000, 50_000, 84);
        let c = TruncationCompressor { keep_ratio: 0.1 };
        let d = c.decompress(&c.compress(&g).unwrap().payload).unwrap();
        assert_eq!(d.nnz(), 100);
    }

    #[test]
    fn truncation_validates_ratio() {
        let g = gradient(10, 100, 85);
        assert!(TruncationCompressor { keep_ratio: 0.0 }
            .compress(&g)
            .is_err());
        assert!(TruncationCompressor { keep_ratio: 1.5 }
            .compress(&g)
            .is_err());
        let all = TruncationCompressor { keep_ratio: 1.0 };
        let d = all.decompress(&all.compress(&g).unwrap().payload).unwrap();
        assert_eq!(d.nnz(), g.nnz());
    }

    #[test]
    fn corrupt_buffers_rejected_across_baselines() {
        let g = gradient(50, 1000, 86);
        let compressors: Vec<Box<dyn GradientCompressor>> = vec![
            Box::new(RawCompressor::default()),
            Box::new(KeyCompressor),
            Box::new(TruncationCompressor::default()),
        ];
        for c in &compressors {
            assert!(c.decompress(&[]).is_err(), "{} accepted empty", c.name());
            let msg = c.compress(&g).unwrap();
            for cut in 0..msg.payload.len() {
                let _ = c.decompress(&msg.payload[..cut]); // no panics
            }
            // Wrong magic routed to the wrong decoder must error.
            assert!(c.decompress(&[0x7F, 0, 0, 0]).is_err());
        }
    }

    #[test]
    fn empty_gradient_roundtrips() {
        let empty = SparseGradient::empty(7);
        for c in [
            &RawCompressor::default() as &dyn GradientCompressor,
            &KeyCompressor,
            &TruncationCompressor::default(),
        ] {
            let d = c.decompress(&c.compress(&empty).unwrap().payload).unwrap();
            assert!(d.is_empty(), "{}", c.name());
            assert_eq!(d.dim(), 7);
        }
    }
}
